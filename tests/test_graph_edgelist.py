"""EdgeList transform and query tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.graph import EdgeList


def el(src, dst, n):
    return EdgeList(np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64), n)


def test_basic_construction():
    e = el([0, 1], [1, 2], 3)
    assert e.num_edges == 2
    assert e.num_vertices == 3


def test_validation():
    with pytest.raises(ConfigError):
        el([0], [5], 3)  # endpoint out of range
    with pytest.raises(ConfigError):
        el([-1], [0], 3)
    with pytest.raises(ConfigError):
        EdgeList(np.zeros(2), np.zeros(3), 5)  # length mismatch
    with pytest.raises(ConfigError):
        el([], [], 0)  # zero vertices


def test_symmetrized_doubles_edges():
    e = el([0, 1], [1, 2], 3).symmetrized()
    assert e.num_edges == 4
    pairs = set(zip(e.src.tolist(), e.dst.tolist()))
    assert (1, 0) in pairs and (2, 1) in pairs


def test_without_self_loops():
    e = el([0, 1, 2], [0, 2, 2], 3).without_self_loops()
    assert e.num_edges == 1
    assert (e.src[0], e.dst[0]) == (1, 2)


def test_deduplicated_keeps_one_copy():
    e = el([0, 0, 0, 1], [1, 1, 2, 0], 3).deduplicated()
    pairs = sorted(zip(e.src.tolist(), e.dst.tolist()))
    assert pairs == [(0, 1), (0, 2), (1, 0)]


def test_permuted_relabels():
    e = el([0, 1], [1, 2], 3).permuted(np.array([2, 0, 1]))
    pairs = set(zip(e.src.tolist(), e.dst.tolist()))
    assert pairs == {(2, 0), (0, 1)}
    with pytest.raises(ConfigError):
        el([0], [1], 3).permuted(np.array([0, 0, 1]))


def test_degrees():
    e = el([0, 0, 1], [1, 2, 2], 3)
    assert e.degrees().tolist() == [2, 1, 0]
    # undirected: vertex 2 touched twice, self-loops counted once
    loops = el([0, 1], [0, 2], 3)
    assert loops.undirected_degrees().tolist() == [1, 1, 1]


def test_edges_within_mask():
    e = el([0, 1, 2], [1, 2, 0], 4)
    mask = np.array([True, True, False, False])
    assert e.edges_within(mask) == 1  # only (0, 1)
    with pytest.raises(ConfigError):
        e.edges_within(np.array([True]))


def test_shuffled_preserves_multiset():
    rng = np.random.default_rng(0)
    e = el([0, 1, 2, 3], [1, 2, 3, 0], 4)
    s = e.shuffled(rng)
    assert sorted(zip(s.src.tolist(), s.dst.tolist())) == sorted(
        zip(e.src.tolist(), e.dst.tolist())
    )


@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=0, max_size=60
    )
)
def test_dedup_then_symmetrize_is_symmetric(pairs):
    n = 16
    src = np.array([p[0] for p in pairs], dtype=np.int64)
    dst = np.array([p[1] for p in pairs], dtype=np.int64)
    e = EdgeList(src, dst, n).symmetrized().deduplicated()
    have = set(zip(e.src.tolist(), e.dst.tolist()))
    assert all((b, a) in have for a, b in have)
