"""The repro.utils.trace deprecation shim: warning, surface, byte parity."""

from __future__ import annotations

import importlib
import sys
import warnings


def _fresh_shim():
    sys.modules.pop("repro.utils.trace", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        mod = importlib.import_module("repro.utils.trace")
    return mod, caught


def test_shim_warns_exactly_one_deprecation():
    _, caught = _fresh_shim()
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert "repro.telemetry.export" in str(deprecations[0].message)


def test_shim_public_surface_is_exactly_the_three_functions():
    mod, _ = _fresh_shim()
    assert sorted(mod.__all__) == [
        "collect_intervals",
        "enable_tracing",
        "to_chrome_trace",
    ]
    for name in mod.__all__:
        assert callable(getattr(mod, name))


def test_shim_output_is_byte_identical_to_telemetry_export():
    """Not just identical objects — identical bytes through a real workflow."""
    mod, _ = _fresh_shim()
    from repro.sim.resources import Server
    from repro.telemetry import export

    def trace_via(ns) -> str:
        server = Server("node0.M0")
        ns.enable_tracing([server])
        server.admit(0.0, 1.5e-6)
        server.admit(2.0e-6, 0.5e-6)
        return ns.to_chrome_trace(ns.collect_intervals([server]))

    assert trace_via(mod) == trace_via(export)
    assert trace_via(mod).startswith('{"traceEvents"')


def test_shim_reimport_is_cached_and_silent():
    mod, _ = _fresh_shim()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        again = importlib.import_module("repro.utils.trace")
    assert again is mod
    assert not any(
        issubclass(w.category, DeprecationWarning) for w in caught
    )
