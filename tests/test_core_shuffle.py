"""Contention-free shuffle plan tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BFSConfig, ShufflePlan
from repro.core.config import RoleLayout
from repro.errors import ConfigError, SpmOverflow
from repro.machine.cluster import CpeCluster


def test_default_plan_is_deadlock_free():
    plan = ShufflePlan(RoleLayout(), num_destinations=64)
    assert plan.verify_deadlock_free()


def test_alternate_role_split_is_deadlock_free():
    plan = ShufflePlan(
        RoleLayout(producer_cols=3, router_cols=2, consumer_cols=3),
        num_destinations=100,
    )
    assert plan.verify_deadlock_free()


def test_routes_move_east_then_vertical_then_east():
    plan = ShufflePlan(RoleLayout(), num_destinations=16)
    route = plan.route((7, 0), 0)
    cols = [c for _, c in route.stops]
    assert cols == sorted(cols)  # never moves west
    rows = [r for r, _ in route.stops]
    assert len(set(rows)) <= 2  # one vertical move at most


def test_consumer_ownership_is_disjoint_and_total():
    plan = ShufflePlan(RoleLayout(), num_destinations=100)
    owners = [plan.consumer_for(d) for d in range(100)]
    # Round-robin: each of the 16 consumers owns ceil/floor(100/16) dests.
    from collections import Counter

    counts = Counter(owners)
    assert set(counts.values()) <= {6, 7}
    assert sum(counts.values()) == 100


def test_spm_feasibility_limits_destinations():
    # 16 consumers x (64K - 4K)/1K buffers = 960 destinations max.
    ShufflePlan(RoleLayout(), num_destinations=960)
    with pytest.raises(SpmOverflow):
        ShufflePlan(RoleLayout(), num_destinations=1024)


def test_direct_cpe_crash_scale():
    """The Figure 11 Direct-CPE story: 256 nodes fit, 1024 don't."""
    cfg = BFSConfig()
    ShufflePlan.from_config(cfg, 256)
    with pytest.raises(SpmOverflow):
        ShufflePlan.from_config(cfg, 1024)


def test_shuffle_time_uses_cluster_model():
    plan = ShufflePlan(RoleLayout(), num_destinations=8)
    cluster = CpeCluster()
    t = plan.shuffle_time(10e9, cluster)  # one second at 10 GB/s
    assert t == pytest.approx(1.0, rel=0.01)


def test_micro_benchmark_runs_and_is_positive():
    plan = ShufflePlan(RoleLayout(), num_destinations=16)
    thr = plan.micro_benchmark_throughput(records_per_flow=16)
    assert thr > 0


def test_bucket_groups_stably():
    dest = np.array([2, 0, 2, 1, 0], dtype=np.int64)
    order, offsets = ShufflePlan.bucket(dest, 3)
    assert offsets.tolist() == [0, 2, 3, 5]
    # Destination 0's records keep their original relative order (1, 4).
    assert order[0:2].tolist() == [1, 4]
    assert order[2:3].tolist() == [3]
    assert order[3:5].tolist() == [0, 2]


def test_bucket_validation():
    with pytest.raises(ConfigError):
        ShufflePlan.bucket(np.array([3]), 3)
    with pytest.raises(ConfigError):
        ShufflePlan(RoleLayout(), num_destinations=0)
    plan = ShufflePlan(RoleLayout(), num_destinations=4)
    with pytest.raises(ConfigError):
        plan.consumer_for(4)
    with pytest.raises(ConfigError):
        plan.route((0, 7), 0)  # not a producer position


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=400),
    st.lists(st.integers(0, 399), min_size=0, max_size=200),
)
def test_bucket_is_a_permutation_with_correct_slices(ndest, dests):
    dests = [d % ndest for d in dests]
    arr = np.array(dests, dtype=np.int64)
    order, offsets = ShufflePlan.bucket(arr, ndest)
    assert sorted(order.tolist()) == list(range(len(arr)))
    shuffled = arr[order]
    for d in range(ndest):
        segment = shuffled[offsets[d] : offsets[d + 1]]
        assert np.all(segment == d)
