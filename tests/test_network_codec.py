"""Frame-of-reference codec tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.network.codec import (
    FRAME_HEADER_BYTES,
    compression_ratio,
    decode_records,
    encode_records,
    encoded_size,
)


def roundtrip(u, v):
    blob = encode_records(np.array(u, dtype=np.int64), np.array(v, dtype=np.int64))
    du, dv = decode_records(blob)
    return blob, du, dv


def test_roundtrip_preserves_pairs_as_multiset():
    u = [10, 99, 10, 5]
    v = [3, 1, 3, 200]
    blob, du, dv = roundtrip(u, v)
    assert sorted(zip(du.tolist(), dv.tolist())) == sorted(zip(u, v))
    assert dv.tolist() == sorted(dv.tolist())  # decoder returns v-sorted


def test_empty_batch():
    blob, du, dv = roundtrip([], [])
    assert len(blob) == FRAME_HEADER_BYTES
    assert len(du) == len(dv) == 0
    assert encoded_size(np.array([]), np.array([])) == FRAME_HEADER_BYTES


def test_single_record():
    blob, du, dv = roundtrip([7], [42])
    assert du.tolist() == [7] and dv.tolist() == [42]


def test_encoded_size_matches_actual_encoding():
    rng = np.random.default_rng(0)
    v = np.sort(rng.integers(0, 1 << 20, size=500))
    u = rng.integers(1 << 10, 1 << 12, size=500)
    blob = encode_records(u, v)
    assert len(blob) == encoded_size(u, v)


def test_dense_batches_compress_well():
    """Sorted near-contiguous targets (the BFS case) beat 8 B/record."""
    v = np.arange(10_000, dtype=np.int64) * 3  # deltas of 3 -> 2 bits
    u = np.full(10_000, 123456, dtype=np.int64)  # constant -> 1 bit
    ratio = compression_ratio(u, v)
    assert ratio > 10


def test_random_wide_batches_compress_little():
    rng = np.random.default_rng(1)
    v = rng.integers(0, 1 << 40, size=1000)
    u = rng.integers(0, 1 << 40, size=1000)
    ratio = compression_ratio(u, v)
    assert 0.8 < ratio < 2.0  # wide ranges: near raw size


def test_validation():
    with pytest.raises(ConfigError):
        encode_records(np.array([1, 2]), np.array([1]))
    with pytest.raises(ConfigError):
        encode_records(np.array([-1]), np.array([1]))
    with pytest.raises(ConfigError):
        decode_records(b"short")
    blob = encode_records(np.array([1]), np.array([2]))
    with pytest.raises(ConfigError):
        decode_records(blob[:-1])


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1 << 48),
            st.integers(min_value=0, max_value=1 << 48),
        ),
        max_size=200,
    )
)
def test_roundtrip_property(pairs):
    u = np.array([p[0] for p in pairs], dtype=np.int64)
    v = np.array([p[1] for p in pairs], dtype=np.int64)
    blob = encode_records(u, v)
    assert len(blob) == encoded_size(u, v)
    du, dv = decode_records(blob)
    assert sorted(zip(du.tolist(), dv.tolist())) == sorted(zip(u.tolist(), v.tolist()))


def test_codec_mode_in_bfs_shrinks_bytes_and_stays_correct():
    from repro.core import BFSConfig, DistributedBFS
    from repro.graph import CSRGraph, KroneckerGenerator
    from repro.graph500.validate import validate_bfs_result

    edges = KroneckerGenerator(scale=10, seed=61).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    base_cfg = BFSConfig(hub_count_topdown=16, hub_count_bottomup=16)
    codec_cfg = BFSConfig(
        use_codec=True, hub_count_topdown=16, hub_count_bottomup=16
    )
    plain = DistributedBFS(edges, 8, config=base_cfg, nodes_per_super_node=4).run(root)
    packed = DistributedBFS(edges, 8, config=codec_cfg, nodes_per_super_node=4).run(root)
    validate_bfs_result(graph, edges, root, packed.parent)
    assert packed.stats["bytes"] < plain.stats["bytes"]


def test_codec_and_ratio_are_exclusive():
    from repro.core import BFSConfig

    with pytest.raises(ConfigError):
        BFSConfig(use_codec=True, compression_ratio=2.0)
