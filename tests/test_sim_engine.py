"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import Engine


def test_time_starts_at_zero():
    assert Engine().now == 0.0


def test_call_after_executes_in_time_order():
    eng = Engine()
    seen = []
    eng.call_after(2.0, seen.append, "b")
    eng.call_after(1.0, seen.append, "a")
    eng.call_after(3.0, seen.append, "c")
    eng.run()
    assert seen == ["a", "b", "c"]
    assert eng.now == 3.0


def test_ties_break_in_scheduling_order():
    eng = Engine()
    seen = []
    for name in "abcde":
        eng.call_at(1.0, seen.append, name)
    eng.run()
    assert seen == list("abcde")


def test_callbacks_can_schedule_more_events():
    eng = Engine()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            eng.call_after(1.0, chain, n + 1)

    eng.call_after(0.0, chain, 0)
    eng.run()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert eng.now == 5.0


def test_scheduling_in_the_past_is_an_error():
    eng = Engine()
    eng.call_after(1.0, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.call_at(0.5, lambda: None)


def test_negative_delay_is_an_error():
    with pytest.raises(SimulationError):
        Engine().call_after(-1.0, lambda: None)


def test_run_until_bounds_time():
    eng = Engine()
    seen = []
    eng.call_at(1.0, seen.append, 1)
    eng.call_at(2.0, seen.append, 2)
    eng.run(until=1.5)
    assert seen == [1]
    assert eng.now == 1.5
    assert len(eng) == 1
    eng.run()
    assert seen == [1, 2]


def test_run_until_advances_clock_even_without_events():
    eng = Engine()
    eng.run(until=10.0)
    assert eng.now == 10.0


def test_max_events_bound():
    eng = Engine()
    for i in range(10):
        eng.call_at(float(i), lambda: None)
    eng.run(max_events=3)
    assert eng.events_executed == 3
    assert len(eng) == 7


def test_run_until_quiescent_raises_on_runaway():
    eng = Engine()

    def forever():
        eng.call_after(1.0, forever)

    eng.call_after(0.0, forever)
    with pytest.raises(SimulationError):
        eng.run_until_quiescent(max_events=100)


def test_step_returns_false_on_empty_queue():
    assert Engine().step() is False


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_events_always_execute_in_nondecreasing_time(delays):
    eng = Engine()
    times = []
    for d in delays:
        eng.call_at(d, lambda: times.append(eng.now))
    eng.run()
    assert times == sorted(times)
    assert len(times) == len(delays)
