"""Cross-cutting system invariants: conservation, bounds, layout discipline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BFSConfig, DistributedBFS
from repro.core.batching import GroupLayout
from repro.errors import ConfigError
from repro.graph import CSRGraph, KroneckerGenerator, barabasi_albert_edges
from repro.graph.stats import degree_stats
from repro.graph500.validate import validate_bfs_result
from repro.machine import RegisterMesh, Route

CFG = BFSConfig(hub_count_topdown=16, hub_count_bottomup=16)


# -------------------------------------------------------- relay discipline --
def test_relay_mode_connections_subset_of_column_and_row_peers():
    """After a full run, every node's actual peer set obeys the N+M bound —
    the property the paper's MPI-memory arithmetic rests on."""
    edges = KroneckerGenerator(scale=11, seed=19).generate()
    bfs = DistributedBFS(edges, 16, config=CFG, nodes_per_super_node=4)
    graph = CSRGraph.from_edges(edges)
    roots = np.flatnonzero(graph.degrees() > 0)[:3]
    for root in roots:
        bfs.run(int(root))
    layout = bfs.groups
    for node in range(16):
        allowed = set(layout.column_peers(node)) | set(layout.row_peers(node))
        actual = bfs.cluster.connections[node].peers
        assert actual <= allowed, node


def test_direct_mode_can_touch_everyone():
    cfg = BFSConfig(use_relay=False, hub_count_topdown=16, hub_count_bottomup=16)
    edges = KroneckerGenerator(scale=11, seed=19).generate()
    bfs = DistributedBFS(edges, 8, config=cfg, nodes_per_super_node=4)
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    bfs.run(root)
    # Termination markers alone connect all pairs in direct mode.
    assert bfs.cluster.max_connections() == 7


# ---------------------------------------------------------- time discipline --
def test_simulated_time_is_monotone_across_levels_and_roots():
    edges = KroneckerGenerator(scale=10, seed=21).generate()
    bfs = DistributedBFS(edges, 8, config=CFG, nodes_per_super_node=4)
    graph = CSRGraph.from_edges(edges)
    prev_finish = 0.0
    for root in np.flatnonzero(graph.degrees() > 0)[:3]:
        result = bfs.run(int(root))
        for trace in result.traces:
            assert trace.finish >= trace.start >= prev_finish
            prev_finish = trace.finish


def test_busy_time_never_exceeds_span():
    edges = KroneckerGenerator(scale=11, seed=23).generate()
    bfs = DistributedBFS(edges, 8, config=CFG, nodes_per_super_node=4)
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    bfs.run(root)
    for u in bfs.utilization().values():
        assert 0.0 <= u <= 1.0


# -------------------------------------------------------- byte conservation --
def test_network_bytes_equal_sum_of_message_sizes():
    edges = KroneckerGenerator(scale=10, seed=25).generate()
    bfs = DistributedBFS(edges, 8, config=CFG, nodes_per_super_node=4)
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    result = bfs.run(root)
    # Stats bytes (counted at send) match the NIC-injected volume.
    assert result.stats["bytes"] == pytest.approx(bfs.cluster.network.total_bytes())


def test_central_traffic_only_from_cross_group_messages():
    """With groups = super nodes, only stage-one relays hit the trunk."""
    edges = KroneckerGenerator(scale=10, seed=27).generate()
    bfs = DistributedBFS(edges, 8, config=CFG, nodes_per_super_node=4)
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    bfs.run(root)
    central = bfs.cluster.stats.value("central_bytes")
    total = bfs.cluster.stats.value("bytes")
    assert 0 < central < total


# ---------------------------------------------------------------- BA graphs --
def test_barabasi_albert_is_power_law_and_traversable():
    edges = barabasi_albert_edges(512, attach=3, seed=5)
    stats = degree_stats(edges)
    # Preferential attachment: a heavy tail (hubs many times the mean),
    # though milder than Kronecker's at this size.
    assert stats.max_degree > 8 * stats.mean_degree
    assert stats.top1pct_share > 0.05
    assert stats.isolated == 0  # BA graphs are connected by construction
    graph = CSRGraph.from_edges(edges)
    bfs = DistributedBFS(edges, 8, config=CFG, nodes_per_super_node=4)
    result = bfs.run(0)
    depth = validate_bfs_result(graph, edges, 0, result.parent)
    assert (depth >= 0).all()  # single connected component


def test_barabasi_albert_validation():
    with pytest.raises(ConfigError):
        barabasi_albert_edges(5, attach=5)
    with pytest.raises(ConfigError):
        barabasi_albert_edges(10, attach=0)


def test_barabasi_albert_deterministic():
    a = barabasi_albert_edges(100, 2, seed=9)
    b = barabasi_albert_edges(100, 2, seed=9)
    assert np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)


# --------------------------------------------------------------- mesh extra --
@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 6)),
        min_size=1,
        max_size=6,
    ),
    st.integers(1, 5),
)
def test_mesh_delivery_conserves_packets(endpoints, packets):
    """Same-row single-hop flows: everything sent arrives, nothing extra."""
    flows = []
    for r, c in endpoints:
        flows.append((Route.through((r, c), (r, c + 1)), 32 * packets))
    mesh = RegisterMesh()
    cycles, delivered = mesh.simulate(flows)
    assert delivered == [32 * packets] * len(flows)
    # Cycle count bounded by total packets (worst case full serialisation
    # at one receiver) and at least the per-flow packet count.
    assert packets <= cycles <= packets * len(flows)


def test_group_layout_relay_closure():
    """Relaying twice lands at the destination's group-mate: relay(r, d) is
    always d itself or an intra-group hop."""
    g = GroupLayout(32, 8)
    for src in range(0, 32, 5):
        for dst in range(32):
            r = g.relay_for(src, dst)
            assert g.group_of(g.relay_for(r, dst)) == g.group_of(dst)
            assert g.relay_for(r, dst) in (dst, *g.group_members(g.group_of(dst)))