"""Register mesh tests: channel legality, deadlock analysis, transfers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, DeadlockError
from repro.machine import MeshTopology, RegisterMesh, Route
from repro.machine.mesh import check_deadlock_free

mesh = MeshTopology()


def test_mesh_is_8x8():
    assert mesh.size == 64
    assert len(mesh.positions()) == 64


def test_channels_only_same_row_or_column():
    assert mesh.channel_allowed((0, 0), (0, 7))
    assert mesh.channel_allowed((0, 0), (7, 0))
    assert not mesh.channel_allowed((0, 0), (1, 1))
    assert not mesh.channel_allowed((0, 0), (0, 0))
    assert not mesh.channel_allowed((0, 0), (8, 0))


def test_directions():
    assert mesh.direction((3, 1), (3, 5)) == "E"
    assert mesh.direction((3, 5), (3, 1)) == "W"
    assert mesh.direction((1, 2), (6, 2)) == "S"
    assert mesh.direction((6, 2), (1, 2)) == "N"
    with pytest.raises(ConfigError):
        mesh.direction((0, 0), (1, 1))


def test_route_validation():
    r = Route.through((0, 0), (0, 4), (5, 4), (5, 7))
    assert r.hop_count() == 3
    assert len(r.channels(mesh)) == 3
    with pytest.raises(ConfigError):
        Route.through((0, 0))
    with pytest.raises(ConfigError):
        Route.through((0, 0), (1, 1)).channels(mesh)


def test_role_schema_routes_are_deadlock_free():
    """The paper's producer(E) -> router(N/S) -> consumer(E) schema."""
    routes = []
    for pr in range(8):
        for pc in range(4):  # producers in columns 0-3
            for cr in range(8):
                router_col = 4 if cr < pr else 5  # up-column vs down-column
                for cc in (6, 7):  # consumers in columns 6-7
                    stops = [(pr, pc), (pr, router_col)]
                    if cr != pr:
                        stops.append((cr, router_col))
                    stops.append((cr, cc))
                    routes.append(Route.through(*stops))
    assert check_deadlock_free(routes, mesh)


def test_arbitrary_all_to_all_deadlocks():
    """Unrestricted routing creates circular channel waits around a square."""
    routes = [
        Route.through((0, 0), (0, 1), (1, 1)),
        Route.through((0, 1), (1, 1), (1, 0)),
        Route.through((1, 1), (1, 0), (0, 0)),
        Route.through((1, 0), (0, 0), (0, 1)),
    ]
    with pytest.raises(DeadlockError):
        check_deadlock_free(routes, mesh)
    assert check_deadlock_free(routes, mesh, raise_on_cycle=False) is False


def test_two_route_cycle_detected():
    r1 = Route.through((0, 0), (0, 1), (1, 1))
    r2 = Route.through((0, 1), (1, 1), (1, 0), (0, 0), (0, 1))
    # r1 holds 00->01 waiting for 01->11; r2's chain leads back to 00->01.
    assert check_deadlock_free([r1], mesh)
    with pytest.raises(DeadlockError):
        check_deadlock_free([r1, r2], mesh)


def test_simulated_transfer_delivers_all_bytes():
    rm = RegisterMesh()
    route = Route.through((0, 0), (0, 4), (5, 4), (5, 6))
    cycles, delivered = rm.simulate([(route, 1024)])
    assert delivered == [1024]
    assert cycles >= 1024 // 32  # at least one cycle per packet on one hop


def test_single_hop_transfer_is_one_packet_per_cycle():
    rm = RegisterMesh()
    route = Route.through((0, 0), (0, 1))
    cycles, delivered = rm.simulate([(route, 32 * 10)])
    assert delivered == [320]
    assert cycles == 10


def test_pipeline_overlaps_hops():
    """A 3-hop route streams: cycles ~ packets + pipeline depth, not 3x."""
    rm = RegisterMesh()
    route = Route.through((0, 0), (0, 4), (5, 4), (5, 6))
    n_packets = 100
    cycles, _ = rm.simulate([(route, 32 * n_packets)])
    assert cycles < 3 * n_packets
    assert cycles >= n_packets


def test_parallel_disjoint_flows_share_cycles():
    rm = RegisterMesh()
    f1 = (Route.through((0, 0), (0, 1)), 32 * 50)
    f2 = (Route.through((1, 0), (1, 1)), 32 * 50)
    cycles, delivered = rm.simulate([f1, f2])
    assert delivered == [1600, 1600]
    assert cycles == 50  # no shared CPEs -> fully parallel


def test_throughput_reports_bytes_per_second():
    rm = RegisterMesh(frequency_hz=1.45e9)
    route = Route.through((0, 0), (0, 1))
    thr = rm.throughput([(route, 32 * 100)])
    assert thr == pytest.approx(32 * 1.45e9)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=6, max_value=7),
        ),
        min_size=1,
        max_size=10,
    ),
    st.integers(min_value=1, max_value=8),
)
def test_role_schema_always_delivers(route_specs, packets):
    """Any producer->router->consumer traffic pattern completes."""
    rm = RegisterMesh()
    flows = []
    for pr, pc, cr, cc in route_specs:
        router_col = 4 if cr < pr else 5
        stops = [(pr, pc), (pr, router_col)]
        if cr != pr:
            stops.append((cr, router_col))
        stops.append((cr, cc))
        flows.append((Route.through(*stops), 32 * packets))
    cycles, delivered = rm.simulate(flows)
    assert delivered == [32 * packets] * len(flows)
    assert cycles > 0
