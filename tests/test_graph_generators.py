"""Synthetic generator tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import (
    CSRGraph,
    complete_edges,
    erdos_renyi_edges,
    grid_edges,
    ring_edges,
    star_edges,
)
from repro.graph500.reference import reference_depths


def test_ring():
    g = CSRGraph.from_edges(ring_edges(8))
    assert np.all(g.degrees() == 2)
    depth = reference_depths(g, 0)
    assert depth.max() == 4  # diameter/2 of an 8-ring


def test_star():
    g = CSRGraph.from_edges(star_edges(10))
    assert g.degrees()[0] == 9
    depth = reference_depths(g, 3)
    assert depth[0] == 1 and depth[3] == 0
    assert np.all(depth[np.arange(10) > 0] <= 2)


def test_star_custom_hub():
    e = star_edges(5, hub=2)
    assert np.all(e.src == 2)


def test_grid():
    g = CSRGraph.from_edges(grid_edges(3, 4))
    assert g.num_vertices == 12
    depth = reference_depths(g, 0)
    assert depth[11] == (2 + 3)  # Manhattan distance to the far corner


def test_complete():
    g = CSRGraph.from_edges(complete_edges(6))
    assert np.all(g.degrees() == 5)
    assert reference_depths(g, 0).max() == 1


def test_erdos_renyi_deterministic():
    a = erdos_renyi_edges(100, 4.0, seed=5)
    b = erdos_renyi_edges(100, 4.0, seed=5)
    assert np.array_equal(a.src, b.src)
    assert a.num_edges == 200


def test_validation():
    with pytest.raises(ConfigError):
        ring_edges(2)
    with pytest.raises(ConfigError):
        star_edges(1)
    with pytest.raises(ConfigError):
        star_edges(5, hub=9)
    with pytest.raises(ConfigError):
        grid_edges(0, 5)
    with pytest.raises(ConfigError):
        complete_edges(1)
    with pytest.raises(ConfigError):
        complete_edges(5000)
    with pytest.raises(ConfigError):
        erdos_renyi_edges(1, 2.0)
    with pytest.raises(ConfigError):
        erdos_renyi_edges(10, 0.0)
