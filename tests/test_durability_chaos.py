"""The chaos campaign harness: zero aborts, oracle checks, determinism.

Small campaigns (scale 9, a handful of scenarios) keep these fast; the
scale-13, 50-scenario acceptance sweep lives in CI's chaos-smoke job and
``EXPERIMENTS.md``. What matters here is the *contract*: every scenario
stays within the RS loss budget, recovers to bit-identical parents, and
the whole sweep replays exactly from its seed.
"""

import json

import pytest

from repro.durability import ChaosConfig, run_campaign
from repro.durability.chaos import _draw_scenario
from repro.errors import ConfigError
from repro.telemetry import Telemetry


def _small_cfg(**overrides):
    defaults = dict(scale=9, nodes=8, scenarios=4, seed=7)
    defaults.update(overrides)
    return ChaosConfig(**defaults)


def test_campaign_zero_aborts_and_bit_identical_parents():
    report = run_campaign(_small_cfg())
    assert len(report.results) == 4
    assert report.aborted == 0
    assert report.mismatched == 0
    assert report.ok
    assert report.baseline_seconds > 0.0
    for r in report.results:
        assert r.outcome in ("clean", "recovered")
        assert r.parents_match
        assert 0.0 < r.storage_overhead < 1.6
        # Faulted runs are never faster than the fault-free baseline.
        assert r.sim_seconds >= report.baseline_seconds


def test_campaign_is_deterministic():
    a = run_campaign(_small_cfg())
    b = run_campaign(_small_cfg())
    assert a.results == b.results  # frozen dataclasses: exact equality
    assert a.baseline_seconds == b.baseline_seconds


def test_scenario_draws_respect_the_loss_budget():
    cfg = _small_cfg(scenarios=64, max_losses=2)
    for index in range(cfg.scenarios):
        node_plan, disk_plan, labels, degraded = _draw_scenario(
            cfg, index, window=1.0
        )
        destructive = len(labels)
        assert 1 <= destructive <= cfg.loss_budget
        victims = []
        if node_plan is not None:
            victims += list(node_plan.crash_at)
        victims += list(disk_plan.lose_at) + list(disk_plan.corrupt_at)
        assert len(victims) == destructive
        assert len(set(victims)) == destructive  # distinct ranks
        for when in (
            list((node_plan.crash_at if node_plan else {}).values())
            + list(disk_plan.lose_at.values())
            + list(disk_plan.corrupt_at.values())
        ):
            assert 0.0 < when < 1.0  # inside the traversal window
        for factor in disk_plan.degrade.values():
            assert factor > 1.0  # degradation slows, never destroys


def test_campaign_report_renders_and_serialises():
    tel = Telemetry()
    report = run_campaign(_small_cfg(scenarios=2), telemetry=tel)
    text = report.render()
    assert "verdict OK" in text
    assert "RS(4,2)" in text
    doc = json.loads(report.to_json())
    assert doc["ok"] is True
    assert doc["aborted"] == 0
    assert len(doc["scenarios"]) == 2
    assert doc["config"]["seed"] == 7
    # Telemetry: one span per scenario, outcome-labeled counters.
    assert len(tel.spans.by_category("chaos-scenario")) == 2
    total = sum(
        value
        for key, value in tel.metrics.snapshot().items()
        if key.startswith("chaos_scenarios{")
    )
    assert total == 2


def test_chaos_config_validation():
    with pytest.raises(ConfigError, match="scenario"):
        ChaosConfig(scenarios=0)
    with pytest.raises(ConfigError, match="max_losses"):
        ChaosConfig(max_losses=0)
    with pytest.raises(ConfigError, match="probability"):
        ChaosConfig(degrade_probability=1.5)
    assert ChaosConfig(max_losses=5, parity_shards=2).loss_budget == 2
