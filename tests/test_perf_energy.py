"""Energy model tests."""

import pytest

from repro.errors import ConfigError
from repro.perf.energy import EnergyModel, EnergyParams

model = EnergyModel()


def test_totals_and_metrics_positive():
    e = model.evaluate(4096, 16e6, "relay-cpe")
    assert e.total_joules > 0
    assert e.nanojoules_per_edge > 0
    assert e.gteps_per_megawatt > 0
    assert e.total_joules == pytest.approx(
        e.static_joules + e.dram_joules + e.network_joules + e.messaging_joules
    )


def test_static_power_dominates_at_scale():
    """375 W x 40k nodes x ~0.8 s dwarfs the picojoule data terms — the
    standard HPC reality: time *is* energy, so faster is greener."""
    e = model.evaluate(40_768, 26.2e6, "relay-cpe")
    assert e.static_joules > 5 * (e.dram_joules + e.network_joules)


def test_cpe_variant_is_greener_than_mpe():
    cpe = model.evaluate(4096, 16e6, "relay-cpe")
    mpe = model.evaluate(4096, 16e6, "relay-mpe")
    assert cpe.nanojoules_per_edge < mpe.nanojoules_per_edge
    assert cpe.gteps_per_megawatt > mpe.gteps_per_megawatt


def test_energy_per_edge_improves_with_per_node_data():
    small = model.evaluate(4096, 1.6e6)
    large = model.evaluate(4096, 26.2e6)
    assert large.nanojoules_per_edge < small.nanojoules_per_edge


def test_crashing_config_rejected():
    with pytest.raises(ConfigError):
        model.evaluate(16_384, 16e6, "direct-mpe")


def test_params_validated():
    with pytest.raises(ConfigError):
        EnergyParams(node_static_watts=0)


def test_headline_power_is_machine_scale():
    """Implied power draw of the full machine sits in the megawatt range
    the Top500 entry reports (~15 MW)."""
    e = model.evaluate(40_768, 26.2e6)
    watts = e.total_joules / e.point.total_seconds
    assert 10e6 < watts < 25e6
