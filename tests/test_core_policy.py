"""Direction-policy tests (Beamer heuristic with hysteresis)."""

import pytest

from repro.core import Direction, TraversalPolicy
from repro.errors import ConfigError


def test_starts_top_down():
    p = TraversalPolicy()
    assert p.state is Direction.TOP_DOWN
    assert p.decide(1, 10, 10_000_000, 1_000_000) is Direction.TOP_DOWN


def test_switches_to_bottom_up_on_heavy_frontier():
    p = TraversalPolicy(alpha=14)
    # m_f > m_u / alpha triggers the switch.
    assert p.decide(1000, 2000, 14_000, 10_000) is Direction.BOTTOM_UP


def test_switches_back_on_small_frontier():
    p = TraversalPolicy(alpha=14, beta=24)
    p.decide(1000, 2000, 14_000, 10_000)
    assert p.state is Direction.BOTTOM_UP
    # Stays bottom-up while the frontier is sizeable...
    assert p.decide(5000, 1, 1, 10_000) is Direction.BOTTOM_UP
    # ...returns to top-down when n_f < n / beta.
    assert p.decide(100, 1, 1, 10_000) is Direction.TOP_DOWN


def test_hysteresis_keeps_state():
    p = TraversalPolicy(alpha=14, beta=24)
    p.decide(1000, 2000, 14_000, 10_000)  # -> bottom-up
    # A frontier that wouldn't trigger the TD->BU switch doesn't flip back
    # unless the BU->TD rule fires.
    assert p.decide(1000, 1, 10**9, 10_000) is Direction.BOTTOM_UP


def test_disabled_policy_always_top_down():
    p = TraversalPolicy(enabled=False)
    assert p.decide(1000, 10**9, 1, 10_000) is Direction.TOP_DOWN


def test_reset():
    p = TraversalPolicy()
    p.decide(1000, 2000, 14_000, 10_000)
    p.reset()
    assert p.state is Direction.TOP_DOWN


def test_validation():
    with pytest.raises(ConfigError):
        TraversalPolicy(alpha=0)
    p = TraversalPolicy()
    with pytest.raises(ConfigError):
        p.decide(-1, 0, 0, 10)
