"""Hub directory tests."""

import numpy as np

from repro.graph import CSRGraph, Partition1D
from repro.graph.generators import star_edges
from repro.graph import KroneckerGenerator
from repro.core.hubs import HubDirectory


def make_directory(hubs_per_node=4, scale=10, parts=4):
    edges = KroneckerGenerator(scale=scale, seed=3).generate()
    graph = CSRGraph.from_edges(edges)
    partition = Partition1D(graph.num_vertices, parts, mode="block")
    return graph, partition, HubDirectory(graph, partition, hubs_per_node)


def test_hubs_are_top_degree_per_node():
    graph, partition, hubs = make_directory(hubs_per_node=4)
    degrees = graph.degrees()
    for part in range(partition.num_parts):
        owned = partition.global_ids(part)
        owned_hubs = [int(h) for h in hubs.hub_ids if partition.owner(int(h)) == part]
        assert len(owned_hubs) <= 4
        if owned_hubs:
            worst_hub_degree = min(degrees[h] for h in owned_hubs)
            non_hubs = np.setdiff1d(owned, owned_hubs)
            assert worst_hub_degree >= degrees[non_hubs].max() or len(non_hubs) == 0


def test_zero_degree_vertices_never_hubs():
    graph, _, hubs = make_directory(hubs_per_node=1000)
    assert np.all(graph.degrees()[hubs.hub_ids] > 0)


def test_slot_lookup_roundtrip():
    _, _, hubs = make_directory()
    for slot, v in enumerate(hubs.hub_ids):
        assert hubs.slot_of[v] == slot
    assert np.all(hubs.slot_of[hubs.slot_of >= 0] < hubs.num_hubs)


def test_frontier_update_and_queries():
    graph, _, hubs = make_directory(hubs_per_node=4)
    frontier = hubs.hub_ids[:3]
    count = hubs.update_frontier(frontier)
    assert count == 3
    assert hubs.hub_in_frontier(frontier).all()
    assert hubs.hub_visited(frontier).all()
    others = hubs.hub_ids[3:]
    if len(others):
        assert not hubs.hub_in_frontier(others).any()
    # Non-hub vertices always answer False.
    non_hub = np.flatnonzero(hubs.slot_of < 0)[:5]
    assert not hubs.hub_in_frontier(non_hub).any()


def test_visited_accumulates_across_levels():
    _, _, hubs = make_directory(hubs_per_node=4)
    hubs.update_frontier(hubs.hub_ids[:1])
    hubs.update_frontier(hubs.hub_ids[1:2])
    assert hubs.hub_visited(hubs.hub_ids[:2]).all()
    assert not hubs.hub_in_frontier(hubs.hub_ids[:1]).any()  # frontier moved on


def test_reset():
    _, _, hubs = make_directory()
    hubs.update_frontier(hubs.hub_ids[:2])
    hubs.reset()
    assert hubs.frontier.count() == 0
    assert hubs.visited.count() == 0


def test_allgather_bytes_flag_when_empty():
    _, partition, hubs = make_directory()
    assert hubs.allgather_bytes(empty=True) == partition.num_parts
    assert hubs.allgather_bytes(empty=False) == -(-hubs.num_hubs // 8)


def test_star_graph_hub_is_the_center():
    edges = star_edges(64)
    graph = CSRGraph.from_edges(edges)
    partition = Partition1D(64, 4, mode="block")
    hubs = HubDirectory(graph, partition, 1)
    assert 0 in hubs.hub_ids.tolist()
