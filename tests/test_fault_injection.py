"""Fault-injection tests: duplicate tolerance, loss detection, delays."""

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS
from repro.errors import ConfigError, ValidationError
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.reference import reference_depths
from repro.graph500.validate import validate_bfs_result
from repro.sim.faults import FaultInjector, FaultPlan

CFG = BFSConfig(hub_count_topdown=16, hub_count_bottomup=16)


def make_bfs(seed=41):
    edges = KroneckerGenerator(scale=10, seed=seed).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    bfs = DistributedBFS(edges, 8, config=CFG, nodes_per_super_node=4)
    return edges, graph, root, bfs


def test_duplicated_messages_are_harmless():
    """Handler idempotence: duplicating every 3rd data message changes
    nothing about the result (only the simulated cost)."""
    edges, graph, root, clean_bfs = make_bfs()
    clean = clean_bfs.run(root)
    _, _, _, bfs = make_bfs()
    plan = FaultPlan(duplicate=set(range(0, 10_000, 3)), tag_prefix="fwd")
    injector = FaultInjector(bfs.cluster, plan)
    result = bfs.run(root)
    assert injector.duplicated > 0
    validate_bfs_result(graph, edges, root, result.parent)
    assert np.array_equal(result.depths(), clean.depths())
    assert result.stats["messages"] > clean.stats["messages"]


def test_dropped_record_message_fails_validation():
    """Losing a data message silently corrupts the tree — and the
    Graph500 rules catch it."""
    edges, graph, root, bfs = make_bfs(seed=43)
    # Drop one mid-traversal forward message (ordinal found empirically to
    # carry records that matter; sweep a few in case one was redundant).
    for ordinal in (5, 9, 13, 17):
        _, _, _, bfs = make_bfs(seed=43)
        plan = FaultPlan(drop={ordinal}, tag_prefix="fwd")
        injector = FaultInjector(bfs.cluster, plan)
        result = bfs.run(root)
        if injector.dropped == 0:
            continue
        try:
            validate_bfs_result(graph, edges, root, result.parent)
        except ValidationError:
            return  # caught, as required
    pytest.fail("no dropped message produced a detectable corruption")


def test_delayed_messages_only_cost_time():
    edges, graph, root, clean_bfs = make_bfs(seed=47)
    clean = clean_bfs.run(root)
    _, _, _, bfs = make_bfs(seed=47)
    plan = FaultPlan(delay={i: 5e-5 for i in range(0, 200, 7)}, tag_prefix="fwd")
    injector = FaultInjector(bfs.cluster, plan)
    result = bfs.run(root)
    assert injector.delayed > 0
    validate_bfs_result(graph, edges, root, result.parent)
    assert np.array_equal(result.depths(), reference_depths(graph, root))
    assert result.sim_seconds > clean.sim_seconds


def test_tag_prefix_filters():
    _, _, root, bfs = make_bfs(seed=49)
    plan = FaultPlan(drop={0, 1, 2}, tag_prefix="eol")  # only markers
    injector = FaultInjector(bfs.cluster, plan)
    result = bfs.run(root)
    assert injector.dropped == 3
    # Dropping termination markers never hurts correctness (they carry no
    # data; quiescence detection is the driver's).
    assert result.levels >= 1


def test_uninstall_restores_clean_path():
    _, _, root, bfs = make_bfs(seed=51)
    injector = FaultInjector(bfs.cluster, FaultPlan(drop={0}, tag_prefix="fwd"))
    injector.uninstall()
    bfs.run(root)
    assert injector.dropped == 0


def test_plan_validation():
    with pytest.raises(ConfigError):
        FaultPlan(delay={0: -1.0})
