"""Analytic cost-model tests: every Figure 11/12 shape claim as an assertion."""

import math

import pytest

from repro.errors import ConfigError
from repro.perf import CostModel, PerfParams, ScalingModel, TABLE2_PUBLISHED
from repro.perf.scaling import (
    FIG11_NODE_COUNTS,
    FIG12_VERTICES_PER_NODE,
    PAPER_HEADLINE_GTEPS,
)

model = ScalingModel()


# ----------------------------------------------------------------- headline --
def test_headline_within_20_percent_of_paper():
    h = model.headline()
    assert h.ok
    assert abs(h.gteps - PAPER_HEADLINE_GTEPS) / PAPER_HEADLINE_GTEPS < 0.20


def test_headline_breakdown_sums_to_total():
    h = model.headline()
    b = h.breakdown
    expected = (
        max(b["compute"], b["inject"], b["central"])
        + b["messages"] + b["sync"] + b["straggle"] + b["allgather"]
    )
    assert h.total_seconds == pytest.approx(expected)


# ----------------------------------------------------------------- figure 11 --
def test_fig11_direct_cpe_crashes_past_256_nodes():
    series = model.fig11_series("direct-cpe")
    by_nodes = {p.nodes: p for p in series}
    assert by_nodes[64].ok and by_nodes[256].ok
    assert by_nodes[1024].crashed == "spm-overflow"
    assert by_nodes[40768].crashed == "spm-overflow"


def test_fig11_direct_mpe_crashes_at_16384_nodes():
    series = model.fig11_series("direct-mpe")
    by_nodes = {p.nodes: p for p in series}
    assert by_nodes[4096].ok
    assert by_nodes[16384].crashed == "connection-memory"
    assert by_nodes[16384].gteps == 0.0
    assert not math.isfinite(by_nodes[16384].total_seconds)


def test_fig11_relay_variants_survive_the_full_machine():
    for variant in ("relay-cpe", "relay-mpe"):
        assert all(p.ok for p in model.fig11_series(variant))


def test_fig11_cpe_is_roughly_ten_times_mpe():
    """"Properly used CPE clusters can improve performance by a factor of 10"."""
    for nodes in FIG11_NODE_COUNTS:
        cpe = model.fig11_point("relay-cpe", nodes)
        mpe = model.fig11_point("relay-mpe", nodes)
        assert 5 < cpe.gteps / mpe.gteps < 20


def test_fig11_direct_cpe_beats_relay_cpe_at_small_scale():
    """"The shuffling ... has a better performance for up to 256 nodes"."""
    for nodes in (64, 256):
        direct = model.fig11_point("direct-cpe", nodes)
        relay = model.fig11_point("relay-cpe", nodes)
        assert direct.gteps >= relay.gteps


def test_fig11_relay_cpe_scales_monotonically():
    series = model.fig11_series("relay-cpe")
    gteps = [p.gteps for p in series]
    assert all(b > a for a, b in zip(gteps, gteps[1:]))


# ----------------------------------------------------------------- figure 12 --
def test_fig12_weak_scaling_is_near_linear():
    for vpn in FIG12_VERTICES_PER_NODE:
        series = model.fig12_series(vpn)
        first, last = series[0], series[-1]
        node_ratio = last.nodes / first.nodes
        gteps_ratio = last.gteps / first.gteps
        # Within ~4x of perfectly linear over ~500x more nodes.
        assert gteps_ratio > node_ratio / 4.5
        gteps = [p.gteps for p in series]
        assert all(b > a for a, b in zip(gteps, gteps[1:]))


def test_fig12_larger_per_node_sizes_win_at_full_machine():
    """"the result of 26.2M is nearly four times that of 6.5M, with the same
    gap between 6.5M and 1.6M"."""
    full = {vpn: model.fig12_series(vpn)[-1].gteps for vpn in FIG12_VERTICES_PER_NODE}
    ratio_small = full[6.5e6] / full[1.6e6]
    ratio_large = full[26.2e6] / full[6.5e6]
    assert 2.0 < ratio_small < 5.0
    assert 2.0 < ratio_large < 5.0


def test_fig12_lines_share_a_similar_starting_point():
    """"the lines share a similar starting point" (within ~an order)."""
    starts = [model.fig12_series(vpn)[0].gteps for vpn in FIG12_VERTICES_PER_NODE]
    assert max(starts) / min(starts) < 12


# ------------------------------------------------------------------- table 2 --
def test_table2_contains_the_published_rows():
    assert len(TABLE2_PUBLISHED) == 8
    by_author = {r.authors: r for r in TABLE2_PUBLISHED}
    assert by_author["Present Work"].gteps == PAPER_HEADLINE_GTEPS
    assert by_author["K Computer"].gteps == 38_621.4
    assert by_author["Checconi"].scale == 40


def test_reproduced_number_is_best_heterogeneous():
    """The paper's claim: best among heterogeneous machines, second overall."""
    ours = model.headline().gteps
    hetero = [r.gteps for r in TABLE2_PUBLISHED
              if r.heterogeneous and r.authors != "Present Work"]
    assert all(ours > g for g in hetero)
    better = [r for r in TABLE2_PUBLISHED
              if r.authors != "Present Work" and r.gteps > ours]
    assert [r.authors for r in better] == ["K Computer"]


def test_table2_rows_attach_our_number():
    rows = model.table2_rows()
    ours = [measured for row, measured in rows if row.authors == "Present Work"]
    assert ours[0] == pytest.approx(model.headline().gteps)
    assert all(m is None for row, m in rows if row.authors != "Present Work")


# ------------------------------------------------------------------ mechanics --
def test_ablation_hooks_change_fractions():
    cost = CostModel()
    base = cost.evaluate(1024, 16e6, "relay-cpe")
    from repro.core import BFSConfig

    no_hubs = cost.evaluate(
        1024, 16e6, BFSConfig(use_hub_prefetch=False)
    )
    plain = cost.evaluate(
        1024, 16e6,
        BFSConfig(direction_optimizing=False, use_hub_prefetch=False),
    )
    assert base.gteps > no_hubs.gteps > plain.gteps


def test_single_node_has_no_network_terms():
    p = CostModel().evaluate(1, 1e6, "relay-cpe")
    assert p.ok
    assert p.breakdown["inject"] == 0
    assert p.breakdown["messages"] == 0
    assert p.breakdown["allgather"] == 0


def test_intra_super_node_sweep_has_no_central_term():
    p = CostModel().evaluate(256, 16e6, "relay-cpe")
    assert p.breakdown["central"] == 0


def test_validation():
    with pytest.raises(ConfigError):
        CostModel().evaluate(0, 1e6)
    with pytest.raises(ConfigError):
        CostModel().evaluate(8, 0)


def test_params_epochs():
    p = PerfParams()
    assert p.epochs == p.levels + p.bottomup_levels * (p.bottomup_subrounds - 1)
    assert p.trunk_rate_per_super_node == pytest.approx(256 * 1.2e9 / 4)
