"""Deliberately nondeterministic module — every lint rule fires here.

Never imported; linted by tests/test_sanitizers_lint.py with the
``sim-core`` scope forced (REP101-REP107) and again with the ``service``
scope (REP108), to prove ``repro lint`` rejects each hazard class and
exits nonzero.
"""

import heapq
import random
import time
from dataclasses import dataclass


def wall_clock() -> float:
    return time.perf_counter()  # REP101: host clock in simulated code


def stray_draw() -> float:
    return random.random()  # REP102: global RNG outside sim.rng


def hash_ordered(items: list[int]) -> list[int]:
    out = []
    for x in set(items):  # REP103: hash-ordered iteration
        out.append(x)
    return out


def merged(a: list[int], b: list[int]) -> list[int]:
    return sorted(set(a) | set(b))  # REP104: set union merge


@dataclass
class HotPathMessage:  # REP105: hot dataclass without slots=True
    src: int
    dst: int
    payload: bytes


def smuggle_event(engine, fn) -> None:
    # REP106: pushing straight into a partition lane bypasses the
    # channel API's lookahead validation and drain-bound update.
    heapq.heappush(engine._lanes[1], [0.0, 0, fn, ()])


class LaneCallback:
    def on_message(self, count: int) -> None:
        # REP107: mutating shared cluster state from a compute-lane
        # callback bypasses the drain journal; parallel drain workers
        # race on the read-modify-write.
        self.cluster.records_sent += count


def rogue_query(edges):
    # REP108: kernel construction inside repro.service outside the
    # catalog module bypasses entry pinning and the result cache.
    from repro.baselines import make_variant

    return make_variant("relay-cpe", edges, 4).run(0)


def leaky_critical_section(lock, work) -> None:
    # REP109: a bare acquire leaks the lock when work() raises; the
    # next taker deadlocks. Use 'with lock:' or release in a finally.
    lock.acquire()
    work()
    lock.release()
