"""Seed for REP203: blocking socket I/O under a catalog fast lock.

``FrontCatalog._lock`` is a fast lock by the analyzer's policy (a
``_lock`` attribute on a ``*Catalog`` class — the kind every admission
and lookup crosses). ``publish`` blocks under it directly;
``publish_all`` blocks through a call hop (``_flush``), which only the
transitive pass can see.
"""

import threading


class FrontCatalog:
    def __init__(self, sock):
        self._lock = threading.Lock()
        self._entries = {}
        self._sock = sock

    def publish(self, payload):
        # SEED REP203 (direct): socket send while holding the fast lock.
        with self._lock:
            self._sock.sendall(payload)

    def publish_all(self, payloads):
        # SEED REP203 (one hop deep): _flush blocks on the socket.
        with self._lock:
            for payload in payloads:
                self._stage(payload)
            self._flush()

    def _stage(self, payload):
        self._entries[len(self._entries)] = payload

    def _flush(self):
        self._sock.sendall(b"".join(self._entries.values()))
        self._entries.clear()
