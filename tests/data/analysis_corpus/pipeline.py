"""Seed for REP201: an unjournaled shared-state mutation hidden one
call hop below a registered delivery route.

``install`` registers ``Relay._deliver`` as a drain root; ``_deliver``
itself is innocent, but it calls ``_bump``, which mutates engine state
through the shared handle without going through the journal API. The
syntactic REP107 lint cannot see this (the store and the registration
live in different functions); the interprocedural pass must.
"""


class Relay:
    def __init__(self, engine):
        self.engine = engine

    def _deliver(self, src, dst, msg):
        self._bump(msg)

    def _bump(self, msg):
        # SEED REP201: raced under parallel drain; should be
        # self.engine.journal.fold_add("delivered", 1).
        self.engine.delivered += 1


def install(engine):
    engine.register_delivery(Relay._deliver)
