"""Seed for REP204: effect declarations the bodies contradict.

One finding per shape: a ``pure`` function that stores through an
attribute, a ``journaled`` function that never touches the journal, a
``locked:`` function that does not acquire the named lock, and an
effect comment naming an unknown spec.
"""

import threading

from repro.analysis.effects import effects


class Ledger:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    @effects("pure")
    def add(self, amount):
        # SEED REP204: declared pure, stores through self.
        self.total += amount
        return self.total

    def tally(self, amount):  # repro: effect=journaled
        # SEED REP204: declared journaled, never touches the journal.
        return self.total + amount

    @effects("locked:Ledger._lock")
    def peek(self):
        # SEED REP204: declared locked, acquires nothing.
        return self.total

    def snapshot(self):  # repro: effect=frozen
        # SEED REP204: 'frozen' is not a recognised effect spec.
        return dict(total=self.total)
