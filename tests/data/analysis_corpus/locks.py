"""Seed for REP202: a two-lock acquisition-order cycle.

``MirrorCatalog.refresh`` takes the catalog lock and then calls into
the cache (cache lock); ``MirrorCache.evict`` takes the cache lock and
then calls back into the catalog (catalog lock). Either order alone is
fine; together they deadlock the moment two threads walk the cycle
from different ends.
"""

import threading


class MirrorCatalog:
    def __init__(self, cache):
        self._lock = threading.Lock()
        self._entries = {}
        self.cache = cache

    def refresh(self):
        # SEED REP202 (first half): catalog lock -> cache lock.
        with self._lock:
            self._entries.clear()
            self.cache.invalidate_all()

    def entry_count(self):
        with self._lock:
            return len(self._entries)


class MirrorCache:
    def __init__(self, catalog):
        self._lock = threading.Lock()
        self._values = {}
        self.catalog = catalog

    def invalidate_all(self):
        with self._lock:
            self._values.clear()

    def evict(self):
        # SEED REP202 (second half): cache lock -> catalog lock.
        with self._lock:
            if self.catalog.entry_count() == 0:
                self._values.clear()
