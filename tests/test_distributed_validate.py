"""Distributed validator tests: agrees with the sequential rules."""

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS
from repro.errors import ConfigError, ValidationError
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph.generators import ring_edges
from repro.graph500.distributed_validate import DistributedValidator
from repro.graph500.reference import reference_bfs, reference_depths

CFG = BFSConfig(hub_count_topdown=16, hub_count_bottomup=16)


def make_case(scale=9, seed=3):
    edges = KroneckerGenerator(scale=scale, seed=seed).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    parent = reference_bfs(graph, root)
    return edges, graph, root, parent


def test_accepts_reference_result_with_exact_depths():
    edges, graph, root, parent = make_case()
    validator = DistributedValidator(edges, 4, config=CFG, nodes_per_super_node=2)
    result = validator.validate(root, parent)
    assert np.array_equal(result.depth, reference_depths(graph, root))
    assert result.sim_seconds > 0
    assert result.supersteps >= 1


def test_accepts_distributed_bfs_output():
    edges, graph, root, _ = make_case(seed=5)
    bfs = DistributedBFS(edges, 8, config=CFG, nodes_per_super_node=4)
    run = bfs.run(root)
    validator = DistributedValidator(edges, 8, config=CFG, nodes_per_super_node=4)
    result = validator.validate(root, run.parent)
    assert np.array_equal(result.depth, run.depths())


def test_rejects_cycle():
    edges, graph, root, parent = make_case(seed=7)
    bad = parent.copy()
    # A genuine 2-cycle over a real edge (so rule 5 passes): a <-> b.
    reached = np.flatnonzero((bad >= 0) & (np.arange(len(bad)) != root))
    for a in reached:
        for b in graph.neighbors(int(a)):
            if b != root and bad[b] >= 0 and b != a:
                bad[a], bad[b] = b, a
                break
        else:
            continue
        break
    validator = DistributedValidator(edges, 4, config=CFG, nodes_per_super_node=2)
    with pytest.raises(ValidationError, match="rule 1"):
        validator.validate(root, bad)


def test_rejects_non_edge_parent():
    edges = ring_edges(16)
    parent = reference_bfs(CSRGraph.from_edges(edges), 0)
    bad = parent.copy()
    bad[5] = 1  # 1 is not adjacent to 5 on a ring
    validator = DistributedValidator(edges, 4, config=CFG, nodes_per_super_node=2)
    with pytest.raises(ValidationError, match="rule 5"):
        validator.validate(0, bad)


def test_rejects_unreached_component_vertex():
    edges, _, root, parent = make_case(seed=9)
    bad = parent.copy()
    reached = np.flatnonzero((bad >= 0) & (np.arange(len(bad)) != root))
    leaves = np.setdiff1d(reached, bad)
    bad[leaves[0]] = -1
    validator = DistributedValidator(edges, 4, config=CFG, nodes_per_super_node=2)
    with pytest.raises(ValidationError, match="rule 4|rule 1"):
        validator.validate(root, bad)


def test_rejects_non_bfs_depths():
    """A valid tree that is not breadth-first trips the level-span rule."""
    edges = ring_edges(8)
    parent = np.array([0, 0, 1, 2, 3, 4, 5, 6])  # the long way round
    validator = DistributedValidator(edges, 2, config=CFG, nodes_per_super_node=2)
    with pytest.raises(ValidationError, match="rule 3"):
        validator.validate(0, parent)


def test_rejects_bad_root_and_shapes():
    edges = ring_edges(8)
    parent = reference_bfs(CSRGraph.from_edges(edges), 0)
    validator = DistributedValidator(edges, 2, config=CFG, nodes_per_super_node=2)
    with pytest.raises(ConfigError):
        validator.validate(99, parent)
    with pytest.raises(ConfigError):
        validator.validate(0, parent[:-1])
    shifted = parent.copy()
    shifted[0] = 1
    with pytest.raises(ValidationError, match="rule 1"):
        validator.validate(0, shifted)
    oob = parent.copy()
    oob[3] = 99
    with pytest.raises(ValidationError, match="rule 1"):
        validator.validate(0, oob)


def test_depth_resolution_rounds_scale_with_tree_height():
    edges = ring_edges(32)  # height ~16 tree from any root
    parent = reference_bfs(CSRGraph.from_edges(edges), 0)
    validator = DistributedValidator(edges, 4, config=CFG, nodes_per_super_node=2)
    result = validator.validate(0, parent)
    assert result.supersteps >= 16
