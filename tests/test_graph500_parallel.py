"""Multi-root parallel execution: parity, determinism, fallbacks."""

import pytest

from repro import Graph500Runner
from repro.core import BFSConfig
from repro.errors import ConfigError
from repro.graph500.parallel import fork_available

CFG = BFSConfig(hub_count_topdown=8, hub_count_bottomup=8)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="parallel root execution requires os.fork"
)


def _assert_rows_match(seq, par, seconds_rel=1e-9):
    assert len(seq.runs) == len(par.runs)
    for a, b in zip(seq.runs, par.runs):
        assert a.root == b.root
        assert a.traversed_edges == b.traversed_edges
        assert a.levels == b.levels
        assert a.validated == b.validated
        assert a.failure == b.failure
        # Simulated seconds agree to round-off: the sequential path measures
        # each span against a clock advanced by earlier roots.
        assert b.seconds == pytest.approx(a.seconds, rel=seconds_rel)


def test_workers_match_sequential_row_for_row():
    kw = dict(scale=9, nodes=4, seed=3, config=CFG, nodes_per_super_node=2)
    seq = Graph500Runner(**kw).run(num_roots=4)
    par = Graph500Runner(workers=2, **kw).run(num_roots=4)
    _assert_rows_match(seq, par)
    assert par.all_validated
    assert par.gteps == pytest.approx(seq.gteps, rel=1e-9)
    assert set(par.extra) == set(seq.extra)


def test_parallel_runs_are_deterministic():
    kw = dict(scale=9, nodes=4, seed=3, config=CFG, workers=3)
    r1 = Graph500Runner(**kw).run(num_roots=5)
    r2 = Graph500Runner(**kw).run(num_roots=5)
    for a, b in zip(r1.runs, r2.runs):
        assert (a.root, a.traversed_edges, a.levels, a.seconds) == (
            b.root, b.traversed_edges, b.levels, b.seconds
        )


def test_more_workers_than_roots():
    kw = dict(scale=8, nodes=2, seed=1, config=CFG)
    seq = Graph500Runner(**kw).run(num_roots=2)
    par = Graph500Runner(workers=16, **kw).run(num_roots=2)
    _assert_rows_match(seq, par)


def test_single_root_stays_sequential():
    runner = Graph500Runner(scale=8, nodes=2, config=CFG, workers=4)
    assert runner._effective_workers(num_roots=1) == 1
    report = runner.run(num_roots=1)
    assert len(report.runs) == 1 and report.all_validated


def test_fault_configs_fall_back_to_sequential():
    from repro.sim.faults import RandomFaultPlan

    plan = RandomFaultPlan(drop_rate=0.01, seed=5)
    runner = Graph500Runner(
        scale=8, nodes=2, config=CFG, workers=4, fault_plan=plan
    )
    assert runner._effective_workers(num_roots=4) == 1


def test_resilience_configs_fall_back_to_sequential():
    from repro.resilience.config import ResilienceConfig

    runner = Graph500Runner(
        scale=8, nodes=2, config=CFG, workers=4,
        resilience=ResilienceConfig(reliable_transport=True),
    )
    assert runner._effective_workers(num_roots=4) == 1


def test_parallel_distributed_validation():
    kw = dict(scale=9, nodes=4, seed=3, config=CFG, validate="distributed")
    seq = Graph500Runner(**kw).run(num_roots=3)
    par = Graph500Runner(workers=2, **kw).run(num_roots=3)
    _assert_rows_match(seq, par)
    assert par.extra["validation_seconds"] == pytest.approx(
        seq.extra["validation_seconds"], rel=1e-9
    )


def test_workers_validation():
    with pytest.raises(ConfigError):
        Graph500Runner(scale=8, nodes=2, workers=0)


def test_cli_workers_flag(capsys):
    from repro.cli import main

    code = main(
        ["graph500", "--scale", "8", "--nodes", "2", "--roots", "2",
         "--workers", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "all validated" in out
