"""Benchmark suite + full-benchmark-time model tests."""

import pytest

from repro.core import BFSConfig
from repro.errors import ConfigError
from repro.graph500.suite import BenchmarkSuite, SuiteCase
from repro.perf import ScalingModel

CFG = BFSConfig(hub_count_topdown=8, hub_count_bottomup=8)


def test_suite_runs_matrix_and_renders():
    suite = BenchmarkSuite(
        cases=[
            SuiteCase(scale=8, nodes=2),
            SuiteCase(scale=8, nodes=4, variant="direct-mpe"),
            SuiteCase(scale=9, nodes=4),
        ],
        num_roots=2,
        config=CFG,
        nodes_per_super_node=2,
    )
    results = suite.run()
    assert len(results) == 3
    assert all(r.ok for r in results)
    out = suite.table()
    assert "direct-mpe" in out
    assert "ok" in out


def test_suite_captures_crashes_as_rows():
    # direct-cpe at 1,024 nodes dies of SPM overflow at construction.
    suite = BenchmarkSuite(
        cases=[SuiteCase(scale=11, nodes=1024, variant="direct-cpe")],
        num_roots=1,
        config=CFG,
        nodes_per_super_node=256,
    )
    results = suite.run()
    assert not results[0].ok
    assert "SPM" in results[0].crashed
    assert "CRASH" in suite.table()


def test_empty_suite_rejected():
    with pytest.raises(ConfigError):
        BenchmarkSuite(cases=[]).run()


def test_full_benchmark_time_breakdown():
    model = ScalingModel()
    t = model.full_benchmark_time()
    assert set(t) == {"generate", "construct", "kernel", "validate", "total"}
    assert t["total"] == pytest.approx(
        t["generate"] + t["construct"] + t["kernel"] + t["validate"]
    )
    # 64 kernel runs dominate generation at headline scale, and the whole
    # benchmark completes in simulated minutes, not hours.
    assert t["kernel"] > t["generate"]
    assert 30 < t["total"] < 600


def test_full_benchmark_scales_with_roots():
    model = ScalingModel()
    few = model.full_benchmark_time(num_roots=4)
    many = model.full_benchmark_time(num_roots=64)
    assert many["kernel"] == pytest.approx(16 * few["kernel"])
    assert many["generate"] == few["generate"]
