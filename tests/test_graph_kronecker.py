"""Kronecker generator tests: determinism, shape, power-law skew."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import KroneckerGenerator


def test_edge_and_vertex_counts():
    gen = KroneckerGenerator(scale=10, edge_factor=16, seed=7)
    e = gen.generate()
    assert gen.num_vertices == 1024
    assert e.num_vertices == 1024
    assert e.num_edges == 16 * 1024


def test_deterministic_per_seed():
    a = KroneckerGenerator(scale=8, seed=3).generate()
    b = KroneckerGenerator(scale=8, seed=3).generate()
    assert np.array_equal(a.src, b.src)
    assert np.array_equal(a.dst, b.dst)


def test_different_seeds_differ():
    a = KroneckerGenerator(scale=8, seed=3).generate()
    b = KroneckerGenerator(scale=8, seed=4).generate()
    assert not (np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst))


def test_degree_distribution_is_heavily_skewed():
    """Power law: the top 1% of vertices should hold a large share of edges."""
    e = KroneckerGenerator(scale=12, seed=1).generate()
    deg = np.sort(e.undirected_degrees())[::-1]
    top = max(1, len(deg) // 100)
    share = deg[:top].sum() / deg.sum()
    assert share > 0.10
    # And many vertices are isolated or near-isolated — the small-message
    # problem the paper builds group batching for.
    assert (deg <= 1).sum() > len(deg) * 0.05


def test_permutation_destroys_block_structure():
    """Without permutation, low ids are hot (A=0.57); with it, they aren't."""
    hot = KroneckerGenerator(scale=10, seed=1, permute_vertices=False).generate()
    cold = KroneckerGenerator(scale=10, seed=1, permute_vertices=True).generate()
    n = hot.num_vertices
    low_share_hot = ((hot.src < n // 4).sum() + (hot.dst < n // 4).sum()) / (
        2 * hot.num_edges
    )
    low_share_cold = ((cold.src < n // 4).sum() + (cold.dst < n // 4).sum()) / (
        2 * cold.num_edges
    )
    assert low_share_hot > 0.5  # raw R-MAT concentrates in the first quadrant
    assert abs(low_share_cold - low_share_hot) > 0.1


def test_validation():
    with pytest.raises(ConfigError):
        KroneckerGenerator(scale=0)
    with pytest.raises(ConfigError):
        KroneckerGenerator(scale=10, edge_factor=0)
    with pytest.raises(ConfigError):
        KroneckerGenerator(scale=10, initiator=(0.5, 0.5, 0.5, 0.5))


def test_describe_mentions_scale():
    assert "scale=10" in KroneckerGenerator(scale=10).describe()
