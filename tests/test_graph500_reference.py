"""Reference BFS + depths-from-parents tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import CSRGraph, EdgeList
from repro.graph.generators import grid_edges, ring_edges, star_edges
from repro.graph import KroneckerGenerator
from repro.graph500.reference import (
    depths_from_parents,
    reference_bfs,
    reference_depths,
)


def test_bfs_on_ring():
    g = CSRGraph.from_edges(ring_edges(6))
    parent = reference_bfs(g, 0)
    depth = reference_depths(g, 0)
    assert parent[0] == 0
    assert depth.tolist() == [0, 1, 2, 3, 2, 1]
    assert np.array_equal(depths_from_parents(parent, 0), depth)


def test_bfs_on_disconnected_graph():
    e = EdgeList(np.array([0, 2]), np.array([1, 3]), 5)
    g = CSRGraph.from_edges(e)
    parent = reference_bfs(g, 0)
    assert parent[0] == 0 and parent[1] == 0
    assert parent[2] == parent[3] == parent[4] == -1
    depth = reference_depths(g, 0)
    assert depth.tolist() == [0, 1, -1, -1, -1]


def test_bfs_on_star_from_leaf():
    g = CSRGraph.from_edges(star_edges(8))
    depth = reference_depths(g, 5)
    assert depth[5] == 0 and depth[0] == 1
    others = [depth[v] for v in range(1, 8) if v != 5]
    assert others == [2] * 6


def test_parent_edges_exist_and_depths_consistent():
    g = CSRGraph.from_edges(KroneckerGenerator(scale=9, seed=2).generate())
    root = int(np.flatnonzero(g.degrees() > 0)[0])
    parent = reference_bfs(g, root)
    depth = reference_depths(g, root)
    reached = np.flatnonzero(parent >= 0)
    for v in reached[:200]:
        if v != root:
            assert g.has_edge(int(parent[v]), int(v))
            assert depth[v] == depth[parent[v]] + 1
    assert np.array_equal(depths_from_parents(parent, root), depth)


def test_depths_from_parents_rejects_cycles():
    # 1 and 2 point at each other — a cycle detached from the root.
    parent = np.array([0, 2, 1])
    with pytest.raises(ConfigError):
        depths_from_parents(parent, 0)


def test_depths_from_parents_rejects_wrong_root():
    with pytest.raises(ConfigError):
        depths_from_parents(np.array([1, 1]), 0)


def test_root_out_of_range():
    g = CSRGraph.from_edges(ring_edges(4))
    with pytest.raises(ConfigError):
        reference_bfs(g, 9)
    with pytest.raises(ConfigError):
        reference_depths(g, -1)


def test_bfs_on_grid_matches_manhattan():
    g = CSRGraph.from_edges(grid_edges(5, 5))
    depth = reference_depths(g, 0)
    for r in range(5):
        for c in range(5):
            assert depth[r * 5 + c] == r + c
