"""Determinism lint: rule detection, suppressions, scoping, CLI gate."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.sanitizers import RULES, lint_paths, lint_source
from repro.sanitizers.rules import parse_noqa, path_scope

FIXTURE = os.path.join(
    os.path.dirname(__file__), "data", "lint_fixture.py"
)
SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro"
)


def rules_hit(report) -> set[str]:
    return {f.rule for f in report.findings}


# --- individual rules ---------------------------------------------------------
def test_rep101_wall_clock_calls_flagged():
    src = "import time\nt = time.perf_counter()\nu = time.time()\n"
    report = lint_source(src, path="src/repro/sim/x.py")
    assert [f.rule for f in report.findings] == ["REP101", "REP101"]
    assert report.findings[0].line == 2


def test_rep101_from_import_alias_tracked():
    src = "from time import perf_counter as pc\nt = pc()\n"
    report = lint_source(src, path="src/repro/machine/x.py")
    assert rules_hit(report) == {"REP101"}


def test_rep101_only_in_sim_core_scope():
    src = "import time\nt = time.perf_counter()\n"
    report = lint_source(src, path="src/repro/graph500/timing.py")
    assert report.ok  # harness wall-clock measurement is legitimate


def test_rep102_global_rng_flagged_everywhere_in_repro():
    src = "import numpy as np\nr = np.random.default_rng(3)\n"
    for path in ("src/repro/graph/gen.py", "src/repro/core/x.py"):
        assert rules_hit(lint_source(src, path=path)) == {"REP102"}


def test_rep102_substream_module_exempt():
    src = "import numpy as np\nr = np.random.default_rng(seed)\n"
    report = lint_source(src, path="src/repro/sim/rng.py")
    assert report.ok


def test_rep102_random_import_flagged():
    src = "from random import shuffle\nshuffle(xs)\n"
    report = lint_source(src, path="src/repro/core/x.py")
    assert {f.rule for f in report.findings} == {"REP102"}
    assert len(report.findings) == 2  # the import and the call


def test_rep102_annotation_is_not_a_call():
    src = (
        "import numpy as np\n"
        "def f(rng: np.random.Generator) -> np.random.Generator:\n"
        "    return rng\n"
    )
    assert lint_source(src, path="src/repro/sim/faults.py").ok


def test_rep103_set_iteration_flagged():
    src = "for x in set(items):\n    use(x)\n"
    report = lint_source(src, path="src/repro/core/x.py")
    assert rules_hit(report) == {"REP103"}


def test_rep103_comprehension_and_wrappers():
    src = (
        "a = [y for y in set(items)]\n"
        "b = list(frozenset(items))\n"
        "c = tuple(enumerate({1, 2}))\n"
    )
    report = lint_source(src, path="src/repro/network/x.py")
    assert [f.rule for f in report.findings] == ["REP103"] * 3


def test_rep103_sorted_wrapper_is_clean():
    src = "a = sorted(set(items))\nfor x in sorted({3, 1}):\n    use(x)\n"
    assert lint_source(src, path="src/repro/core/x.py").ok


def test_rep104_set_union_flagged_even_inside_sorted():
    src = "peers = sorted(set(a) | set(b))\n"
    report = lint_source(src, path="src/repro/core/x.py")
    assert rules_hit(report) == {"REP104"}


def test_rep104_union_method_flagged():
    src = "n = len(set(a).union(b))\n"
    report = lint_source(src, path="src/repro/core/x.py")
    assert rules_hit(report) == {"REP104"}


def test_rep104_int_bitor_not_flagged():
    src = "flags = A | B\nmask: int | None = None\nx = 1 | 2\n"
    assert lint_source(src, path="src/repro/core/x.py").ok


def test_rep105_hot_dataclass_without_slots():
    src = (
        "from dataclasses import dataclass\n"
        "@dataclass\nclass AckMessage:\n    a: int\n"
        "@dataclass(slots=True)\nclass GoodEvent:\n    a: int\n"
        "@dataclass\nclass PlainConfig:\n    a: int\n"
    )
    report = lint_source(src, path="src/repro/sim/x.py")
    assert [f.rule for f in report.findings] == ["REP105"]
    assert "AckMessage" in report.findings[0].message


def test_rep107_store_through_engine_handle_flagged():
    src = (
        "self.engine.t_max = t\n"
        "node.cluster.records += n\n"
        "engine._drains[0] = 1\n"
    )
    report = lint_source(src, path="src/repro/core/x.py")
    assert [f.rule for f in report.findings] == ["REP107"] * 3


def test_rep107_journal_and_local_state_clean():
    src = (
        "journal.fold_add(self, '_records_sent', n)\n"
        "self._t_max = t\n"          # own-object state is lane-local
        "engine = make_engine()\n"   # rebinding the name is not a store
        "x = self.engine.now\n"      # reads are fine
        "self.engine.call_at(t, fn)\n"
    )
    assert lint_source(src, path="src/repro/core/x.py").ok


def test_rep107_partition_and_faults_modules_exempt():
    src = "self.engine.seq = 1\n"
    assert lint_source(src, path="src/repro/sim/partition.py").ok
    assert lint_source(src, path="src/repro/sim/faults.py").ok
    report = lint_source(src, path="src/repro/sim/engine.py")
    assert rules_hit(report) == {"REP107"}


def test_rep107_only_in_sim_core_scope():
    src = "self.engine.telemetry = tel\n"
    assert lint_source(src, path="src/repro/telemetry/x.py").ok


def test_rep108_kernel_construction_in_service_flagged():
    for call in (
        "make_variant('relay-cpe', e, 4)",
        "Graph500Runner(scale=10, nodes=4)",
        "DistributedBFS(e, 4)",
        "DistributedPageRank(e, 4)",
        "SuperstepEngine(e, 4)",
    ):
        report = lint_source(
            f"k = {call}\n", path="src/repro/service/worker.py"
        )
        assert rules_hit(report) == {"REP108"}, call


def test_rep108_catalog_module_exempt():
    src = "k = make_variant('relay-cpe', e, 4)\n"
    assert lint_source(src, path="src/repro/service/catalog.py").ok


def test_rep108_silent_outside_service():
    src = "k = make_variant('relay-cpe', e, 4)\n"
    assert lint_source(src, path="src/repro/graph500/runner.py").ok
    assert lint_source(src, path="src/repro/core/bfs.py").ok


def test_rep108_suppressible():
    src = "k = DistributedWCC(e, 4)  # repro: noqa[REP108]\n"
    report = lint_source(src, path="src/repro/service/x.py")
    assert report.ok and report.suppressed == 1


def test_syntax_error_reported_not_raised():
    report = lint_source("def f(:\n", path="src/repro/core/x.py")
    assert [f.rule for f in report.findings] == ["REP100"]


# --- suppressions and scope ---------------------------------------------------
def test_noqa_blanket_and_targeted():
    assert parse_noqa("x = 1  # repro: noqa") == frozenset()
    assert parse_noqa("x = 1  # repro: noqa[REP104]") == {"REP104"}
    assert parse_noqa("x = 1  # repro: noqa[rep103, REP104]") == {
        "REP103",
        "REP104",
    }
    assert parse_noqa("x = 1  # plain comment") is None


def test_noqa_suppresses_and_counts():
    src = "peers = set(a) | set(b)  # repro: noqa[REP104]\n"
    report = lint_source(src, path="src/repro/core/x.py")
    assert report.ok and report.suppressed == 1
    wrong_rule = "peers = set(a) | set(b)  # repro: noqa[REP101]\n"
    assert not lint_source(wrong_rule, path="src/repro/core/x.py").ok


def test_path_scope_resolution():
    assert path_scope("src/repro/core/bfs.py") == "sim-core"
    assert path_scope("src/repro/sim/engine.py") == "sim-core"
    assert path_scope("src/repro/graph500/runner.py") == "repro"
    assert path_scope("tests/data/lint_fixture.py") == "repro"


def test_scope_override_forces_sim_core_rules():
    src = "import time\nt = time.time()\n"
    assert lint_source(src, path="anywhere.py").ok
    assert not lint_source(src, path="anywhere.py", scope="sim-core").ok


# --- the fixture exercises every rule -----------------------------------------
def test_fixture_trips_every_rule():
    report = lint_paths([FIXTURE], scope="sim-core")
    assert rules_hit(report) == set(RULES) - {"REP108"}
    assert not report.ok
    # The service-layer rule needs the service scope to fire.
    service = lint_paths([FIXTURE], scope="service")
    assert "REP108" in rules_hit(service)


# --- the repo itself is clean (the CI gate) -----------------------------------
def test_repo_sources_lint_clean():
    report = lint_paths([SRC])
    assert report.ok, report.render_text()
    assert report.checked_files > 90


# --- CLI ----------------------------------------------------------------------
def test_cli_lint_json_gate(tmp_path, capsys):
    out = tmp_path / "findings.json"
    rc = main(["lint", SRC, "--format", "json", "--output", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["ok"] is True and doc["findings"] == []


def test_cli_lint_nonzero_on_fixture(capsys):
    rc = main(["lint", FIXTURE, "--scope", "sim-core", "--format", "json"])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    # REP108 is a service-layer rule; the sim-core pass fires the rest.
    assert set(doc["counts"]) == set(RULES) - {"REP108"}


def test_cli_lint_service_scope_on_fixture(capsys):
    rc = main(["lint", FIXTURE, "--scope", "service", "--format", "json"])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert "REP108" in doc["counts"]


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


@pytest.mark.parametrize("rule_id", sorted(RULES))
def test_rule_catalogue_is_documented(rule_id):
    doc = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "docs",
        "static-analysis.md",
    )
    with open(doc, encoding="utf-8") as fh:
        assert rule_id in fh.read()
