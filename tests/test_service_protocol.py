"""Wire-protocol framing and the numpy array codec."""

import socket
import struct

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.service.protocol import (
    HEADER,
    MAX_FRAME_BYTES,
    decode_body,
    encode_frame,
    read_frame_length,
    recv_frame,
)


def _roundtrip(doc):
    frame = encode_frame(doc)
    assert read_frame_length(frame[: HEADER.size]) == len(frame) - HEADER.size
    return decode_body(frame[HEADER.size:])


def test_plain_json_roundtrip():
    doc = {"op": "query", "params": {"root": 3}, "nested": [1, 2.5, None, "x"]}
    assert _roundtrip(doc) == doc


@pytest.mark.parametrize("dtype", ["int64", "int32", "float64", "float32", "bool"])
def test_array_roundtrip_bit_exact(dtype):
    rng = np.random.default_rng(7)  # repro: noqa[REP102] - test fixture data
    arr = (rng.random(257) * 100).astype(dtype)
    out = _roundtrip({"payload": {"a": arr}})["payload"]["a"]
    assert out.dtype == arr.dtype
    assert out.tobytes() == arr.tobytes()


def test_array_roundtrip_preserves_shape():
    arr = np.arange(12, dtype=np.int64).reshape(3, 4)
    out = _roundtrip({"a": arr})["a"]
    assert out.shape == (3, 4)
    assert np.array_equal(out, arr)


def test_decoded_array_is_writable():
    out = _roundtrip({"a": np.arange(4)})["a"]
    out[0] = 99  # frombuffer views are read-only; the codec must copy


def test_numpy_scalars_encode_as_json_numbers():
    doc = _roundtrip({"n": np.int64(7), "f": np.float64(2.5), "b": np.bool_(True)})
    assert doc == {"n": 7, "f": 2.5, "b": True}


def test_unencodable_type_raises():
    with pytest.raises(TypeError):
        encode_frame({"x": object()})


def test_oversized_frame_refused_both_ways():
    with pytest.raises(ProtocolError, match="cap"):
        read_frame_length(struct.pack(">I", MAX_FRAME_BYTES + 1))


def test_malformed_frames():
    with pytest.raises(ProtocolError, match="truncated"):
        read_frame_length(b"\x00\x00")
    with pytest.raises(ProtocolError, match="undecodable"):
        decode_body(b"not json")
    with pytest.raises(ProtocolError, match="object"):
        decode_body(b"[1, 2]")
    with pytest.raises(ProtocolError, match="malformed array"):
        decode_body(b'{"__ndarray__": "AAAA", "dtype": "notadtype", "shape": [1]}')


def test_recv_frame_over_socketpair():
    a, b = socket.socketpair()
    try:
        doc = {"op": "ping", "arr": np.arange(5, dtype=np.int64)}
        a.sendall(encode_frame(doc))
        out = recv_frame(b)
        assert out["op"] == "ping"
        assert np.array_equal(out["arr"], np.arange(5))
        a.close()
        assert recv_frame(b) is None  # clean EOF
    finally:
        b.close()


def test_recv_frame_mid_frame_eof():
    a, b = socket.socketpair()
    try:
        frame = encode_frame({"op": "ping"})
        a.sendall(frame[:-3])  # header + truncated body
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(b)
    finally:
        b.close()
