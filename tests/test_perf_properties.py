"""Property-based tests over the analytic cost model."""

import math

from hypothesis import given, settings, strategies as st

from repro.core import BFSConfig
from repro.perf import CostModel

cost = CostModel()

node_counts = st.sampled_from([1, 2, 16, 80, 256, 1024, 4096, 40768])
vpns = st.floats(min_value=1e4, max_value=1e8)


@settings(max_examples=60, deadline=None)
@given(nodes=node_counts, vpn=vpns)
def test_breakdown_terms_are_finite_and_nonnegative(nodes, vpn):
    p = cost.evaluate(nodes, vpn, "relay-cpe")
    assert p.ok
    assert math.isfinite(p.total_seconds) and p.total_seconds > 0
    for term, value in p.breakdown.items():
        assert value >= 0, term
        assert math.isfinite(value), term
    assert p.gteps > 0


@settings(max_examples=30, deadline=None)
@given(vpn=vpns)
def test_weak_scaling_monotone_in_nodes(vpn):
    series = [cost.evaluate(n, vpn, "relay-cpe").gteps for n in (16, 256, 4096)]
    assert series[0] < series[1] < series[2]


@settings(max_examples=30, deadline=None)
@given(nodes=st.sampled_from([256, 4096, 40768]))
def test_gteps_monotone_in_data_size(nodes):
    gteps = [cost.evaluate(nodes, vpn, "relay-cpe").gteps
             for vpn in (1e6, 4e6, 16e6, 64e6)]
    assert all(b > a for a, b in zip(gteps, gteps[1:]))


@settings(max_examples=30, deadline=None)
@given(nodes=node_counts, vpn=vpns)
def test_cpe_never_loses_to_mpe(nodes, vpn):
    cpe = cost.evaluate(nodes, vpn, "relay-cpe")
    mpe = cost.evaluate(nodes, vpn, "relay-mpe")
    assert cpe.gteps >= mpe.gteps


@settings(max_examples=30, deadline=None)
@given(vpn=vpns)
def test_relay_always_survives_where_direct_crashes(vpn):
    for nodes in (16384, 40768):
        assert cost.evaluate(nodes, vpn, "relay-cpe").ok
        assert not cost.evaluate(nodes, vpn, "direct-mpe").ok
        assert not cost.evaluate(nodes, vpn, "direct-cpe").ok


@settings(max_examples=20, deadline=None)
@given(
    nodes=node_counts,
    vpn=vpns,
    ratio=st.floats(min_value=1.0, max_value=8.0),
)
def test_compression_never_hurts(nodes, vpn, ratio):
    base = cost.evaluate(nodes, vpn, BFSConfig())
    packed = cost.evaluate(nodes, vpn, BFSConfig(compression_ratio=ratio))
    assert packed.total_seconds <= base.total_seconds * (1 + 1e-12)


@settings(max_examples=20, deadline=None)
@given(nodes=node_counts, vpn=vpns)
def test_direction_optimization_always_helps(nodes, vpn):
    """Direction optimisation cuts work with no extra fixed cost, so it
    helps at every size."""
    hybrid = cost.evaluate(nodes, vpn, BFSConfig(use_hub_prefetch=False))
    plain = cost.evaluate(
        nodes, vpn, BFSConfig(direction_optimizing=False, use_hub_prefetch=False)
    )
    assert hybrid.gteps >= plain.gteps


@settings(max_examples=20, deadline=None)
@given(nodes=node_counts)
def test_hub_prefetch_helps_at_paper_scale(nodes):
    """Hub prefetch trades a per-level P-proportional bitmap allgather for
    less record traffic: it wins at the paper's 16M+ vertices/node at every
    node count, but is a net loss for tiny per-node data — a real
    crossover the model exposes."""
    for vpn in (16e6, 64e6):
        full = cost.evaluate(nodes, vpn, BFSConfig())
        no_hubs = cost.evaluate(nodes, vpn, BFSConfig(use_hub_prefetch=False))
        assert full.gteps >= no_hubs.gteps


def test_hub_allgather_crossover_at_tiny_data():
    """The documented exception: with ~10K vertices/node, hubs lose."""
    full = cost.evaluate(256, 1e4, BFSConfig())
    no_hubs = cost.evaluate(256, 1e4, BFSConfig(use_hub_prefetch=False))
    assert no_hubs.gteps > full.gteps
