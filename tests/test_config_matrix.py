"""Exhaustive configuration-matrix integration sweep.

Every combination of the major switches must produce a Graph500-valid
traversal on the same graph — the cartesian-product safety net for
feature interactions (relay x device x direction x hubs x codec x
partition mode).
"""

import itertools

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.reference import reference_depths
from repro.graph500.validate import validate_bfs_result

EDGES = KroneckerGenerator(scale=8, seed=99).generate()
GRAPH = CSRGraph.from_edges(EDGES)
ROOT = int(np.flatnonzero(GRAPH.degrees() > 0)[0])
REFERENCE = reference_depths(GRAPH, ROOT)

MATRIX = list(
    itertools.product(
        (True, False),        # use_relay
        (True, False),        # use_cpe_clusters
        (True, False),        # direction_optimizing
        (True, False),        # use_hub_prefetch
        (True, False),        # use_codec
        ("balanced", "block"),  # partition_mode
    )
)


@pytest.mark.parametrize(
    "relay,cpe,direction,hubs,codec,partition", MATRIX,
    ids=[
        f"{'relay' if r else 'direct'}-{'cpe' if c else 'mpe'}-"
        f"{'hybrid' if d else 'td'}-{'hubs' if h else 'nohubs'}-"
        f"{'codec' if k else 'raw'}-{p}"
        for r, c, d, h, k, p in MATRIX
    ],
)
def test_every_configuration_is_correct(relay, cpe, direction, hubs, codec, partition):
    cfg = BFSConfig(
        use_relay=relay,
        use_cpe_clusters=cpe,
        direction_optimizing=direction,
        use_hub_prefetch=hubs,
        use_codec=codec,
        partition_mode=partition,
        hub_count_topdown=8,
        hub_count_bottomup=8,
    )
    bfs = DistributedBFS(EDGES, 4, config=cfg, nodes_per_super_node=2)
    result = bfs.run(ROOT)
    depth = validate_bfs_result(GRAPH, EDGES, ROOT, result.parent)
    assert np.array_equal(depth, REFERENCE)
    assert result.sim_seconds > 0
