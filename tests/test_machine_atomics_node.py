"""Atomics cost model + node composition + memory budget tests."""

import pytest

from repro.errors import ConfigError, SimulatedCrash
from repro.machine import AtomicsModel, SunwayNode
from repro.machine.node import MemoryBudget

atomics = AtomicsModel()


def test_atomic_increment_is_memory_latency_bound():
    t = atomics.atomic_increment_time()
    assert t == pytest.approx(2 * 100 / 1.45e9)


def test_contended_increments_serialise_per_location():
    one = atomics.atomic_increment_time()
    assert atomics.contended_increments_time(100, 1) == pytest.approx(100 * one)
    assert atomics.contended_increments_time(100, 10) == pytest.approx(10 * one)
    assert atomics.contended_increments_time(0, 5) == 0.0


def test_emulated_cas_costs_more_than_increment():
    assert atomics.emulated_cas_time() > atomics.atomic_increment_time()


def test_lock_based_append_is_slow():
    """The rejected design: locking per record costs far more than DMA.

    1M records through emulated locks should take whole milliseconds even
    spread over 64 buffers — versus ~0.8 ms to *shuffle* the same 8 MB.
    """
    t = atomics.lock_based_append_time(1_000_000, 64)
    assert t > 5e-3


def test_atomics_validation():
    with pytest.raises(ConfigError):
        atomics.contended_increments_time(-1)
    with pytest.raises(ConfigError):
        atomics.contended_increments_time(1, 0)


def test_node_composition():
    node = SunwayNode(3)
    assert node.node_id == 3
    assert node.num_mpes == 4
    assert node.num_clusters == 4
    assert node.memory.capacity == 32 * (1 << 30)
    with pytest.raises(ConfigError):
        SunwayNode(-1)


def test_memory_budget_reserve_release():
    mb = MemoryBudget(1000)
    mb.reserve("graph", 600)
    mb.reserve("buffers", 300)
    assert mb.used == 900
    assert mb.free == 100
    mb.release("buffers")
    assert mb.free == 400


def test_memory_budget_re_reserve_replaces():
    mb = MemoryBudget(1000)
    mb.reserve("x", 600)
    mb.reserve("x", 800)  # grow in place: replaces, not adds
    assert mb.used == 800


def test_memory_budget_exhaustion_is_simulated_crash():
    mb = MemoryBudget(1000, node_id=7)
    mb.reserve("a", 900)
    with pytest.raises(SimulatedCrash) as exc:
        mb.reserve("b", 200)
    assert exc.value.node == 7
