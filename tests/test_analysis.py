"""Tests for :mod:`repro.analysis` — the interprocedural analyzer.

Covers the seeded violation corpus (every rule detected, stable
finding ids), determinism (two runs over ``src/repro`` render
byte-identical JSON), the clean-tree CI gate, baseline round-trips
(suppress -> clean -> un-suppress -> finding returns), effect
annotation plumbing, the REP109 bare-acquire lint, and SARIF output.
"""

import json
import os

import pytest

from repro.analysis import (
    ANALYSIS_RULES,
    analyze_paths,
    build_callgraph,
    declared_effects,
    effects,
    is_fast_lock,
    load_baseline,
    parse_effect_comment,
    write_baseline,
)
from repro.analysis.drain import reachable_from_roots
from repro.analysis.lockorder import LockEdge, analyze_locks, find_lock_cycles
from repro.cli import main
from repro.sanitizers import lint_source

HERE = os.path.dirname(__file__)
CORPUS = os.path.join(HERE, "data", "analysis_corpus")
SRC = os.path.abspath(os.path.join(HERE, "..", "src", "repro"))


def corpus_report():
    return analyze_paths([CORPUS])


# --- seeded corpus: every rule detected ---------------------------------------
def test_corpus_trips_every_interprocedural_rule():
    report = corpus_report()
    assert not report.ok
    rules = {f.rule for f in report.findings}
    assert rules == {"REP201", "REP202", "REP203", "REP204"}


def test_corpus_drain_violation_reports_call_chain():
    report = corpus_report()
    rep201 = [f for f in report.findings if f.rule == "REP201"]
    assert len(rep201) == 1
    (finding,) = rep201
    assert finding.function == "pipeline.Relay._bump"
    assert finding.chain == ("pipeline.Relay._deliver", "pipeline.Relay._bump")
    assert ".engine" in finding.message


def test_corpus_lock_cycle_names_both_edges():
    report = corpus_report()
    rep202 = [f for f in report.findings if f.rule == "REP202"]
    assert len(rep202) == 1
    (finding,) = rep202
    assert "MirrorCatalog._lock" in finding.message
    assert "MirrorCache._lock" in finding.message
    assert finding.detail.startswith("cycle:")


def test_corpus_blocking_under_lock_direct_and_via_hop():
    report = corpus_report()
    rep203 = [f for f in report.findings if f.rule == "REP203"]
    assert len(rep203) == 2
    vias = {f.detail.rpartition(":")[2] for f in rep203}
    assert "blocking.FrontCatalog._flush" in vias  # the one-hop seed


def test_corpus_effect_mismatches_all_four_shapes():
    report = corpus_report()
    rep204 = [f for f in report.findings if f.rule == "REP204"]
    assert len(rep204) == 4
    messages = " | ".join(f.message for f in rep204)
    assert "declared pure" in messages
    assert "declared journaled" in messages
    assert "declared locked:Ledger._lock" in messages
    assert "unknown effect 'frozen'" in messages


# --- finding ids: stable and line-independent ---------------------------------
def test_finding_ids_stable_across_runs():
    a = {f.fid for f in corpus_report().findings}
    b = {f.fid for f in corpus_report().findings}
    assert a == b
    assert all(len(fid) == 12 for fid in a)


def test_finding_id_survives_line_shifts(tmp_path):
    src = (
        "class Relay:\n"
        "    def _deliver(self, src, dst, msg):\n"
        "        self._bump(msg)\n"
        "    def _bump(self, msg):\n"
        "        self.engine.delivered += 1\n"
        "def install(engine):\n"
        "    engine.register_delivery(Relay._deliver)\n"
    )
    p1 = tmp_path / "mod.py"
    p1.write_text(src)
    fids1 = [f.fid for f in analyze_paths([str(p1)]).findings]
    # Shift everything down: ids must not change (they hash content,
    # not line numbers).
    p1.write_text("# a comment\n# another\n\n" + src)
    fids2 = [f.fid for f in analyze_paths([str(p1)]).findings]
    assert fids1 == fids2 and fids1


# --- determinism: byte-identical double run over the real tree ----------------
def test_analyzer_json_byte_identical_over_src():
    first = analyze_paths([SRC]).to_json()
    second = analyze_paths([SRC]).to_json()
    assert first == second


def test_analyzer_sarif_byte_identical_over_corpus():
    assert corpus_report().to_sarif() == corpus_report().to_sarif()


# --- the repo itself is clean (the CI gate) -----------------------------------
def test_repo_sources_analyze_clean():
    report = analyze_paths([SRC])
    assert report.ok, report.render_text()
    assert report.checked_files > 90
    assert report.functions > 500


def test_repo_drain_roots_resolved():
    graph = build_callgraph([SRC])
    roots = set(graph.roots)
    # The cluster delivery/injection hooks registered by attach_cluster.
    assert "repro.network.simmpi.SimCluster._deliver" in roots
    assert "repro.network.simmpi.SimCluster._inject" in roots
    chains = reachable_from_roots(graph)
    assert len(chains) > len(roots)


def test_repo_lock_pass_finds_catalog_kernel_edge_and_no_cycles():
    graph = build_callgraph([SRC])
    edges, cycles, blocking = analyze_locks(graph)
    assert cycles == []
    assert blocking == []
    pairs = {(e.held, e.acquired) for e in edges}
    assert ("GraphCatalog._lock", "CatalogEntry._kernel_lock") in pairs


# --- baseline round-trip ------------------------------------------------------
def test_baseline_round_trip(tmp_path):
    report = corpus_report()
    assert not report.ok
    baseline_path = str(tmp_path / "analysis-baseline.json")
    write_baseline(baseline_path, report)

    # Suppressed: the same tree analyzes clean.
    baseline = load_baseline(baseline_path)
    suppressed = analyze_paths([CORPUS], baseline=baseline)
    assert suppressed.ok
    assert len(suppressed.baselined) == len(report.findings)
    assert suppressed.stale_baseline == ()

    # Un-suppress one finding: exactly that finding returns.
    doc = json.loads(open(baseline_path).read())
    removed = doc["suppress"].pop(0)
    partial = {e["id"]: e for e in doc["suppress"]}
    reanalyzed = analyze_paths([CORPUS], baseline=partial)
    assert not reanalyzed.ok
    assert [f.fid for f in reanalyzed.findings] == [removed["id"]]


def test_stale_baseline_entries_reported(tmp_path):
    baseline = {"deadbeef0000": {"id": "deadbeef0000", "rule": "REP201"}}
    report = analyze_paths([CORPUS], baseline=baseline)
    assert report.stale_baseline == ("deadbeef0000",)


def test_committed_baseline_is_empty():
    committed = os.path.join(HERE, "..", "analysis-baseline.json")
    assert load_baseline(committed) == {}


# --- effect annotation plumbing -----------------------------------------------
def test_effects_decorator_stamps_and_validates():
    @effects("journaled", "locked:MetricsRegistry._create_lock")
    def fn():
        pass

    assert declared_effects(fn) == (
        "journaled",
        "locked:MetricsRegistry._create_lock",
    )
    with pytest.raises(ValueError):
        effects("bogus")


def test_effect_comment_parsing():
    assert parse_effect_comment("def f():  # repro: effect=pure") == ("pure",)
    assert parse_effect_comment(
        "def f():  # repro: effect=journaled, locked:A._lock"
    ) == ("journaled", "locked:A._lock")
    assert parse_effect_comment("def f():") == ()


def test_noqa_suppresses_analysis_finding(tmp_path):
    src = (
        "class Relay:\n"
        "    def _deliver(self, src, dst, msg):\n"
        "        self.engine.delivered += 1  # repro: noqa[REP201]\n"
        "def install(engine):\n"
        "    engine.register_delivery(Relay._deliver)\n"
    )
    p = tmp_path / "mod.py"
    p.write_text(src)
    report = analyze_paths([str(p)])
    assert report.ok
    assert report.suppressed == 1


# --- fast-lock policy ---------------------------------------------------------
def test_fast_lock_policy():
    assert is_fast_lock("GraphCatalog._lock")
    assert is_fast_lock("ResultCache._lock")
    assert not is_fast_lock("CatalogEntry._kernel_lock")
    assert not is_fast_lock("ServiceClient._lock")  # not a Catalog/Cache
    assert not is_fast_lock("FairScheduler._cv")


def test_lock_cycle_detection_handles_smaller_out_of_cycle_neighbor():
    def edge(a, b):
        return LockEdge(a, b, "x.py", 1, "")

    # Cycle between B and C; A is a smaller-named neighbor of B that is
    # NOT part of the cycle — the DFS must still find B <-> C.
    edges = [edge("B", "A"), edge("B", "C"), edge("C", "B")]
    cycles = find_lock_cycles(edges)
    assert [locks for locks, _ in cycles] == [("B", "C")]


def test_self_loop_is_a_cycle():
    cycles = find_lock_cycles([LockEdge("A", "A", "x.py", 1, "")])
    assert [locks for locks, _ in cycles] == [("A",)]


# --- REP109: bare lock.acquire() ----------------------------------------------
def test_rep109_flags_bare_acquire():
    src = "def f(lock, work):\n    lock.acquire()\n    work()\n    lock.release()\n"
    report = lint_source(src, path="x.py")
    assert [f.rule for f in report.findings] == ["REP109"]


def test_rep109_allows_try_finally_idiom():
    src = (
        "def f(lock, work):\n"
        "    lock.acquire()\n"
        "    try:\n"
        "        work()\n"
        "    finally:\n"
        "        lock.release()\n"
    )
    assert lint_source(src, path="x.py").ok


def test_rep109_allows_conditional_acquire_inside_try():
    src = (
        "def f(lock, work):\n"
        "    try:\n"
        "        if lock.acquire(timeout=1):\n"
        "            work()\n"
        "    finally:\n"
        "        lock.release()\n"
    )
    assert lint_source(src, path="x.py").ok


def test_rep109_flags_conditional_acquire_without_finally():
    src = (
        "def f(lock, work):\n"
        "    if lock.acquire(timeout=1):\n"
        "        work()\n"
        "        lock.release()\n"
    )
    report = lint_source(src, path="x.py")
    assert [f.rule for f in report.findings] == ["REP109"]


def test_rep109_with_statement_is_clean():
    src = "def f(lock, work):\n    with lock:\n        work()\n"
    assert lint_source(src, path="x.py").ok


# --- CLI ----------------------------------------------------------------------
def test_cli_analyze_clean_tree_exits_zero(tmp_path):
    out = tmp_path / "analysis.json"
    rc = main(["analyze", SRC, "--format", "json", "--output", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["ok"] is True and doc["findings"] == []


def test_cli_analyze_nonzero_on_corpus(capsys):
    rc = main(["analyze", "--no-baseline", CORPUS, "--format", "json"])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert set(doc["counts"]) == {"REP201", "REP202", "REP203", "REP204"}


def test_cli_analyze_write_baseline_then_clean(tmp_path, capsys):
    baseline = tmp_path / "analysis-baseline.json"
    rc = main([
        "analyze", CORPUS, "--baseline", str(baseline), "--write-baseline",
    ])
    assert rc == 0
    capsys.readouterr()
    rc = main(["analyze", CORPUS, "--baseline", str(baseline)])
    assert rc == 0


def test_cli_analyze_sarif_output(capsys):
    rc = main(["analyze", "--no-baseline", CORPUS, "--format", "sarif"])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    results = doc["runs"][0]["results"]
    assert {r["ruleId"] for r in results} == {
        "REP201", "REP202", "REP203", "REP204",
    }
    rule_ids = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(ANALYSIS_RULES)


def test_cli_lint_sarif_output(capsys):
    fixture = os.path.join(HERE, "data", "lint_fixture.py")
    rc = main(["lint", fixture, "--scope", "sim-core", "--format", "sarif"])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert any(
        r["ruleId"] == "REP109" for r in doc["runs"][0]["results"]
    )


def test_cli_analyze_list_rules(capsys):
    assert main(["analyze", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ANALYSIS_RULES:
        assert rule_id in out
