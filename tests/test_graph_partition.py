"""1D partitioning tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.graph import Partition1D


def test_block_partition_basics():
    p = Partition1D(10, 3, mode="block")
    assert [p.owner(v) for v in range(10)] == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]
    assert p.part_range(0) == (0, 4)
    assert p.part_range(2) == (8, 10)
    assert p.part_size(2) == 2
    assert p.local_index(9) == 1


def test_cyclic_partition():
    p = Partition1D(10, 3, mode="cyclic")
    assert p.owner(7) == 1
    assert p.local_index(7) == 2
    assert p.global_ids(1).tolist() == [1, 4, 7]
    with pytest.raises(ConfigError):
        p.part_range(0)


def test_balanced_partition_evens_out_edges():
    # Hub-heavy prefix: first vertex has weight 100, rest weight 1.
    w = np.ones(100)
    w[0] = 100.0
    p = Partition1D(100, 4, mode="balanced", edge_weights=w)
    # Part 0 should be much narrower than the others.
    assert p.part_size(0) < 100 // 4
    sizes = [p.part_size(i) for i in range(4)]
    assert sum(sizes) == 100
    # Weight per part should be within 2x of each other.
    weights = [w[p.global_ids(i)].sum() + p.part_size(i) for i in range(4)]
    assert max(weights) / min(weights) < 2.5


def test_owner_vectorised():
    p = Partition1D(16, 4)
    owners = p.owner(np.arange(16, dtype=np.int64))
    assert owners.tolist() == [0] * 4 + [1] * 4 + [2] * 4 + [3] * 4


def test_validation():
    with pytest.raises(ConfigError):
        Partition1D(0, 1)
    with pytest.raises(ConfigError):
        Partition1D(4, 8)
    with pytest.raises(ConfigError):
        Partition1D(8, 2, mode="bogus")
    with pytest.raises(ConfigError):
        Partition1D(8, 2, mode="balanced")  # needs weights
    p = Partition1D(8, 2)
    with pytest.raises(ConfigError):
        p.owner(8)
    with pytest.raises(ConfigError):
        p.part_size(2)


@given(
    st.integers(min_value=1, max_value=300),
    st.integers(min_value=1, max_value=32),
    st.sampled_from(["block", "cyclic"]),
)
def test_partition_is_total_and_consistent(n, parts, mode):
    if parts > n:
        parts = n
    p = Partition1D(n, parts, mode=mode)
    seen = []
    for part in range(parts):
        ids = p.global_ids(part)
        assert len(ids) == p.part_size(part)
        for v in ids.tolist():
            assert p.owner(v) == part
        # local indices are 0..size-1 in order
        assert p.local_index(ids).tolist() == list(range(len(ids)))
        seen.extend(ids.tolist())
    assert sorted(seen) == list(range(n))
