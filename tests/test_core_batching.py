"""Group-based message batching tests (the Section 4.4 arithmetic)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import GroupLayout
from repro.errors import ConfigError


def test_matrix_coordinates():
    g = GroupLayout(12, 4)  # 3 groups of 4
    assert g.num_groups == 3
    assert g.group_of(0) == 0 and g.group_of(5) == 1 and g.group_of(11) == 2
    assert g.member_of(5) == 1
    assert list(g.group_members(1)) == [4, 5, 6, 7]


def test_relay_is_destination_row_source_column():
    g = GroupLayout(16, 4)
    # src 1 = (row 0, col 1); dst 14 = (row 3, col 2) -> relay (row 3, col 1) = 13
    assert g.relay_for(1, 14) == 13


def test_relay_intra_group_is_source():
    g = GroupLayout(16, 4)
    # dst in the source's own group -> relay = source itself (stage two only).
    assert g.relay_for(5, 6) == 5


def test_relay_same_column_is_destination():
    g = GroupLayout(16, 4)
    # dst shares the source's column -> relay = destination.
    assert g.relay_for(1, 13) == 13


def test_relay_vectorised_matches_scalar():
    g = GroupLayout(20, 5)
    dsts = np.arange(20, dtype=np.int64)
    vec = g.relay_vectorised(3, dsts)
    assert vec.tolist() == [g.relay_for(3, int(d)) for d in dsts]


def test_connection_reduction_the_paper_quotes():
    """40,000 nodes as 200x200: connections drop 40,000 -> ~400; memory
    4 GB -> ~40 MB at 100 KB per connection (Section 4.4)."""
    g = GroupLayout(40_000, 200)
    direct = g.direct_connections()
    relay = g.relay_connections(12_345)
    assert direct == 39_999
    assert relay <= 200 + 200 - 1
    assert direct * 100_000 > 3.9e9
    assert relay * 100_000 < 41e6


def test_relay_connections_bound_holds_every_node():
    g = GroupLayout(64, 8)
    for node in range(64):
        assert g.relay_connections(node) <= 8 + 8 - 1


def test_ragged_final_group():
    g = GroupLayout(10, 4)  # groups of 4, 4, 2
    assert g.num_groups == 3
    assert g.group_size(2) == 2
    assert list(g.group_members(2)) == [8, 9]
    # Relay for a destination in the ragged group wraps the member index.
    r = g.relay_for(7, 9)  # member 3 wraps into a 2-node group
    assert g.group_of(r) == 2


def test_for_topology_uses_super_node_size():
    g = GroupLayout.for_topology(1024, 256)
    assert g.width == 256
    assert g.num_groups == 4
    small = GroupLayout.for_topology(8, 256)
    assert small.width == 8


def test_validation():
    with pytest.raises(ConfigError):
        GroupLayout(0, 1)
    with pytest.raises(ConfigError):
        GroupLayout(4, 8)
    g = GroupLayout(8, 4)
    with pytest.raises(ConfigError):
        g.group_of(8)
    with pytest.raises(ConfigError):
        g.group_size(5)


@given(
    st.integers(min_value=1, max_value=400),
    st.integers(min_value=1, max_value=40),
    st.data(),
)
def test_relay_properties(num_nodes, width, data):
    width = min(width, num_nodes)
    g = GroupLayout(num_nodes, width)
    src = data.draw(st.integers(0, num_nodes - 1))
    dst = data.draw(st.integers(0, num_nodes - 1))
    r = g.relay_for(src, dst)
    # The relay always lives in the destination's group...
    assert g.group_of(r) == g.group_of(dst)
    # ...and a two-hop path src -> r -> dst exists (both legs valid nodes).
    assert 0 <= r < num_nodes
    # Full groups preserve the source's column exactly.
    if g.group_size(g.group_of(dst)) == width:
        assert g.member_of(r) == g.member_of(src)
    # Relay routing never needs more connections than the bound.
    assert g.relay_connections(src) <= g.num_groups + width - 1
