"""DMA model tests: Figure 3 and Figure 5 behaviours."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.machine import DmaModel
from repro.utils.units import GBPS

dma = DmaModel()


def test_cluster_saturates_at_256_bytes():
    # Figure 3: "desired bandwidth with a chunk size equal to or larger
    # than 256 Bytes" -> 28.9 GB/s.
    assert dma.cluster_bandwidth(256) == pytest.approx(28.9 * GBPS)
    assert dma.cluster_bandwidth(512) == pytest.approx(28.9 * GBPS)
    assert dma.cluster_bandwidth(4096) == pytest.approx(28.9 * GBPS)


def test_cluster_bandwidth_degrades_below_saturation():
    b8 = dma.cluster_bandwidth(8)
    b64 = dma.cluster_bandwidth(64)
    b256 = dma.cluster_bandwidth(256)
    assert b8 < b64 < b256
    # The figure shows roughly an order of magnitude between tiny and
    # saturated chunks.
    assert b256 / b8 > 5


def test_mpe_peak_is_9_4_gbps():
    assert dma.mpe_bandwidth(256) == pytest.approx(9.4 * GBPS)


def test_cpe_cluster_is_about_ten_times_mpe():
    # Section 3.2: "the speed CPE clusters accessing the memory is 10 times
    # faster than the MPE" (28.9 / 9.4 ~ 3 at equal chunks; the 10x the
    # paper quotes compares cluster DMA to what one MPE thread sustains on
    # BFS-sized accesses; our model exposes the published envelope ratio).
    ratio = dma.cpe_to_mpe_speedup(256)
    assert ratio == pytest.approx(28.9 / 9.4, rel=1e-6)


def test_figure5_sixteen_cpes_saturate():
    # Figure 5: "16 CPEs can generate an acceptable memory access bandwidth".
    assert dma.saturating_cpe_count(256) <= 16
    assert dma.cluster_bandwidth(256, 16) == pytest.approx(
        dma.cluster_bandwidth(256, 64), rel=0.05
    )


def test_figure5_bandwidth_rises_with_cpe_count_then_flattens():
    series = [dma.cluster_bandwidth(256, n) for n in (1, 2, 4, 8, 12, 16, 32, 64)]
    assert all(b2 >= b1 for b1, b2 in zip(series, series[1:]))
    assert series[0] == pytest.approx(2.4 * GBPS)  # one CPE's share
    assert series[-1] == pytest.approx(28.9 * GBPS)


def test_transfer_times():
    assert dma.cluster_transfer_time(0) == 0.0
    t = dma.cluster_transfer_time(28.9 * GBPS)  # one second's worth
    assert t == pytest.approx(1.0)
    assert dma.mpe_transfer_time(9.4 * GBPS) == pytest.approx(1.0)


def test_input_validation():
    with pytest.raises(ConfigError):
        dma.cluster_bandwidth(0)
    with pytest.raises(ConfigError):
        dma.cluster_bandwidth(256, 0)
    with pytest.raises(ConfigError):
        dma.cluster_bandwidth(256, 65)
    with pytest.raises(ConfigError):
        dma.cluster_transfer_time(-1)
    with pytest.raises(ConfigError):
        dma.mpe_bandwidth(0)


@given(st.integers(min_value=1, max_value=1 << 16))
def test_cluster_bandwidth_monotone_in_chunk(chunk):
    assert dma.cluster_bandwidth(chunk) <= dma.cluster_bandwidth(chunk * 2) + 1e-6


@given(
    st.integers(min_value=1, max_value=1 << 14),
    st.integers(min_value=1, max_value=64),
)
def test_cluster_never_exceeds_peak(chunk, n_cpes):
    assert dma.cluster_bandwidth(chunk, n_cpes) <= 28.9 * GBPS + 1e-6
