"""Validation-rule tests: correct results pass, corrupted ones name the rule."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graph import CSRGraph, EdgeList, KroneckerGenerator
from repro.graph.generators import ring_edges
from repro.graph500.reference import reference_bfs
from repro.graph500.validate import validate_bfs_result


def make_case(scale=9, seed=4):
    edges = KroneckerGenerator(scale=scale, seed=seed).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    parent = reference_bfs(graph, root)
    return graph, edges, root, parent


def test_reference_result_validates():
    graph, edges, root, parent = make_case()
    depth = validate_bfs_result(graph, edges, root, parent)
    assert depth[root] == 0


def test_ring_result_validates():
    edges = ring_edges(12)
    graph = CSRGraph.from_edges(edges)
    parent = reference_bfs(graph, 3)
    validate_bfs_result(graph, edges, 3, parent)


def test_detects_missing_root_self_parent():
    graph, edges, root, parent = make_case()
    parent = parent.copy()
    parent[root] = -1
    with pytest.raises(ValidationError, match="rule 1"):
        validate_bfs_result(graph, edges, root, parent)


def test_detects_cycle():
    graph, edges, root, parent = make_case()
    parent = parent.copy()
    reached = np.flatnonzero((parent >= 0) & (np.arange(len(parent)) != root))
    a, b = reached[0], reached[1]
    parent[a], parent[b] = b, a
    with pytest.raises(ValidationError, match="rule 1"):
        validate_bfs_result(graph, edges, root, parent)


def test_detects_non_edge_parent():
    graph, edges, root, parent = make_case()
    parent = parent.copy()
    # Find a reached vertex and assign it a non-neighbour parent at the
    # right depth — must trip rule 5 (or rule 2/4 if depths break first).
    depth = validate_bfs_result(graph, edges, root, parent)
    for v in np.flatnonzero(parent >= 0):
        if v == root:
            continue
        same_depth_parents = np.flatnonzero(depth == depth[v] - 1)
        non_neighbors = [
            int(u) for u in same_depth_parents if not graph.has_edge(int(u), int(v))
        ]
        if non_neighbors:
            parent[v] = non_neighbors[0]
            break
    else:
        pytest.skip("graph too dense to find a non-neighbour at the right depth")
    with pytest.raises(ValidationError, match="rule 5"):
        validate_bfs_result(graph, edges, root, parent)


def test_detects_unreached_component_vertex():
    graph, edges, root, parent = make_case()
    parent = parent.copy()
    reached = np.flatnonzero((parent >= 0) & (np.arange(len(parent)) != root))
    # Erase a leaf of the tree (a vertex nobody else claims as parent).
    leaves = np.setdiff1d(reached, parent)
    parent[leaves[0]] = -1
    with pytest.raises(ValidationError, match="rule 4"):
        validate_bfs_result(graph, edges, root, parent)


def test_detects_wrong_depth():
    """A parent map whose tree is valid but not breadth-first fails rule 4."""
    edges = ring_edges(8)
    graph = CSRGraph.from_edges(edges)
    # Chain parents the long way around: 0 <- 1 <- 2 <- ... <- 7, making
    # vertex 7 depth 7 even though edge (7, 0) gives distance 1.
    parent = np.array([0, 0, 1, 2, 3, 4, 5, 6])
    with pytest.raises(ValidationError, match="rule 3|rule 4"):
        validate_bfs_result(graph, edges, 0, parent)


def test_detects_vertex_outside_component_claimed():
    e = EdgeList(np.array([0, 2]), np.array([1, 3]), 4)
    graph = CSRGraph.from_edges(e)
    parent = np.array([0, 0, -1, -1])
    validate_bfs_result(graph, e, 0, parent)  # correct result passes
    bad = np.array([0, 0, 0, -1])  # vertex 2 claims parent 0: not an edge
    with pytest.raises(ValidationError):
        validate_bfs_result(graph, e, 0, bad)
