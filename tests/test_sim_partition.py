"""Unit tests for the partitioned conservative-sync engine.

The parity suite (``tests/test_message_path_parity.py``) pins whole
traversals bit-identical across partition counts; this file tests the
PDES machinery itself — layout construction, lookahead derivation,
channel slack validation, lane routing, drain semantics, cancellation —
plus the base engine's cancelled-set boundedness, against small
hand-built scenarios where the expected answer is obvious.
"""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.machine.specs import TAIHULIGHT
from repro.network.cost import NetworkModel
from repro.network.simmpi import SimCluster
from repro.network.topology import FatTreeTopology
from repro.sim.engine import Engine
from repro.sim.partition import (
    LookaheadTable,
    PartitionChannel,
    PartitionedEngine,
    PartitionLayout,
)
from repro.sim.stats import StatsRegistry


def _topology(num_nodes=16, nps=4):
    return FatTreeTopology(num_nodes=num_nodes, nodes_per_super_node=nps)


# --- layout -------------------------------------------------------------------
def test_layout_super_node_aligned_split():
    layout = PartitionLayout.build(_topology(16, 4), 2)  # 4 SNs >= 2 parts
    assert layout.aligned
    assert layout.bounds == (0, 8, 16)
    assert layout.part_of[0] == 0 and layout.part_of[7] == 0
    assert layout.part_of[8] == 1 and layout.part_of[15] == 1
    assert layout.span(0) == (0, 8)
    assert layout.span(1) == (8, 16)


def test_layout_uneven_super_node_split():
    # 3 partitions over 4 super nodes: 2+1+1 SNs, still aligned.
    layout = PartitionLayout.build(_topology(16, 4), 3)
    assert layout.aligned
    assert layout.bounds == (0, 8, 12, 16)


def test_layout_unaligned_fallback():
    # One 16-node super node cannot host 2 aligned partitions: even split.
    layout = PartitionLayout.build(_topology(16, 16), 2)
    assert not layout.aligned
    assert layout.bounds == (0, 8, 16)


def test_layout_clamps_excess_partitions():
    layout = PartitionLayout.build(_topology(4, 4), 64)
    assert layout.partitions == 4  # one node per partition at most
    assert layout.bounds == (0, 1, 2, 3, 4)


def test_layout_rejects_bad_bounds():
    with pytest.raises(ConfigError, match="bad partition bounds"):
        PartitionLayout(8, [0, 4], aligned=False)  # doesn't reach num_nodes
    with pytest.raises(ConfigError, match="empty partition"):
        PartitionLayout(8, [0, 4, 4, 8], aligned=False)


# --- lookahead ----------------------------------------------------------------
def test_lookahead_aligned_is_inter_super_node_latency():
    topo = _topology(16, 4)
    layout = PartitionLayout.build(topo, 2)
    table = LookaheadTable(layout, NetworkModel(topo, TAIHULIGHT))
    inter = TAIHULIGHT.taihulight.inter_super_node_latency
    assert table.lookahead(0, 1) == inter
    assert table.lookahead(1, 0) == inter
    assert table.lookahead(0, 0) == 0.0
    assert table.min_lookahead() == inter


def test_lookahead_unaligned_falls_back_to_intra_latency():
    topo = _topology(16, 16)  # one super node: every hop is intra-SN
    layout = PartitionLayout.build(topo, 2)
    table = LookaheadTable(layout, NetworkModel(topo, TAIHULIGHT))
    assert table.min_lookahead() == TAIHULIGHT.taihulight.intra_super_node_latency


def test_lookahead_single_partition_has_no_pairs():
    topo = _topology(16, 4)
    layout = PartitionLayout.build(topo, 1)
    table = LookaheadTable(layout, NetworkModel(topo, TAIHULIGHT))
    assert table.min_lookahead() == float("inf")


# --- channel ------------------------------------------------------------------
def test_channel_records_slack_and_pushes():
    ch = PartitionChannel(0, 1, lookahead=3e-6)
    ch.record(when=5e-6, send_time=1e-6)
    ch.record(when=4e-6, send_time=1e-6)
    assert ch.pushes == 2
    assert ch.min_slack == 3e-6


def test_channel_tolerates_exact_lookahead_rounding():
    ch = PartitionChannel(0, 1, lookahead=3e-6)
    t = 0.12345
    ch.record(when=t + 3e-6, send_time=t)  # one float add of rounding
    assert ch.pushes == 1


def test_channel_raises_on_lookahead_violation():
    ch = PartitionChannel(0, 1, lookahead=3e-6)
    with pytest.raises(SimulationError, match="below the derived lookahead"):
        ch.record(when=2e-6, send_time=1e-6)  # 1us slack < 3us window


# --- engine: run/clock semantics match the sequential spec --------------------
def _fill(engine):
    ran = []
    whens = [3e-6, 1e-6, 1e-6, 2e-6, 5e-6]
    for i, w in enumerate(whens):
        engine.call_at(w, ran.append, i)
    return ran


def test_partitioned_run_matches_engine_order_and_clock():
    base, part = Engine(), PartitionedEngine(2)
    ran_base, ran_part = _fill(base), _fill(part)
    assert base.run() == part.run()
    assert ran_base == ran_part == [1, 2, 3, 0, 4]
    assert base.events_executed == part.events_executed == 5


def test_partitioned_run_until_semantics():
    base, part = Engine(), PartitionedEngine(2)
    ran_base, ran_part = _fill(base), _fill(part)
    # Clock lands exactly on until; the 5us event stays queued.
    assert base.run(until=4e-6) == part.run(until=4e-6) == 4e-6
    assert ran_base == ran_part
    assert len(part) == 1
    # until beyond the last event advances the drained clock to until.
    assert base.run(until=9e-6) == part.run(until=9e-6) == 9e-6
    assert len(part) == 0


def test_partitioned_run_max_events():
    part = PartitionedEngine(2)
    ran = _fill(part)
    part.run(max_events=2)
    assert ran == [1, 2]
    assert len(part) == 3
    part.run()
    assert ran == [1, 2, 3, 0, 4]


def test_partitioned_step_and_quiescence():
    part = PartitionedEngine(2)
    ran = _fill(part)
    assert part.step()
    assert ran == [1]
    part.run_until_quiescent()
    assert len(part) == 0
    with pytest.raises(SimulationError, match="still active"):
        part.call_at(part.now + 1.0, ran.append, 9)
        part.run_until_quiescent(max_events=0)


def test_partitioned_rejects_past_and_reentry():
    part = PartitionedEngine(2)
    part.call_at(1e-6, lambda: None)
    part.run()
    with pytest.raises(SimulationError, match="before now"):
        part.call_at(0.0, lambda: None)

    def reenter():
        part.run()

    part.call_at(part.now + 1e-6, reenter)
    with pytest.raises(SimulationError, match="not reentrant"):
        part.run()


def test_partitioned_schedule_batch_contiguous_handles():
    base, part = Engine(), PartitionedEngine(2)
    ran_base, ran_part = [], []
    whens = [3e-6, 1e-6, 1e-6, 2e-6]
    argses = [(i,) for i in range(4)]
    hb = base.schedule_batch(whens, ran_base.append, argses)
    hp = part.schedule_batch(whens, ran_part.append, argses)
    assert list(hb) == list(hp) == [0, 1, 2, 3]
    base.run()
    part.run()
    assert ran_base == ran_part
    with pytest.raises(SimulationError, match="equal lengths"):
        part.schedule_batch([1.0], lambda: None, [])


# --- engine: cancellation ------------------------------------------------------
def test_partitioned_cancel_pending_event():
    part = PartitionedEngine(2)
    ran = []
    keep = part.call_at(1e-6, ran.append, "keep")
    drop = part.call_at(2e-6, ran.append, "drop")
    part.cancel(drop)
    assert len(part) == 1
    part.run()
    assert ran == ["keep"]
    assert part.now == 1e-6  # cancelled event never advances the clock


def test_partitioned_cancel_executed_handle_is_noop():
    part = PartitionedEngine(2)
    handle = part.call_at(1e-6, lambda: None)
    part.run()
    part.cancel(handle)  # tolerated: ack paths race the timers they guard
    assert len(part) == 0
    with pytest.raises(SimulationError, match="unknown event handle"):
        part.cancel(10_000)


def test_partitioned_cancel_from_inside_callback():
    part = PartitionedEngine(2)
    ran = []
    timer = part.call_at(5e-6, ran.append, "timer")
    part.call_at(1e-6, lambda: part.cancel(timer))
    part.run()
    assert ran == []
    assert len(part) == 0


# --- base engine: cancelled-set boundedness (regression) ----------------------
def test_engine_cancelled_set_stays_bounded_across_runs():
    """Cancelling already-fired handles (the ack-vs-timer race pattern)
    must not leak marks run over run: the quiescent sweep reclaims them."""
    engine = Engine()
    for round_idx in range(50):
        handle = engine.call_at(engine.now + 1e-6, lambda: None)
        engine.run()
        engine.cancel(handle)  # fires first, cancel races in afterwards
        assert len(engine._cancelled) <= 1
    engine.call_at(engine.now + 1e-6, lambda: None)
    engine.run()
    assert len(engine._cancelled) == 0


def test_engine_cancel_purges_marks_at_queue_head():
    engine = Engine()
    handles = [engine.call_at(1e-6 * (i + 1), lambda: None) for i in range(8)]
    for h in handles:  # cancel in heap order: every mark purges eagerly
        engine.cancel(h)
    assert len(engine._cancelled) == 0
    assert len(engine._queue) == 0


def test_engine_step_clears_cancelled_when_drained():
    engine = Engine()
    handle = engine.call_at(1e-6, lambda: None)
    assert engine.step()
    engine.call_at(2e-6, lambda: None)
    engine.cancel(handle)  # stale mark; head (seq 1) is live so no purge
    assert engine.step()
    assert not engine.step()  # drained: quiescent sweep reclaims the mark
    assert len(engine._cancelled) == 0


# --- lane routing through a real cluster --------------------------------------
def _attached(partitions=2, num_nodes=16, nps=4):
    engine = PartitionedEngine(partitions)
    cluster = SimCluster(engine, num_nodes, nodes_per_super_node=nps)
    engine.attach_cluster(cluster)
    for rank in range(num_nodes):
        cluster.register(rank, lambda msg: None)
    return engine, cluster


def test_attach_cluster_builds_channels_and_layout():
    engine, _ = _attached(partitions=2)
    assert engine.layout is not None and engine.layout.aligned
    assert len(engine._channels) == 2  # both ordered pairs of 2 partitions
    inter = TAIHULIGHT.taihulight.inter_super_node_latency
    assert engine.lookahead.lookahead(0, 1) == inter


def test_cross_partition_sends_flow_through_channels():
    engine, cluster = _attached(partitions=2)
    cluster.send(0, 12, "t", 64)  # partition 0 -> partition 1
    cluster.send(12, 0, "t", 64)  # and back
    cluster.send(1, 2, "t", 64)  # intra-partition: no channel traffic
    engine.run()
    report = engine.partition_report()
    per_pair = {(c["src"], c["dst"]): c for c in report["channels"]}
    assert per_pair[(0, 1)]["pushes"] >= 1
    assert per_pair[(1, 0)]["pushes"] >= 1
    for c in report["channels"]:
        if c["pushes"]:
            assert c["min_slack"] >= c["lookahead"] * (1 - 1e-9)


def test_lane_routing_self_send_stays_on_compute_lane():
    engine, cluster = _attached(partitions=2)
    cluster.send(3, 3, "t", 64)  # self-send: no links, no fabric traffic
    engine.run()
    report = engine.partition_report()
    assert report["lane_events"]["fabric"] == 0
    assert report["lane_events"]["compute"][0] > 0
    assert report["lane_events"]["compute"][1] == 0


def test_lane_routing_remote_send_uses_fabric_lane():
    engine, cluster = _attached(partitions=2)
    cluster.send(0, 9, "t", 64)
    engine.run()
    report = engine.partition_report()
    assert report["lane_events"]["fabric"] >= 1  # the link admission
    assert report["lane_events"]["compute"][1] >= 1  # the delivery
    assert report["drains"] >= 1
    assert report["longest_drain"] >= 1


def test_unregistered_callbacks_ride_the_control_lane():
    engine, _ = _attached(partitions=2)
    ran = []
    engine.call_at(engine.now + 1e-6, ran.append, 1)
    engine.run()
    assert ran == [1]
    assert engine.partition_report()["lane_events"]["control"] >= 1


def test_partitioned_engine_rejects_zero_partitions():
    with pytest.raises(ConfigError, match="at least one partition"):
        PartitionedEngine(0)


# --- stats: merge_counters -----------------------------------------------------
def test_merge_counters_folds_child_counts():
    parent, child = StatsRegistry(), StatsRegistry()
    parent.counter("messages").add(3)
    child.counter("messages").add(4)
    child.counter("bytes", link="uplink").add(100)
    parent.merge_counters(child)
    assert parent.counter("messages").value == 7
    assert parent.counter("bytes", link="uplink").value == 100
