"""Shard serialisation, placement rules, and the sharded store.

Placement is where the durability guarantee becomes a *combinatorial*
claim — never the owner, never its buddy, all-distinct, rack-aware — so
these tests check the rules over every owner of several cluster shapes
rather than a hand-picked example. The store tests then drive the save /
fault / scrub / restore lifecycle directly, without the BFS driver.
"""

import numpy as np
import pytest

from repro.durability import (
    RSCode,
    ShardedCheckpointStore,
    ShardPlacement,
    snapshot_from_bytes,
    snapshot_to_bytes,
)
from repro.errors import ConfigError, ReproError
from repro.resilience.checkpoint import Checkpoint, NodeSnapshot


def _snapshot(n_local: int, frontier=(), seed=0):
    rng = np.random.default_rng(seed)
    parent = rng.integers(-1, 1000, size=n_local, dtype=np.int64)
    mask = np.zeros(n_local, dtype=bool)
    mask[list(frontier)] = True
    return NodeSnapshot(
        parent=parent, curr=np.flatnonzero(mask), curr_mask=mask
    )


# --- serialisation ------------------------------------------------------------
@pytest.mark.parametrize("n_local", [1, 7, 8, 9, 64, 129])
def test_snapshot_roundtrip_odd_sizes(n_local):
    frontier = tuple(range(0, n_local, 3))
    snap = _snapshot(n_local, frontier, seed=n_local)
    buf = snapshot_to_bytes(snap)
    assert len(buf) == snap.nbytes  # serialisation matches the cost model
    back = snapshot_from_bytes(buf, n_local)
    assert np.array_equal(back.parent, snap.parent)
    assert np.array_equal(back.curr, snap.curr)
    assert np.array_equal(back.curr_mask, snap.curr_mask)


def test_snapshot_roundtrip_empty_frontier():
    snap = _snapshot(40)
    back = snapshot_from_bytes(snapshot_to_bytes(snap), 40)
    assert back.curr.size == 0
    assert np.array_equal(back.parent, snap.parent)


def test_snapshot_serialise_rejects_inconsistent_frontier():
    bad = NodeSnapshot(
        parent=np.zeros(8, dtype=np.int64),
        curr=np.array([3], dtype=np.int64),
        curr_mask=np.zeros(8, dtype=bool),  # disagrees with curr
    )
    with pytest.raises(ReproError, match="disagree"):
        snapshot_to_bytes(bad)


def test_snapshot_deserialise_rejects_short_buffer():
    with pytest.raises(ConfigError, match="too short"):
        snapshot_from_bytes(np.zeros(10, dtype=np.uint8), n_local=8)


# --- placement ----------------------------------------------------------------
@pytest.mark.parametrize(
    "num_nodes,nps,k,m",
    [(8, 4, 4, 2), (8, 2, 4, 2), (16, 4, 4, 2), (12, 3, 6, 2), (9, 4, 4, 2)],
)
def test_placement_rules_hold_for_every_owner(num_nodes, nps, k, m):
    plc = ShardPlacement(
        num_nodes=num_nodes,
        nodes_per_super_node=nps,
        data_shards=k,
        parity_shards=m,
    )
    for owner in range(num_nodes):
        holders = plc.holders(owner)
        assert len(holders) == k + m
        assert len(set(holders)) == k + m  # all distinct
        assert owner not in holders  # never the owner
        assert ShardPlacement.buddy(owner, num_nodes) not in holders
        # Rack-aware: no supernode hosts a second shard until every
        # supernode with eligible nodes hosts its first.
        racks = [h // nps for h in holders]
        eligible_racks = {
            r // nps
            for r in range(num_nodes)
            if r not in (owner, ShardPlacement.buddy(owner, num_nodes))
        }
        first_lap = racks[: len(eligible_racks)]
        assert len(set(first_lap)) == len(first_lap)


def test_placement_is_deterministic():
    plc = ShardPlacement(8, 4, 4, 2)
    assert plc.holders(3) == plc.holders(3)


def test_buddy_pairing():
    assert ShardPlacement.buddy(0, 8) == 1
    assert ShardPlacement.buddy(1, 8) == 0
    assert ShardPlacement.buddy(6, 7) == 5  # pair falls off the end


def test_placement_rejects_too_few_nodes():
    with pytest.raises(ConfigError, match="needs >= 8 nodes"):
        ShardPlacement(num_nodes=7, nodes_per_super_node=4,
                       data_shards=4, parity_shards=2)


# --- the sharded store --------------------------------------------------------
def _store(num_nodes=8, k=4, m=2, nps=4):
    return ShardedCheckpointStore(
        RSCode(k, m),
        ShardPlacement(num_nodes=num_nodes, nodes_per_super_node=nps,
                       data_shards=k, parity_shards=m),
    )


def _checkpoint(num_nodes=8, n_local=32, level=2):
    snaps = tuple(
        _snapshot(n_local, frontier=(owner % n_local,), seed=owner)
        for owner in range(num_nodes)
    )
    return Checkpoint(level=level, snapshots=snaps, policy_state=("td", 1))


def _assert_checkpoints_equal(a, b):
    assert a.level == b.level
    assert a.policy_state == b.policy_state
    assert len(a.snapshots) == len(b.snapshots)
    for sa, sb in zip(a.snapshots, b.snapshots):
        assert np.array_equal(sa.parent, sb.parent)
        assert np.array_equal(sa.curr, sb.curr)
        assert np.array_equal(sa.curr_mask, sb.curr_mask)


def test_store_restore_always_decodes_bit_identically():
    store = _store()
    ckpt = _checkpoint()
    store.save(ckpt)
    assert store.has_checkpoint and store.last_level == 2
    _assert_checkpoints_equal(store.restore(), ckpt)


def test_store_storage_overhead_is_rs_not_buddy():
    store = _store()
    ckpt = _checkpoint()
    store.save(ckpt)
    ratio = store.storage_bytes / store.raw_bytes
    assert ratio < 1.6  # acceptance bound; exact is ~(k+m)/k with padding
    assert ratio >= 6 / 4 - 0.01
    assert store.raw_bytes == ckpt.total_bytes


def test_restore_from_empty_store_raises_lookup():
    with pytest.raises(LookupError, match="no checkpoint"):
        _store().restore()


def test_survives_any_two_holder_losses():
    ckpt = _checkpoint()
    for a in range(8):
        for b in range(a + 1, 8):
            store = _store()
            store.save(ckpt)
            lost = store.drop_holder(a) + store.drop_holder(b)
            assert store.shards_lost == lost
            _assert_checkpoints_equal(store.restore(), ckpt)


def test_restore_heals_lost_shards_back_onto_live_holders():
    store = _store()
    ckpt = _checkpoint()
    store.save(ckpt)
    baseline = store.storage_bytes
    store.drop_holder(5)
    assert store.storage_bytes < baseline
    store.restore()
    assert store.storage_bytes == baseline  # healed in the same pass
    assert store.shards_rebuilt > 0
    assert store.holder_bytes(5) > 0


def test_restore_skips_dead_holders_when_healing():
    store = _store()
    store.save(_checkpoint())
    store.drop_holder(5)
    store.restore(dead=frozenset({5}))
    assert store.holder_bytes(5) == 0  # no disk to write to yet
    store.restore()  # 5 is back: this pass re-covers it
    assert store.holder_bytes(5) > 0


def test_more_than_m_losses_is_unrecoverable():
    store = _store()
    store.save(_checkpoint())
    # Find three holders sharing one owner's group.
    holders = store.placement.holders(0)[:3]
    for rank in holders:
        store.drop_holder(rank)
    with pytest.raises(ReproError, match="unrecoverable checkpoint"):
        store.restore()


def test_scrub_detects_and_repairs_corruption():
    store = _store()
    ckpt = _checkpoint()
    store.save(ckpt)
    rng = np.random.default_rng(5)
    assert store.corrupt_shard(2, rng) is True
    checked, repaired = store.scrub()
    assert repaired == 1
    assert store.scrub_repairs == 1
    assert store.shards_corrupted == 1
    # CRCs are whole again and the data decodes clean.
    checked2, repaired2 = store.scrub()
    assert repaired2 == 0
    _assert_checkpoints_equal(store.restore(), ckpt)


def test_scrub_repairs_missing_shards_from_survivors():
    store = _store()
    ckpt = _checkpoint()
    store.save(ckpt)
    lost = store.drop_holder(1)
    _, repaired = store.scrub()
    assert repaired == lost
    _assert_checkpoints_equal(store.restore(), ckpt)


def test_scrub_leaves_hopeless_groups_for_restore():
    store = _store()
    store.save(_checkpoint())
    for rank in store.placement.holders(0)[:3]:
        store.drop_holder(rank)
    checked, repaired = store.scrub()  # must not raise
    with pytest.raises(ReproError):
        store.restore()


def test_corrupt_shard_on_empty_holder_is_noop():
    store = _store()
    assert store.corrupt_shard(3, np.random.default_rng(0)) is False


def test_save_replaces_previous_checkpoint():
    store = _store()
    first = _checkpoint(level=1)
    second = _checkpoint(level=4)
    store.save(first)
    written = store.bytes_written
    store.save(second)
    assert store.taken == 2
    assert store.last_level == 4
    assert store.bytes_written == 2 * written  # same-shaped checkpoints
    _assert_checkpoints_equal(store.restore(), second)


def test_store_rejects_mismatched_code_and_placement():
    with pytest.raises(ConfigError, match="disagree"):
        ShardedCheckpointStore(
            RSCode(4, 2),
            ShardPlacement(num_nodes=10, nodes_per_super_node=4,
                           data_shards=4, parity_shards=4),
        )
