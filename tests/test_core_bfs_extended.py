"""Extended BFS tests: determinism, utilisation, compression, fault injection."""

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS
from repro.errors import ValidationError
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph.generators import ring_edges
from repro.graph500.validate import validate_bfs_result

CFG = BFSConfig(hub_count_topdown=16, hub_count_bottomup=16)


def make_bfs(scale=10, seed=13, nodes=8, config=CFG):
    edges = KroneckerGenerator(scale=scale, seed=seed).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    bfs = DistributedBFS(edges, nodes, config=config, nodes_per_super_node=4)
    return edges, graph, root, bfs


# ------------------------------------------------------------- determinism --
def test_identical_runs_produce_identical_traces():
    _, _, root, bfs1 = make_bfs()
    _, _, _, bfs2 = make_bfs()
    r1, r2 = bfs1.run(root), bfs2.run(root)
    assert np.array_equal(r1.parent, r2.parent)
    assert r1.sim_seconds == r2.sim_seconds
    assert [t.direction for t in r1.traces] == [t.direction for t in r2.traces]
    assert [t.records_sent for t in r1.traces] == [t.records_sent for t in r2.traces]
    assert r1.stats == r2.stats


def test_rerunning_same_root_is_stable():
    _, _, root, bfs = make_bfs()
    r1 = bfs.run(root)
    r2 = bfs.run(root)
    assert np.array_equal(r1.parent, r2.parent)
    assert r1.sim_seconds == pytest.approx(r2.sim_seconds, rel=1e-9)


# ------------------------------------------------------------- utilisation --
def test_utilization_reports_every_unit():
    _, _, root, bfs = make_bfs()
    bfs.run(root)
    util = bfs.utilization()
    # 8 nodes x 8 units each.
    assert len(util) == 8 * 8
    assert all(0.0 <= u <= 1.0 for u in util.values())
    # Communication MPEs did work.
    assert util["node0.M0"] > 0
    assert util["node0.M1"] > 0


def test_utilization_by_kind_cpe_vs_mpe_mode():
    """CPE mode loads clusters; MPE mode loads the aux MPEs instead."""
    big = BFSConfig(
        hub_count_topdown=16, hub_count_bottomup=16, quick_path_threshold=0
    )
    _, _, root, cpe_bfs = make_bfs(scale=12, config=big)
    cpe_bfs.run(root)
    cpe = cpe_bfs.utilization_by_unit_kind()
    mpe_cfg = BFSConfig(
        use_cpe_clusters=False, hub_count_topdown=16, hub_count_bottomup=16
    )
    _, _, root2, mpe_bfs = make_bfs(scale=12, config=mpe_cfg)
    mpe_bfs.run(root2)
    mpe = mpe_bfs.utilization_by_unit_kind()
    cluster_keys = [k for k in cpe if k.startswith("C")]
    assert sum(cpe[k] for k in cluster_keys) > 0
    assert sum(mpe[k] for k in cluster_keys) == 0  # MPE mode never uses them
    assert mpe["M2"] + mpe["M3"] > cpe["M2"] + cpe["M3"]


# -------------------------------------------------------------- compression --
def test_compression_reduces_wire_bytes_not_results():
    edges, graph, root, plain_bfs = make_bfs(seed=29)
    plain = plain_bfs.run(root)
    comp_cfg = BFSConfig(
        compression_ratio=4.0, hub_count_topdown=16, hub_count_bottomup=16
    )
    comp_bfs = DistributedBFS(edges, 8, config=comp_cfg, nodes_per_super_node=4)
    comp = comp_bfs.run(root)
    validate_bfs_result(graph, edges, root, comp.parent)
    assert np.array_equal(comp.depths(), plain.depths())
    assert comp.stats["bytes"] < plain.stats["bytes"]
    assert comp.stats["messages"] == plain.stats["messages"]


def test_compression_ratio_validation():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        BFSConfig(compression_ratio=0.5)


# ---------------------------------------------------------- fault injection --
def test_validation_catches_dropped_message():
    """If the runtime silently lost a handler update, validation screams."""
    edges, graph, root, bfs = make_bfs(seed=31)
    result = bfs.run(root)
    corrupted = result.parent.copy()
    # Simulate a lost forward message: one tree leaf never got its parent.
    reached = np.flatnonzero((corrupted >= 0) & (np.arange(len(corrupted)) != root))
    leaves = np.setdiff1d(reached, corrupted)
    corrupted[leaves[0]] = -1
    with pytest.raises(ValidationError):
        validate_bfs_result(graph, edges, root, corrupted)


def test_validation_catches_misrouted_record():
    """A record applied at the wrong owner produces a non-edge parent."""
    edges, graph, root, bfs = make_bfs(seed=33)
    result = bfs.run(root)
    corrupted = result.parent.copy()
    depth = result.depths()
    for v in np.flatnonzero(corrupted >= 0):
        if v == root:
            continue
        wrong = [
            int(u)
            for u in np.flatnonzero(depth == depth[v] - 1)
            if not graph.has_edge(int(u), int(v))
        ]
        if wrong:
            corrupted[v] = wrong[0]
            break
    else:
        pytest.skip("no corruptible vertex found")
    with pytest.raises(ValidationError):
        validate_bfs_result(graph, edges, root, corrupted)


# --------------------------------------------------------------- edge cases --
def test_root_is_a_hub():
    edges, graph, _, bfs = make_bfs(seed=35)
    assert bfs.hubs is not None
    root = int(bfs.hubs.hub_ids[0])
    result = bfs.run(root)
    validate_bfs_result(graph, edges, root, result.parent)


def test_ring_no_direction_switch():
    """Uniform degree-2 graphs should stay top-down throughout."""
    edges = ring_edges(256)
    bfs = DistributedBFS(edges, 4, config=CFG, nodes_per_super_node=2)
    result = bfs.run(0)
    assert result.levels == 129  # radius 128 + the final empty check level
    assert all(t.direction == "topdown" for t in result.traces[:5])


def test_construction_estimate_positive_and_scaling():
    edges = KroneckerGenerator(scale=10, seed=1).generate()
    small = DistributedBFS(edges, 2, config=CFG, nodes_per_super_node=2)
    large = DistributedBFS(edges, 8, config=CFG, nodes_per_super_node=2)
    assert small.construction_seconds > large.construction_seconds > 0
