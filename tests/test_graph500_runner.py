"""End-to-end Graph500 runner tests."""

import pytest

from repro import Graph500Runner
from repro.core import BFSConfig
from repro.errors import ConfigError

CFG = BFSConfig(hub_count_topdown=8, hub_count_bottomup=8)


def test_full_benchmark_small():
    runner = Graph500Runner(
        scale=9, nodes=4, seed=3, config=CFG, nodes_per_super_node=2
    )
    report = runner.run(num_roots=3)
    assert len(report.runs) == 3
    assert report.all_validated
    assert report.gteps > 0
    assert report.construction_seconds > 0
    for run in report.runs:
        assert run.traversed_edges > 0
        assert run.seconds > 0
        assert run.levels >= 1


def test_report_rendering():
    report = Graph500Runner(
        scale=8, nodes=2, seed=1, config=CFG, nodes_per_super_node=2
    ).run(num_roots=2)
    summary = report.summary()
    assert "GTEPS" in summary
    assert "all validated" in summary
    table = report.per_root_table()
    assert "root" in table and "levels" in table


def test_roots_are_deterministic_across_runs():
    kw = dict(scale=8, nodes=2, seed=7, config=CFG, nodes_per_super_node=2)
    r1 = Graph500Runner(**kw).run(num_roots=2)
    r2 = Graph500Runner(**kw).run(num_roots=2)
    assert [a.root for a in r1.runs] == [b.root for b in r2.runs]
    assert [a.traversed_edges for a in r1.runs] == [b.traversed_edges for b in r2.runs]
    assert r1.gteps == pytest.approx(r2.gteps)


def test_variant_selection():
    report = Graph500Runner(
        scale=8, nodes=4, variant="direct-mpe", config=CFG, nodes_per_super_node=2
    ).run(num_roots=2)
    assert report.variant == "direct-mpe"
    assert report.all_validated


def test_runner_validation():
    with pytest.raises(ConfigError):
        Graph500Runner(scale=10, nodes=0)
    with pytest.raises(ConfigError):
        Graph500Runner(scale=10, nodes=4, drain_workers=0)
    with pytest.raises(ConfigError):
        Graph500Runner(scale=10, nodes=4, drain_backend="gpu")


def test_parallel_drain_run_matches_serial_and_reports():
    kw = dict(scale=8, nodes=4, seed=3, config=CFG, nodes_per_super_node=2,
              engine_partitions=2)
    serial = Graph500Runner(**kw).run(num_roots=2)
    runner = Graph500Runner(**kw, drain_workers=2)
    parallel = runner.run(num_roots=2)
    assert parallel.all_validated
    assert [r.seconds for r in parallel.runs] == [r.seconds for r in serial.runs]
    assert runner.partition_report is not None
    assert runner.partition_report["drain_workers"] == 2


def test_run_destroys_shared_segment_on_failure(monkeypatch):
    """Regression: a crash propagating out of the run (e.g. a worker
    dying mid-root) must not strand the hosted CSR segment."""
    from multiprocessing import shared_memory

    from repro.graph import shm

    if not shm.shared_memory_available():
        pytest.skip("no usable shared-memory mount")
    names = []
    real_host = shm.SharedCSR.host.__func__

    def capturing_host(cls, graph):
        shared = real_host(cls, graph)
        names.append(shared.name)
        return shared

    monkeypatch.setattr(shm.SharedCSR, "host", classmethod(capturing_host))
    runner = Graph500Runner(scale=8, nodes=4, seed=3, config=CFG,
                            nodes_per_super_node=2, workers=2)

    def boom(*args, **kwargs):
        raise RuntimeError("worker died mid-root")

    monkeypatch.setattr(runner, "_run_steps", boom)
    with pytest.raises(RuntimeError, match="worker died"):
        runner.run(num_roots=2)
    assert names, "workers>1 run must host the CSR in shared memory"
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=names[0])
