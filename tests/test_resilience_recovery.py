"""Checkpointed-recovery tests: crashes, stragglers, dead letters, suite
degradation."""

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS
from repro.errors import SimulatedCrash, SimulationError
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.runner import Graph500Runner
from repro.graph500.validate import validate_bfs_result
from repro.network.simmpi import SimCluster
from repro.resilience import ResilienceConfig
from repro.sim.engine import Engine
from repro.sim.faults import (
    NodeFaultInjector,
    NodeFaultPlan,
    RandomFaultInjector,
    RandomFaultPlan,
)

CFG = BFSConfig(hub_count_topdown=16, hub_count_bottomup=16)


def make_bfs(seed=41, resilience=None):
    edges = KroneckerGenerator(scale=10, seed=seed).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    bfs = DistributedBFS(
        edges, 8, config=CFG, nodes_per_super_node=4, resilience=resilience
    )
    return edges, graph, root, bfs


def test_crash_without_checkpoint_raises():
    _, _, root, bfs = make_bfs(
        resilience=ResilienceConfig(reliable_transport=True)
    )
    NodeFaultInjector(bfs.cluster, NodeFaultPlan(crash_at={3: 1e-4}))
    with pytest.raises(SimulatedCrash):
        bfs.run(root)


def test_crash_recovers_from_checkpoint():
    """The acceptance scenario: a mid-traversal node crash rewinds to the
    last level checkpoint and finishes with a tree identical to the
    fault-free run."""
    edges, graph, root, clean_bfs = make_bfs()
    clean = clean_bfs.run(root)
    res = ResilienceConfig(reliable_transport=True, checkpoint_interval=1)
    _, _, _, bfs = make_bfs(resilience=res)
    NodeFaultInjector(bfs.cluster, NodeFaultPlan(crash_at={3: 1e-4}))
    result = bfs.run(root)
    assert result.stats["recoveries"] == 1
    assert result.stats["checkpoints"] >= 1
    validate_bfs_result(graph, edges, root, result.parent)
    assert np.array_equal(result.parent, clean.parent)
    assert np.array_equal(result.depths(), clean.depths())
    # Recovery replays levels: strictly slower than the clean run.
    assert result.sim_seconds > clean.sim_seconds


def test_crash_recovery_with_sparse_checkpoints():
    """checkpoint_interval > 1 still recovers — just replays more levels."""
    edges, graph, root, clean_bfs = make_bfs()
    clean = clean_bfs.run(root)
    res = ResilienceConfig(reliable_transport=True, checkpoint_interval=3)
    _, _, _, bfs = make_bfs(resilience=res)
    NodeFaultInjector(bfs.cluster, NodeFaultPlan(crash_at={5: 2e-4}))
    result = bfs.run(root)
    assert result.stats["recoveries"] == 1
    validate_bfs_result(graph, edges, root, result.parent)
    assert np.array_equal(result.depths(), clean.depths())


def test_crash_recovery_deterministic_replay():
    def one_run():
        res = ResilienceConfig(
            reliable_transport=True, checkpoint_interval=2, seed=9
        )
        _, _, root, bfs = make_bfs(resilience=res)
        NodeFaultInjector(bfs.cluster, NodeFaultPlan(crash_at={2: 1.5e-4}))
        RandomFaultInjector(
            bfs.cluster, RandomFaultPlan(drop_rate=0.01, seed=13)
        )
        return bfs.run(root)

    a, b = one_run(), one_run()
    assert a.stats == b.stats
    assert a.sim_seconds == b.sim_seconds
    assert np.array_equal(a.parent, b.parent)
    assert a.stats["recoveries"] == 1


def test_straggler_slows_but_stays_correct():
    edges, graph, root, clean_bfs = make_bfs()
    clean = clean_bfs.run(root)
    _, _, _, bfs = make_bfs()
    NodeFaultInjector(bfs.cluster, NodeFaultPlan(stragglers={2: 8.0}))
    result = bfs.run(root)
    assert result.sim_seconds > clean.sim_seconds
    validate_bfs_result(graph, edges, root, result.parent)
    assert np.array_equal(result.depths(), clean.depths())


def test_node_fault_plan_validation():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        NodeFaultPlan(stragglers={0: 0.5})  # factor must be >= 1
    with pytest.raises(ConfigError):
        NodeFaultPlan(crash_at={1: -2.0})  # absolute time must be >= 0


def test_deregistered_rank_collects_dead_letters():
    engine = Engine()
    cluster = SimCluster(engine, num_nodes=4, track_connections=False)
    inbox = []
    for rank in range(4):
        cluster.register(rank, lambda m: inbox.append(m))

    cluster.send(0, 1, "fwd", 64)
    engine.run_until_quiescent()
    assert len(inbox) == 1

    cluster.deregister(1)
    assert not cluster.is_alive(1)
    assert cluster.dead_ranks() == frozenset({1})
    # Traffic *to* the dead rank: delivered nowhere, counted.
    cluster.send(0, 1, "fwd", 64)
    # Traffic *from* the dead rank (in-flight sends of a crashed node).
    cluster.send(1, 2, "fwd", 64)
    engine.run_until_quiescent()
    assert len(inbox) == 1
    assert cluster.stats.value("dead_letters") == 2

    # A replacement node takes the rank over.
    cluster.revive(1, lambda m: inbox.append(m))
    assert cluster.is_alive(1)
    cluster.send(0, 1, "fwd", 64)
    engine.run_until_quiescent()
    assert len(inbox) == 2


def test_unregistered_rank_still_raises():
    """Dead letters are only for *crashed* ranks; sending to a rank that
    never had a handler is still a simulation bug."""
    engine = Engine()
    cluster = SimCluster(engine, num_nodes=2, track_connections=False)
    cluster.register(0, lambda m: None)
    cluster.send(0, 1, "fwd", 8)
    with pytest.raises(SimulationError):
        engine.run_until_quiescent()


def test_engine_cancel_skips_without_advancing_clock():
    engine = Engine()
    fired = []
    engine.call_at(1.0, lambda: fired.append("a"))
    handle = engine.call_at(5.0, lambda: fired.append("b"))
    engine.call_at(2.0, lambda: fired.append("c"))
    engine.cancel(handle)
    engine.run_until_quiescent()
    assert fired == ["a", "c"]
    # The cancelled event at t=5 must not have advanced simulated time.
    assert engine.now == 2.0
    assert len(engine) == 0


def test_runner_skip_policy_records_failed_root():
    """An unrecoverable crash under on_root_failure="skip" becomes a failed
    RootRun row; the remaining roots still run and validate."""
    runner = Graph500Runner(
        scale=10,
        nodes=8,
        seed=41,
        config=CFG,
        nodes_per_super_node=4,
        resilience=ResilienceConfig(reliable_transport=True),
        node_faults=NodeFaultPlan(crash_at={3: 1e-4}),
        on_root_failure="skip",
    )
    report = runner.run(num_roots=3)
    assert len(report.runs) == 3
    failed = report.failed_runs
    assert len(failed) == 1
    assert failed[0].failure is not None and "crash" in failed[0].failure
    assert failed[0].teps == 0.0
    # Harmonic-mean stats exclude the failed root.
    assert len(report.successful_runs) == 2
    assert report.stats.gteps() > 0
    assert all(r.validated for r in report.successful_runs)
    assert "node_crashes" in report.extra
    # And the rendering paths handle the degraded report.
    assert "FAILED" in report.per_root_table()
    assert "1 root(s) FAILED" in report.summary()


def test_runner_abort_policy_raises():
    runner = Graph500Runner(
        scale=10,
        nodes=8,
        seed=41,
        config=CFG,
        nodes_per_super_node=4,
        resilience=ResilienceConfig(reliable_transport=True),
        node_faults=NodeFaultPlan(crash_at={3: 1e-4}),
        on_root_failure="abort",
    )
    with pytest.raises(SimulatedCrash):
        runner.run(num_roots=3)


def test_runner_checkpoint_recovery_end_to_end():
    """Runner + checkpoints: the crashing root recovers in-place instead of
    failing, and every root validates."""
    runner = Graph500Runner(
        scale=10,
        nodes=8,
        seed=41,
        config=CFG,
        nodes_per_super_node=4,
        resilience=ResilienceConfig(
            reliable_transport=True, checkpoint_interval=2
        ),
        node_faults=NodeFaultPlan(crash_at={3: 1e-4}),
        on_root_failure="skip",
    )
    report = runner.run(num_roots=3)
    assert len(report.failed_runs) == 0
    assert report.all_validated
    assert report.extra.get("recoveries") == 1
    assert report.extra.get("checkpoints", 0) >= 1
