"""Property tests for the GF(256) tables and the Reed–Solomon codec.

The durability claim — "any m simultaneous losses rebuild the snapshot
bit-identically" — rests on the codec round-tripping *every* erasure
pattern of weight <= m. These tests enumerate them exhaustively for the
shipped RS(4, 2) geometry and spot-check other (k, m) shapes, alongside
the field identities the tables must satisfy.
"""

import itertools

import numpy as np
import pytest

from repro.durability import (
    RSCode,
    gf_div,
    gf_inv,
    gf_inv_matrix,
    gf_matmul,
    gf_mul,
)
from repro.durability.gf256 import GF_EXP, GF_LOG
from repro.errors import ConfigError


# --- field properties ---------------------------------------------------------
def test_log_exp_tables_are_inverse_bijections():
    # exp is 255-periodic over the doubled table; log inverts it.
    assert GF_EXP.shape == (510,)
    assert np.array_equal(GF_EXP[:255], GF_EXP[255:])
    nonzero = np.arange(1, 256, dtype=np.uint8)
    assert np.array_equal(GF_EXP[GF_LOG[nonzero]], nonzero)
    assert sorted(GF_EXP[:255].tolist()) == list(range(1, 256))


def test_gf_mul_matches_carryless_reference():
    def slow_mul(a, b):
        p = 0
        for _ in range(8):
            if b & 1:
                p ^= a
            b >>= 1
            a <<= 1
            if a & 0x100:
                a ^= 0x11D
        return p

    rng = np.random.default_rng(7)
    a = rng.integers(0, 256, size=512, dtype=np.uint8)
    b = rng.integers(0, 256, size=512, dtype=np.uint8)
    got = gf_mul(a, b)
    expected = [slow_mul(int(x), int(y)) for x, y in zip(a, b)]
    assert got.tolist() == expected


def test_field_axioms_on_random_triples():
    rng = np.random.default_rng(11)
    a, b, c = (rng.integers(0, 256, size=256, dtype=np.uint8) for _ in range(3))
    assert np.array_equal(gf_mul(a, b), gf_mul(b, a))
    assert np.array_equal(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)))
    # Distributivity over XOR (the field's addition).
    assert np.array_equal(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c))
    nz = a[a != 0]
    assert np.all(gf_mul(nz, gf_inv(nz)) == 1)
    assert np.array_equal(gf_div(gf_mul(nz, b[: len(nz)]), nz), b[: len(nz)])


def test_matrix_inverse_round_trips():
    rng = np.random.default_rng(3)
    for n in (1, 2, 4, 7):
        # Rejection-sample an invertible matrix.
        while True:
            m = rng.integers(0, 256, size=(n, n), dtype=np.uint8)
            try:
                inv = gf_inv_matrix(m)
                break
            except ConfigError:
                continue
        assert np.array_equal(gf_matmul(m, inv), np.eye(n, dtype=np.uint8))


def test_singular_matrix_rejected():
    singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
    with pytest.raises(ConfigError, match="singular"):
        gf_inv_matrix(singular)


# --- codec --------------------------------------------------------------------
def test_generator_is_systematic():
    code = RSCode(4, 2)
    assert code.total_shards == 6
    assert np.array_equal(
        code.generator[:4], np.eye(4, dtype=np.uint8)
    )  # data shards pass through verbatim


def test_shard_length_ceils_and_floors():
    code = RSCode(4, 2)
    assert code.shard_length(0) == 1  # degenerate payload still shards
    assert code.shard_length(1) == 1
    assert code.shard_length(4) == 1
    assert code.shard_length(5) == 2
    assert code.shard_length(8000) == 2000


@pytest.mark.parametrize("k,m", [(4, 2), (2, 1), (2, 2), (8, 3), (1, 1)])
def test_roundtrip_all_erasure_patterns_within_budget(k, m):
    """Every erasure pattern of weight <= m decodes bit-identically —
    including the patterns that kill data shards and survive on parity."""
    code = RSCode(k, m)
    rng = np.random.default_rng(100 * k + m)
    data = rng.integers(0, 256, size=137, dtype=np.uint8)
    shards = code.encode(data)
    assert shards.shape == (k + m, code.shard_length(len(data)))
    total = k + m
    for weight in range(m + 1):
        for lost in itertools.combinations(range(total), weight):
            present = [i for i in range(total) if i not in lost]
            got = code.decode(present, shards[present], len(data))
            assert np.array_equal(got, data), (
                f"pattern {lost} failed for RS({k},{m})"
            )


def test_decode_needs_k_shards():
    code = RSCode(4, 2)
    data = np.arange(16, dtype=np.uint8)
    shards = code.encode(data)
    with pytest.raises(ConfigError, match="unrecoverable"):
        code.decode([0, 1, 2], shards[[0, 1, 2]], len(data))


def test_decode_with_extra_survivors_uses_lowest_k():
    code = RSCode(4, 2)
    data = np.arange(100, 123, dtype=np.uint8)
    shards = code.encode(data)
    got = code.decode(list(range(6)), shards, len(data))
    assert np.array_equal(got, data)


def test_decode_rejects_bad_survivor_sets():
    code = RSCode(4, 2)
    shards = code.encode(np.arange(16, dtype=np.uint8))
    with pytest.raises(ConfigError, match="duplicate"):
        code.decode([0, 0, 1, 2], shards[[0, 0, 1, 2]], 16)
    with pytest.raises(ConfigError, match="out of range"):
        code.decode([0, 1, 2, 6], shards[[0, 1, 2, 3]], 16)
    with pytest.raises(ConfigError, match="align"):
        code.decode([0, 1, 2, 3], shards[[0, 1, 2]], 16)


def test_empty_payload_roundtrip():
    code = RSCode(4, 2)
    shards = code.encode(np.zeros(0, dtype=np.uint8))
    got = code.decode([2, 3, 4, 5], shards[2:], 0)
    assert got.size == 0


def test_bad_geometry_rejected():
    with pytest.raises(ConfigError):
        RSCode(0, 2)
    with pytest.raises(ConfigError):
        RSCode(4, 0)
    with pytest.raises(ConfigError):
        RSCode(200, 100)  # k + m > 255 leaves no distinct field points
