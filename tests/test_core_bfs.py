"""End-to-end distributed BFS tests: correctness, traces, failure modes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import VARIANTS, make_variant
from repro.core import BFSConfig, DistributedBFS
from repro.errors import ConfigError, ConnectionMemoryExhausted, SpmOverflow
from repro.graph import CSRGraph, EdgeList, KroneckerGenerator
from repro.graph.generators import erdos_renyi_edges, grid_edges, ring_edges, star_edges
from repro.graph500.reference import reference_depths
from repro.graph500.validate import validate_bfs_result

#: Small hub counts so toy graphs still exercise the message paths.
TEST_CFG = BFSConfig(hub_count_topdown=8, hub_count_bottomup=8)


def check(edges, nodes, root, config=TEST_CFG, nps=4, **kw):
    graph = CSRGraph.from_edges(edges)
    bfs = DistributedBFS(edges, nodes, config=config, nodes_per_super_node=nps, **kw)
    result = bfs.run(root)
    depth = validate_bfs_result(graph, edges, root, result.parent)
    ref = reference_depths(graph, root)
    assert np.array_equal(depth, ref)
    return bfs, result


def first_root(edges):
    g = CSRGraph.from_edges(edges)
    return int(np.flatnonzero(g.degrees() > 0)[0])


# ---------------------------------------------------------------- correctness --
def test_kronecker_all_variants_validate():
    edges = KroneckerGenerator(scale=10, seed=1).generate()
    root = first_root(edges)
    graph = CSRGraph.from_edges(edges)
    ref = reference_depths(graph, root)
    for name in VARIANTS:
        bfs = make_variant(name, edges, 8, config=TEST_CFG, nodes_per_super_node=4)
        result = bfs.run(root)
        depth = validate_bfs_result(graph, edges, root, result.parent)
        assert np.array_equal(depth, ref), name


def test_ring_deep_graph():
    edges = ring_edges(64)
    check(edges, 4, 0)


def test_star_hub_workload():
    check(star_edges(128), 8, 0)
    check(star_edges(128), 8, 77)  # from a leaf


def test_grid_moderate_diameter():
    check(grid_edges(16, 16), 8, 0)


def test_disconnected_graph_leaves_other_components_untouched():
    e = EdgeList(np.array([0, 1, 40, 41]), np.array([1, 2, 41, 42]), 64)
    bfs, result = check(e, 4, 0)
    assert result.parent[40] == -1
    assert result.parent[42] == -1
    assert (result.parent >= 0).sum() == 3


def test_single_node_degenerate():
    edges = KroneckerGenerator(scale=8, seed=5).generate()
    check(edges, 1, first_root(edges), nps=1)


def test_two_nodes():
    edges = KroneckerGenerator(scale=8, seed=5).generate()
    check(edges, 2, first_root(edges), nps=2)


def test_many_nodes_small_graph():
    edges = KroneckerGenerator(scale=8, seed=6).generate()
    check(edges, 16, first_root(edges), nps=4)


def test_multiple_roots_reuse_instance():
    edges = KroneckerGenerator(scale=9, seed=7).generate()
    graph = CSRGraph.from_edges(edges)
    bfs = DistributedBFS(edges, 4, config=TEST_CFG, nodes_per_super_node=2)
    roots = np.flatnonzero(graph.degrees() > 0)[:4]
    last_end = 0.0
    for root in roots:
        result = bfs.run(int(root))
        validate_bfs_result(graph, edges, int(root), result.parent)
        # Per-root windows never overlap.
        assert result.traces[0].start >= last_end
        last_end = result.traces[-1].finish
        assert result.sim_seconds > 0


def test_erdos_renyi_uniform_degrees():
    edges = erdos_renyi_edges(512, 6.0, seed=3)
    check(edges, 8, first_root(edges))


# -------------------------------------------------------------- configurations --
def test_pure_topdown_matches_reference():
    cfg = BFSConfig(
        direction_optimizing=False,
        use_hub_prefetch=False,
        hub_count_topdown=8,
        hub_count_bottomup=8,
    )
    edges = KroneckerGenerator(scale=10, seed=2).generate()
    _, result = check(edges, 8, first_root(edges), config=cfg)
    assert all(t.direction == "topdown" for t in result.traces)


def test_hub_prefetch_reduces_records():
    edges = KroneckerGenerator(scale=11, seed=3).generate()
    root = first_root(edges)
    no_hubs = BFSConfig(use_hub_prefetch=False)
    with_hubs = BFSConfig(hub_count_topdown=32, hub_count_bottomup=32)
    _, r_plain = check(edges, 8, root, config=no_hubs)
    _, r_hubs = check(edges, 8, root, config=with_hubs)
    assert r_hubs.stats["hub_settled"] > 0
    assert r_hubs.stats["records_sent"] < r_plain.stats["records_sent"]


def test_direction_optimization_switches_and_saves_records():
    edges = KroneckerGenerator(scale=11, seed=4).generate()
    root = first_root(edges)
    hybrid = BFSConfig(use_hub_prefetch=False)
    plain = BFSConfig(direction_optimizing=False, use_hub_prefetch=False)
    _, r_hybrid = check(edges, 8, root, config=hybrid)
    _, r_plain = check(edges, 8, root, config=plain)
    assert r_hybrid.stats["bu_levels"] >= 1
    assert r_hybrid.stats["records_sent"] < r_plain.stats["records_sent"]


def test_bottomup_full_flush_variant():
    cfg = BFSConfig(bottomup_chunk=0, hub_count_topdown=8, hub_count_bottomup=8)
    edges = KroneckerGenerator(scale=10, seed=8).generate()
    check(edges, 8, first_root(edges), config=cfg)


def test_block_partition_mode():
    cfg = BFSConfig(
        partition_mode="block", hub_count_topdown=8, hub_count_bottomup=8
    )
    edges = KroneckerGenerator(scale=10, seed=9).generate()
    check(edges, 8, first_root(edges), config=cfg)


def test_custom_group_width():
    cfg = BFSConfig(group_width=2, hub_count_topdown=8, hub_count_bottomup=8)
    edges = KroneckerGenerator(scale=10, seed=10).generate()
    check(edges, 8, first_root(edges), config=cfg)


# ------------------------------------------------------------------- traces --
def test_traces_are_complete_and_ordered():
    edges = KroneckerGenerator(scale=10, seed=11).generate()
    _, result = check(edges, 8, first_root(edges))
    assert len(result.traces) == result.levels
    for a, b in zip(result.traces, result.traces[1:]):
        assert b.start >= a.finish
        assert b.level == a.level + 1
    assert result.traces[0].frontier_vertices == 1
    total_records = sum(t.records_sent for t in result.traces)
    assert total_records == result.stats["records_sent"]


def test_depths_accessor():
    edges = ring_edges(16)
    _, result = check(edges, 4, 0)
    d = result.depths()
    assert d[0] == 0 and d.max() == 8


# --------------------------------------------------------------- failure modes --
def test_direct_cpe_spm_overflow_at_scale():
    """Direct CPE needs per-destination staging for every node: at 1024
    nodes the 64 KB SPM can't hold it (Figure 11's crash)."""
    edges = KroneckerGenerator(scale=11, seed=1).generate()
    cfg = BFSConfig(use_relay=False, hub_count_topdown=8, hub_count_bottomup=8)
    with pytest.raises(SpmOverflow):
        DistributedBFS(edges, 1024, config=cfg, nodes_per_super_node=256)


def test_direct_connection_exhaustion_at_scale():
    """Direct messaging at 16,384 nodes exceeds the MPI memory budget."""
    edges = KroneckerGenerator(scale=15, seed=1).generate()
    cfg = BFSConfig(
        use_relay=False,
        use_cpe_clusters=False,  # dodge the SPM crash to reach this one
        hub_count_topdown=8,
        hub_count_bottomup=8,
    )
    with pytest.raises(ConnectionMemoryExhausted):
        DistributedBFS(edges, 16_384, config=cfg, nodes_per_super_node=256)


def test_relay_survives_both_failure_modes():
    """The paper's final variant constructs fine at the same scales."""
    edges = KroneckerGenerator(scale=15, seed=1).generate()
    cfg = BFSConfig(hub_count_topdown=8, hub_count_bottomup=8)
    bfs = DistributedBFS(edges, 16_384, config=cfg, nodes_per_super_node=256)
    assert bfs.shuffle_plan is not None


def test_validation_errors():
    edges = KroneckerGenerator(scale=8, seed=1).generate()
    with pytest.raises(ConfigError):
        DistributedBFS(edges, 0)
    with pytest.raises(ConfigError):
        DistributedBFS(edges, 8, config=BFSConfig(partition_mode="cyclic"))
    bfs = DistributedBFS(edges, 4, config=TEST_CFG, nodes_per_super_node=2)
    with pytest.raises(ConfigError):
        bfs.run(1 << 20)


# ------------------------------------------------------------------ properties --
@settings(max_examples=10, deadline=None)
@given(
    scale=st.integers(min_value=6, max_value=9),
    nodes=st.sampled_from([1, 2, 4, 8]),
    seed=st.integers(min_value=0, max_value=1000),
    relay=st.booleans(),
    cpe=st.booleans(),
)
def test_every_configuration_matches_reference_depths(scale, nodes, seed, relay, cpe):
    edges = KroneckerGenerator(scale=scale, seed=seed).generate()
    graph = CSRGraph.from_edges(edges)
    candidates = np.flatnonzero(graph.degrees() > 0)
    root = int(candidates[seed % len(candidates)])
    cfg = BFSConfig(
        use_relay=relay,
        use_cpe_clusters=cpe,
        hub_count_topdown=4,
        hub_count_bottomup=4,
    )
    bfs = DistributedBFS(edges, nodes, config=cfg, nodes_per_super_node=2)
    result = bfs.run(root)
    depth = validate_bfs_result(graph, edges, root, result.parent)
    assert np.array_equal(depth, reference_depths(graph, root))
