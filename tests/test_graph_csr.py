"""CSR graph construction and query tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.graph import CSRGraph, EdgeList
from repro.graph.generators import ring_edges, star_edges


def test_from_edges_symmetrize_dedup():
    e = EdgeList(np.array([0, 0, 1]), np.array([1, 1, 2]), 3)
    g = CSRGraph.from_edges(e)
    assert g.num_vertices == 3
    assert g.neighbors(0).tolist() == [1]
    assert g.neighbors(1).tolist() == [0, 2]
    assert g.neighbors(2).tolist() == [1]
    assert g.num_edges == 4  # two undirected edges stored twice


def test_self_loops_dropped_by_default():
    e = EdgeList(np.array([0, 1]), np.array([0, 1]), 2)
    g = CSRGraph.from_edges(e)
    assert g.num_edges == 0


def test_from_edges_caches_per_flag_combination():
    """Repeated derivation over one edge list returns the same CSR object;
    different flag combinations build (and cache) distinct graphs."""
    e = EdgeList(np.array([0, 0, 1]), np.array([1, 1, 2]), 3)
    first = CSRGraph.from_edges(e)
    assert CSRGraph.from_edges(e) is first
    directed = CSRGraph.from_edges(e, symmetrize=False)
    assert directed is not first
    assert CSRGraph.from_edges(e, symmetrize=False) is directed
    # A fresh (equal) EdgeList has its own cache — keying is per instance.
    e2 = EdgeList(np.array([0, 0, 1]), np.array([1, 1, 2]), 3)
    assert CSRGraph.from_edges(e2) is not first


def test_prebuilt_graph_threads_through_engines():
    """DistributedBFS and the superstep engines accept a prebuilt CSR and
    reject one whose vertex count disagrees with the edge list."""
    from repro.algorithms import DistributedWCC
    from repro.core.bfs import DistributedBFS

    e = EdgeList(np.array([0, 1, 2]), np.array([1, 2, 3]), 4)
    g = CSRGraph.from_edges(e)
    assert DistributedBFS(e, 2, graph=g).graph is g
    assert DistributedWCC(e, 2, graph=g).engine.graph is g
    wrong = CSRGraph.from_edges(EdgeList(np.array([0]), np.array([1]), 8))
    with pytest.raises(ConfigError):
        DistributedWCC(e, 2, graph=wrong)


def test_directed_construction():
    e = EdgeList(np.array([0]), np.array([1]), 2)
    g = CSRGraph.from_edges(e, symmetrize=False)
    assert g.neighbors(0).tolist() == [1]
    assert g.neighbors(1).tolist() == []


def test_rows_are_sorted():
    e = EdgeList(np.array([0, 0, 0]), np.array([3, 1, 2]), 4)
    g = CSRGraph.from_edges(e, symmetrize=False)
    assert g.neighbors(0).tolist() == [1, 2, 3]


def test_has_edge():
    g = CSRGraph.from_edges(ring_edges(5))
    assert g.has_edge(0, 1)
    assert g.has_edge(0, 4)
    assert not g.has_edge(0, 2)


def test_expand_matches_neighbors():
    g = CSRGraph.from_edges(star_edges(6))
    sources, targets = g.expand(np.array([0]))
    assert sources.tolist() == [0] * 5
    assert sorted(targets.tolist()) == [1, 2, 3, 4, 5]


def test_expand_multiple_and_empty():
    g = CSRGraph.from_edges(ring_edges(6))
    sources, targets = g.expand(np.array([0, 3]))
    assert sources.tolist() == [0, 0, 3, 3]
    assert sorted(targets.tolist()) == [1, 2, 4, 5]
    s, t = g.expand(np.array([], dtype=np.int64))
    assert len(s) == len(t) == 0


def test_expand_with_isolated_vertex():
    e = EdgeList(np.array([0]), np.array([1]), 3)
    g = CSRGraph.from_edges(e)
    s, t = g.expand(np.array([2, 0]))
    assert s.tolist() == [0] and t.tolist() == [1]


def test_row_slice():
    g = CSRGraph.from_edges(ring_edges(6))
    local = g.row_slice(2, 4)
    assert local.num_vertices == 2
    assert local.neighbors(0).tolist() == [1, 3]  # global vertex 2
    assert local.neighbors(1).tolist() == [2, 4]  # global vertex 3
    with pytest.raises(ConfigError):
        g.row_slice(4, 2)


def test_degrees():
    g = CSRGraph.from_edges(star_edges(5))
    assert g.degrees().tolist() == [4, 1, 1, 1, 1]


def test_invalid_csr_rejected():
    with pytest.raises(ConfigError):
        CSRGraph(np.array([1, 2]), np.array([0, 1]))  # row_ptr[0] != 0
    with pytest.raises(ConfigError):
        CSRGraph(np.array([0, 2]), np.array([0]))  # end mismatch
    with pytest.raises(ConfigError):
        CSRGraph(np.array([0, 2, 1]), np.array([0, 1]))  # decreasing


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 31), st.integers(0, 31)), min_size=1, max_size=120
    )
)
def test_expand_agrees_with_per_vertex_neighbors(pairs):
    n = 32
    e = EdgeList(
        np.array([p[0] for p in pairs], dtype=np.int64),
        np.array([p[1] for p in pairs], dtype=np.int64),
        n,
    )
    g = CSRGraph.from_edges(e)
    frontier = np.unique(np.array([p[0] for p in pairs], dtype=np.int64))
    sources, targets = g.expand(frontier)
    expected = []
    for v in frontier:
        for w in g.neighbors(int(v)):
            expected.append((int(v), int(w)))
    assert sorted(zip(sources.tolist(), targets.tolist())) == sorted(expected)
