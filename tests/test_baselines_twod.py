"""2-D partitioned BFS comparator tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.twod import TwoDBFS
from repro.core import BFSConfig, DistributedBFS
from repro.errors import ConfigError
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph.generators import grid_edges, ring_edges, star_edges
from repro.graph500.reference import reference_depths
from repro.graph500.validate import validate_bfs_result

CFG = BFSConfig(hub_count_topdown=16, hub_count_bottomup=16)


def check(edges, R, C, root, nps=4):
    graph = CSRGraph.from_edges(edges)
    bfs = TwoDBFS(edges, R, C, config=CFG, nodes_per_super_node=nps)
    result = bfs.run(root)
    depth = validate_bfs_result(graph, edges, root, result.parent)
    assert np.array_equal(depth, reference_depths(graph, root))
    return bfs, result


def test_kronecker_validates():
    edges = KroneckerGenerator(scale=10, seed=3).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    check(edges, 4, 4, root)


def test_non_square_grids():
    edges = KroneckerGenerator(scale=9, seed=5).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[1])
    check(edges, 2, 8, root)
    check(edges, 8, 2, root)
    check(edges, 1, 4, root)
    check(edges, 4, 1, root)


def test_structured_graphs():
    check(ring_edges(64), 2, 4, 0)
    check(star_edges(64), 4, 2, 0)
    check(grid_edges(8, 8), 2, 2, 5)


def test_single_processor_grid():
    edges = KroneckerGenerator(scale=8, seed=7).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    check(edges, 1, 1, root, nps=1)


def test_connection_set_bounded_by_grid_dims():
    """2-D's analogue of relay's connection bound: row + column mates."""
    edges = KroneckerGenerator(scale=10, seed=9).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    bfs, _ = check(edges, 4, 4, root)
    # Every rank talks only to its R-1 column mates + C-1 row mates.
    assert bfs.cluster.max_connections() <= (4 - 1) + (4 - 1)


def test_vector_owner_partition_is_total():
    edges = ring_edges(64)
    bfs = TwoDBFS(edges, 2, 4, config=CFG, nodes_per_super_node=2)
    v = np.arange(64, dtype=np.int64)
    i, j = bfs.vector_owner(v)
    ranks = i * 4 + j
    counts = np.bincount(ranks, minlength=8)
    assert (counts == 8).all()  # 64 vertices over 8 ranks evenly
    for p in range(8):
        lo, hi = bfs.segment_range(*bfs.coords(p))
        assert (ranks[lo:hi] == p).all()


def test_divisibility_required():
    with pytest.raises(ConfigError):
        TwoDBFS(ring_edges(10), 2, 2)
    with pytest.raises(ConfigError):
        TwoDBFS(ring_edges(16), 0, 2)


def test_root_out_of_range():
    bfs = TwoDBFS(ring_edges(16), 2, 2, config=CFG, nodes_per_super_node=2)
    with pytest.raises(ConfigError):
        bfs.run(99)


def test_comparison_with_1d_on_same_graph():
    """Both decompositions traverse correctly; the 2-D one moves frontier
    bitmaps up columns every level, the 1-D one sends records instead."""
    edges = KroneckerGenerator(scale=10, seed=11).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    one_d = DistributedBFS(edges, 16, config=CFG, nodes_per_super_node=4).run(root)
    two_d = TwoDBFS(edges, 4, 4, config=CFG, nodes_per_super_node=4).run(root)
    assert np.array_equal(one_d.depths(), two_d.depths())
    assert two_d.stats["messages"] > 0
    assert one_d.sim_seconds > 0 and two_d.sim_seconds > 0


@settings(max_examples=8, deadline=None)
@given(
    scale=st.integers(min_value=6, max_value=9),
    grid=st.sampled_from([(2, 2), (2, 4), (4, 2)]),
    seed=st.integers(min_value=0, max_value=100),
)
def test_twod_matches_reference_depths(scale, grid, seed):
    edges = KroneckerGenerator(scale=scale, seed=seed).generate()
    graph = CSRGraph.from_edges(edges)
    candidates = np.flatnonzero(graph.degrees() > 0)
    root = int(candidates[seed % len(candidates)])
    bfs = TwoDBFS(edges, *grid, config=CFG, nodes_per_super_node=2)
    result = bfs.run(root)
    depth = validate_bfs_result(graph, edges, root, result.parent)
    assert np.array_equal(depth, reference_depths(graph, root))
