"""Confront the model's calibrated constants with functional measurements."""

from repro.core import BFSConfig
from repro.perf import PerfParams
from repro.perf.calibration import measure_fractions


def test_optimized_work_fraction_band():
    """With direction opt + hubs, the functional simulator shuffles a small
    fraction of the 2m edge slots — same order as the calibrated 0.12."""
    m = measure_fractions(
        scale=12, nodes=8,
        config=BFSConfig(hub_count_topdown=32, hub_count_bottomup=32),
    )
    p = PerfParams()
    assert m.work_fraction < 0.5
    assert p.work_fraction_optimized / 6 < m.work_fraction < p.work_fraction_optimized * 6


def test_plain_topdown_work_fraction_near_one():
    m = measure_fractions(
        scale=12, nodes=8,
        config=BFSConfig(
            direction_optimizing=False, use_hub_prefetch=False, use_relay=False
        ),
    )
    # Pure top-down touches nearly every directed slot once.
    assert 0.5 < m.work_fraction <= 1.4


def test_optimization_ordering_matches_model():
    """Functional work fractions order the same way the model's constants do."""
    hub_cfg = BFSConfig(hub_count_topdown=32, hub_count_bottomup=32)
    no_hub = BFSConfig(use_hub_prefetch=False)
    plain = BFSConfig(direction_optimizing=False, use_hub_prefetch=False)
    f_hub = measure_fractions(scale=11, nodes=8, config=hub_cfg).work_fraction
    f_nohub = measure_fractions(scale=11, nodes=8, config=no_hub).work_fraction
    f_plain = measure_fractions(scale=11, nodes=8, config=plain).work_fraction
    assert f_hub < f_nohub < f_plain
    p = PerfParams()
    assert (
        p.work_fraction_optimized
        < p.work_fraction_no_hubs
        < p.work_fraction_topdown
    )


def test_level_structure_matches_model_assumption():
    """Kronecker BFS depth is shallow, and the hybrid runs BU levels."""
    m = measure_fractions(
        scale=12, nodes=8,
        config=BFSConfig(hub_count_topdown=32, hub_count_bottomup=32),
    )
    p = PerfParams()
    assert 3 <= m.levels <= p.levels + 3
    assert m.bu_levels >= 1
