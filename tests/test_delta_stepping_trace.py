"""Delta-stepping SSSP and trace-export tests."""

import json

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import DistributedSSSP, edge_weight
from repro.algorithms.delta_stepping import DistributedDeltaStepping
from repro.core import BFSConfig, DistributedBFS
from repro.errors import ConfigError
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph.generators import grid_edges, ring_edges

CFG = BFSConfig(hub_count_topdown=16, hub_count_bottomup=16)
KW = dict(config=CFG, nodes_per_super_node=2)


# -------------------------------------------------------------- delta stepping --
def test_delta_stepping_matches_bellman_ford():
    edges = KroneckerGenerator(scale=9, seed=13).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    bf = DistributedSSSP(edges, 4, **KW).run(root)
    ds = DistributedDeltaStepping(edges, 4, delta=2.0, **KW).run(root)
    assert np.array_equal(
        np.nan_to_num(bf.dist, posinf=-1), np.nan_to_num(ds.dist, posinf=-1)
    )
    assert ds.buckets_processed >= 1


def test_delta_stepping_matches_dijkstra_on_grid():
    edges = grid_edges(6, 6)
    ds = DistributedDeltaStepping(edges, 4, delta=3.0, **KW).run(0)
    g = nx.Graph()
    for u, v in zip(edges.src.tolist(), edges.dst.tolist()):
        g.add_edge(u, v, weight=float(edge_weight(np.array([u]), np.array([v]))[0]))
    expected = nx.single_source_dijkstra_path_length(g, 0)
    for v, d in expected.items():
        assert ds.dist[v] == pytest.approx(d), v


def test_various_deltas_agree():
    edges = ring_edges(24)
    results = [
        DistributedDeltaStepping(edges, 2, delta=d, **KW).run(0).dist
        for d in (1.0, 4.0, 100.0)
    ]
    for r in results[1:]:
        assert np.array_equal(results[0], r)


def test_big_delta_degenerates_to_fewer_buckets():
    edges = KroneckerGenerator(scale=8, seed=15).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    fine = DistributedDeltaStepping(edges, 2, delta=1.0, **KW).run(root)
    coarse = DistributedDeltaStepping(edges, 2, delta=1000.0, **KW).run(root)
    assert coarse.buckets_processed < fine.buckets_processed


def test_delta_validation():
    with pytest.raises(ConfigError):
        DistributedDeltaStepping(ring_edges(8), 2, delta=0.0)
    with pytest.raises(ConfigError):
        DistributedDeltaStepping(ring_edges(8), 2, max_weight=0)
    with pytest.raises(ConfigError):
        DistributedDeltaStepping(ring_edges(8), 2, **KW).run(99)


# ---------------------------------------------------------------------- trace --
def test_trace_export_contains_busy_intervals():
    edges = KroneckerGenerator(scale=9, seed=17).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    bfs = DistributedBFS(edges, 4, config=CFG, nodes_per_super_node=2)
    bfs.enable_tracing()
    bfs.run(root)
    blob = bfs.export_trace()
    trace = json.loads(blob)
    events = trace["traceEvents"]
    assert len(events) > 10
    names = {e["name"] for e in events}
    assert "M0" in names and "M1" in names
    pids = {e["pid"] for e in events}
    # Link busy intervals ride along under a "network" process group.
    assert pids == {f"node{i}" for i in range(4)} | {"network"}
    for e in events[:50]:
        assert e["ph"] == "X"
        assert e["dur"] >= 0
        assert e["ts"] >= 0


def test_tracing_off_by_default():
    edges = ring_edges(16)
    bfs = DistributedBFS(edges, 2, config=CFG, nodes_per_super_node=2)
    bfs.run(0)
    assert json.loads(bfs.export_trace())["traceEvents"] == []


def test_enable_tracing_is_idempotent():
    edges = ring_edges(16)
    bfs = DistributedBFS(edges, 2, config=CFG, nodes_per_super_node=2)
    bfs.enable_tracing()
    bfs.run(0)
    n1 = len(json.loads(bfs.export_trace())["traceEvents"])
    bfs.enable_tracing()  # must not clear recorded intervals
    n2 = len(json.loads(bfs.export_trace())["traceEvents"])
    assert n1 == n2 > 0
