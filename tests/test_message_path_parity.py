"""Parity tests pinning the batched message path to the scalar one.

The vectorized message path (``SimCluster.send_batch`` and everything the
driver stacks on top of it) promises *bit-identical* behaviour to the
scalar sends it replaces: same arrival times, same parents, same stats.
The scalar path stays in the tree as the executable specification; these
tests hold the two together — on the cluster primitive, on the network
pricing, on the pipeline servers, on the reliable transport, and on full
traversals across every configuration axis the driver can take
(mirroring the style of ``tests/test_validator_parity.py``).

Float discipline: every comparison of times here is exact equality, not
approx. The batch path is only allowed vectorization where the IEEE
operations are order-independent; any reassociation would show up as a
failed ``==`` long before it showed up as a wrong traversal.
"""

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.baselines.variants import variant_config
from repro.core.bfs import DistributedBFS
from repro.core.pipeline import ModuleExecution
from repro.errors import ConfigError, SimulationError
from repro.graph.kronecker import KroneckerGenerator
from repro.machine.specs import TAIHULIGHT
from repro.network.cost import NetworkModel
from repro.network.simmpi import SimCluster
from repro.network.topology import FatTreeTopology
from repro.resilience.channel import ReliableChannel
from repro.resilience.config import ResilienceConfig
from repro.sim.engine import Engine
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.resources import Server


# --- driver-level parity: whole traversals, batched vs scalar ---------------
def _edges(scale=9, seed=3):
    return KroneckerGenerator(scale=scale, seed=seed).generate()


def _run_both(variant, nodes, overrides=None, resilience=None, roots=(1, 5)):
    """One traversal set per mode; returns [(results, stats_snapshot), ...]."""
    edges = _edges()
    out = []
    for batch in (False, True):
        cfg = replace(
            variant_config(variant), batch_messages=batch, **(overrides or {})
        )
        bfs = DistributedBFS(edges, nodes, config=cfg, resilience=resilience)
        results = [bfs.run(r) for r in roots]
        out.append((results, bfs.cluster.stats.snapshot()))
    return out


def _assert_identical(scalar, batched):
    (res_s, stats_s), (res_b, stats_b) = scalar, batched
    for a, b in zip(res_s, res_b):
        assert np.array_equal(a.parent, b.parent)
        assert a.levels == b.levels
        assert a.sim_seconds == b.sim_seconds  # exact, not approx
        assert a.stats == b.stats
    assert stats_s == stats_b


@pytest.mark.parametrize(
    "variant", ["relay-cpe", "direct-cpe", "relay-mpe", "direct-mpe"]
)
def test_traversal_parity_across_variants(variant):
    scalar, batched = _run_both(variant, nodes=8)
    _assert_identical(scalar, batched)


def test_traversal_parity_with_codec():
    scalar, batched = _run_both("relay-cpe", nodes=8, overrides={"use_codec": True})
    _assert_identical(scalar, batched)


def test_traversal_parity_single_node():
    scalar, batched = _run_both("relay-cpe", nodes=1)
    _assert_identical(scalar, batched)


def test_traversal_parity_reliable_transport():
    res = ResilienceConfig(reliable_transport=True)
    scalar, batched = _run_both("relay-cpe", nodes=8, resilience=res)
    _assert_identical(scalar, batched)


def test_traversal_parity_reliable_transport_with_checkpoints():
    res = ResilienceConfig(reliable_transport=True, checkpoint_interval=2)
    scalar, batched = _run_both("relay-cpe", nodes=8, resilience=res)
    _assert_identical(scalar, batched)


def test_traversal_parity_under_fault_injector():
    """An installed interceptor owns the send path: the batch API must
    degrade to per-message sends through it, so fault ordinals line up."""
    edges = _edges()
    outcomes = []
    for batch in (False, True):
        cfg = replace(variant_config("relay-cpe"), batch_messages=batch)
        bfs = DistributedBFS(edges, 8, config=cfg)
        plan = FaultPlan(drop={5, 17}, duplicate={9}, tag_prefix="fwd")
        with FaultInjector(bfs.cluster, plan) as injector:
            result = bfs.run(1)
            outcomes.append(
                (
                    result.parent.copy(),
                    result.sim_seconds,
                    injector.matched,
                    injector.dropped,
                    injector.duplicated,
                )
            )
    a, b = outcomes
    assert np.array_equal(a[0], b[0])
    assert a[1:] == b[1:]


# --- cluster-level parity: send_batch vs N sends -----------------------------
def _collecting_cluster(num_nodes=16, nps=4):
    engine = Engine()
    cluster = SimCluster(engine, num_nodes, nodes_per_super_node=nps)
    deliveries = []
    for rank in range(num_nodes):
        cluster.register(
            rank,
            lambda msg: deliveries.append(
                (msg.src, msg.dst, msg.tag, msg.nbytes, msg.arrival_time)
            ),
        )
    return engine, cluster, deliveries


def _mixed_batch():
    # Self-send, intra-super-node, and inter-super-node targets mixed,
    # with staggered (and tied) injection times.
    dests = [0, 1, 5, 9, 2, 13, 0, 7]
    nbytes = [64, 4096, 128, 65536, 0, 1024, 256, 4096]
    at_times = [0.0, 0.0, 1e-6, 1e-6, 2e-6, 2e-6, 2e-6, 5e-6]
    return dests, nbytes, at_times


def test_send_batch_matches_scalar_sends_exactly():
    dests, nbytes, ats = _mixed_batch()
    eng_s, clu_s, del_s = _collecting_cluster()
    for d, nb, at in zip(dests, nbytes, ats):
        clu_s.send(0, d, "t", nb, at_time=at)
    eng_s.run()
    eng_b, clu_b, del_b = _collecting_cluster()
    clu_b.send_batch(0, dests, "t", nbytes, at_times=ats)
    eng_b.run()
    assert del_s == del_b  # same order, same exact arrival floats
    assert clu_s.stats.snapshot() == clu_b.stats.snapshot()
    assert eng_s.now == eng_b.now
    # Link-server state is part of the contract: later traffic sees it.
    for ls, lb in zip(
        (clu_s.network.nic_out[0], clu_s.network.uplink[0]),
        (clu_b.network.nic_out[0], clu_b.network.uplink[0]),
    ):
        assert ls.free_at == lb.free_at
        assert ls.busy_time == lb.busy_time
        assert ls.bytes_carried == lb.bytes_carried
        assert ls.jobs == lb.jobs


def test_send_batch_vector_branch_matches_scalar():
    """Wide fan-outs (>= the vector threshold) take the numpy pricing
    branch; it must be as exact as the small-batch Python loop."""
    num_nodes = 48
    dests = [d for d in range(num_nodes) if d != 3] + [3, 3]  # 49 >= 32
    nbytes = [256 + 13 * i for i in range(len(dests))]
    ats = [1e-7 * (i % 5) for i in range(len(dests))]
    eng_s, clu_s, del_s = _collecting_cluster(num_nodes=num_nodes, nps=8)
    for d, nb, at in zip(dests, nbytes, ats):
        clu_s.send(3, d, "t", nb, at_time=at)
    eng_s.run()
    eng_b, clu_b, del_b = _collecting_cluster(num_nodes=num_nodes, nps=8)
    clu_b.send_batch(3, dests, "t", nbytes, at_times=ats)
    eng_b.run()
    assert del_s == del_b
    assert clu_s.stats.snapshot() == clu_b.stats.snapshot()


def test_send_batch_accepts_lists_and_arrays_identically():
    dests, nbytes, ats = _mixed_batch()
    eng_a, clu_a, del_a = _collecting_cluster()
    clu_a.send_batch(
        0,
        np.asarray(dests, dtype=np.int64),
        "t",
        np.asarray(nbytes, dtype=np.int64),
        at_times=np.asarray(ats),
    )
    eng_a.run()
    eng_l, clu_l, del_l = _collecting_cluster()
    clu_l.send_batch(0, dests, "t", nbytes, at_times=ats)
    eng_l.run()
    assert del_a == del_l
    assert clu_a.stats.snapshot() == clu_l.stats.snapshot()


def test_send_batch_interleaves_with_other_senders_like_scalar():
    """Batched traffic shares FIFO links with scalar traffic from another
    node; admission order (and therefore every arrival) must not depend on
    which API injected the messages."""
    dests = [9, 10, 11]
    nbytes = [8192, 8192, 8192]
    ats = [0.0, 0.0, 0.0]
    eng_s, clu_s, del_s = _collecting_cluster()
    for d, nb, at in zip(dests, nbytes, ats):
        clu_s.send(0, d, "t", nb, at_time=at)
    clu_s.send(1, 9, "x", 50000, at_time=0.0)  # contends on 9's NIC-in
    eng_s.run()
    eng_b, clu_b, del_b = _collecting_cluster()
    clu_b.send_batch(0, dests, "t", nbytes, at_times=ats)
    clu_b.send(1, 9, "x", 50000, at_time=0.0)
    eng_b.run()
    assert del_s == del_b


def test_send_batch_payloads_and_empty_batch():
    eng, clu, deliveries = _collecting_cluster()
    assert clu.send_batch(0, [], "t", []) == []
    msgs = clu.send_batch(0, [1, 2], "t", [8, 8], payloads=["a", "b"])
    assert [m.payload for m in msgs] == ["a", "b"]
    eng.run()
    assert len(deliveries) == 2


def test_send_batch_rejects_bad_inputs():
    eng, clu, _ = _collecting_cluster()
    with pytest.raises(ConfigError, match="equal lengths"):
        clu.send_batch(0, [1, 2], "t", [8])
    with pytest.raises(ConfigError, match="equal lengths"):
        clu.send_batch(0, [1, 2], "t", [8, 8], at_times=[0.0])
    with pytest.raises(ConfigError, match="negative message size"):
        clu.send_batch(0, [1, 2], "t", [8, -1])
    with pytest.raises(ConfigError):
        clu.send_batch(0, [1, 99], "t", [8, 8])  # dest out of range
    eng.call_at(1.0, lambda: None)
    eng.run()
    with pytest.raises(SimulationError, match="past"):
        clu.send_batch(0, [1], "t", [8], at_times=[0.5])


def test_send_batch_dead_letters_on_mid_batch_deregister():
    """A destination that deregisters while batched messages are in flight
    diverts them to ``dead_letters`` exactly like the scalar path: same
    deliveries, same dead-letter count, same clock. The deregister fires
    from a bare engine event, between injection and delivery."""
    dests = [9, 9, 9, 10]
    nbytes = [8192, 8192, 8192, 64]
    ats = [0.0, 0.0, 0.0, 0.0]
    snapshots = []
    for use_batch in (False, True):
        eng, clu, deliveries = _collecting_cluster()
        # Kill rank 9 after injection but before any transfer completes.
        eng.call_at(1e-9, clu.deregister, 9)
        if use_batch:
            clu.send_batch(0, dests, "t", nbytes, at_times=ats)
        else:
            for d, nb, at in zip(dests, nbytes, ats):
                clu.send(0, d, "t", nb, at_time=at)
        eng.run()
        snapshots.append((list(deliveries), clu.stats.snapshot(), eng.now))
    scalar, batched = snapshots
    assert scalar == batched
    deliveries, stats, _ = batched
    assert stats["dead_letters"] == 3  # the three in-flight messages to 9
    assert [d[1] for d in deliveries] == [10]  # rank 10 still delivered


def test_send_batch_from_deregistered_source_dead_letters():
    """Messages injected by an already-crashed source never reach the
    network — batched and scalar agree on the dead-letter accounting."""
    snapshots = []
    for use_batch in (False, True):
        eng, clu, deliveries = _collecting_cluster()
        clu.deregister(0)
        if use_batch:
            clu.send_batch(0, [1, 2], "t", [64, 64])
        else:
            clu.send(0, 1, "t", 64)
            clu.send(0, 2, "t", 64)
        eng.run()
        snapshots.append((list(deliveries), clu.stats.snapshot()))
    assert snapshots[0] == snapshots[1]
    assert snapshots[1][1]["dead_letters"] == 2
    assert snapshots[1][0] == []


def test_crash_only_node_faults_leave_batch_path_live():
    """A crash-only :class:`NodeFaultPlan` must not wrap ``cluster.send``:
    crashes act through ``deregister`` alone, so the vectorized batch path
    stays installed (a straggler plan still needs the per-message wrap)."""
    from repro.sim.faults import NodeFaultInjector, NodeFaultPlan

    eng, clu, _ = _collecting_cluster()
    NodeFaultInjector(clu, NodeFaultPlan(crash_at={3: 1e-4}))
    assert "send" not in clu.__dict__  # class-level send: batch path intact
    eng2, clu2, _ = _collecting_cluster()
    NodeFaultInjector(clu2, NodeFaultPlan(stragglers={2: 2.0}))
    assert "send" in clu2.__dict__  # stragglers price per message


# --- network-model parity: transfer_batch vs sequential transfers ------------
def test_transfer_batch_matches_sequential_transfers():
    topo = FatTreeTopology(num_nodes=16, nodes_per_super_node=4)
    net_s = NetworkModel(topo, TAIHULIGHT)
    net_b = NetworkModel(topo, TAIHULIGHT)
    dests = np.array([0, 1, 5, 9, 2, 13, 7], dtype=np.int64)
    nbytes = np.array([64, 4096, 128, 65536, 0, 1024, 4096], dtype=np.int64)
    ats = np.array([0.0, 0.0, 1e-6, 1e-6, 2e-6, 2e-6, 5e-6])
    order = np.argsort(ats, kind="stable")
    expected = np.empty(len(dests))
    for i in order.tolist():
        expected[i] = net_s.transfer(0, int(dests[i]), int(nbytes[i]), float(ats[i]))
    got = net_b.transfer_batch(0, dests, nbytes, ats)
    assert np.array_equal(got, expected)  # bitwise: no reassociation allowed
    for link_s, link_b in zip(
        (net_s.nic_out[0], net_s.uplink[0], net_s.nic_in[9], net_s.downlink[2]),
        (net_b.nic_out[0], net_b.uplink[0], net_b.nic_in[9], net_b.downlink[2]),
    ):
        assert link_s.free_at == link_b.free_at
        assert link_s.busy_time == link_b.busy_time


# --- pipeline/server parity: the batched admission helpers -------------------
def test_admit_many_matches_sequential_admits():
    a, b = Server("a"), Server("b")
    times = [0.0, 1e-6, 1e-6, 5e-7, 9e-6]
    finishes = []
    for t in times:
        _, fin = a.admit(t, 2e-6)
        finishes.append(fin)
    assert b.admit_many(times, 2e-6) == finishes
    assert a.free_at == b.free_at
    assert a.busy_time == b.busy_time
    assert a.jobs == b.jobs


def test_ready_fractions_matches_scalar_ready_fraction():
    ex = ModuleExecution("forward_generator", 1e-4, 7e-4, "cluster:0", 4096.0)
    for n in (1, 2, 3, 7, 16):
        got = ex.ready_fractions(n)
        expected = [ex.ready_fraction((k + 1) / n) for k in range(n)]
        assert got.tolist() == expected
    # The driver's single-bucket fast path uses this exact expression:
    assert ex.start + 1.0 * (ex.finish - ex.start) == ex.ready_fraction(1.0)


# --- reliable-transport parity: channel batch vs scalar ----------------------
def test_channel_send_batch_matches_scalar_channel_sends():
    outcomes = []
    for use_batch in (False, True):
        eng, clu, deliveries = _collecting_cluster()
        channel = ReliableChannel(clu, ResilienceConfig(reliable_transport=True))
        dests, nbytes, ats = _mixed_batch()
        dests = [d for d in dests if d != 0] or [1]
        n = len(dests)
        if use_batch:
            channel.send_batch(0, dests, "t", nbytes[:n], at_times=ats[:n])
        else:
            for d, nb, at in zip(dests, nbytes[:n], ats[:n]):
                channel.send(0, d, "t", nb, at_time=at)
        eng.run()
        outcomes.append((deliveries, clu.stats.snapshot(), channel.in_flight))
    assert outcomes[0] == outcomes[1]


def test_channel_send_batch_rejects_reserved_tag():
    _, clu, _ = _collecting_cluster()
    channel = ReliableChannel(clu, ResilienceConfig(reliable_transport=True))
    with pytest.raises(ConfigError, match="reserved"):
        channel.send_batch(0, [1], "ack", [8])


# --- telemetry parity: spans/intervals/metrics, batched vs scalar ------------
def _run_both_profiled(variant, nodes, roots=(1, 5)):
    """Like ``_run_both`` with full telemetry attached in both modes."""
    from repro.telemetry import Telemetry

    edges = _edges()
    out = []
    for batch in (False, True):
        cfg = replace(variant_config(variant), batch_messages=batch)
        tel = Telemetry()
        bfs = DistributedBFS(edges, nodes, config=cfg, telemetry=tel)
        results = [bfs.run(r) for r in roots]
        out.append((results, tel))
    return out


def _span_rows(tel):
    return [
        (s.name, s.category, s.start, s.finish, s.parent, s.closed,
         tuple(sorted(s.attrs.items())))
        for s in tel.spans.spans
    ]


def test_telemetry_parity_batched_vs_scalar():
    """With tracing on, the batched path must pin the scalar one exactly:
    same labeled-metric snapshot, same busy intervals on every server and
    link, and the same span list (ids, parents, windows, attrs)."""
    (res_s, tel_s), (res_b, tel_b) = _run_both_profiled("relay-cpe", nodes=8)
    for a, b in zip(res_s, res_b):
        assert np.array_equal(a.parent, b.parent)
        assert a.sim_seconds == b.sim_seconds
        assert a.stats == b.stats
    assert tel_s.metrics.snapshot() == tel_b.metrics.snapshot()
    assert tel_s.intervals() == tel_b.intervals()
    assert _span_rows(tel_s) == _span_rows(tel_b)


def test_telemetry_parity_direct_variant():
    (_, tel_s), (_, tel_b) = _run_both_profiled("direct-cpe", nodes=8,
                                                roots=(1,))
    assert tel_s.metrics.snapshot() == tel_b.metrics.snapshot()
    assert tel_s.intervals() == tel_b.intervals()
    assert _span_rows(tel_s) == _span_rows(tel_b)


def test_telemetry_off_leaves_stats_identical_to_untraced_run():
    """A disabled Telemetry must be a true no-op: exactly the snapshot a
    plain run produces (no extra families, no interval recording)."""
    from repro.telemetry import Telemetry

    edges = _edges()
    cfg = replace(variant_config("relay-cpe"), batch_messages=True)
    plain = DistributedBFS(edges, 8, config=cfg)
    plain_result = plain.run(1)
    tel = Telemetry(enabled=False)
    off = DistributedBFS(edges, 8, config=cfg, telemetry=tel)
    off_result = off.run(1)
    assert np.array_equal(plain_result.parent, off_result.parent)
    assert plain_result.sim_seconds == off_result.sim_seconds
    assert plain.cluster.stats.snapshot() == off.cluster.stats.snapshot()
    assert all(s.intervals is None for s in off._all_servers())


# --- partitioned-engine parity: PDES lanes vs the sequential loop ------------
def _run_partitioned(
    variant,
    nodes,
    partitions,
    batch=True,
    overrides=None,
    resilience=None,
    roots=(1, 5),
    nps=None,
):
    """One traversal set at a given partition count; (bfs, outcome) pair."""
    edges = _edges()
    cfg = replace(
        variant_config(variant),
        batch_messages=batch,
        engine_partitions=partitions,
        **(overrides or {}),
    )
    bfs = DistributedBFS(
        edges, nodes, config=cfg, resilience=resilience,
        nodes_per_super_node=nps,
    )
    results = [bfs.run(r) for r in roots]
    return bfs, (results, bfs.cluster.stats.snapshot())


@pytest.mark.parametrize("variant", ["relay-cpe", "direct-cpe", "relay-mpe"])
@pytest.mark.parametrize("partitions", [2, 4])
def test_partitioned_traversal_parity(variant, partitions):
    """The conservative-sync engine must be invisible in every observable:
    parents, levels, sim_seconds, per-run stats, cluster stats."""
    from repro.sim.partition import PartitionedEngine

    _, sequential = _run_partitioned(variant, 16, 1)
    bfs, partitioned = _run_partitioned(variant, 16, partitions)
    assert isinstance(bfs.engine, PartitionedEngine)
    _assert_identical(sequential, partitioned)


def test_partitioned_parity_scalar_sends():
    """batch_messages=False exercises per-message call_at scheduling."""
    _, sequential = _run_partitioned("relay-cpe", 16, 1, batch=False)
    _, partitioned = _run_partitioned("relay-cpe", 16, 2, batch=False)
    _assert_identical(sequential, partitioned)


def test_partitioned_parity_super_node_aligned():
    """16 nodes / 4-per-SN / 2 partitions: partition boundaries land on
    super-node boundaries, so every cross-partition hop is inter-SN and
    the lookahead table derives the 3 microsecond inter-SN latency."""
    _, sequential = _run_partitioned("relay-cpe", 16, 1, nps=4)
    bfs, partitioned = _run_partitioned("relay-cpe", 16, 2, nps=4)
    _assert_identical(sequential, partitioned)
    assert bfs.engine.layout.aligned
    assert bfs.engine.lookahead.min_lookahead() == 3e-6


@pytest.mark.parametrize("batch", [False, True])
def test_partitioned_parity_reliable_transport(batch):
    """Acks, retry timers, and cancel() on the partitioned engine; the
    cancelled-set and entry table must both drain to empty afterwards."""
    res = ResilienceConfig(reliable_transport=True)
    _, sequential = _run_partitioned(
        "relay-cpe", 16, 1, batch=batch, resilience=res
    )
    bfs, partitioned = _run_partitioned(
        "relay-cpe", 16, 2, batch=batch, resilience=res
    )
    _assert_identical(sequential, partitioned)
    assert len(bfs.engine._cancelled) == 0
    assert len(bfs.engine) == 0


def test_partitioned_parity_reliable_with_checkpoints():
    res = ResilienceConfig(reliable_transport=True, checkpoint_interval=2)
    _, sequential = _run_partitioned("relay-cpe", 16, 1, resilience=res)
    _, partitioned = _run_partitioned("relay-cpe", 16, 4, resilience=res)
    _assert_identical(sequential, partitioned)


def test_partitioned_parity_under_fault_injector():
    """Fault ordinals count sends in global order; the partitioned engine
    must see the same send sequence, so drops/duplicates line up."""
    edges = _edges()
    outcomes = []
    for partitions in (1, 2):
        cfg = replace(
            variant_config("relay-cpe"),
            batch_messages=True,
            engine_partitions=partitions,
        )
        bfs = DistributedBFS(edges, 16, config=cfg)
        plan = FaultPlan(drop={5, 17}, duplicate={9}, tag_prefix="fwd")
        with FaultInjector(bfs.cluster, plan) as injector:
            result = bfs.run(1)
            outcomes.append(
                (
                    result.parent.copy(),
                    result.sim_seconds,
                    injector.matched,
                    injector.dropped,
                    injector.duplicated,
                )
            )
    a, b = outcomes
    assert np.array_equal(a[0], b[0])
    assert a[1:] == b[1:]


def test_partitioned_telemetry_span_parity():
    """Span lists (names, windows, parents, attrs), labeled metrics, and
    busy intervals must be bit-identical across partition counts."""
    from repro.telemetry import Telemetry

    edges = _edges()
    captured = []
    for partitions in (1, 2, 4):
        cfg = replace(
            variant_config("relay-cpe"),
            batch_messages=True,
            engine_partitions=partitions,
        )
        tel = Telemetry()
        bfs = DistributedBFS(edges, 16, config=cfg, telemetry=tel)
        results = [bfs.run(r) for r in (1, 5)]
        captured.append(
            (
                [r.parent.copy() for r in results],
                [r.sim_seconds for r in results],
                tel.metrics.snapshot(),
                tel.intervals(),
                _span_rows(tel),
            )
        )
    base = captured[0]
    for other in captured[1:]:
        for pa, pb in zip(base[0], other[0]):
            assert np.array_equal(pa, pb)
        assert base[1:] == other[1:]


# --- parallel drain parity: worker pools vs the serial drain loop ------------
@pytest.mark.parametrize("variant", ["relay-cpe", "direct-cpe", "relay-mpe"])
@pytest.mark.parametrize("drain_workers", [1, 2, 4])
def test_parallel_drain_traversal_parity(variant, drain_workers):
    """The parallel drain scheduler must be invisible in every observable:
    journals merged in (when, seq) order reproduce the serial engine's
    parents, sim_seconds, per-run stats and cluster stats bit-exactly at
    any worker count."""
    from repro.sim.partition import PartitionedEngine

    _, sequential = _run_partitioned(variant, 16, 1)
    bfs, parallel = _run_partitioned(
        variant, 16, 4, overrides={"drain_workers": drain_workers}
    )
    assert isinstance(bfs.engine, PartitionedEngine)
    _assert_identical(sequential, parallel)
    report = bfs.engine.partition_report()
    assert report["drain_workers"] == drain_workers
    if drain_workers > 1:
        # The pool really ran: no fallback reason, windows dispatched.
        assert report["parallel_fallback"] is None
        assert report["parallel_windows"] > 0


def test_parallel_drain_scalar_sends():
    """batch_messages=False exercises per-message call_at journaling."""
    _, sequential = _run_partitioned("relay-cpe", 16, 1, batch=False)
    bfs, parallel = _run_partitioned(
        "relay-cpe", 16, 4, batch=False, overrides={"drain_workers": 2}
    )
    _assert_identical(sequential, parallel)
    assert bfs.engine.partition_report()["parallel_fallback"] is None


def test_parallel_drain_process_backend():
    """Forked drain workers ship journals and lane state through the
    symbolic codec; results must still be bit-identical."""
    if not hasattr(os, "fork"):
        pytest.skip("process drain backend needs os.fork")
    _, sequential = _run_partitioned("relay-cpe", 16, 1)
    bfs, parallel = _run_partitioned(
        "relay-cpe", 16, 4,
        overrides={"drain_workers": 2, "drain_backend": "process"},
    )
    _assert_identical(sequential, parallel)
    report = bfs.engine.partition_report()
    assert report["drain_backend"] == "process"
    assert report["parallel_fallback"] is None
    assert report["parallel_windows"] > 0


def test_parallel_drain_telemetry_span_parity():
    """Spans recorded inside worker drains land in the journal and must
    replay to the exact serial span list, metrics, and busy intervals."""
    from repro.telemetry import Telemetry

    edges = _edges()
    captured = []
    for drain_workers in (1, 2, 4):
        cfg = replace(
            variant_config("relay-cpe"),
            batch_messages=True,
            engine_partitions=4,
            drain_workers=drain_workers,
        )
        tel = Telemetry()
        bfs = DistributedBFS(edges, 16, config=cfg, telemetry=tel)
        results = [bfs.run(r) for r in (1, 5)]
        captured.append(
            (
                [r.parent.copy() for r in results],
                [r.sim_seconds for r in results],
                tel.metrics.snapshot(),
                tel.intervals(),
                _span_rows(tel),
            )
        )
    base = captured[0]
    for other in captured[1:]:
        for pa, pb in zip(base[0], other[0]):
            assert np.array_equal(pa, pb)
        assert base[1:] == other[1:]


def test_parallel_drain_reliable_transport_falls_back_serial():
    """The reliable transport shares retransmit state across lanes, so
    the engine must refuse to parallelize — and still match exactly."""
    res = ResilienceConfig(reliable_transport=True)
    _, sequential = _run_partitioned("relay-cpe", 16, 1, resilience=res)
    bfs, parallel = _run_partitioned(
        "relay-cpe", 16, 2, resilience=res, overrides={"drain_workers": 2}
    )
    _assert_identical(sequential, parallel)
    report = bfs.engine.partition_report()
    assert report["parallel_windows"] == 0
    assert "retransmit" in report["parallel_fallback"]


def test_partition_report_not_in_cluster_stats():
    """The PDES engine's own accounting (lanes, drains, channel slack) is
    observability, not simulation state: it must stay out of the
    parity-visible stats snapshot and live in partition_report()."""
    bfs, (_, snapshot) = _run_partitioned("relay-cpe", 16, 2)
    report = bfs.engine.partition_report()
    assert report["partitions"] == 2
    assert sum(report["lane_events"]["compute"]) > 0
    assert not any(k.startswith("partition") for k in snapshot)


# --- engine parity: schedule_batch vs call_at --------------------------------
def test_schedule_batch_matches_sequential_call_at():
    ran_a, ran_b = [], []
    eng_a, eng_b = Engine(), Engine()
    whens = [3e-6, 1e-6, 1e-6, 2e-6]
    for i, w in enumerate(whens):
        eng_a.call_at(w, ran_a.append, i)
    handles = eng_b.schedule_batch(whens, ran_b.append, [(i,) for i in range(4)])
    assert list(handles) == [0, 1, 2, 3]  # contiguous, same as call_at's
    eng_a.run()
    eng_b.run()
    assert ran_a == ran_b  # identical tie-breaking
    assert eng_a.now == eng_b.now
