"""Catalog lifecycle: load, pin, evict, kernel reuse, stats."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph.kronecker import KroneckerGenerator
from repro.service import GraphCatalog, GraphSpec

SPEC = GraphSpec(scale=7, nodes=2, seed=1)


@pytest.fixture()
def catalog():
    cat = GraphCatalog(host_shared=False)
    yield cat
    cat.close()


def test_load_builds_generator_identical_graph(catalog):
    entry = catalog.load("g", SPEC)
    edges = KroneckerGenerator(SPEC.scale, SPEC.edge_factor, seed=SPEC.seed).generate()
    assert np.array_equal(entry.edges.src, edges.src)
    assert entry.graph.num_vertices == 1 << SPEC.scale


def test_load_accepts_pregenerated_edges(catalog):
    edges = KroneckerGenerator(6, seed=9).generate()
    entry = catalog.load("pre", GraphSpec(scale=6, nodes=2, seed=9), edges=edges)
    assert entry.edges is edges


def test_duplicate_load_rejected(catalog):
    catalog.load("g", SPEC)
    with pytest.raises(ConfigError, match="already loaded"):
        catalog.load("g", SPEC)


def test_get_unknown_graph(catalog):
    with pytest.raises(ConfigError, match="unknown graph"):
        catalog.get("nope")


def test_bfs_kernel_cached_per_variant(catalog):
    entry = catalog.load("g", SPEC)
    first, lock1 = entry._bfs_kernel("relay-cpe")
    again, lock2 = entry._bfs_kernel("relay-cpe")
    assert first is again and lock1 is lock2
    other, _ = entry._bfs_kernel("direct-mpe")
    assert other is not first


def test_execute_counts_and_dispatch(catalog):
    entry = catalog.load("g", SPEC)
    bfs = entry.execute("bfs", {"root": 0, "variant": "relay-cpe"})
    assert bfs["parent"].shape == (128,)
    assert entry.executes == 1
    with pytest.raises(ConfigError, match="unknown algorithm"):
        entry.execute("quantum", {})
    with pytest.raises(ConfigError, match="out of range"):
        entry.execute("bfs", {"root": 10_000, "variant": "relay-cpe"})


def test_evict_releases_unpinned_entry(catalog):
    entry = catalog.load("g", SPEC)
    entry._bfs_kernel("relay-cpe")
    outcome = catalog.evict("g")
    assert outcome == {"released": True, "pins": 0}
    assert entry._bfs_kernels == {}
    assert "g" not in catalog.names()


def test_evict_defers_release_past_pins(catalog):
    entry = catalog.load("g", SPEC)
    with catalog.pin("g") as pinned:
        assert pinned is entry
        outcome = catalog.evict("g")
        assert outcome == {"released": False, "pins": 1}
        # Executing under the pin still works against live artifacts...
        with pytest.raises(ConfigError, match="evicted"):
            entry.execute("wcc", {})  # ...but new dispatch is refused.
    # Pin dropped -> released.
    assert entry.pins == 0


def test_eviction_listener_fires_before_release(catalog):
    events = []
    catalog.add_eviction_listener(events.append)
    catalog.load("g", SPEC)
    catalog.evict("g")
    assert events == ["g"]


def test_pin_unknown_graph(catalog):
    with pytest.raises(ConfigError, match="unknown graph"):
        with catalog.pin("nope"):
            pass


def test_stats_rows_and_table(catalog):
    catalog.load("g", SPEC)
    rows = catalog.stats()
    assert len(rows) == 1
    row = rows[0]
    assert row["name"] == "g"
    assert row["vertices"] == 128
    assert row["resident_bytes"] > 0
    assert not row["shared_memory"]
    table = catalog.stats_table()
    assert "graph catalog" in table and "g" in table


def test_close_evicts_everything(catalog):
    catalog.load("a", SPEC)
    catalog.load("b", GraphSpec(scale=6, nodes=2))
    catalog.close()
    assert catalog.names() == []


def test_shared_memory_hosting_roundtrip():
    from repro.graph.shm import shared_memory_available

    if not shared_memory_available():
        pytest.skip("POSIX shared memory unavailable")
    cat = GraphCatalog(host_shared=True)
    try:
        entry = cat.load("g", SPEC)
        assert entry.shared is not None
        # The entry's CSR is the shm-backed view, and queries run off it.
        payload = entry.execute("bfs", {"root": 0, "variant": "relay-cpe"})
        assert payload["parent"].shape == (128,)
    finally:
        cat.close()
    assert entry.shared is None  # destroyed on eviction
