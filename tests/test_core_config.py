"""BFSConfig / RoleLayout tests."""

import pytest

from repro.core import BFSConfig, RoleLayout
from repro.errors import ConfigError


def test_default_variant_is_the_paper_system():
    cfg = BFSConfig()
    assert cfg.variant_name == "relay-cpe"
    assert cfg.direction_optimizing
    assert cfg.use_hub_prefetch
    assert cfg.quick_path_threshold == 1024


def test_variant_names():
    assert BFSConfig(use_relay=False).variant_name == "direct-cpe"
    assert BFSConfig(use_cpe_clusters=False).variant_name == "relay-mpe"
    assert (
        BFSConfig(use_relay=False, use_cpe_clusters=False).variant_name
        == "direct-mpe"
    )


def test_default_roles_match_figure6():
    r = RoleLayout()
    assert (r.producer_cols, r.router_cols, r.consumer_cols) == (4, 2, 2)
    assert r.n_producers == 32
    assert r.n_routers == 16
    assert r.n_consumers == 16
    assert r.router_columns() == (4, 5)
    assert len(r.producer_positions()) == 32
    assert all(c >= 6 for _, c in r.consumer_positions())


def test_role_layout_validation():
    with pytest.raises(ConfigError):
        RoleLayout(producer_cols=5, router_cols=2, consumer_cols=2)  # > 8 cols
    with pytest.raises(ConfigError):
        RoleLayout(producer_cols=6, router_cols=1, consumer_cols=1)  # 1 router col
    with pytest.raises(ConfigError):
        RoleLayout(producer_cols=0, router_cols=4, consumer_cols=4)


def test_max_shuffle_destinations_matches_paper_claim():
    # Section 4.3: "we can handle up to 1024 destinations in practice".
    cfg = BFSConfig()
    assert 512 <= cfg.max_shuffle_destinations() <= 1024


def test_config_validation():
    with pytest.raises(ConfigError):
        BFSConfig(alpha=0)
    with pytest.raises(ConfigError):
        BFSConfig(beta=-1)
    with pytest.raises(ConfigError):
        BFSConfig(record_bytes=0)
    with pytest.raises(ConfigError):
        BFSConfig(hub_count_topdown=-1)
    with pytest.raises(ConfigError):
        BFSConfig(quick_path_threshold=-5)
    with pytest.raises(ConfigError):
        BFSConfig(bottomup_max_subrounds=0)
    with pytest.raises(ConfigError):
        BFSConfig(group_width=0)
    with pytest.raises(ConfigError):
        BFSConfig(hub_fraction_cap=0.0)
