"""Collective-operation tests: correctness and timing sanity."""

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.machine.specs import TAIHULIGHT
from repro.network import SimCluster
from repro.network.collectives import Collectives
from repro.sim import Engine


def make(n=8, nps=4):
    eng = Engine()
    cluster = SimCluster(eng, n, TAIHULIGHT, nodes_per_super_node=nps)
    return Collectives(cluster)


def test_broadcast_reaches_everyone():
    coll = make(8)
    values, t = coll.broadcast(3, {"payload": 42})
    assert values == [{"payload": 42}] * 8
    assert t > 0


def test_broadcast_from_every_root():
    for root in range(5):
        coll = make(5)
        values, _ = coll.broadcast(root, root * 10)
        assert values == [root * 10] * 5


def test_broadcast_takes_log_stages():
    """Binomial broadcast latency grows ~log2(P), not linearly."""
    t8 = make(8)
    _, time8 = t8.broadcast(0, 1)
    t64 = make(64, nps=16)
    _, time64 = t64.broadcast(0, 1)
    assert time64 < time8 * 4  # 8x ranks, ~2x stages


def test_reduce_sums_contributions():
    coll = make(8)
    total, t = coll.reduce(0, list(range(8)), lambda a, b: a + b)
    assert total == sum(range(8))
    assert t > 0


def test_reduce_to_nonzero_root():
    coll = make(6)
    total, _ = coll.reduce(4, [2] * 6, lambda a, b: a + b)
    assert total == 12


def test_allreduce_power_of_two_uses_recursive_doubling():
    coll = make(8)
    values, _ = coll.allreduce([1] * 8, lambda a, b: a + b)
    assert values == [8] * 8


def test_allreduce_non_power_of_two_falls_back():
    coll = make(6)
    values, _ = coll.allreduce(list(range(6)), lambda a, b: a + b)
    assert values == [15] * 6


def test_allreduce_max():
    coll = make(4)
    values, _ = coll.allreduce([3, 9, 1, 7], max)
    assert values == [9] * 4


def test_allgather_ring_collects_everything():
    coll = make(5)
    gathered, t = coll.allgather([f"seg{r}" for r in range(5)])
    for r, got in enumerate(gathered):
        assert sorted(got) == [f"seg{i}" for i in range(5)]
    assert t > 0


def test_allgather_with_arrays():
    coll = make(4)
    segs = [np.arange(3) + 10 * r for r in range(4)]
    gathered, _ = coll.allgather(segs)
    stacked = np.sort(np.concatenate(gathered[0]))
    assert np.array_equal(stacked, np.sort(np.concatenate(segs)))


def test_validation():
    coll = make(4)
    with pytest.raises(ConfigError):
        coll.reduce(0, [1, 2], lambda a, b: a + b)
    with pytest.raises(ConfigError):
        coll.allgather([1, 2, 3])
    with pytest.raises(ConfigError):
        coll.broadcast(99, 1)


def test_allreduce_time_close_to_analytic_charge():
    """The driver's analytic allreduce charge should be the right order of
    magnitude next to an executed recursive doubling."""
    coll = make(16, nps=4)
    _, t = coll.allreduce([1] * 16, lambda a, b: a + b)
    spec = TAIHULIGHT.taihulight
    analytic = math.ceil(math.log2(16)) * (
        spec.inter_super_node_latency + spec.message_overhead
    )
    assert analytic / 5 < t < analytic * 10
