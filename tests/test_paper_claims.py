"""The paper's quantitative sentences, each as an executable assertion.

One test per claim, quoting the sentence it checks. Model-only (fast);
the benchmark harness carries the heavier functional versions.
"""

import pytest

from repro.core import BFSConfig, ShufflePlan
from repro.core.batching import GroupLayout
from repro.core.config import RoleLayout
from repro.machine import DmaModel, TAIHULIGHT
from repro.machine.cluster import CpeCluster
from repro.perf import ScalingModel
from repro.utils.units import GBPS, US

model = ScalingModel()


def test_claim_title_ten_million_cores():
    """Title: "...with Ten Million Cores"."""
    assert TAIHULIGHT.taihulight.total_cores == 10_649_600


def test_claim_abstract_best_heterogeneous_second_overall():
    """Abstract: "the best among heterogeneous machines and the second
    overall in the Graph500s June 2016 list"."""
    ours = model.headline().gteps
    from repro.perf.scaling import TABLE2_PUBLISHED

    others = [r for r in TABLE2_PUBLISHED if r.authors != "Present Work"]
    assert all(ours > r.gteps for r in others if r.heterogeneous)
    assert sum(r.gteps > ours for r in others) == 1


def test_claim_s3_interrupt_ten_times_intel():
    """S3.1: "the latency of system interrupt is about 10 us"."""
    assert TAIHULIGHT.core_group.mpe.interrupt_latency == 10 * US


def test_claim_s3_figure3_quote():
    """S3.2: "the maximum memory bandwidth MPEs can achieve is 9.4 GB/s.
    However, CPE clusters can achieve ... 28.9 GB/s"."""
    dma = DmaModel()
    assert dma.mpe_bandwidth(256) == 9.4 * GBPS
    assert dma.cluster_bandwidth(256) == 28.9 * GBPS


def test_claim_s3_connection_memory():
    """S3.3: "every connection uses 100 KB memory due to the MPI library,
    so an MPE needs 4 GB memory just for establishing connections"."""
    per = TAIHULIGHT.node.mpi_connection_bytes
    assert per == 100_000
    assert 40_000 * per == 4_000_000_000


def test_claim_s43_register_bandwidth():
    """S4.3: "we achieve 10 GB/s register to register bandwidth out of a
    theoretical 14.5 GB/s"."""
    assert CpeCluster().shuffle_bandwidth() == pytest.approx(10 * GBPS, rel=0.01)


def test_claim_s43_1024_destinations():
    """S4.3: "we can handle up to 1024 destinations in practice"."""
    limit = BFSConfig().max_shuffle_destinations()
    assert 512 <= limit <= 1024
    ShufflePlan(RoleLayout(), num_destinations=limit)  # feasible at the limit


def test_claim_s44_message_reduction():
    """S4.4: "the message number is only (N + M - 1)" versus N*M."""
    g = GroupLayout(40_000, 200)
    assert g.relay_connections(123) <= 200 + 200 - 1
    assert g.direct_connections() == 39_999


def test_claim_s44_mpi_memory_reduction():
    """S4.4: "reduced from ... 4 GB to ((200 + 200 - 1) * 100 KB =)
    40 MB, approximately"."""
    g = GroupLayout(40_000, 200)
    relay_mem = g.relay_connections(0) * 100_000
    assert relay_mem == pytest.approx(39.9e6, rel=0.02)


def test_claim_s6_cpe_factor_of_ten():
    """S6.1: "properly used CPE clusters can improve performance by a
    factor of 10"."""
    ratios = [
        model.fig11_point("relay-cpe", n).gteps
        / model.fig11_point("relay-mpe", n).gteps
        for n in (64, 256, 1024, 4096)
    ]
    assert all(6 < r < 20 for r in ratios)


def test_claim_s6_direct_cpe_crashes_beyond_256():
    """S6.1: "better performance for up to 256 nodes, but it crashes when
    the scale increases because of the limitation of SPM size"."""
    assert model.fig11_point("direct-cpe", 256).ok
    assert model.fig11_point("direct-cpe", 1024).crashed == "spm-overflow"


def test_claim_s6_direct_mpe_crashes_at_16384():
    """S6.1: "At a scale of 16,384 nodes, Direct MPE crashes from memory
    exhaust caused by too many MPI connections"."""
    assert model.fig11_point("direct-mpe", 4096).ok
    assert (
        model.fig11_point("direct-mpe", 16384).crashed == "connection-memory"
    )


def test_claim_s6_weak_scaling_linear():
    """S6.2: "almost linear weak scaling speedup with the CPU number
    increasing from 80 to 40,768"."""
    series = model.fig12_series(26.2e6)
    first, last = series[0], series[-1]
    speedup = last.gteps / first.gteps
    ideal = last.nodes / first.nodes
    assert speedup > ideal / 3


def test_claim_s6_size_gaps():
    """S6.2: "the result of 26.2M is nearly four times that of 6.5M, with
    the same gap between 6.5M and 1.6M" (we land 2.8x-3.6x)."""
    full = {v: model.fig12_series(v)[-1].gteps for v in (1.6e6, 6.5e6, 26.2e6)}
    assert 2 < full[6.5e6] / full[1.6e6] < 5
    assert 2 < full[26.2e6] / full[6.5e6] < 5


def test_claim_conclusion_headline():
    """Conclusion: "40,768 nodes ... 23,755.7 GTEPS" (we model 96%)."""
    h = model.headline()
    assert h.nodes == 40_768
    assert h.gteps == pytest.approx(23_755.7, rel=0.2)
