"""The machine spec must agree with Table 1 and the paper's prose."""

from repro.machine import TAIHULIGHT
from repro.machine.specs import spec_table_rows
from repro.utils.units import GBPS, GiB, KiB, US


def test_full_machine_node_count():
    # 40 cabinets x 4 super nodes x 256 nodes = 40,960 nodes.
    assert TAIHULIGHT.taihulight.total_nodes == 40_960


def test_full_machine_core_count():
    # 260 cores per node -> 10.6 million cores.
    assert TAIHULIGHT.taihulight.total_cores == 10_649_600


def test_node_composition():
    node = TAIHULIGHT.node
    assert node.core_groups == 4
    assert node.total_cpes == 256
    assert node.total_cores == 260
    assert node.memory_bytes == 32 * GiB


def test_core_group_composition():
    cg = TAIHULIGHT.core_group
    assert cg.cpes_per_cluster == 64
    assert cg.mesh_rows == 8 and cg.mesh_cols == 8
    assert cg.dram_bytes == 8 * GiB


def test_frequencies_and_caches():
    cg = TAIHULIGHT.core_group
    assert cg.mpe.frequency_hz == cg.cpe.frequency_hz == 1.45e9
    assert cg.mpe.l1d_bytes == 32 * KiB
    assert cg.mpe.l2_bytes == 256 * KiB
    assert cg.cpe.spm_bytes == 64 * KiB
    assert cg.cpe.l1i_bytes == 16 * KiB


def test_published_bandwidths():
    cg = TAIHULIGHT.core_group
    assert cg.mpe.memory_bandwidth == 9.4 * GBPS
    assert cg.cluster_dma_bandwidth == 28.9 * GBPS


def test_interrupt_latency_is_ten_microseconds():
    assert TAIHULIGHT.core_group.mpe.interrupt_latency == 10 * US


def test_network_constants():
    t = TAIHULIGHT.taihulight
    assert t.nodes_per_super_node == 256
    assert t.central_oversubscription == 4
    assert t.nic_raw_bandwidth == 7e9  # 56 Gbps
    assert t.nic_effective_bandwidth == 1.2 * GBPS


def test_mpi_connection_cost_matches_paper():
    node = TAIHULIGHT.node
    assert node.mpi_connection_bytes == 100_000
    # Section 4.4's arithmetic: 40,000 connections ~ 4 GB.
    assert 40_000 * node.mpi_connection_bytes == 4_000_000_000


def test_spec_table_matches_table1():
    rows = dict(spec_table_rows())
    assert rows["CPE"] == "1.45 GHz, 64KB SPM"
    assert rows["CG"] == "1 MPE + 64 CPEs + 1 MC"
    assert rows["Cabinet"] == "4 Super Nodes"
    assert rows["TaihuLight"] == "40 Cabinets"
