"""Unit tests for the parallel drain scheduler (repro.sim.partition).

The parity suite pins whole traversals bit-identical across
``drain_workers`` counts; this file drives the window machinery against
small hand-built scenarios where the safe answer is obvious: claim
ceilings at exact boundaries, empty lanes beside pending fabric work,
window-local events that must be re-queued rather than executed, the
fallback ladder, and the partition-report accounting.
"""

import os

import pytest

from repro.errors import ConfigError
from repro.network.simmpi import SimCluster
from repro.sim.partition import PartitionedEngine
from repro.telemetry.metrics import TimeSeries


class _Msg:
    """Minimal message shape for lane classification (src/dst/send_time)."""

    __slots__ = ("src", "dst", "send_time")

    def __init__(self, src, dst, send_time=0.0):
        self.src = src
        self.dst = dst
        self.send_time = send_time


def _attached(partitions=2, drain_workers=2, num_nodes=16, nps=8,
              backend="thread"):
    engine = PartitionedEngine(
        partitions, drain_workers=drain_workers, drain_backend=backend
    )
    cluster = SimCluster(engine, num_nodes, nodes_per_super_node=nps)
    engine.attach_cluster(cluster)
    return engine, cluster


def _scripted(drain_workers, script):
    """Run ``script(engine, deliver, series)`` on a 2-partition engine and
    return the globally ordered event trace. ``deliver`` is a registered
    delivery route, so ``engine.call_at(when, deliver, _Msg(d, d))`` lands
    on node ``d``'s compute lane exactly like a kernel message delivery.
    The trace rides a journal-aware TimeSeries: worker-side observations
    are journaled and applied at the merge in exact global (when, seq)
    order, so the recorded sequence IS the engine's event order (a plain
    list.append would interleave racily across worker threads).
    """
    engine, _ = _attached(drain_workers=drain_workers)
    series = TimeSeries("trace")

    def deliver(msg):
        series.observe(engine.now, msg.dst)

    engine.register_delivery(deliver)
    script(engine, deliver, series)
    engine.run()
    assert len(engine) == 0
    return list(zip(series.times, series.values)), engine


def _assert_parallel_matches_serial(script):
    """The scripted scenario must execute identically at 1 and 2 workers,
    and the 2-worker run must actually dispatch parallel windows."""
    serial, _ = _scripted(1, script)
    parallel, engine = _scripted(2, script)
    assert parallel == serial
    report = engine.partition_report()
    assert report["parallel_fallback"] is None
    assert report["parallel_windows"] >= 1
    return serial, report


# --- edge case: simultaneous lane heads at the exact claim bound --------------
def test_simultaneous_heads_at_exact_lookahead_bound():
    """Heads on both lanes at exactly ``T0 + L`` are claimable (the bound
    is inclusive) and must still execute in exact global (when, seq)
    order — schedule order breaks the timestamp tie."""

    def script(engine, deliver, series):
        # T0 = 1us; la_cap = T0 + 1us (intra-SN pair latency) = 2us.
        engine.call_at(1e-6, deliver, _Msg(0, 0))       # lane 0, seq 0
        engine.call_at(2e-6, deliver, _Msg(1, 1))       # lane 0, at cap
        engine.call_at(2e-6, deliver, _Msg(8, 8))       # lane 1, same when
        engine.call_at(2e-6, deliver, _Msg(9, 9))       # lane 1, later seq

    trace, _ = _assert_parallel_matches_serial(script)
    assert trace == [(1e-6, 0), (2e-6, 1), (2e-6, 8), (2e-6, 9)]


def test_simultaneous_heads_on_both_lanes_at_window_start():
    """Both lanes opening at the same T0: both heads are claimed and the
    smaller pre-window seq executes first."""

    def script(engine, deliver, series):
        engine.call_at(1e-6, deliver, _Msg(8, 8))       # lane 1 first
        engine.call_at(1e-6, deliver, _Msg(0, 0))       # lane 0 second

    trace, _ = _assert_parallel_matches_serial(script)
    assert trace == [(1e-6, 8), (1e-6, 0)]


# --- edge case: empty compute lane beside pending fabric events ---------------
def test_empty_compute_lane_with_pending_fabric_events():
    """A lane with no work must not stall the window loop while the
    fabric still holds admissions destined for it."""
    engine, cluster = _attached(drain_workers=2)
    got = []
    for rank in range(16):
        cluster.register(rank, lambda msg, r=rank: got.append(r))
    cluster.send(0, 9, "t", 64)  # rides the fabric into empty lane 1
    engine.run()
    assert got == [9]
    assert len(engine) == 0
    report = engine.partition_report()
    assert report["lane_events"]["fabric"] >= 1
    assert report["lane_events"]["compute"][1] >= 1


# --- edge case: window-local event past the cap is re-queued ------------------
def test_local_event_past_cap_requeued_not_executed():
    """A callback that schedules onto its own lane *beyond* the lookahead
    ceiling must have that event re-queued at the merge, not executed in
    the window — a cross-lane push may still land in between."""
    OPEN, PUSH, LOCAL = -1, -2, -3

    def script(engine, deliver, series):
        def late_local(msg):
            series.observe(engine.now, LOCAL)

        def cross_push(msg):
            series.observe(engine.now, PUSH)
            # Cross-partition delivery into lane 0 at 5us (3.5us slack
            # >= the 3us inter-SN lookahead) — earlier than the 6us
            # local event lane 0 spawned for itself in the same window.
            engine.call_at(5e-6, deliver, _Msg(8, 0, send_time=engine.now))

        def opener(msg):
            series.observe(engine.now, OPEN)
            engine.call_at(6e-6, late_local, _Msg(0, 0))

        engine.register_delivery(late_local)
        engine.register_delivery(cross_push)
        engine.register_delivery(opener)
        engine.call_at(1.0e-6, opener, _Msg(0, 0))      # lane 0 claim
        engine.call_at(1.5e-6, cross_push, _Msg(8, 8))  # lane 1 claim

    serial, _ = _scripted(1, script)
    parallel, engine = _scripted(2, script)
    assert parallel == serial
    report = engine.partition_report()
    assert report["parallel_fallback"] is None
    assert report["parallel_windows"] >= 1
    # Global order: the window-born cross delivery at 5us must precede
    # the window-local 6us event even though the latter was journaled
    # first — i.e. the local run was cut at the cap and re-queued.
    assert parallel == [
        (1.0e-6, OPEN), (1.5e-6, PUSH), (5e-6, 0), (6e-6, LOCAL),
    ]


# --- fallback ladder ----------------------------------------------------------
def test_fallback_reasons_recorded():
    engine, _ = _attached(drain_workers=1)
    engine.run()
    assert engine.partition_report()["parallel_fallback"] == "drain_workers=1"

    engine, _ = _attached(drain_workers=2)
    engine.run(max_events=10)
    assert "budget" in engine.partition_report()["parallel_fallback"]

    engine, _ = _attached(drain_workers=2)
    engine.mark_parallel_unsafe("shared retransmit state")
    engine.run()
    assert (
        engine.partition_report()["parallel_fallback"]
        == "shared retransmit state"
    )


def test_fallback_on_cluster_interposer():
    engine, cluster = _attached(drain_workers=2)
    original = cluster.send
    cluster.send = lambda *a, **k: original(*a, **k)  # instance interposer
    engine.run()
    assert "interposer" in engine.partition_report()["parallel_fallback"]


def test_process_backend_requires_codec():
    engine, _ = _attached(drain_workers=2, backend="process")
    engine.run()
    if hasattr(os, "fork"):
        assert "codec" in engine.partition_report()["parallel_fallback"]


def test_rejects_bad_drain_config():
    with pytest.raises(ConfigError):
        PartitionedEngine(2, drain_workers=0)
    with pytest.raises(ConfigError):
        PartitionedEngine(2, drain_workers=2, drain_backend="gpu")


# --- accounting ---------------------------------------------------------------
def test_partition_report_window_accounting():
    def script(engine, deliver, series):
        for i in range(4):
            engine.call_at(1e-6 + i * 1e-9, deliver, _Msg(0, 0))
            engine.call_at(1e-6 + i * 1e-9, deliver, _Msg(8, 8))

    _, engine = _scripted(2, script)
    report = engine.partition_report()
    assert report["parallel_windows"] >= 1
    assert report["parallel_window_events"] >= 2
    assert report["drain_workers"] == 2
    assert report["drain_backend"] == "thread"
    assert 0.0 < report["occupancy"] <= 1.0
    assert report["imbalance"] >= 1.0
    assert sum(report["drain_run_hist"].values()) == report["drains"]


def test_drain_histogram_buckets_by_run_length():
    engine, _ = _attached(drain_workers=1)
    ran = []

    def deliver(msg):
        ran.append(msg.dst)

    engine.register_delivery(deliver)
    # One run of 3 events on lane 0 (all below lane 1's head), then 1.
    for i in range(3):
        engine.call_at(1e-6 + i * 1e-10, deliver, _Msg(0, 0))
    engine.call_at(1e-3, deliver, _Msg(8, 8))
    engine.run()
    hist = engine.partition_report()["drain_run_hist"]
    assert hist.get("2-3") == 1  # the 3-event run
    assert hist.get("1") == 1    # the singleton run
