"""SPM allocator tests — including the Direct-CPE overflow failure mode."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError, SpmOverflow
from repro.machine import Spm
from repro.machine.spm import check_staging_layout


def test_capacity_is_64kb_by_default():
    assert Spm().capacity == 64 * 1024


def test_alloc_and_free_track_usage():
    spm = Spm()
    spm.alloc("a", 1000)
    spm.alloc("b", 2000)
    assert spm.used == 3000
    assert spm.free == 64 * 1024 - 3000
    spm.free_buffer("a")
    assert spm.used == 2000
    assert spm.layout() == {"b": 2000}


def test_overflow_raises():
    spm = Spm()
    spm.alloc("big", 60_000)
    with pytest.raises(SpmOverflow):
        spm.alloc("more", 10_000)


def test_exact_fit_is_allowed():
    spm = Spm()
    spm.alloc("all", 64 * 1024)
    assert spm.free == 0


def test_double_alloc_and_unknown_free_rejected():
    spm = Spm()
    spm.alloc("x", 10)
    with pytest.raises(ConfigError):
        spm.alloc("x", 10)
    with pytest.raises(ConfigError):
        spm.free_buffer("y")


def test_reset_clears_everything():
    spm = Spm()
    spm.alloc("x", 100)
    spm.reset()
    assert spm.used == 0
    assert spm.layout() == {}


def test_staging_layout_small_scale_fits():
    # 16 destinations x 256 B staging buffers easily fit one CPE's SPM.
    used = check_staging_layout(num_buffers=16, buffer_bytes=256)
    assert used <= 64 * 1024


def test_staging_layout_direct_cpe_crash():
    # Direct CPE at large node counts: per-destination buffers for
    # thousands of peers cannot fit 64 KB -> the Figure 11 crash.
    with pytest.raises(SpmOverflow):
        check_staging_layout(num_buffers=1024, buffer_bytes=256)


@given(st.integers(min_value=0, max_value=300), st.integers(min_value=1, max_value=512))
def test_staging_layout_accounting_is_exact(n, size):
    reserved = 4 * 1024
    try:
        used = check_staging_layout(n, size, reserved_bytes=reserved)
    except SpmOverflow:
        assert reserved + n * size > 64 * 1024
    else:
        assert used == reserved + n * size
        assert used <= 64 * 1024
