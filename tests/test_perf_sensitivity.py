"""Sensitivity-analysis tests: the reproduction's conclusions are robust."""

import pytest

from repro.errors import ConfigError
from repro.perf import PerfParams
from repro.perf.sensitivity import (
    CALIBRATED_FIELDS,
    perturbed_params,
    robust_claims,
    shape_claims,
    sweep,
)
from repro.perf.scaling import ScalingModel


def test_all_shape_claims_hold_at_defaults():
    claims = shape_claims(ScalingModel())
    assert all(claims.values()), claims


def test_every_claim_survives_2x_perturbations():
    """The headline robustness statement: no Figure 11/12 conclusion rests
    on a fine-tuned calibrated constant."""
    results = sweep(factors=(0.5, 2.0))
    robust = robust_claims(results)
    expected = set(shape_claims(ScalingModel()))
    assert set(robust) == expected


def test_headline_moves_with_work_fraction():
    """Sanity: perturbations actually change the number (the sweep isn't
    trivially flat)."""
    low = ScalingModel(perturbed_params("work_fraction_optimized", 0.5))
    high = ScalingModel(perturbed_params("work_fraction_optimized", 2.0))
    assert low.headline().gteps > high.headline().gteps


def test_mpe_rate_only_touches_mpe_variants():
    base = ScalingModel().headline().gteps
    perturbed = ScalingModel(perturbed_params("mpe_node_rate", 2.0))
    assert perturbed.headline().gteps == pytest.approx(base)
    assert (
        perturbed.fig11_point("relay-mpe", 4096).gteps
        > ScalingModel().fig11_point("relay-mpe", 4096).gteps
    )


def test_perturbed_params_mechanics():
    p = perturbed_params("imbalance", 2.0)
    assert p.imbalance == pytest.approx(2 * PerfParams().imbalance)
    with pytest.raises(ConfigError):
        perturbed_params("not_a_field", 2.0)
    with pytest.raises(ConfigError):
        perturbed_params("imbalance", 0.0)


def test_calibrated_field_list_matches_params():
    names = {f for f in CALIBRATED_FIELDS}
    from dataclasses import fields

    actual = {f.name for f in fields(PerfParams)}
    assert names <= actual
