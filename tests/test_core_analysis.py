"""Post-run analysis helper tests."""

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS
from repro.core.analysis import bottleneck_report, load_imbalance, per_node_work
from repro.errors import ConfigError
from repro.graph import CSRGraph, KroneckerGenerator

CFG = BFSConfig(hub_count_topdown=16, hub_count_bottomup=16)


def run_one(config=CFG, scale=10, nodes=8):
    edges = KroneckerGenerator(scale=scale, seed=61).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    bfs = DistributedBFS(edges, nodes, config=config, nodes_per_super_node=4)
    bfs.run(root)
    return bfs


def test_per_node_work_shape_and_positivity():
    bfs = run_one()
    work = per_node_work(bfs)
    assert work.shape == (8,)
    assert (work > 0).all()  # every node at least handled markers
    clusters_only = per_node_work(bfs, kinds=("C",))
    mpes_only = per_node_work(bfs, kinds=("M",))
    assert np.allclose(work, clusters_only + mpes_only)


def test_load_imbalance_report():
    bfs = run_one()
    rep = load_imbalance(bfs)
    assert rep.min_work <= rep.mean_work <= rep.max_work
    assert rep.factor >= 1.0


def test_load_imbalance_requires_a_run():
    edges = KroneckerGenerator(scale=8, seed=1).generate()
    bfs = DistributedBFS(edges, 4, config=CFG, nodes_per_super_node=2)
    with pytest.raises(ConfigError):
        load_imbalance(bfs)


def test_bottleneck_report_sorted_and_complete():
    bfs = run_one()
    rep = bottleneck_report(bfs)
    values = list(rep.values())
    assert values == sorted(values, reverse=True)
    # All eight unit kinds appear.
    assert set(rep) == {"M0", "M1", "M2", "M3", "C0", "C1", "C2", "C3"}


def test_mpe_mode_bottleneck_is_an_mpe():
    cfg = BFSConfig(
        use_cpe_clusters=False, hub_count_topdown=16, hub_count_bottomup=16
    )
    bfs = run_one(config=cfg)
    rep = bottleneck_report(bfs)
    top = next(iter(rep))
    assert top.startswith("M")
    assert rep["C0"] == 0.0


def test_balanced_partition_flattens_cluster_work():
    edges = KroneckerGenerator(scale=12, seed=83, permute_vertices=False).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    factors = {}
    for mode in ("block", "balanced"):
        cfg = BFSConfig(
            partition_mode=mode,
            use_hub_prefetch=False,
            direction_optimizing=False,
            quick_path_threshold=0,
        )
        bfs = DistributedBFS(edges, 8, config=cfg, nodes_per_super_node=4)
        bfs.run(root)
        factors[mode] = load_imbalance(bfs, kinds=("C",)).factor
    assert factors["balanced"] < factors["block"]
