"""Bottom-up early-termination emulation: the chunking actually saves work."""

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.validate import validate_bfs_result


def run_with_chunk(chunk, edges, root):
    cfg = BFSConfig(
        bottomup_chunk=chunk,
        use_hub_prefetch=False,  # isolate the chunking effect
        hub_count_topdown=8,
        hub_count_bottomup=8,
    )
    bfs = DistributedBFS(edges, 8, config=cfg, nodes_per_super_node=4)
    return bfs.run(root)


@pytest.fixture(scope="module")
def case():
    edges = KroneckerGenerator(scale=12, seed=71).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    return edges, graph, root


def test_chunked_bu_sends_fewer_records_than_full_flush(case):
    edges, graph, root = case
    chunked = run_with_chunk(4, edges, root)
    flushed = run_with_chunk(0, edges, root)
    for result in (chunked, flushed):
        validate_bfs_result(graph, edges, root, result.parent)
    assert chunked.stats["bu_levels"] >= 1  # the hybrid actually switched
    # Early-termination emulation: most vertices settle within their first
    # few neighbour probes, so chunking sends far fewer backward queries.
    assert chunked.stats["records_sent"] < 0.7 * flushed.stats["records_sent"]


def test_chunked_bu_uses_multiple_subrounds(case):
    edges, _, root = case
    chunked = run_with_chunk(2, edges, root)
    bu_traces = [t for t in chunked.traces if t.direction == "bottomup"]
    assert any(t.subrounds > 1 for t in bu_traces)


def test_smaller_chunks_trade_rounds_for_records(case):
    edges, _, root = case
    fine = run_with_chunk(1, edges, root)
    coarse = run_with_chunk(16, edges, root)
    fine_rounds = sum(t.subrounds for t in fine.traces)
    coarse_rounds = sum(t.subrounds for t in coarse.traces)
    assert fine_rounds >= coarse_rounds
    assert fine.stats["records_sent"] <= coarse.stats["records_sent"]


def test_teps_harmonic_stddev_formula():
    """Cross-check the spec's delta-method estimator against a direct
    computation on the reciprocals."""
    import numpy as np

    from repro.graph500 import TepsStatistics

    teps = np.array([1.0e9, 2.0e9, 4.0e9, 8.0e9])
    stats = TepsStatistics(teps)
    inv = 1.0 / teps
    hm = len(teps) / inv.sum()
    stderr = np.std(inv, ddof=1) / np.sqrt(len(inv))
    assert stats.harmonic_mean() == pytest.approx(hm)
    assert stats.harmonic_stddev() == pytest.approx(hm * hm * stderr)
