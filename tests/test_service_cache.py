"""Result-cache semantics: LRU order, invalidation, counters."""

import pytest

from repro.errors import ConfigError
from repro.service import ResultCache, cache_key, canonical_params


def test_capacity_validation():
    with pytest.raises(ConfigError):
        ResultCache(0)


def test_hit_miss_counters():
    cache = ResultCache(4)
    key = ("g", "bfs", (("root", 1),))
    assert cache.get(key) is None
    cache.put(key, {"x": 1})
    assert cache.get(key) == {"x": 1}
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate() == 0.5


def test_lru_eviction_order():
    cache = ResultCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh a; b is now least-recent
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert cache.evictions == 1


def test_invalidate_graph_drops_only_that_graph():
    cache = ResultCache(8)
    for root in range(3):
        cache.put(cache_key("g1", "bfs", {"root": root}), root)
    cache.put(cache_key("g2", "bfs", {"root": 0}), "keep")
    assert cache.invalidate_graph("g1") == 3
    assert len(cache) == 1
    assert cache.get(cache_key("g2", "bfs", {"root": 0})) == "keep"
    assert cache.invalidations == 3


def test_clear_counts_as_invalidation():
    cache = ResultCache(4)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.clear()
    assert len(cache) == 0 and cache.invalidations == 2


def test_canonicalisation_collapses_spellings_to_one_key():
    """Defaults filled vs explicit, int-vs-string roots: one cache line."""
    implicit = canonical_params("bfs", {"root": 5})
    explicit = canonical_params("bfs", {"root": "5", "variant": "relay-cpe"})
    assert implicit == explicit
    assert cache_key("g", "bfs", implicit) == cache_key("g", "bfs", explicit)


def test_canonicalisation_rejects_garbage():
    with pytest.raises(ConfigError, match="unknown algorithm"):
        canonical_params("sha256", {})
    with pytest.raises(ConfigError, match="requires parameter"):
        canonical_params("bfs", {})
    with pytest.raises(ConfigError, match="unknown bfs parameter"):
        canonical_params("bfs", {"root": 1, "fanout": 3})
    with pytest.raises(ConfigError, match="bad value"):
        canonical_params("bfs", {"root": "seven"})


def test_stats_shape():
    cache = ResultCache(4)
    cache.put("a", 1)
    cache.get("a")
    stats = cache.stats()
    assert stats["size"] == 1 and stats["capacity"] == 4
    assert stats["hits"] == 1 and stats["hit_rate"] == 1.0
