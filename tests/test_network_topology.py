"""Fat-tree topology tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.network import FatTreeTopology


def test_super_node_partitioning():
    topo = FatTreeTopology(1024, nodes_per_super_node=256)
    assert topo.num_super_nodes == 4
    assert topo.super_node_of(0) == 0
    assert topo.super_node_of(255) == 0
    assert topo.super_node_of(256) == 1
    assert topo.super_node_of(1023) == 3


def test_partial_last_super_node():
    topo = FatTreeTopology(300, nodes_per_super_node=256)
    assert topo.num_super_nodes == 2
    assert list(topo.nodes_in_super_node(1)) == list(range(256, 300))


def test_intra_vs_inter():
    topo = FatTreeTopology(512)
    assert topo.is_intra_super_node(3, 200)
    assert not topo.is_intra_super_node(3, 300)


def test_hop_counts():
    topo = FatTreeTopology(512)
    assert topo.hop_count(5, 5) == 0
    assert topo.hop_count(5, 6) == 2
    assert topo.hop_count(5, 300) == 4


def test_validation():
    with pytest.raises(ConfigError):
        FatTreeTopology(0)
    with pytest.raises(ConfigError):
        FatTreeTopology(10, nodes_per_super_node=0)
    with pytest.raises(ConfigError):
        FatTreeTopology(10, central_oversubscription=0)
    topo = FatTreeTopology(10)
    with pytest.raises(ConfigError):
        topo.check_node(10)
    with pytest.raises(ConfigError):
        topo.nodes_in_super_node(5)


def test_full_machine_has_160_lower_switches():
    # Section 3.3: "the upper level network connects the 160 lower level
    # switches" — 40,960 / 256 = 160.
    topo = FatTreeTopology(40_960)
    assert topo.num_super_nodes == 160


@given(st.integers(min_value=1, max_value=5000), st.integers(min_value=1, max_value=512))
def test_every_node_in_exactly_one_super_node(num_nodes, nps):
    topo = FatTreeTopology(num_nodes, nodes_per_super_node=nps)
    seen = set()
    for sn in range(topo.num_super_nodes):
        members = set(topo.nodes_in_super_node(sn))
        assert not (members & seen)
        seen |= members
    assert seen == set(range(num_nodes))
