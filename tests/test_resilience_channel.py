"""Reliable-transport tests: acks, retransmission, dedup, corruption."""

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS
from repro.errors import ConfigError
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.validate import validate_bfs_result
from repro.network.simmpi import SimCluster
from repro.resilience import ACK_TAG, ReliableChannel, ResilienceConfig
from repro.sim.engine import Engine
from repro.sim.faults import (
    RandomFaultInjector,
    RandomFaultPlan,
    dropped_message,
)

CFG = BFSConfig(hub_count_topdown=16, hub_count_bottomup=16)
RELIABLE = ResilienceConfig(reliable_transport=True)


def make_bfs(seed=41, resilience=None):
    edges = KroneckerGenerator(scale=10, seed=seed).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    bfs = DistributedBFS(
        edges, 8, config=CFG, nodes_per_super_node=4, resilience=resilience
    )
    return edges, graph, root, bfs


def test_reliable_clean_run_is_transparent():
    """On a perfect wire the channel only adds acks: same tree, same
    depths, zero retransmissions."""
    edges, graph, root, clean_bfs = make_bfs()
    clean = clean_bfs.run(root)
    _, _, _, bfs = make_bfs(resilience=RELIABLE)
    result = bfs.run(root)
    validate_bfs_result(graph, edges, root, result.parent)
    assert np.array_equal(result.depths(), clean.depths())
    assert result.stats["retransmits"] == 0
    assert result.stats["gave_up"] == 0
    assert result.stats["acks"] > 0
    # Simulated time is identical: acks ride the network model but never
    # gate a compute stage on a loss-free wire.
    assert result.sim_seconds == pytest.approx(clean.sim_seconds)


def test_retransmission_recovers_from_random_drops():
    """The acceptance scenario: >= 1% drop rate, every loss retransmitted,
    the run completes and passes full Graph500 validation."""
    edges, graph, root, clean_bfs = make_bfs()
    clean = clean_bfs.run(root)
    _, _, _, bfs = make_bfs(resilience=RELIABLE)
    injector = RandomFaultInjector(
        bfs.cluster, RandomFaultPlan(drop_rate=0.02, seed=7)
    )
    result = bfs.run(root)
    assert injector.dropped > 0
    assert result.stats["retransmits"] >= injector.dropped
    assert result.stats["gave_up"] == 0
    validate_bfs_result(graph, edges, root, result.parent)
    assert np.array_equal(result.depths(), clean.depths())
    # Losses cost (simulated) time, never correctness.
    assert result.sim_seconds > clean.sim_seconds


def test_duplicate_storm_is_suppressed():
    edges, graph, root, clean_bfs = make_bfs()
    clean = clean_bfs.run(root)
    _, _, _, bfs = make_bfs(resilience=RELIABLE)
    injector = RandomFaultInjector(
        bfs.cluster, RandomFaultPlan(duplicate_rate=0.3, seed=11)
    )
    result = bfs.run(root)
    assert injector.duplicated > 0
    assert result.stats["dup_suppressed"] > 0
    validate_bfs_result(graph, edges, root, result.parent)
    assert np.array_equal(result.depths(), clean.depths())


def test_corruption_detected_and_retransmitted():
    """Checksum mismatch discards the payload; the sender's timer then
    retransmits the clean copy, so the tree still validates."""
    edges, graph, root, clean_bfs = make_bfs()
    clean = clean_bfs.run(root)
    _, _, _, bfs = make_bfs(resilience=RELIABLE)
    injector = RandomFaultInjector(
        bfs.cluster, RandomFaultPlan(corrupt_rate=0.02, seed=5)
    )
    result = bfs.run(root)
    assert injector.corrupted > 0
    assert result.stats["corrupt_detected"] > 0
    assert result.stats["retransmits"] > 0
    validate_bfs_result(graph, edges, root, result.parent)
    assert np.array_equal(result.depths(), clean.depths())


def test_mixed_faults_deterministic_replay():
    """Same seed -> bit-identical stats and tree across fresh simulations."""

    def one_run():
        edges, graph, root, bfs = make_bfs(resilience=RELIABLE)
        plan = RandomFaultPlan(
            drop_rate=0.01, duplicate_rate=0.05, delay_rate=0.05,
            corrupt_rate=0.01, seed=23,
        )
        RandomFaultInjector(bfs.cluster, plan)
        result = bfs.run(root)
        validate_bfs_result(graph, edges, root, result.parent)
        return result

    a, b = one_run(), one_run()
    assert a.stats == b.stats
    assert a.sim_seconds == b.sim_seconds
    assert np.array_equal(a.parent, b.parent)
    assert a.stats["retransmits"] > 0


def test_different_seed_different_faults():
    def stats_for(seed):
        _, _, root, bfs = make_bfs(resilience=RELIABLE)
        RandomFaultInjector(
            bfs.cluster, RandomFaultPlan(drop_rate=0.02, seed=seed)
        )
        return bfs.run(root).stats

    assert stats_for(1) != stats_for(2)


def test_exhausted_retries_counts_gave_up():
    """A wire that eats *everything* makes the sender give up after
    max_retries attempts — counted, not hung."""
    engine = Engine()
    cluster = SimCluster(engine, num_nodes=2)
    received = []
    cluster.register(0, lambda m: received.append(m))
    cluster.register(1, lambda m: received.append(m))
    res = ResilienceConfig(reliable_transport=True, max_retries=3)
    channel = ReliableChannel(cluster, res)
    original_send = cluster.send

    def black_hole(src, dst, tag, nbytes, payload=None, at_time=None):
        return dropped_message(src, dst, tag, nbytes, payload, at_time
                               if at_time is not None else engine.now)

    cluster.send = black_hole
    channel.send(0, 1, "fwd", 64, payload=None)
    engine.run_until_quiescent()
    cluster.send = original_send
    assert cluster.stats.value("gave_up") == 1
    # 1 original attempt + max_retries retransmissions, all eaten.
    assert cluster.stats.value("retransmits") == 3
    assert not received


def test_ack_tag_is_reserved():
    engine = Engine()
    cluster = SimCluster(engine, num_nodes=2)
    cluster.register(0, lambda m: None)
    cluster.register(1, lambda m: None)
    channel = ReliableChannel(cluster, RELIABLE)
    with pytest.raises(ConfigError):
        channel.send(0, 1, ACK_TAG, 8)


def test_channel_uninstall_is_idempotent():
    engine = Engine()
    cluster = SimCluster(engine, num_nodes=2)
    cluster.register(0, lambda m: None)
    cluster.register(1, lambda m: None)
    deliver_before = cluster._deliver
    channel = ReliableChannel(cluster, RELIABLE)
    assert cluster._deliver != deliver_before
    channel.uninstall()
    assert cluster._deliver == deliver_before
    channel.uninstall()  # second call is a no-op
    assert cluster._deliver == deliver_before


def test_dropped_message_sentinel():
    msg = dropped_message(0, 1, "fwd", 64, None, 0.5)
    assert msg.src == 0 and msg.dst == 1
    assert msg.arrival_time == float("inf")


def test_injector_context_manager_uninstalls():
    _, _, root, bfs = make_bfs()
    send_before = bfs.cluster.send
    with RandomFaultInjector(
        bfs.cluster, RandomFaultPlan(drop_rate=1.0, seed=3)
    ) as injector:
        assert injector.installed
        assert bfs.cluster.send != send_before
    assert not injector.installed
    assert bfs.cluster.send == send_before
    # With the lossy wire gone the run is clean again.
    result = bfs.run(root)
    assert result.stats["messages"] > 0


def test_fault_plan_rejects_bad_rates():
    with pytest.raises(ConfigError):
        RandomFaultPlan(drop_rate=1.5)
    with pytest.raises(ConfigError):
        RandomFaultPlan(delay_rate=-0.1)


def test_resilience_config_validation():
    with pytest.raises(ConfigError):
        ResilienceConfig(ack_timeout=0.0)
    with pytest.raises(ConfigError):
        ResilienceConfig(max_retries=-1)
    with pytest.raises(ConfigError):
        ResilienceConfig(backoff_factor=0.5)
    with pytest.raises(ConfigError):
        ResilienceConfig(checkpoint_interval=-2)
