"""Preset tests."""

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS
from repro.core.presets import paper, textbook, toy, with_compression
from repro.errors import ConfigError
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.validate import validate_bfs_result


def test_paper_preset_is_the_defaults():
    assert paper() == BFSConfig()
    assert paper().variant_name == "relay-cpe"
    assert paper().hub_count_topdown == 1 << 12
    assert paper().hub_count_bottomup == 1 << 14


def test_toy_scales_hubs_down():
    cfg = toy(8)
    assert cfg.hub_count_topdown == cfg.hub_count_bottomup == 8
    assert cfg.use_relay and cfg.use_cpe_clusters  # everything else intact
    with pytest.raises(ConfigError):
        toy(0)


def test_toy_composes_with_base():
    base = BFSConfig(use_relay=False)
    cfg = toy(4, base=base)
    assert not cfg.use_relay
    assert cfg.hub_count_topdown == 4


def test_with_compression_codec_and_ratio():
    codec = with_compression()
    assert codec.use_codec and codec.compression_ratio == 1.0
    fixed = with_compression(2.0)
    assert not fixed.use_codec and fixed.compression_ratio == 2.0


def test_textbook_is_fully_stripped():
    cfg = textbook()
    assert not cfg.use_relay
    assert not cfg.direction_optimizing
    assert not cfg.use_hub_prefetch
    assert cfg.variant_name == "direct-cpe"


def test_presets_all_produce_valid_traversals():
    edges = KroneckerGenerator(scale=9, seed=77).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    for cfg in (toy(8), with_compression(base=toy(8)), textbook()):
        bfs = DistributedBFS(edges, 4, config=cfg, nodes_per_super_node=2)
        result = bfs.run(root)
        validate_bfs_result(graph, edges, root, result.parent)
