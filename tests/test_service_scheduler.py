"""Admission, fair-queueing, and timeout edge cases.

The scheduler tests run on a fake clock (injected ``clock=``) so refill
and deadline arithmetic is exact; the service-level cases use real worker
threads with deadlines orders of magnitude away from the race they probe.
"""

import pytest

from repro.errors import ConfigError
from repro.graph.kronecker import KroneckerGenerator
from repro.service import (
    QUEUED,
    SHED_QUEUE,
    SHED_RATE,
    FairScheduler,
    GraphService,
    GraphSpec,
    QueryRequest,
    ServiceConfig,
    TenantConfig,
    TokenBucket,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# -- token bucket -------------------------------------------------------------


def test_burst_exactly_at_capacity():
    """A burst of exactly ``burst`` queries is admitted in full; the next
    one sheds — the capacity bound is inclusive, not off-by-one."""
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=4, clock=clock)
    assert [bucket.try_take() for _ in range(4)] == [True] * 4
    assert not bucket.try_take()


def test_bucket_refills_at_rate():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=4, clock=clock)
    for _ in range(4):
        bucket.try_take()
    clock.advance(0.5)  # one token back at 2/s
    assert bucket.try_take()
    assert not bucket.try_take()


def test_bucket_caps_refill_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
    clock.advance(1000.0)
    assert [bucket.try_take() for _ in range(3)] == [True, True, False]


def test_unlimited_bucket():
    bucket = TokenBucket(rate=None, burst=1, clock=FakeClock())
    assert all(bucket.try_take() for _ in range(1000))


# -- scheduler ---------------------------------------------------------------


def test_shed_then_retry_succeeds_after_refill():
    """A shed tenant that backs off and retries after the bucket refills
    is admitted — shedding is stateless, not a penalty box."""
    clock = FakeClock()
    sched = FairScheduler(clock=clock)
    sched.configure_tenant("t", TenantConfig(rate=1.0, burst=1))
    assert sched.offer("t", "q1") == QUEUED
    assert sched.offer("t", "q2") == SHED_RATE
    clock.advance(1.0)
    assert sched.offer("t", "q2-retry") == QUEUED
    assert sched.take() == "q1"
    assert sched.take() == "q2-retry"


def test_queue_depth_shed():
    sched = FairScheduler(clock=FakeClock())
    sched.configure_tenant("t", TenantConfig(max_queue_depth=2))
    assert sched.offer("t", 1) == QUEUED
    assert sched.offer("t", 2) == QUEUED
    assert sched.offer("t", 3) == SHED_QUEUE
    assert sched.stats("t")["shed_queue"] == 1


def test_drr_round_robin_under_skew():
    """A tenant offering 10x the load still alternates 1:1 with its peer
    at equal weights — the arrival skew does not buy service skew."""
    sched = FairScheduler(clock=FakeClock())
    for i in range(20):
        sched.offer("heavy", ("heavy", i))
    sched.offer("light", ("light", 0))
    sched.offer("light", ("light", 1))
    order = [sched.take(timeout=0) for _ in range(6)]
    tenants = [t for t, _ in order]
    assert tenants.count("light") == 2
    # The light tenant is served within the first two ring rotations, not
    # after the heavy backlog drains.
    assert "light" in tenants[:2]


def test_drr_weight_gives_proportional_share():
    sched = FairScheduler(clock=FakeClock())
    sched.configure_tenant("gold", TenantConfig(weight=2.0))
    for i in range(12):
        sched.offer("gold", ("gold", i))
        sched.offer("bronze", ("bronze", i))
    first_six = [sched.take(timeout=0)[0] for _ in range(6)]
    assert first_six.count("gold") == 4
    assert first_six.count("bronze") == 2


def test_take_returns_none_on_timeout_and_close():
    sched = FairScheduler(clock=FakeClock())
    assert sched.take(timeout=0.01) is None
    sched.offer("t", "item")
    sched.close()
    assert sched.take() == "item"  # close drains before returning None
    assert sched.take() is None
    with pytest.raises(ConfigError):
        sched.offer("t", "rejected")


def test_configure_replaces_bucket_keeps_queue():
    clock = FakeClock()
    sched = FairScheduler(clock=clock)
    sched.configure_tenant("t", TenantConfig(rate=1.0, burst=1))
    sched.offer("t", "queued")
    assert sched.offer("t", "x") == SHED_RATE
    sched.configure_tenant("t", TenantConfig(rate=100.0, burst=10))
    assert sched.offer("t", "now-fits") == QUEUED
    assert sched.depth("t") == 2


# -- service-level edge cases -------------------------------------------------


@pytest.fixture(scope="module")
def edges():
    return KroneckerGenerator(8, seed=1).generate()


def _service(**kwargs):
    config = ServiceConfig(host_shared=False, **kwargs)
    svc = GraphService(config)
    svc.load_graph("g", GraphSpec(scale=8, nodes=4, seed=1))
    return svc


def test_timeout_fires_mid_execute_but_caches_payload():
    """A deadline shorter than the kernel reports ``timeout`` to the
    caller, yet the validly computed payload fills the cache — the next
    asker gets an instant hit."""
    svc = _service(workers=1)
    try:
        # The deadline must outlive the (sub-millisecond) queue hop but
        # not the multi-ten-millisecond kernel, so it fires mid-execute.
        late = svc.query(
            QueryRequest(
                graph="g", algo="pagerank", params={"iterations": 80},
                timeout=0.01,
            )
        )
        assert late.status == "timeout"
        assert "during execution" in late.error
        hit = svc.query(
            QueryRequest(graph="g", algo="pagerank", params={"iterations": 80})
        )
        assert hit.status == "ok" and hit.cached
        assert len(hit.payload["ranks"]) == 256
    finally:
        svc.close()


def test_timeout_fires_while_queued():
    """Behind a slow query on a single worker, a short-deadline query
    times out at dequeue without executing at all."""
    svc = _service(workers=1)
    try:
        slow = svc.submit(
            QueryRequest(graph="g", algo="pagerank", params={"iterations": 50})
        )
        quick = svc.submit(
            QueryRequest(graph="g", algo="bfs", params={"root": 0},
                         timeout=1e-6)
        )
        result = quick.result(timeout=30)
        assert result.status == "timeout"
        assert "queued" in result.error
        assert result.payload == {}
        assert slow.result(timeout=30).status == "ok"
    finally:
        svc.close()


def test_shed_resolves_future_immediately():
    svc = _service(workers=1)
    try:
        svc.configure_tenant("t", TenantConfig(rate=0.001, burst=1))
        first = svc.submit(
            QueryRequest(graph="g", algo="bfs", params={"root": 0}, tenant="t")
        )
        shed = svc.submit(
            QueryRequest(graph="g", algo="bfs", params={"root": 1}, tenant="t")
        )
        result = shed.result(timeout=1)
        assert result.status == "shed"
        assert "rate limit" in result.error
        assert first.result(timeout=30).status == "ok"
        assert svc.tenant_stats("t")["shed"] == 1
    finally:
        svc.close()


def test_cache_hit_racing_eviction():
    """Eviction invalidates the graph's cache lines before the entry is
    released: a query submitted after evict can neither hit the stale
    line nor execute against the gone graph."""
    svc = _service(workers=2)
    try:
        request = QueryRequest(graph="g", algo="bfs", params={"root": 5})
        warm = svc.query(request)
        assert warm.status == "ok"
        assert svc.cache.get(request.key()) is not None  # line is hot
        svc.cache.stats()
        outcome = svc.evict_graph("g")
        assert outcome["released"]
        assert svc.cache.get(request.key()) is None  # invalidated with it
        after = svc.query(request)
        assert after.status == "error"
        assert "unknown graph" in after.error
    finally:
        svc.close()


def test_pinned_entry_survives_eviction_until_released():
    """The deferred-release half of the race: a pin taken before evict
    keeps the artifacts alive; release happens when the pin drops."""
    svc = _service(workers=1)
    try:
        catalog = svc.catalog
        with catalog.pin("g") as entry:
            svc.evict_graph("g")
            assert entry.evicted
            # Still usable under the pin: the arrays are not torn down.
            payload = entry.graph.row_ptr
            assert payload is not None
        assert "g" not in catalog.names()
    finally:
        svc.close()


def test_cache_disabled_service_still_serves():
    svc = _service(workers=1, cache_capacity=0)
    try:
        assert svc.cache is None
        first = svc.query(QueryRequest(graph="g", algo="bfs", params={"root": 2}))
        second = svc.query(QueryRequest(graph="g", algo="bfs", params={"root": 2}))
        assert first.status == second.status == "ok"
        assert not second.cached
    finally:
        svc.close()
