"""Time-model regression tests: the pipelining the paper's design promises.

Section 4.1: "data should be transmitted or processed as soon as it is
ready". These tests pin the overlap behaviours of the driver's schedule:
sends stream against generation, different modules overlap on their own
clusters, and nodes progress concurrently. They use a large per-node
workload (scale 15 on 4 nodes, optimisations off) so module executions are
long enough for overlap to be observable.
"""

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS
from repro.graph import CSRGraph, KroneckerGenerator
from repro.telemetry.export import collect_intervals


def _any_overlap(windows_a, windows_b):
    return any(
        a_start < b_finish and b_start < a_finish
        for a_start, a_finish in windows_a
        for b_start, b_finish in windows_b
    )


@pytest.fixture(scope="module")
def traced():
    edges = KroneckerGenerator(scale=15, seed=91).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    bfs = DistributedBFS(
        edges, 4,
        config=BFSConfig(
            use_hub_prefetch=False,       # keep generator volumes large
            direction_optimizing=False,
            quick_path_threshold=0,       # keep module work on the clusters
        ),
        nodes_per_super_node=2,
    )
    bfs.enable_tracing()
    result = bfs.run(root)
    return bfs, result, collect_intervals(bfs._all_servers())


def test_sends_start_before_generation_finishes(traced):
    """Bucketed sends are pipelined against the generator via
    ready_fraction: some M0 busy window begins strictly inside a C0
    generator window on the same node."""
    bfs, _, intervals = traced
    found = False
    for node in range(bfs.num_nodes):
        c0 = intervals.get(f"node{node}.C0", [])
        m0 = intervals.get(f"node{node}.M0", [])
        for g_start, g_finish in c0:
            if any(g_start < s < g_finish for s, _ in m0):
                found = True
                break
        if found:
            break
    assert found, "no send overlapped any generator execution"


def test_nodes_progress_concurrently(traced):
    """Generator windows on different nodes overlap in simulated time."""
    bfs, _, intervals = traced
    c0_node0 = intervals.get("node0.C0", [])
    assert any(
        _any_overlap(c0_node0, intervals.get(f"node{other}.C0", []))
        for other in range(1, bfs.num_nodes)
    )


def test_handler_and_generator_clusters_overlap(traced):
    """One node's Forward Handler (C3) runs while another node's generator
    (C0) is still busy — the cross-node pipeline of Figure 4: early
    buckets are handled at their destination while the source keeps
    generating."""
    bfs, _, intervals = traced
    assert any(
        _any_overlap(
            intervals.get(f"node{src}.C0", []),
            intervals.get(f"node{dst}.C3", []),
        )
        for src in range(bfs.num_nodes)
        for dst in range(bfs.num_nodes)
        if src != dst
    )


def test_total_busy_bounded_by_span_times_units(traced):
    bfs, result, intervals = traced
    total_busy = sum(sum(f - s for s, f in iv) for iv in intervals.values())
    units = bfs.num_nodes * 8
    assert total_busy <= result.traces[-1].finish * units


def test_makespan_shorter_than_serialised_work(traced):
    """Parallelism is real: the run's span is below the total busy time of
    all resources — node units plus network links (the NIC serialisation
    that actually paces the big levels)."""
    bfs, result, intervals = traced
    node_busy = sum(sum(f - s for s, f in iv) for iv in intervals.values())
    net = bfs.cluster.network
    link_busy = sum(
        link.busy_time
        for group in (net.nic_out, net.nic_in, net.uplink, net.downlink)
        for link in group
    )
    assert result.sim_seconds < node_busy + link_busy
    # And no single node unit accounts for the whole span.
    longest_unit = max(sum(f - s for s, f in iv) for iv in intervals.values())
    assert longest_unit < result.sim_seconds
