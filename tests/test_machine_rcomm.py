"""Register-communication primitive tests."""

import pytest

from repro.errors import ConfigError
from repro.machine.rcomm import SYNC_CYCLES, RegisterComm
from repro.machine.cluster import CpeCluster

rc = RegisterComm()


def test_point_to_point_cycles():
    # 64 B = 2 payload cycles + handshake.
    assert rc.send_cycles((0, 0), (0, 5), 64) == SYNC_CYCLES + 2
    # Sub-word payloads still cost one cycle.
    assert rc.send_cycles((2, 3), (7, 3), 1) == SYNC_CYCLES + 1
    assert rc.send_cycles((0, 0), (0, 1), 0) == SYNC_CYCLES


def test_legality_enforced():
    with pytest.raises(ConfigError):
        rc.send_cycles((0, 0), (1, 1), 8)
    with pytest.raises(ConfigError):
        rc.send_cycles((0, 0), (0, 0), 8)
    with pytest.raises(ConfigError):
        rc.send_cycles((0, 0), (0, 1), -1)


def test_broadcast_fanout_counts():
    flag = 8  # one 64-bit flag
    row = rc.row_broadcast_cycles((0, 0), flag)
    col = rc.column_broadcast_cycles((0, 0), flag)
    assert row == SYNC_CYCLES + 7
    assert col == SYNC_CYCLES + 7
    assert rc.cluster_broadcast_cycles((0, 0), flag) == row + col


def test_cluster_broadcast_is_nanoseconds():
    """The whole 64-CPE notification fan-out costs ~15 ns — which is why
    flag polling + register broadcast beats the 10 us interrupt."""
    t = rc.cluster_broadcast_time(8)
    assert 5e-9 < t < 50e-9
    assert t < 10e-6 / 100  # orders below the interrupt path


def test_peak_pair_bandwidth():
    assert rc.peak_pair_bandwidth() == pytest.approx(32 * 1.45e9)


def test_module_startup_constant_is_consistent():
    """The pipeline's flag-poll startup constant dominates the register
    fan-out it includes — memory latency is the expensive part."""
    startup = CpeCluster().module_startup_time()
    fanout = rc.cluster_broadcast_time(8)
    assert fanout < startup
