"""Golden regression pins: exact outputs for fixed seeds.

These values pin the *time model* and the deterministic algorithm. They
will change whenever a cost constant or scheduling rule changes — that is
the point: such a change must be deliberate, and updating these numbers is
the act of acknowledging it.
"""

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS
from repro.graph import KroneckerGenerator
from repro.perf import ScalingModel

CFG = BFSConfig(hub_count_topdown=16, hub_count_bottomup=16)


def test_golden_functional_run():
    edges = KroneckerGenerator(scale=10, seed=1).generate()
    bfs = DistributedBFS(edges, 8, config=CFG, nodes_per_super_node=4)
    # Root chosen deterministically: first vertex with edges.
    from repro.graph import CSRGraph

    root = int(np.flatnonzero(CSRGraph.from_edges(edges).degrees() > 0)[0])
    result = bfs.run(root)
    # Structural pins (stable under pure cost-constant changes):
    assert result.levels == 5
    assert (result.parent >= 0).sum() == 886
    assert result.directions() == [
        "topdown", "topdown", "bottomup", "bottomup", "topdown",
    ]
    # Workload pins:
    assert result.stats["records_sent"] == 826
    assert result.stats["messages"] == 347
    # Time-model pin (loose relative tolerance so float noise can't trip it,
    # tight enough that any real model change does):
    assert result.sim_seconds == pytest.approx(3.5260e-4, rel=1e-3)


def test_golden_model_points():
    model = ScalingModel()
    assert model.headline().gteps == pytest.approx(22848, rel=1e-3)
    p = model.fig11_point("relay-cpe", 4096)
    assert p.gteps == pytest.approx(2492, rel=1e-3)
    m = model.fig11_point("relay-mpe", 4096)
    assert m.gteps == pytest.approx(267, rel=2e-2)


def test_golden_kronecker_checksum():
    edges = KroneckerGenerator(scale=10, seed=1).generate()
    assert int(edges.src.sum() + edges.dst.sum()) == 17517615
