"""Utility tests: units, tables, logging, rng substreams, trace export."""

import json
import logging

import numpy as np
import pytest

from repro.sim import Server
from repro.sim.rng import substream
from repro.utils import Table, fmt_bytes, fmt_count, fmt_rate, fmt_time
from repro.utils.logging import enable_logging, get_logger
from repro.telemetry.export import collect_intervals, enable_tracing, to_chrome_trace
from repro.utils.units import gteps


# ---------------------------------------------------------------------- units --
def test_fmt_bytes():
    assert fmt_bytes(640) == "640 B"
    assert fmt_bytes(2048) == "2.0 KiB"
    assert fmt_bytes(3 * (1 << 20)) == "3.0 MiB"
    assert fmt_bytes(5 * (1 << 30)) == "5.0 GiB"


def test_fmt_time():
    assert fmt_time(2.5) == "2.5 s"
    assert fmt_time(3.2e-3) == "3.2 ms"
    assert fmt_time(4.5e-6) == "4.5 us"
    assert fmt_time(7e-9) == "7 ns"


def test_fmt_rate():
    assert fmt_rate(28.9e9) == "28.9 GB/s"
    assert fmt_rate(1.5e6) == "1.5 MB/s"
    assert fmt_rate(2e3) == "2 KB/s"
    assert fmt_rate(5) == "5 B/s"


def test_fmt_count():
    assert fmt_count(26.2e6) == "26.2M"
    assert fmt_count(1.5e9) == "1.5G"
    assert fmt_count(2000) == "2K"
    assert fmt_count(12) == "12"


def test_gteps_helper():
    assert gteps(2e9, 2.0) == 1.0
    with pytest.raises(ValueError):
        gteps(1, 0.0)


# --------------------------------------------------------------------- tables --
def test_table_renders_aligned():
    t = Table(["a", "long-header"], title="T")
    t.add_row([1, "x"])
    t.add_row([22, 3.14159])
    out = t.render()
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "long-header" in lines[1]
    assert "3.142" in out  # float formatting
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # every row equally wide


def test_table_rejects_ragged_rows():
    t = Table(["a", "b"])
    with pytest.raises(ValueError):
        t.add_row([1])


# -------------------------------------------------------------------- logging --
def test_get_logger_namespacing():
    assert get_logger("core").name == "repro.core"


def test_enable_logging_idempotent():
    enable_logging(logging.DEBUG)
    n = len(logging.getLogger("repro").handlers)
    enable_logging(logging.DEBUG)
    assert len(logging.getLogger("repro").handlers) == n


# ------------------------------------------------------------------------ rng --
def test_substream_determinism_and_independence():
    a1 = substream(42, "kronecker", 10).random(5)
    a2 = substream(42, "kronecker", 10).random(5)
    b = substream(42, "kronecker", 11).random(5)
    c = substream(43, "kronecker", 10).random(5)
    assert np.array_equal(a1, a2)
    assert not np.array_equal(a1, b)
    assert not np.array_equal(a1, c)


def test_substream_name_path_matters():
    x = substream(1, "a", "b").random(3)
    y = substream(1, "ab").random(3)
    assert not np.array_equal(x, y)


# ---------------------------------------------------------------------- trace --
def test_trace_records_and_exports():
    s = Server("node0.C0")
    enable_tracing([s])
    s.admit(0.0, 1.0)
    s.admit(0.5, 2.0)
    intervals = collect_intervals([s])
    assert intervals["node0.C0"] == [(0.0, 1.0), (1.0, 3.0)]
    blob = to_chrome_trace(intervals)
    events = json.loads(blob)["traceEvents"]
    assert len(events) == 2
    assert events[0]["pid"] == "node0"
    assert events[0]["tid"] == "C0"
    assert events[1]["ts"] == pytest.approx(1e6)
    assert events[1]["dur"] == pytest.approx(2e6)


def test_trace_enable_is_idempotent():
    s = Server("x")
    enable_tracing([s])
    s.admit(0.0, 1.0)
    enable_tracing([s])
    assert len(collect_intervals([s])["x"]) == 1


def test_untraced_server_excluded():
    s = Server("quiet")
    s.admit(0.0, 1.0)
    assert collect_intervals([s]) == {}
