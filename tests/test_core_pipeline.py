"""Pipelined module mapping tests."""

import pytest

from repro.core import BFSConfig
from repro.core.pipeline import MODULE_CLUSTER, ModuleExecution, NodePipeline
from repro.errors import ConfigError
from repro.machine.node import SunwayNode


def make(config=None):
    return NodePipeline(SunwayNode(0), config or BFSConfig())


def test_figure10_module_assignment():
    assert MODULE_CLUSTER["forward_generator"] == MODULE_CLUSTER["backward_generator"]
    assert MODULE_CLUSTER["forward_relay"] == MODULE_CLUSTER["backward_relay"]
    assert MODULE_CLUSTER["forward_handler"] != MODULE_CLUSTER["backward_handler"]
    assert set(MODULE_CLUSTER.values()) <= {0, 1, 2, 3}


def test_large_module_runs_on_its_cluster():
    p = make()
    e = p.submit_module(0.0, "forward_generator", 1 << 20)
    assert e.where.endswith("C0")
    e2 = p.submit_module(0.0, "forward_handler", 1 << 20)
    assert e2.where.endswith("C3")


def test_small_module_takes_the_mpe_quick_path():
    p = make()
    e = p.submit_module(0.0, "forward_generator", 512)
    assert ".M" in e.where


def test_mpe_mode_runs_everything_on_mpes():
    p = make(BFSConfig(use_cpe_clusters=False))
    e = p.submit_module(0.0, "forward_generator", 1 << 20)
    assert ".M" in e.where


def test_cpe_mode_is_roughly_ten_times_faster_for_big_batches():
    """The paper's 10x claim: shuffle at 10 GB/s vs MPE random access."""
    nbytes = 1 << 24
    cpe = make().submit_module(0.0, "forward_generator", nbytes)
    mpe = make(BFSConfig(use_cpe_clusters=False)).submit_module(
        0.0, "forward_generator", nbytes
    )
    ratio = (mpe.finish - mpe.start) / (cpe.finish - cpe.start)
    assert 8 < ratio < 16


def test_same_module_serialises_on_one_cluster():
    """"No more than one CPE cluster executes the same module at any time"."""
    p = make()
    a = p.submit_module(0.0, "forward_generator", 1 << 20)
    b = p.submit_module(0.0, "forward_generator", 1 << 20)
    assert b.start >= a.finish
    # Different modules overlap freely on their own clusters.
    c = p.submit_module(0.0, "forward_handler", 1 << 20)
    assert c.start == 0.0


def test_sends_serialise_on_m0_with_message_overhead():
    p = make()
    t1 = p.submit_send(0.0, 1 << 20)
    t2 = p.submit_send(0.0, 1 << 20)
    overhead = p.node.spec.taihulight.message_overhead
    assert t1 == pytest.approx(overhead)
    assert t2 == pytest.approx(2 * overhead)


def test_recv_on_m1_is_independent_of_m0():
    p = make()
    p.submit_send(0.0, 100)
    t = p.submit_recv(0.0)
    assert t == pytest.approx(p.node.spec.taihulight.message_overhead)


def test_ready_fraction_interpolates():
    e = ModuleExecution("forward_generator", 1.0, 3.0, "x", 100)
    assert e.ready_fraction(0.0) == 1.0
    assert e.ready_fraction(0.5) == 2.0
    assert e.ready_fraction(1.0) == 3.0
    with pytest.raises(ConfigError):
        e.ready_fraction(1.5)


def test_unknown_module_rejected():
    with pytest.raises(ConfigError):
        make().submit_module(0.0, "bogus", 100)
    with pytest.raises(ConfigError):
        make().submit_module(0.0, "forward_generator", -1)


def test_busy_times_reported():
    p = make()
    p.submit_module(0.0, "forward_generator", 1 << 20)
    p.submit_send(0.0, 100)
    busy = p.busy_times()
    assert busy["node0.C0"] > 0
    assert busy["node0.M0"] > 0
    assert busy["node0.C1"] == 0
