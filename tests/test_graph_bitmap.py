"""Bitmap tests (vectorised set/test, popcount, wire size)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.graph import Bitmap


def test_set_get_count():
    bm = Bitmap(100)
    assert not bm.any()
    bm.set(0)
    bm.set(63)
    bm.set(64)
    bm.set(99)
    assert bm.count() == 4
    assert bm.get(63) and bm.get(64)
    assert not bm.get(1)


def test_set_many_and_indices_roundtrip():
    idx = np.array([3, 17, 64, 65, 130], dtype=np.int64)
    bm = Bitmap.from_indices(200, idx)
    assert bm.indices().tolist() == idx.tolist()


def test_duplicate_sets_are_idempotent():
    bm = Bitmap(64)
    bm.set_many(np.array([5, 5, 5]))
    assert bm.count() == 1


def test_test_many():
    bm = Bitmap.from_indices(128, np.array([0, 70]))
    out = bm.test_many(np.array([0, 1, 70, 127]))
    assert out.tolist() == [True, False, True, False]
    assert bm.test_many(np.array([], dtype=np.int64)).tolist() == []


def test_or_and_ior():
    a = Bitmap.from_indices(64, np.array([1, 2]))
    b = Bitmap.from_indices(64, np.array([2, 3]))
    c = a | b
    assert c.indices().tolist() == [1, 2, 3]
    a.ior(b)
    assert a == c


def test_from_bool():
    mask = np.zeros(70, dtype=bool)
    mask[[0, 69]] = True
    bm = Bitmap.from_bool(mask)
    assert bm.indices().tolist() == [0, 69]


def test_wire_size_is_ceil_bits_over_8():
    assert Bitmap(1).nbytes_wire() == 1
    assert Bitmap(8).nbytes_wire() == 1
    assert Bitmap(9).nbytes_wire() == 2
    assert Bitmap(4096).nbytes_wire() == 512


def test_clear_and_copy():
    bm = Bitmap.from_indices(64, np.array([1]))
    cp = bm.copy()
    bm.clear()
    assert bm.count() == 0
    assert cp.count() == 1


def test_size_mismatch_and_range_checks():
    with pytest.raises(ConfigError):
        Bitmap(10) | Bitmap(11)
    with pytest.raises(ConfigError):
        Bitmap(10).set(10)
    with pytest.raises(ConfigError):
        Bitmap(10).get(-1)
    with pytest.raises(ConfigError):
        Bitmap(-1)


def test_zero_size_bitmap():
    bm = Bitmap(0)
    assert bm.count() == 0
    assert bm.indices().tolist() == []
    assert not bm.any()


@given(st.lists(st.integers(0, 499), max_size=100))
def test_bitmap_equals_set_semantics(indices):
    bm = Bitmap(500)
    bm.set_many(np.array(indices, dtype=np.int64))
    expected = sorted(set(indices))
    assert bm.indices().tolist() == expected
    assert bm.count() == len(expected)
    probe = np.arange(500, dtype=np.int64)
    assert np.array_equal(bm.test_many(probe), np.isin(probe, list(set(indices))))
