"""Extension-algorithm tests, validated against networkx/scipy."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.algorithms import (
    DistributedKCore,
    DistributedPageRank,
    DistributedSSSP,
    DistributedWCC,
    edge_weight,
)
from repro.core import BFSConfig
from repro.errors import ConfigError
from repro.graph import CSRGraph, EdgeList, KroneckerGenerator
from repro.graph.generators import grid_edges, ring_edges

CFG = BFSConfig(hub_count_topdown=8, hub_count_bottomup=8)
KW = dict(config=CFG, nodes_per_super_node=2)


def kron(scale=9, seed=1):
    return KroneckerGenerator(scale=scale, seed=seed).generate()


def to_nx(edges, weighted=False):
    g = nx.Graph()
    g.add_nodes_from(range(edges.num_vertices))
    for u, v in zip(edges.src.tolist(), edges.dst.tolist()):
        if u == v:
            continue
        if weighted:
            w = float(edge_weight(np.array([u]), np.array([v]))[0])
            if not g.has_edge(u, v):
                g.add_edge(u, v, weight=w)
        else:
            g.add_edge(u, v)
    return g


# --------------------------------------------------------------------- SSSP --
def test_sssp_matches_dijkstra_on_kronecker():
    edges = kron()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    result = DistributedSSSP(edges, 4, **KW).run(root)
    expected = nx.single_source_dijkstra_path_length(to_nx(edges, weighted=True), root)
    for v in range(edges.num_vertices):
        if v in expected:
            assert result.dist[v] == pytest.approx(expected[v]), v
        else:
            assert np.isinf(result.dist[v])
    assert result.supersteps >= 1
    assert result.sim_seconds > 0


def test_sssp_on_ring_unit_structure():
    edges = ring_edges(16)
    result = DistributedSSSP(edges, 4, **KW).run(0)
    # Distances respect ring geometry: symmetric neighbours at most one
    # hop-weight apart along the two directions.
    assert result.dist[0] == 0
    assert result.dist[1] <= result.dist[2]  # monotone along the short arc


def test_sssp_relay_and_direct_agree():
    edges = kron(seed=3)
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[2])
    relay = DistributedSSSP(edges, 4, **KW).run(root)
    direct_cfg = BFSConfig(
        use_relay=False, hub_count_topdown=8, hub_count_bottomup=8
    )
    direct = DistributedSSSP(
        edges, 4, config=direct_cfg, nodes_per_super_node=2
    ).run(root)
    assert np.array_equal(relay.dist, direct.dist)


def test_edge_weight_properties():
    u = np.arange(100, dtype=np.int64)
    v = (u * 7 + 3) % 100
    w1 = edge_weight(u, v)
    w2 = edge_weight(v, u)
    assert np.array_equal(w1, w2)  # symmetric
    assert w1.min() >= 1 and w1.max() <= 8
    assert len(np.unique(w1)) > 1  # actually varies


def test_sssp_validation():
    with pytest.raises(ConfigError):
        DistributedSSSP(ring_edges(8), 2, max_weight=0)
    with pytest.raises(ConfigError):
        DistributedSSSP(ring_edges(8), 2, **KW).run(99)


# ---------------------------------------------------------------------- WCC --
def test_wcc_matches_scipy_components():
    edges = kron(scale=8, seed=5)
    n = edges.num_vertices
    mat = sp.coo_matrix(
        (np.ones(edges.num_edges), (edges.src, edges.dst)), shape=(n, n)
    )
    n_comp, expected = sp.csgraph.connected_components(mat, directed=False)
    result = DistributedWCC(edges, 4, **KW).run()
    assert result.num_components() == n_comp
    # Same partition: two vertices share a repro label iff scipy agrees.
    for comp in range(n_comp):
        members = np.flatnonzero(expected == comp)
        assert len(np.unique(result.labels[members])) == 1


def test_wcc_labels_are_component_minima():
    e = EdgeList(np.array([0, 5, 6]), np.array([1, 6, 7]), 10)
    result = DistributedWCC(e, 2, **KW).run()
    assert result.labels[0] == result.labels[1] == 0
    assert result.labels[5] == result.labels[6] == result.labels[7] == 5
    assert result.labels[9] == 9  # isolated vertex keeps its own label


def test_wcc_single_component_ring():
    result = DistributedWCC(ring_edges(32), 4, **KW).run()
    assert result.num_components() == 1
    assert (result.labels == 0).all()


# ----------------------------------------------------------------- PageRank --
def test_pagerank_matches_networkx():
    edges = kron(scale=8, seed=7)
    result = DistributedPageRank(edges, 4, **KW).run(iterations=50)
    expected = nx.pagerank(to_nx(edges), alpha=0.85, max_iter=200, tol=1e-10)
    ours = result.ranks
    for v, r in expected.items():
        assert ours[v] == pytest.approx(r, abs=2e-4), v
    assert ours.sum() == pytest.approx(1.0, abs=1e-6)


def test_pagerank_grid_symmetry():
    result = DistributedPageRank(grid_edges(4, 4), 2, **KW).run(iterations=60)
    r = result.ranks.reshape(4, 4)
    # Symmetric structure -> symmetric ranks.
    assert np.allclose(r, r.T, atol=1e-9)
    assert np.allclose(r, r[::-1, ::-1], atol=1e-9)


def test_pagerank_early_stop_with_tolerance():
    result = DistributedPageRank(ring_edges(16), 2, **KW).run(
        iterations=500, tol=1e-12
    )
    assert result.supersteps < 500
    # Ring: uniform ranks.
    assert np.allclose(result.ranks, 1 / 16, atol=1e-9)


def test_pagerank_validation():
    with pytest.raises(ConfigError):
        DistributedPageRank(ring_edges(8), 2, damping=1.5)
    with pytest.raises(ConfigError):
        DistributedPageRank(ring_edges(8), 2, **KW).run(iterations=0)


# -------------------------------------------------------------------- k-core --
def test_kcore_matches_networkx():
    edges = kron(scale=8, seed=9)
    g = to_nx(edges)
    g.remove_edges_from(nx.selfloop_edges(g))
    core_numbers = nx.core_number(g)
    for k in (2, 3, 4):
        result = DistributedKCore(edges, 4, **KW).run(k)
        expected = {v for v, c in core_numbers.items() if c >= k}
        assert set(np.flatnonzero(result.in_core).tolist()) == expected, k


def test_kcore_ring_is_its_own_2core():
    result = DistributedKCore(ring_edges(12), 2, **KW).run(2)
    assert result.core_size() == 12
    empty = DistributedKCore(ring_edges(12), 2, **KW).run(3)
    assert empty.core_size() == 0


def test_kcore_validation():
    with pytest.raises(ConfigError):
        DistributedKCore(ring_edges(8), 2, **KW).run(0)


# ----------------------------------------------------------- engine mechanics --
def test_superstep_engine_routes_all_records():
    from repro.algorithms.base import SuperstepEngine

    eng = SuperstepEngine(ring_edges(16), 4, **KW)
    # Every node sends one record to every vertex.
    outgoing = []
    for part in eng.parts:
        targets = np.arange(16, dtype=np.int64)
        outgoing.append((targets, np.full(16, float(part.node_id))))
    inboxes = eng.superstep(outgoing)
    for part, (v, x) in zip(eng.parts, inboxes):
        assert len(v) == 4 * part.n_local  # one from each sender per vertex
        assert set(np.unique(x).tolist()) == {0.0, 1.0, 2.0, 3.0}
        assert ((v >= part.lo) & (v < part.hi)).all()


def test_superstep_engine_validation():
    from repro.algorithms.base import SuperstepEngine

    eng = SuperstepEngine(ring_edges(16), 2, **KW)
    with pytest.raises(ConfigError):
        eng.superstep([])  # wrong batch count
