"""Tests for Server / ServerPool busy-time resources."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import Server, ServerPool


def test_idle_server_starts_immediately():
    s = Server()
    start, finish = s.admit(5.0, 2.0)
    assert (start, finish) == (5.0, 7.0)


def test_busy_server_queues_fifo():
    s = Server()
    s.admit(0.0, 3.0)
    start, finish = s.admit(1.0, 2.0)
    assert (start, finish) == (3.0, 5.0)


def test_utilisation_and_jobs():
    s = Server()
    s.admit(0.0, 2.0)
    s.admit(0.0, 2.0)
    assert s.jobs == 2
    assert s.busy_time == 4.0
    assert s.utilisation(8.0) == 0.5
    assert s.utilisation(0.0) == 0.0


def test_negative_service_time_rejected():
    with pytest.raises(SimulationError):
        Server().admit(0.0, -1.0)


def test_pool_picks_earliest_available():
    pool = ServerPool(["a", "b"])
    _, _, first = pool.admit(0.0, 10.0)
    _, _, second = pool.admit(0.0, 1.0)
    assert first.name == "a"
    assert second.name == "b"
    # "b" frees at t=1, so the next job should land on it.
    start, _, third = pool.admit(0.5, 1.0)
    assert third.name == "b"
    assert start == 1.0


def test_pool_tie_break_is_deterministic():
    pool = ServerPool(["a", "b", "c"])
    _, _, chosen = pool.admit(0.0, 1.0)
    assert chosen.name == "a"


def test_empty_pool_rejected():
    with pytest.raises(SimulationError):
        ServerPool([])


def test_pool_reset():
    pool = ServerPool(["a"])
    pool.admit(0.0, 5.0)
    pool.reset()
    assert pool.earliest_start(0.0) == 0.0
    assert pool.total_busy_time() == 0.0


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100),
            st.floats(min_value=0, max_value=10),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_server_never_overlaps_jobs(jobs):
    """FIFO invariant: each job starts no earlier than the previous finished."""
    s = Server()
    jobs = sorted(jobs)  # arrivals in time order, as the engine guarantees
    last_finish = 0.0
    for arrival, duration in jobs:
        start, finish = s.admit(arrival, duration)
        assert start >= arrival
        assert start >= last_finish
        assert finish == start + duration
        last_finish = finish
