"""Tests for generator-based simulation processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Event, Process, Timeout


def test_timeout_advances_simulated_time():
    eng = Engine()
    log = []

    def proc():
        yield Timeout(1.5)
        log.append(eng.now)
        yield Timeout(2.5)
        log.append(eng.now)

    Process(eng, proc())
    eng.run()
    assert log == [1.5, 4.0]


def test_process_return_value_is_its_result():
    eng = Engine()

    def proc():
        yield Timeout(1.0)
        return 42

    p = Process(eng, proc())
    eng.run()
    assert p.finished
    assert p.result == 42


def test_waiting_on_an_event_receives_its_value():
    eng = Engine()
    ev = Event(eng)
    got = []

    def waiter():
        value = yield ev
        got.append((eng.now, value))

    Process(eng, waiter())
    eng.call_after(3.0, ev.succeed, "ready")
    eng.run()
    assert got == [(3.0, "ready")]


def test_waiting_on_already_fired_event_resumes_immediately():
    eng = Engine()
    ev = Event(eng)
    ev.succeed("early")
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    Process(eng, waiter())
    eng.run()
    assert got == ["early"]


def test_event_cannot_fire_twice():
    eng = Engine()
    ev = Event(eng)
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_process_can_wait_on_another_process():
    eng = Engine()

    def child():
        yield Timeout(2.0)
        return "done"

    def parent():
        result = yield Process(eng, child(), name="child")
        return (eng.now, result)

    p = Process(eng, parent())
    eng.run()
    assert p.result == (2.0, "done")


def test_multiple_waiters_all_resume():
    eng = Engine()
    ev = Event(eng)
    woke = []

    def waiter(i):
        yield ev
        woke.append(i)

    for i in range(3):
        Process(eng, waiter(i))
    eng.call_after(1.0, ev.succeed)
    eng.run()
    assert sorted(woke) == [0, 1, 2]


def test_yielding_garbage_is_an_error():
    eng = Engine()

    def bad():
        yield 123

    Process(eng, bad())
    with pytest.raises(SimulationError):
        eng.run()


def test_non_generator_rejected():
    with pytest.raises(SimulationError):
        Process(Engine(), lambda: None)  # type: ignore[arg-type]
