"""Graph persistence + statistics tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import CSRGraph, EdgeList, KroneckerGenerator
from repro.graph.generators import grid_edges, ring_edges, star_edges
from repro.graph.io import (
    load_edgelist,
    read_edge_text,
    save_edgelist,
    write_edge_text,
)
from repro.graph.stats import component_sizes, degree_stats, eccentricity_profile


def test_npz_roundtrip(tmp_path):
    edges = KroneckerGenerator(scale=8, seed=3).generate()
    path = save_edgelist(tmp_path / "g.npz", edges)
    loaded = load_edgelist(path)
    assert loaded.num_vertices == edges.num_vertices
    assert np.array_equal(loaded.src, edges.src)
    assert np.array_equal(loaded.dst, edges.dst)


def test_npz_suffix_added(tmp_path):
    edges = ring_edges(8)
    path = save_edgelist(tmp_path / "noext", edges)
    assert path.suffix == ".npz"
    assert load_edgelist(path).num_edges == 8


def test_npz_rejects_foreign_archives(tmp_path):
    path = tmp_path / "foreign.npz"
    np.savez(path, whatever=np.arange(3))
    with pytest.raises(ConfigError):
        load_edgelist(path)


def test_text_roundtrip(tmp_path):
    edges = star_edges(10)
    path = write_edge_text(tmp_path / "g.txt", edges)
    loaded = read_edge_text(path)
    assert loaded.num_vertices == 10
    assert sorted(zip(loaded.src.tolist(), loaded.dst.tolist())) == sorted(
        zip(edges.src.tolist(), edges.dst.tolist())
    )


def test_text_infers_vertex_count_without_header(tmp_path):
    path = tmp_path / "raw.txt"
    path.write_text("0 3\n2 1\n")
    loaded = read_edge_text(path)
    assert loaded.num_vertices == 4
    assert loaded.num_edges == 2


def test_text_explicit_vertex_count(tmp_path):
    path = tmp_path / "raw.txt"
    path.write_text("0 1\n")
    assert read_edge_text(path, num_vertices=100).num_vertices == 100


def test_matrix_market_roundtrip(tmp_path):
    from repro.graph.io import read_matrix_market, write_matrix_market

    edges = KroneckerGenerator(scale=7, seed=11).generate()
    path = write_matrix_market(tmp_path / "g.mtx", edges)
    loaded = read_matrix_market(path)
    assert loaded.num_vertices == edges.num_vertices
    assert np.array_equal(loaded.src, edges.src)
    assert np.array_equal(loaded.dst, edges.dst)


def test_matrix_market_reads_weighted_and_comments(tmp_path):
    from repro.graph.io import read_matrix_market

    path = tmp_path / "w.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment line\n"
        "3 3 2\n"
        "1 2 0.5\n"
        "3 1 2.25\n"
    )
    loaded = read_matrix_market(path)
    assert loaded.num_vertices == 3
    assert sorted(zip(loaded.src.tolist(), loaded.dst.tolist())) == [(0, 1), (2, 0)]


def test_matrix_market_rejects_garbage(tmp_path):
    from repro.graph.io import read_matrix_market

    bad = tmp_path / "bad.mtx"
    bad.write_text("not a matrix\n1 1 1\n")
    with pytest.raises(ConfigError):
        read_matrix_market(bad)
    short = tmp_path / "short.mtx"
    short.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n"
    )
    with pytest.raises(ConfigError):
        read_matrix_market(short)


def test_degree_stats_on_kronecker_is_skewed():
    edges = KroneckerGenerator(scale=11, seed=5).generate()
    stats = degree_stats(edges)
    assert stats.num_vertices == 1 << 11
    assert stats.is_heavily_skewed()
    assert stats.max_degree > 20 * stats.mean_degree
    assert 0 < stats.gini < 1


def test_degree_stats_on_ring_is_uniform():
    stats = degree_stats(ring_edges(64))
    assert stats.max_degree == 2
    assert stats.mean_degree == pytest.approx(2.0)
    assert stats.gini == pytest.approx(0.0, abs=1e-9)
    assert not stats.is_heavily_skewed()
    assert stats.isolated == 0


def test_component_sizes():
    e = EdgeList(np.array([0, 1, 5, 6]), np.array([1, 2, 6, 7]), 10)
    sizes = component_sizes(CSRGraph.from_edges(e))
    assert sizes.tolist() == [3, 3, 1, 1, 1, 1]


def test_eccentricity_profile():
    g = CSRGraph.from_edges(grid_edges(4, 4))
    prof = eccentricity_profile(g, 0)
    assert prof["reached"] == 16
    assert prof["levels"] == 7  # corner-to-corner distance 6
    # An isolated root reaches only itself.
    isolated = CSRGraph.from_edges(EdgeList(np.array([1]), np.array([2]), 4))
    lonely = eccentricity_profile(isolated, 0)
    assert lonely["reached"] == 1
    assert lonely["levels"] == 1
    with pytest.raises(ConfigError):
        eccentricity_profile(isolated, 99)
