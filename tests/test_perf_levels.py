"""Per-level cost model tests."""

import pytest

from repro.errors import ConfigError
from repro.perf import CostModel
from repro.perf.levels import (
    HYBRID_LEVEL_SHARES,
    LevelModel,
    LevelCost,
)

model = LevelModel()


def test_shares_sum_to_one():
    assert sum(HYBRID_LEVEL_SHARES) == pytest.approx(1.0)


def test_per_level_totals_match_lumped_model():
    point = CostModel().evaluate(4096, 16e6, "relay-cpe")
    total = model.total_seconds(4096, 16e6)
    assert total == pytest.approx(point.total_seconds, rel=1e-9)


def test_bulk_level_dominates_data_time():
    costs = model.level_costs(4096, 16e6)
    data = [c.data_seconds for c in costs]
    assert max(data) == data[2]  # the bottom-up bulk level
    assert data[2] > 0.5 * sum(data)


def test_small_levels_are_latency_bound_at_scale():
    """At 40k nodes the first and last levels pay overheads, not data —
    the Figure 12 'high latency' regime."""
    costs = model.level_costs(40_768, 1.6e6)
    assert costs[0].latency_bound
    assert costs[-1].latency_bound
    # With 16x more data per node, fewer levels stay latency-bound.
    small = model.latency_bound_levels(40_768, 1.6e6)
    large = model.latency_bound_levels(40_768, 26.2e6)
    assert large <= small


def test_bottomup_levels_carry_more_overhead():
    costs = model.level_costs(1024, 16e6)
    td = next(c for c in costs if c.direction == "topdown")
    bu = next(c for c in costs if c.direction == "bottomup")
    assert bu.overhead_seconds > td.overhead_seconds  # sub-round epochs


def test_crashing_configuration_rejected():
    with pytest.raises(ConfigError):
        model.level_costs(16_384, 16e6, "direct-mpe")


def test_custom_profile_validation():
    with pytest.raises(ConfigError):
        LevelModel(shares=(0.5, 0.4), directions=("topdown",))
    with pytest.raises(ConfigError):
        LevelModel(shares=(0.5, 0.4), directions=("topdown", "topdown"))


def test_level_cost_properties():
    c = LevelCost(1, "topdown", 0.1, data_seconds=1.0, overhead_seconds=2.0)
    assert c.seconds == 3.0
    assert c.latency_bound
