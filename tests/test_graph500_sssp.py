"""Graph500 SSSP extension tests."""

import numpy as np
import pytest

from repro.algorithms import DistributedSSSP
from repro.core import BFSConfig
from repro.errors import ConfigError, ValidationError
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph.generators import ring_edges
from repro.graph500.sssp import SSSPRunner, validate_sssp_result

CFG = BFSConfig(hub_count_topdown=8, hub_count_bottomup=8)


def solved_case(scale=9, seed=3, nodes=4):
    edges = KroneckerGenerator(scale=scale, seed=seed).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    dist = DistributedSSSP(edges, nodes, config=CFG, nodes_per_super_node=2).run(root).dist
    return graph, edges, root, dist


def test_correct_distances_validate():
    graph, edges, root, dist = solved_case()
    validate_sssp_result(graph, edges, root, dist)


def test_detects_nonzero_root():
    graph, edges, root, dist = solved_case()
    bad = dist.copy()
    bad[root] = 1.0
    with pytest.raises(ValidationError, match="rule 1"):
        validate_sssp_result(graph, edges, root, bad)


def test_detects_over_tight_edge():
    graph, edges, root, dist = solved_case()
    bad = dist.copy()
    # Inflate one reached non-root vertex: its incoming edges go over-tight
    # or it loses its witness.
    v = int(np.flatnonzero(np.isfinite(bad) & (np.arange(len(bad)) != root))[0])
    bad[v] += 100.0
    with pytest.raises(ValidationError, match="rule 2|rule 3"):
        validate_sssp_result(graph, edges, root, bad)


def test_detects_shrunk_distance():
    """A fractionally-too-small distance is either infeasible against an
    incident edge (rule 2) or witness-less (rule 3) — caught either way."""
    graph, edges, root, dist = solved_case()
    bad = dist.copy()
    v = int(np.flatnonzero(np.isfinite(bad) & (np.arange(len(bad)) != root))[-1])
    bad[v] -= 0.25
    with pytest.raises(ValidationError, match="rule 2|rule 3"):
        validate_sssp_result(graph, edges, root, bad)


def test_detects_pure_witness_gap_on_ring():
    """On a ring, shrinking a vertex within the feasibility slack leaves
    every edge feasible but removes its witness — rule 3's own case."""
    edges = ring_edges(6)
    graph = CSRGraph.from_edges(edges)
    dist = DistributedSSSP(edges, 2, config=CFG, nodes_per_super_node=2).run(0).dist
    w_left = float(np.min(np.abs(np.diff(dist[np.isfinite(dist)]))) or 1.0)
    bad = dist.copy()
    v = int(np.argmax(np.where(np.isfinite(bad), bad, -1)))  # the far vertex
    slack = 0.25 * min(1.0, w_left if w_left > 0 else 1.0)
    bad[v] -= slack
    with pytest.raises(ValidationError, match="rule 2|rule 3"):
        validate_sssp_result(graph, edges, 0, bad)


def test_detects_boundary_straddle():
    edges = ring_edges(8)
    graph = CSRGraph.from_edges(edges)
    dist = DistributedSSSP(edges, 2, config=CFG, nodes_per_super_node=2).run(0).dist
    bad = dist.copy()
    bad[4] = np.inf  # pretend a component member was never reached
    with pytest.raises(ValidationError, match="rule 3|rule 4"):
        validate_sssp_result(graph, edges, 0, bad)


def test_validation_input_checks():
    graph, edges, root, dist = solved_case()
    with pytest.raises(ConfigError):
        validate_sssp_result(graph, edges, root, dist[:-1])
    with pytest.raises(ConfigError):
        validate_sssp_result(graph, edges, 10**9, dist)


@pytest.mark.parametrize("algorithm", ["delta-stepping", "bellman-ford"])
def test_runner_end_to_end(algorithm):
    report = SSSPRunner(
        scale=8, nodes=4, algorithm=algorithm, config=CFG,
        nodes_per_super_node=2,
    ).run(num_roots=3)
    assert len(report.runs) == 3
    assert report.stats.gteps() > 0
    assert "SSSP" in report.summary()


def test_runner_rejects_unknown_algorithm():
    with pytest.raises(ConfigError):
        SSSPRunner(scale=8, nodes=2, algorithm="dijkstra")
