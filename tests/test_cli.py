"""CLI tests (invoked in-process through main())."""

import pytest

from repro.cli import main


def test_specs_prints_table1(capsys):
    assert main(["specs"]) == 0
    out = capsys.readouterr().out
    assert "64KB SPM" in out
    assert "40 Cabinets" in out


def test_graph500_small_run(capsys):
    rc = main(
        ["graph500", "--scale", "8", "--nodes", "4", "--roots", "2",
         "--super-node", "2", "--per-root"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "all validated" in out
    assert "GTEPS" in out
    assert "root" in out  # the per-root table


def test_graph500_partition_report(capsys):
    rc = main(
        ["graph500", "--scale", "8", "--nodes", "4", "--roots", "2",
         "--super-node", "2", "--engine-partitions", "2",
         "--drain-workers", "2", "--partition-report"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "all validated" in out
    assert "partition report: 2 compute lanes" in out
    assert "per-lane loads" in out
    assert "drain-run length histogram" in out
    assert "cross-partition channels" in out
    assert "drain_workers=2" in out


def test_graph500_partition_report_unpartitioned(capsys):
    rc = main(
        ["graph500", "--scale", "8", "--nodes", "4", "--roots", "1",
         "--super-node", "2", "--partition-report"]
    )
    assert rc == 0
    assert "engine ran unpartitioned" in capsys.readouterr().out


def test_sanitize_drain_worker_cycle(capsys):
    rc = main(
        ["sanitize", "--scale", "8", "--nodes", "4", "--roots", "1",
         "--runs", "2", "--no-validate", "--engine-partitions", "2",
         "--drain-workers", "1,2"]
    )
    assert rc == 0
    assert "deterministic" in capsys.readouterr().out.lower()


def test_fig11_prints_crashes(capsys):
    assert main(["fig11"]) == 0
    out = capsys.readouterr().out
    assert "CRASH:spm-overflow" in out
    assert "CRASH:connection-memory" in out
    assert "relay-cpe" in out


def test_fig12_prints_headline(capsys):
    assert main(["fig12"]) == 0
    out = capsys.readouterr().out
    assert "23,755.7" in out
    assert "40768" in out


def test_table2(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "K Computer" in out
    assert "Present Work" in out


def test_generate_writes_archive(tmp_path, capsys):
    out_path = tmp_path / "graph.npz"
    assert main(["generate", "--scale", "8", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    from repro.graph.io import load_edgelist

    edges = load_edgelist(out_path)
    assert edges.num_edges == 16 << 8


def test_profile_writes_reports(tmp_path, capsys):
    out_dir = tmp_path / "prof"
    rc = main(
        ["profile", "--scale", "8", "--nodes", "4", "--roots", "2",
         "--out", str(out_dir)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "attribution check" in out and "within 1%: True" in out
    assert "Per-level time attribution" in out
    import json

    trace = json.loads((out_dir / "trace.json").read_text())
    assert trace["traceEvents"] and {e["ph"] for e in trace["traceEvents"]} == {"X"}
    report = json.loads((out_dir / "run_report.json").read_text())
    assert report["attribution_check"]["within_1pct"] is True
    assert len(report["roots"]) == 2
    assert (out_dir / "summary.csv").read_text().startswith("root,")
    assert "# Run report summary" in (out_dir / "summary.md").read_text()


def test_sssp_subcommand(capsys):
    rc = main(["sssp", "--scale", "8", "--nodes", "2", "--roots", "2",
               "--super-node", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "SSSP" in out and "GTEPS" in out


def test_chaos_campaign_writes_report(tmp_path, capsys):
    import json

    out_path = tmp_path / "chaos.json"
    rc = main(
        ["chaos", "--scale", "9", "--scenarios", "3", "--seed", "7",
         "--out", str(out_path)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "verdict OK" in out
    assert "aborted 0/3" in out
    doc = json.loads(out_path.read_text())
    assert doc["ok"] is True
    assert len(doc["scenarios"]) == 3


def test_graph500_rs_mode_with_disk_faults(capsys):
    rc = main(
        ["graph500", "--scale", "9", "--nodes", "8", "--roots", "1",
         "--checkpoint-interval", "1", "--checkpoint-mode", "rs",
         "--scrub-interval", "1", "--disk-lose", "5",
         "--disk-corrupt", "2:2e-4", "--disk-degrade", "3:1.5"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "all validated" in out
    assert "disk_losses: 1" in out
    assert "disk_corruptions: 1" in out
    assert "scrub_passes" in out


def test_graph500_rejects_bad_disk_fault_spec():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match="--disk-lose"):
        main(
            ["graph500", "--scale", "8", "--nodes", "8", "--roots", "1",
             "--checkpoint-interval", "1", "--disk-lose", "nope"]
        )


def test_unknown_command_errors():
    with pytest.raises(SystemExit):
        main(["bogus"])


# --- service commands ---------------------------------------------------------
def test_serve_graph_spec_parsing():
    from repro.cli import _parse_graph_spec
    from repro.errors import ConfigError

    name, spec = _parse_graph_spec("web:13:4:7")
    assert name == "web" and (spec.scale, spec.nodes, spec.seed) == (13, 4, 7)
    name, spec = _parse_graph_spec("g:10")
    assert (spec.nodes, spec.seed) == (8, 1)  # defaults
    for bad in ("g", ":10", "g:ten", "g:1:2:3:4"):
        with pytest.raises(ConfigError, match="spec"):
            _parse_graph_spec(bad)


def test_serve_tenant_spec_parsing():
    from repro.cli import _parse_tenant_spec
    from repro.errors import ConfigError

    name, cfg = _parse_tenant_spec("gold:100:16:2")
    assert name == "gold"
    assert (cfg.rate, cfg.burst, cfg.weight) == (100.0, 16.0, 2.0)
    _, unlimited = _parse_tenant_spec("free:-")
    assert unlimited.rate is None
    with pytest.raises(ConfigError, match="spec"):
        _parse_tenant_spec("lonely")


def test_query_requires_graph_and_algo():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match="GRAPH and ALGO"):
        main(["query", "--port", "1"])


def test_serve_and_query_roundtrip(capsys):
    """End-to-end through the real CLI: a server thread and the query
    command talking over a loopback socket."""
    import asyncio
    import re
    import threading

    # Run the server pieces in-process (the serve command itself blocks on
    # signals, so drive its components directly at the same layer).
    from repro.service import (
        GraphService,
        GraphSpec,
        ServiceConfig,
        ServiceServer,
    )

    svc = GraphService(ServiceConfig(workers=1, host_shared=False))
    svc.load_graph("g", GraphSpec(scale=7, nodes=2))
    loop = asyncio.new_event_loop()
    server = ServiceServer(svc)
    ready = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10)
    try:
        port = str(server.port)
        rc = main(["query", "g", "bfs", "--port", port, "--param", "root=0",
                   "--no-arrays", "--tenant", "cli"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ok: bfs on g" in out
        assert re.search(r"latency \d", out)

        rc = main(["query", "--port", port, "--ping"])
        assert rc == 0
        assert "'g'" in capsys.readouterr().out

        rc = main(["query", "--port", port, "--report"])
        assert rc == 0
        assert "per-tenant service report" in capsys.readouterr().out
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        svc.close()
