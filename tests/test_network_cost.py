"""Network cost model tests: bandwidth, latency, contention, oversubscription."""

import pytest

from repro.machine import TAIHULIGHT
from repro.network import FatTreeTopology, NetworkModel
from repro.utils.units import GBPS, US


def make(num_nodes=512):
    return NetworkModel(FatTreeTopology(num_nodes), TAIHULIGHT)


def test_self_send_is_free():
    net = make()
    assert net.transfer(3, 3, 1 << 20, now=5.0) == 5.0


def test_intra_super_node_large_message_bandwidth():
    """A large intra-super-node message moves at the 1.2 GB/s NIC rate."""
    net = make()
    nbytes = int(1.2 * GBPS)  # one second's worth
    arrival = net.transfer(0, 1, nbytes, now=0.0)
    # Two NIC serialisations (out + in, store-and-forward) + 1 us latency.
    assert arrival == pytest.approx(2.0 + 1 * US)


def test_inter_super_node_adds_trunk_and_latency():
    net = make()
    t_intra = net.transfer(0, 1, 1 << 20, now=0.0)
    net.reset()
    t_inter = net.transfer(0, 300, 1 << 20, now=0.0)
    assert t_inter > t_intra


def test_latencies():
    net = make()
    assert net.latency(0, 1) == 1 * US
    assert net.latency(0, 300) == 3 * US
    assert net.latency(7, 7) == 0.0


def test_nic_contention_serialises():
    """Two messages out of one node queue on its NIC."""
    net = make()
    nbytes = int(0.6 * GBPS)  # 0.5 s each on the NIC
    a1 = net.transfer(0, 1, nbytes, now=0.0)
    a2 = net.transfer(0, 2, nbytes, now=0.0)
    assert a2 > a1  # second message waits behind the first on nic_out[0]


def test_central_trunk_is_oversubscribed():
    """256 simultaneous inter-super-node flows collapse to 1/4 bandwidth."""
    net = make(512)
    nbytes = 1 << 20
    arrivals = [net.transfer(i, 256 + i, nbytes, now=0.0) for i in range(256)]
    # Aggregate uplink carries 256 MB at 256*1.2/4 GB/s ~ 3.5 ms serialised,
    # versus ~0.9 ms if each NIC were independent end to end.
    per_nic_time = nbytes / (1.2 * GBPS)
    assert max(arrivals) > 3 * per_nic_time


def test_intra_flows_avoid_the_trunk():
    net = make(512)
    net.transfer(0, 1, 1 << 20, now=0.0)
    assert net.central_bytes() == 0
    net.transfer(0, 300, 1 << 20, now=0.0)
    assert net.central_bytes() == 1 << 20


def test_total_bytes_counts_each_message_once():
    net = make()
    net.transfer(0, 1, 100, now=0.0)
    net.transfer(0, 300, 200, now=0.0)
    assert net.total_bytes() == 300


def test_reset():
    net = make()
    net.transfer(0, 1, 1 << 20, now=0.0)
    net.reset()
    assert net.total_bytes() == 0
    assert net.transfer(0, 1, 1 << 10, now=0.0) < 1e-3
