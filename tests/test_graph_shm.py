"""Tests for zero-copy shared-memory CSR hosting (``repro.graph.shm``).

The contract is simple: ``host`` makes exactly one copy (into the
segment), ``attach`` makes zero, both sides observe the same bytes, and
``destroy`` reclaims the name even while numpy views are still alive.
All tests skip when the platform has no usable shared-memory mount.
"""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.kronecker import KroneckerGenerator
from repro.graph.shm import SharedCSR, shared_memory_available

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no usable shared-memory mount"
)


def _graph(scale=8, seed=3):
    return CSRGraph.from_edges(KroneckerGenerator(scale=scale, seed=seed).generate())


def test_host_round_trips_graph_exactly():
    graph = _graph()
    shared = SharedCSR.host(graph)
    try:
        assert shared.graph.num_vertices == graph.num_vertices
        assert np.array_equal(shared.graph.row_ptr, graph.row_ptr)
        assert np.array_equal(shared.graph.col_idx, graph.col_idx)
    finally:
        shared.destroy()


def test_hosted_arrays_are_views_into_the_segment():
    """CSRGraph.__init__ must keep the shm views as-is — a silent copy
    would defeat the zero-copy contract for every worker."""
    graph = _graph()
    shared = SharedCSR.host(graph)
    try:
        buf_addr = np.frombuffer(
            shared._segment.buf, dtype=np.int64
        ).__array_interface__["data"][0]
        row_addr = shared.graph.row_ptr.__array_interface__["data"][0]
        col_addr = shared.graph.col_idx.__array_interface__["data"][0]
        assert row_addr == buf_addr
        assert col_addr == buf_addr + shared.graph.row_ptr.nbytes
    finally:
        shared.destroy()


def test_attach_sees_the_same_bytes_without_copying():
    graph = _graph()
    host = SharedCSR.host(graph)
    try:
        attached = SharedCSR.attach(host.handle())
        try:
            assert np.array_equal(attached.graph.row_ptr, graph.row_ptr)
            assert np.array_equal(attached.graph.col_idx, graph.col_idx)
            assert attached.graph.num_vertices == graph.num_vertices
            # Same physical pages: a write on one side appears on the other.
            # (The kernel never writes; this just proves the sharing.)
            host.graph.col_idx[0] += 1
            assert attached.graph.col_idx[0] == host.graph.col_idx[0]
            host.graph.col_idx[0] -= 1
        finally:
            attached.destroy()
    finally:
        host.destroy()


def test_handle_is_picklable_metadata():
    import pickle

    graph = _graph()
    shared = SharedCSR.host(graph)
    try:
        handle = shared.handle()
        assert handle == pickle.loads(pickle.dumps(handle))
        assert handle[1] == len(graph.row_ptr)
        assert handle[2] == len(graph.col_idx)
        assert handle[3] == graph.num_vertices
    finally:
        shared.destroy()


def test_destroy_unlinks_the_name():
    from multiprocessing import shared_memory

    shared = SharedCSR.host(_graph())
    name = shared.name
    shared.destroy()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
    shared.destroy()  # idempotent: second call must not raise


def test_destroy_tolerates_live_views():
    """With the graph views still referenced, destroy() must neither raise
    (some numpy versions make close() raise BufferError) nor leak the
    name. The views are dead after this point — never dereferenced."""
    from multiprocessing import shared_memory

    shared = SharedCSR.host(_graph())
    name = shared.name
    keep_alive = shared.graph  # views still referenced during destroy
    shared.destroy()
    assert keep_alive is not None
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def test_context_manager_destroys_on_exception():
    """Regression: an exception inside the hosting block used to strand
    the named segment in /dev/shm; the context manager must destroy it
    on every exit path."""
    from multiprocessing import shared_memory

    name = None
    with pytest.raises(RuntimeError, match="boom"):
        with SharedCSR.host(_graph()) as shared:
            name = shared.name
            raise RuntimeError("boom")
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def test_attach_context_manager_closes_without_unlinking():
    with SharedCSR.host(_graph()) as host:
        with SharedCSR.attach(host.handle()) as attached:
            assert attached.graph.num_vertices == host.graph.num_vertices
        # The attaching side must not unlink the hosting side's name.
        again = SharedCSR.attach(host.handle())
        again.destroy()


def test_atexit_guard_registered_and_disarmed():
    """The hosting side arms an atexit unlink guard (covers crashes that
    skip the finally) and destroy() must disarm it so a reused segment
    name is never unlinked out from under a later owner."""
    import atexit

    shared = SharedCSR.host(_graph())
    guard = shared._atexit_guard
    assert guard is not None
    shared.destroy()
    assert shared._atexit_guard is None
    # Disarmed: re-registering and unregistering must be a no-op pair,
    # and calling the stale guard directly must tolerate the dead name.
    atexit.unregister(guard)
    guard()  # FileNotFoundError is swallowed by the guard


def test_attach_side_registers_no_guard():
    with SharedCSR.host(_graph()) as host:
        attached = SharedCSR.attach(host.handle())
        try:
            assert attached._atexit_guard is None
        finally:
            attached.destroy()


def test_bfs_on_shared_graph_matches_private_graph():
    """A traversal over the shm-backed graph is bit-identical to one over
    the private copy — the graph is data, not behaviour."""
    from repro.baselines.variants import variant_config
    from repro.core.bfs import DistributedBFS

    edges = KroneckerGenerator(scale=8, seed=3).generate()
    graph = CSRGraph.from_edges(edges)
    shared = SharedCSR.host(graph)
    try:
        cfg = variant_config("relay-cpe")
        private = DistributedBFS(edges, 8, config=cfg, graph=graph).run(1)
        hosted = DistributedBFS(edges, 8, config=cfg, graph=shared.graph).run(1)
        assert np.array_equal(private.parent, hosted.parent)
        assert private.sim_seconds == hosted.sim_seconds
    finally:
        shared.destroy()
