"""Mesh-route conflict prover: paper schedule accepted, bad ones rejected."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.config import BFSConfig, RoleLayout
from repro.core.shuffle import ShufflePlan
from repro.errors import SpmOverflow
from repro.machine.mesh import MeshTopology, Route
from repro.sanitizers import (
    MeshSchedule,
    Transfer,
    prove_plan,
    prove_schedule,
    schedule_from_plan,
)

ALL_CHECKS = {
    "channel-legality",
    "port-exclusivity",
    "hop-ordering",
    "channel-acyclicity",
    "role-partition",
    "direction-discipline",
    "spm-feasibility",
}


def violation_codes(report) -> set[str]:
    return {v.code for v in report.violations}


# --- the paper schedule passes ------------------------------------------------
def test_paper_plan_proves_clean():
    plan = ShufflePlan.from_config(BFSConfig(), 64)
    report = prove_plan(plan)
    assert report.ok, report.render()
    assert set(report.checks) == ALL_CHECKS
    assert all(report.checks.values())
    assert report.routes == plan.roles.n_producers * 64
    assert report.phases > 0
    assert "PASS" in report.render()


def test_greedy_schedule_is_conflict_free_by_construction():
    plan = ShufflePlan.from_config(BFSConfig(), 16)
    schedule = schedule_from_plan(plan)
    report = prove_schedule(schedule)
    assert report.ok, report.render()
    # Re-verify the port-exclusivity invariant the scheduler promises.
    for transfers in schedule.phases:
        sends = [t.src for t in transfers]
        recvs = [t.dst for t in transfers]
        assert len(sends) == len(set(sends))
        assert len(recvs) == len(set(recvs))


# --- seeded bad schedules are rejected ----------------------------------------
def test_turn_cycle_is_rejected():
    """Four routes whose channel dependencies close a circular wait."""
    mesh = MeshTopology()
    schedule = MeshSchedule()
    ring = [(0, 0), (0, 7), (3, 7), (3, 0)]
    for i in range(4):
        a, b, c = ring[i], ring[(i + 1) % 4], ring[(i + 2) % 4]
        schedule.add_route(Route.through(a, b, c), mesh)
    report = prove_schedule(schedule, mesh)
    assert not report.ok
    assert violation_codes(report) == {"CYCLE"}
    assert report.checks["channel-acyclicity"] is False
    # The greedy placement itself stayed port-clean — only the dependency
    # structure is broken, exactly what the Dally & Seitz test is for.
    assert report.checks["port-exclusivity"] is True


def test_double_send_and_double_recv_ports_rejected():
    route_a = Route.through((0, 0), (0, 1))
    route_b = Route.through((0, 0), (0, 2))
    route_c = Route.through((1, 2), (0, 2))
    schedule = MeshSchedule(
        phases=[
            [Transfer((0, 0), (0, 1)), Transfer((0, 0), (0, 2)),
             Transfer((1, 2), (0, 2))],
        ],
        route_phases=[(route_a, [0]), (route_b, [0]), (route_c, [0])],
    )
    report = prove_schedule(schedule)
    assert not report.ok
    assert report.checks["port-exclusivity"] is False
    conflicts = [v for v in report.violations if v.code == "PORT_CONFLICT"]
    assert len(conflicts) == 2  # one double-send, one double-recv
    assert any("two sends" in v.message for v in conflicts)
    assert any("two receives" in v.message for v in conflicts)


def test_hop_order_regression_rejected():
    route = Route.through((0, 0), (0, 4), (2, 4))
    schedule = MeshSchedule(
        phases=[
            [Transfer((0, 4), (2, 4))],
            [Transfer((0, 0), (0, 4))],
        ],
        route_phases=[(route, [1, 0])],  # second hop fires before the first
    )
    report = prove_schedule(schedule)
    assert not report.ok
    assert "HOP_ORDER" in violation_codes(report)


def test_diagonal_channel_rejected():
    route = Route.through((0, 0), (1, 1))
    schedule = MeshSchedule(
        phases=[[Transfer((0, 0), (1, 1))]],
        route_phases=[(route, [0])],
    )
    report = prove_schedule(schedule)
    assert not report.ok
    assert "ILLEGAL_CHANNEL" in violation_codes(report)


class _WrongPolarityPlan(ShufflePlan):
    """Plan whose single route goes south in the strictly-north up column."""

    def all_routes(self):
        return [Route.through((0, 0), (0, 4), (3, 4), (3, 6))]


def test_polarity_violation_rejected():
    plan = _WrongPolarityPlan(roles=RoleLayout(), num_destinations=4)
    report = prove_plan(plan)
    assert not report.ok
    assert "DIRECTION" in violation_codes(report)
    assert report.checks["direction-discipline"] is False
    assert any("up column" in v.message for v in report.violations)


class _WestboundPlan(ShufflePlan):
    def all_routes(self):
        return [Route.through((0, 7), (0, 5), (2, 5), (2, 6))]


def test_westbound_row_hop_rejected():
    report = prove_plan(_WestboundPlan(roles=RoleLayout(), num_destinations=4))
    assert "DIRECTION" in violation_codes(report)
    assert any("west" in v.message for v in report.violations)


def test_spm_overflow_caught_even_when_constructor_bypassed():
    # The normal constructor refuses this layout outright...
    with pytest.raises(SpmOverflow):
        ShufflePlan(
            roles=RoleLayout(), num_destinations=64,
            staging_buffer_bytes=32 * 1024,
        )
    # ...so smuggle it past __init__; the prover must still catch it.
    plan = object.__new__(ShufflePlan)
    for name, value in (
        ("roles", RoleLayout()),
        ("num_destinations", 64),
        ("staging_buffer_bytes", 32 * 1024),
        ("spm_reserved_bytes", 4096),
        ("spm_bytes", 64 * 1024),
    ):
        object.__setattr__(plan, name, value)
    report = prove_plan(plan)
    assert not report.ok
    assert "SPM_OVERFLOW" in violation_codes(report)
    assert report.checks["spm-feasibility"] is False


# --- CLI ----------------------------------------------------------------------
def test_cli_prove_mesh_paper_layout(capsys):
    assert main(["prove-mesh", "--destinations", "32"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out and "FAIL" not in out
