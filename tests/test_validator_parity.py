"""Parity tests for the rewritten validator hot paths.

The harness wall-clock overhaul replaced the validator's sort/isin-based
internals (rule-5 edge membership, the reference BFS, depths-from-parents)
with frontier-proportional implementations. These property-style tests pin
the new code to the *original* algorithms, re-implemented verbatim below:
on a spread of graphs and corruptions, both must accept exactly the same
parent maps, produce identical arrays, and reject naming the same rule.
"""

import numpy as np
import pytest

from repro.errors import ConfigError, ValidationError
from repro.graph import CSRGraph, EdgeList, KroneckerGenerator
from repro.graph.generators import grid_edges, ring_edges, star_edges
from repro.graph500.reference import (
    depths_from_parents,
    reference_bfs,
    reference_depths,
)
from repro.graph500.validate import validate_bfs_result


# --- the historical implementations, kept as executable specification ------
def old_reference_bfs(graph, root):
    parent = np.full(graph.num_vertices, -1, dtype=np.int64)
    parent[root] = root
    frontier = np.array([root], dtype=np.int64)
    while len(frontier):
        sources, targets = graph.expand(frontier)
        fresh = parent[targets] == -1
        sources, targets = sources[fresh], targets[fresh]
        if len(targets) == 0:
            break
        uniq_targets, first_idx = np.unique(targets, return_index=True)
        parent[uniq_targets] = sources[first_idx]
        frontier = uniq_targets
    return parent


def old_reference_depths(graph, root):
    depth = np.full(graph.num_vertices, -1, dtype=np.int64)
    depth[root] = 0
    frontier = np.array([root], dtype=np.int64)
    level = 0
    while len(frontier):
        level += 1
        _, targets = graph.expand(frontier)
        targets = targets[depth[targets] == -1]
        if len(targets) == 0:
            break
        frontier = np.unique(targets)
        depth[frontier] = level
    return depth


def old_depths_from_parents(parent, root):
    parent = np.asarray(parent, dtype=np.int64)
    n = len(parent)
    depth = np.full(n, -1, dtype=np.int64)
    if not 0 <= root < n or parent[root] != root:
        raise ConfigError("parent map is not rooted at the requested root")
    depth[root] = 0
    frontier_mask = np.zeros(n, dtype=bool)
    frontier_mask[root] = True
    reached = parent >= 0
    for level in range(1, n + 1):
        candidates = reached & (depth == -1)
        idx = np.flatnonzero(candidates)
        if len(idx) == 0:
            return depth
        hit = frontier_mask[parent[idx]]
        nxt = idx[hit]
        if len(nxt) == 0:
            raise ConfigError("parent map contains unreachable or cyclic chains")
        depth[nxt] = level
        frontier_mask = np.zeros(n, dtype=bool)
        frontier_mask[nxt] = True
    return depth


def old_rule5_membership(graph, children, parents_of_children):
    srcs, tgts = graph.expand(children)
    n = graph.num_vertices
    edge_keys = srcs * np.int64(n) + tgts
    query_keys = children * np.int64(n) + parents_of_children
    return np.isin(query_keys, edge_keys)


def case_graphs():
    yield CSRGraph.from_edges(ring_edges(17)), ring_edges(17)
    yield CSRGraph.from_edges(grid_edges(6, 7)), grid_edges(6, 7)
    yield CSRGraph.from_edges(star_edges(12)), star_edges(12)
    for seed in (2, 5, 9):
        edges = KroneckerGenerator(scale=9, seed=seed).generate()
        yield CSRGraph.from_edges(edges), edges


# --- parity on correct inputs ----------------------------------------------
def test_reference_bfs_matches_old_exactly():
    for graph, _ in case_graphs():
        for root in _roots_of(graph):
            assert np.array_equal(
                reference_bfs(graph, root), old_reference_bfs(graph, root)
            )


def test_reference_depths_matches_old_exactly():
    for graph, _ in case_graphs():
        for root in _roots_of(graph):
            assert np.array_equal(
                reference_depths(graph, root), old_reference_depths(graph, root)
            )


def test_depths_from_parents_matches_old_exactly():
    for graph, _ in case_graphs():
        for root in _roots_of(graph):
            parent = reference_bfs(graph, root)
            assert np.array_equal(
                depths_from_parents(parent, root),
                old_depths_from_parents(parent, root),
            )


def test_rule5_membership_matches_isin():
    rng = np.random.default_rng(7)
    for graph, _ in case_graphs():
        n = graph.num_vertices
        us = rng.integers(0, n, size=200)
        vs = rng.integers(0, n, size=200)
        got = graph.has_edges(us, vs)
        expected = old_rule5_membership(graph, us, vs)
        assert np.array_equal(got, expected)
        # And agreement with the scalar query, which never changed.
        for u, v, g in zip(us[:50], vs[:50], got[:50]):
            assert bool(g) == graph.has_edge(int(u), int(v))


def _roots_of(graph, k=3):
    nontrivial = np.flatnonzero(graph.degrees() > 0)
    return [int(r) for r in nontrivial[:: max(1, len(nontrivial) // k)][:k]]


# --- parity on rejected inputs: one crafted failure per rule ----------------
def _base_case(seed=4):
    edges = KroneckerGenerator(scale=9, seed=seed).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    parent = reference_bfs(graph, root)
    return graph, edges, root, parent


def test_rejects_rule1_cycle_like_old():
    graph, edges, root, parent = _base_case()
    parent = parent.copy()
    reached = np.flatnonzero((parent >= 0) & (np.arange(len(parent)) != root))
    a, b = reached[0], reached[1]
    parent[a], parent[b] = b, a
    with pytest.raises(ValidationError, match="rule 1"):
        validate_bfs_result(graph, edges, root, parent)
    with pytest.raises(ConfigError):
        old_depths_from_parents(parent, root)
    with pytest.raises(ConfigError):
        depths_from_parents(parent, root)


def test_rejects_rule2_level_skip():
    # A valid non-BFS tree: chain the ring the long way round, then claim a
    # two-level jump. Both rule-2 detection paths see the same depths.
    edges = ring_edges(9)
    graph = CSRGraph.from_edges(edges)
    parent = np.array([0, 0, 1, 2, 3, 4, 5, 6, 7])
    with pytest.raises(ValidationError, match="rule 3|rule 4"):
        validate_bfs_result(graph, edges, 0, parent)


def test_rejects_rule3_depth_gap():
    graph, edges, root, parent = _base_case()
    depth_new = validate_bfs_result(graph, edges, root, parent)
    depth_old = old_reference_depths(graph, root)
    assert np.array_equal(depth_new, depth_old)


def test_rejects_rule4_unreached_vertex():
    graph, edges, root, parent = _base_case()
    parent = parent.copy()
    reached = np.flatnonzero((parent >= 0) & (np.arange(len(parent)) != root))
    leaves = np.setdiff1d(reached, parent)
    parent[leaves[0]] = -1
    with pytest.raises(ValidationError, match="rule 4"):
        validate_bfs_result(graph, edges, root, parent)


def test_rejects_rule5_non_edge_parent():
    graph, edges, root, parent = _base_case()
    parent = parent.copy()
    depth = validate_bfs_result(graph, edges, root, parent)
    for v in np.flatnonzero(parent >= 0):
        if v == root:
            continue
        same_depth = np.flatnonzero(depth == depth[v] - 1)
        non_neighbors = [
            int(u) for u in same_depth if not graph.has_edge(int(u), int(v))
        ]
        if non_neighbors:
            parent[v] = non_neighbors[0]
            break
    else:
        pytest.skip("graph too dense for a non-neighbour at the right depth")
    # Old membership test and new binary search agree on the verdict...
    children = np.flatnonzero((parent >= 0) & (np.arange(len(parent)) != root))
    assert np.array_equal(
        graph.has_edges(children, parent[children]),
        old_rule5_membership(graph, children, parent[children]),
    )
    # ...and the validator names rule 5.
    with pytest.raises(ValidationError, match="rule 5"):
        validate_bfs_result(graph, edges, root, parent)


def test_randomly_corrupted_parents_agree_with_old():
    """Fuzz: random single-entry corruptions accept/reject identically."""
    graph, edges, root, parent = _base_case(seed=6)
    n = graph.num_vertices
    rng = np.random.default_rng(11)
    for _ in range(40):
        bad = parent.copy()
        v = int(rng.integers(0, n))
        bad[v] = int(rng.integers(-1, n))
        # Old acceptance: rebuild the old validator verdict from its parts.
        try:
            if bad[root] != root or ((bad < -1) | (bad >= n)).any():
                raise ValidationError("rule 1")
            d_old = old_depths_from_parents(bad, root)
            old_ok = (
                np.array_equal(d_old >= 0, bad >= 0)
                and np.array_equal(d_old, old_reference_depths(graph, root))
            )
            if old_ok:
                children = np.flatnonzero(
                    (bad >= 0) & (np.arange(n) != root)
                )
                old_ok = bool(
                    old_rule5_membership(graph, children, bad[children]).all()
                )
                # Rules 2/3 are implied by depth equality with the reference
                # for single-entry corruptions of a valid tree.
        except ConfigError:
            old_ok = False
        try:
            validate_bfs_result(graph, edges, root, bad)
            new_ok = True
        except (ValidationError, ConfigError):
            new_ok = False
        assert new_ok == old_ok, f"divergence corrupting vertex {v} -> {bad[v]}"


def test_dedup_cache_returns_equivalent_list():
    edges = KroneckerGenerator(scale=8, seed=3).generate()
    first = edges.deduplicated()
    second = edges.deduplicated()
    assert first is second  # cached
    assert first.deduplicated() is first  # idempotent
    fresh = EdgeList(edges.src.copy(), edges.dst.copy(), edges.num_vertices)
    ref = fresh.deduplicated()
    assert np.array_equal(ref.src, first.src)
    assert np.array_equal(ref.dst, first.dst)
