"""Spec, roots, and TEPS statistics tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import EdgeList, KroneckerGenerator
from repro.graph500 import Graph500Spec, TepsStatistics, sample_roots
from repro.graph500.roots import nontrivial_vertices
from repro.graph500.timing import traversed_edges


def test_spec_sizes():
    spec = Graph500Spec(scale=20)
    assert spec.num_vertices == 1 << 20
    assert spec.num_edges == 16 << 20
    assert spec.num_roots == 64


def test_spec_problem_classes():
    assert Graph500Spec(scale=26).problem_class() == "toy"
    assert Graph500Spec(scale=36).problem_class() == "medium"
    assert Graph500Spec(scale=39).problem_class() == "large"
    assert Graph500Spec(scale=40).problem_class() == "huge"


def test_spec_validation():
    with pytest.raises(ConfigError):
        Graph500Spec(scale=0)
    with pytest.raises(ConfigError):
        Graph500Spec(scale=10, num_roots=0)


def test_nontrivial_vertices_excludes_loop_only():
    e = EdgeList(np.array([0, 1, 3]), np.array([1, 0, 3]), 5)
    nt = nontrivial_vertices(e)
    assert nt.tolist() == [0, 1]  # 3 only has a self loop, 2 and 4 isolated


def test_sample_roots_distinct_and_deterministic():
    edges = KroneckerGenerator(scale=10, seed=5).generate()
    r1 = sample_roots(edges, 16, seed=9)
    r2 = sample_roots(edges, 16, seed=9)
    assert np.array_equal(r1, r2)
    assert len(np.unique(r1)) == 16
    loopless = edges.without_self_loops()
    deg_nl = np.bincount(loopless.src, minlength=edges.num_vertices) + np.bincount(
        loopless.dst, minlength=edges.num_vertices
    )
    assert np.all(deg_nl[r1] > 0)


def test_sample_roots_caps_at_candidates():
    e = EdgeList(np.array([0]), np.array([1]), 10)
    roots = sample_roots(e, 64)
    assert sorted(roots.tolist()) == [0, 1]


def test_sample_roots_rejects_empty_graph():
    e = EdgeList(np.array([2]), np.array([2]), 4)  # only a self loop
    with pytest.raises(ConfigError):
        sample_roots(e, 4)


def test_traversed_edges_counts_multiplicity_and_loops():
    # Component {0, 1}: edges (0,1) twice and loop (0,0) -> 3 tuples.
    e = EdgeList(np.array([0, 0, 0, 2]), np.array([1, 1, 0, 3]), 4)
    depth = np.array([0, 1, -1, -1])
    assert traversed_edges(e, depth) == 3


def test_teps_statistics():
    stats = TepsStatistics.from_runs([100, 100], [1.0, 2.0])  # 100 and 50 TEPS
    assert stats.harmonic_mean() == pytest.approx(2 / (1 / 100 + 1 / 50))
    assert stats.min() == 50
    assert stats.max() == 100
    assert stats.median() == 75
    assert stats.gteps() == pytest.approx(stats.harmonic_mean() / 1e9)
    assert stats.harmonic_stddev() > 0


def test_teps_single_run_has_zero_stddev():
    stats = TepsStatistics.from_runs([10], [1.0])
    assert stats.harmonic_stddev() == 0.0


def test_teps_validation():
    with pytest.raises(ConfigError):
        TepsStatistics.from_runs([], [])
    with pytest.raises(ConfigError):
        TepsStatistics.from_runs([1, 2], [1])
    with pytest.raises(ConfigError):
        TepsStatistics.from_runs([1], [0.0])
    with pytest.raises(ConfigError):
        TepsStatistics.from_runs([-1], [1.0])
