"""Strong-scaling extension + CLI subcommand tests."""

import pytest

from repro.cli import main
from repro.perf import ScalingModel

model = ScalingModel()


def test_strong_scaling_speedup_then_rolloff():
    points = model.strong_scaling(scale=36)
    gteps = [p.gteps for p in points]
    # Initial speedup...
    assert gteps[1] > 2 * gteps[0]
    # ...but efficiency collapses: far from ideal at the full machine.
    ideal = points[-1].nodes / points[0].nodes
    assert gteps[-1] / gteps[0] < ideal / 5
    # And the curve actually rolls off (a maximum before the last point).
    assert max(gteps) > gteps[-1]


def test_strong_scaling_conserves_total_problem():
    points = model.strong_scaling(scale=30, node_counts=(16, 64, 256))
    for p in points:
        assert p.nodes * p.vertices_per_node == pytest.approx(1 << 30)


def test_strong_scaling_skips_degenerate_splits():
    points = model.strong_scaling(scale=10, node_counts=(256, 1 << 11))
    assert all(p.vertices_per_node >= 1 for p in points)


def test_cli_strong(capsys):
    assert main(["strong", "--scale", "32"]) == 0
    out = capsys.readouterr().out
    assert "Strong scaling" in out
    assert "40768" in out


def test_cli_fullbench(capsys):
    assert main(["fullbench", "--roots", "8"]) == 0
    out = capsys.readouterr().out
    assert "kernel" in out and "total" in out
