"""API-corner coverage: error paths and small surfaces not hit elsewhere."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.graph import CSRGraph, EdgeList
from repro.graph.generators import ring_edges
from repro.machine import TAIHULIGHT
from repro.network import SimCluster
from repro.sim import Engine, Server


def test_simmpi_send_in_the_past_rejected():
    eng = Engine()
    cluster = SimCluster(eng, 2, TAIHULIGHT, nodes_per_super_node=2)
    cluster.register(0, lambda m: None)
    cluster.register(1, lambda m: None)
    eng.call_after(1.0, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        cluster.send(0, 1, "x", 8, at_time=0.5)


def test_simmpi_negative_size_rejected():
    eng = Engine()
    cluster = SimCluster(eng, 2, TAIHULIGHT, nodes_per_super_node=2)
    with pytest.raises(ConfigError):
        cluster.send(0, 1, "x", -1)


def test_simmpi_without_connection_tracking():
    eng = Engine()
    cluster = SimCluster(
        eng, 4, TAIHULIGHT, nodes_per_super_node=2, track_connections=False
    )
    for r in range(4):
        cluster.register(r, lambda m: None)
    cluster.send(0, 3, "x", 8)
    eng.run()
    assert cluster.max_connections() == 0


def test_engine_is_not_reentrant():
    eng = Engine()

    def recurse():
        eng.run()

    eng.call_after(0.0, recurse)
    with pytest.raises(SimulationError):
        eng.run()


def test_self_message_has_zero_network_cost():
    eng = Engine()
    cluster = SimCluster(eng, 2, TAIHULIGHT, nodes_per_super_node=2)
    got = []
    cluster.register(0, lambda m: got.append(eng.now))
    cluster.register(1, lambda m: None)
    cluster.send(0, 0, "self", 1 << 20)
    eng.run()
    assert got == [0.0]


def test_nbytes_accessors():
    e = EdgeList(np.array([0, 1]), np.array([1, 0]), 2)
    assert e.nbytes() == 4 * 8
    g = CSRGraph.from_edges(ring_edges(8))
    assert g.nbytes() == g.row_ptr.nbytes + g.col_idx.nbytes
    assert repr(g).startswith("CSRGraph(")


def test_server_repr_free_reset():
    s = Server("unit")
    s.admit(0.0, 2.0)
    s.reset()
    assert s.free_at == 0.0 and s.jobs == 0 and s.busy_time == 0.0


def test_errors_hierarchy():
    from repro.errors import (
        ConnectionMemoryExhausted,
        ReproError,
        SimulatedCrash,
        SpmOverflow,
        ValidationError,
    )

    assert issubclass(SpmOverflow, SimulatedCrash)
    assert issubclass(ConnectionMemoryExhausted, SimulatedCrash)
    assert issubclass(SimulatedCrash, ReproError)
    assert issubclass(ValidationError, AssertionError)
    crash = SimulatedCrash("boom", node=3)
    assert crash.node == 3
    assert "node 3" in str(crash)
    machine_wide = SimulatedCrash("all down")
    assert machine_wide.node is None


def test_lazy_package_api():
    import repro

    assert "Graph500Runner" in dir(repro)
    assert repro.Graph500Runner is not None  # lazy import resolves
    with pytest.raises(AttributeError):
        repro.not_a_symbol


def test_partition_repr_and_event_counters():
    from repro.graph import Partition1D

    p = Partition1D(16, 4)
    assert "parts=4" in repr(p)
    eng = Engine()
    eng.call_after(1.0, lambda: None)
    eng.run()
    assert eng.events_executed == 1


def test_stats_registry_surfaces():
    from repro.sim import StatsRegistry

    reg = StatsRegistry()
    reg.counter("x").add(5)
    ts = reg.timeseries("lat")
    ts.observe(0.0, 1.0)
    ts.observe(1.0, 3.0)
    assert reg.value("x") == 5
    assert reg.value("missing") == 0.0
    assert reg.snapshot() == {"x": 5}
    assert ts.total() == 4.0
    assert ts.mean() == 2.0
    assert ts.max() == 3.0
    assert len(ts) == 2
