"""Tests for repro.telemetry: metrics, spans, attribution, exporters.

Covers the label semantics of the unified registry, span nesting and
determinism across worker counts, the critical-path sweep's exact-sum
property, exporter output (golden structures), the null-recorder disabled
path, and the run-report attribution acceptance check on a real profiled
benchmark run.
"""

import json
import warnings

import pytest

from repro.core.bfs import DistributedBFS
from repro.errors import ConfigError
from repro.graph.kronecker import KroneckerGenerator
from repro.graph500.runner import Graph500Runner
from repro.telemetry import (
    NullRecorder,
    SpanRecorder,
    Telemetry,
    analyze_critical_path,
    attribute_window,
    classify_resource,
)
from repro.telemetry.export import (
    interval_events,
    run_report,
    span_events,
    summary_csv,
    summary_markdown,
    to_chrome_trace,
)
from repro.telemetry.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.telemetry.profile import build_run_report


# --- labeled metrics ---------------------------------------------------------
def test_counter_labels_render_sorted_in_snapshot():
    reg = MetricsRegistry()
    reg.counter("messages_by_tag", tag="fwd").add(3)
    reg.counter("messages_by_tag", tag="bwd").add()
    reg.counter("plain").add(5)
    assert reg.snapshot() == {
        "messages_by_tag{tag=bwd}": 1.0,
        "messages_by_tag{tag=fwd}": 3.0,
        "plain": 5.0,
    }
    assert reg.value("messages_by_tag", tag="fwd") == 3.0
    assert reg.value("messages_by_tag", tag="nope") == 0.0
    assert reg.value("plain") == 5.0


def test_label_keys_sort_and_multiple_labels_render_stably():
    reg = MetricsRegistry()
    reg.counter("m", node="n1", module="fwd").add(2)
    # Same child regardless of keyword order.
    reg.counter("m", module="fwd", node="n1").add()
    assert reg.snapshot() == {"m{module=fwd,node=n1}": 3.0}


def test_family_label_keys_are_fixed():
    reg = MetricsRegistry()
    reg.counter("m", node=0)
    with pytest.raises(ConfigError, match="labels"):
        reg.counter("m", level=1)
    with pytest.raises(ConfigError, match="labels"):
        reg.counter("m")  # unlabeled use of a labeled family


def test_family_kind_is_fixed():
    reg = MetricsRegistry()
    reg.counter("depth")
    with pytest.raises(ConfigError, match="counter"):
        reg.gauge("depth")
    with pytest.raises(ConfigError, match="counter"):
        reg.histogram("depth")


def test_unlabeled_counter_is_resolved_once():
    reg = MetricsRegistry()
    c = reg.counter("messages")
    assert reg.counter("messages") is c
    c.add(4)
    assert reg.counters["messages"] is c  # back-compat bare-name view
    assert reg.snapshot() == {"messages": 4.0}


def test_gauge_set_add_max():
    reg = MetricsRegistry()
    g = reg.gauge("in_flight", node=2)
    g.set(5)
    g.add(-2)
    g.max(1)  # below current -> unchanged
    assert g.value == 3
    g.max(9)
    assert reg.value("in_flight", node=2) == 9


def test_histogram_buckets_and_mean():
    reg = MetricsRegistry()
    h = reg.histogram("latency", buckets=(1e-6, 1e-3, float("inf")))
    for v in (5e-7, 5e-7, 5e-4, 2.0):
        h.observe(v)
    assert h.counts == [2, 1, 1]
    assert h.count == 4
    assert h.mean() == pytest.approx((1e-6 + 5e-4 + 2.0) / 4)
    assert reg.value("latency") == 4.0  # snapshot value is the count
    with pytest.raises(ConfigError, match="ascend"):
        reg.histogram("bad", buckets=(1.0, 0.5))
    assert DEFAULT_BUCKETS[-1] == float("inf")


# --- spans -------------------------------------------------------------------
def test_span_open_close_nesting_and_queries():
    rec = SpanRecorder()
    run = rec.open("run", "run")
    root = rec.open("root 5", "root", parent=run, root=5)
    lvl = rec.record("level 1", "level", 1.0, 2.0, parent=root, level=1)
    rec.close(root, 0.5, 2.5, sim_seconds=2.0)
    rec.close(run, 0.0, 3.0)
    assert len(rec) == 3
    assert [s.name for s in rec.by_category("root")] == ["root 5"]
    assert [s.id for s in rec.children(root)] == [lvl]
    span = rec.spans[root]
    assert span.attrs == {"root": 5, "sim_seconds": 2.0}
    assert span.seconds == 2.0
    assert all(s.closed for s in rec.spans)


def test_span_recorder_rejects_bad_windows_and_parents():
    rec = SpanRecorder()
    sid = rec.open("x", "test")
    with pytest.raises(ConfigError, match="closes before it starts"):
        rec.close(sid, 2.0, 1.0)
    with pytest.raises(ConfigError, match="unknown parent"):
        rec.open("y", "test", parent=99)


def test_span_tree_filters_and_reparents():
    rec = SpanRecorder()
    run = rec.open("run", "run")
    root = rec.open("root 1", "root", parent=run)
    lvl = rec.open("level 1", "level", parent=root)
    rec.record("forward_generator", "module", 0.0, 1.0, parent=lvl)
    rec.record("message-batch", "batch", 0.0, 1.0, parent=lvl)
    for sid in (lvl, root, run):
        rec.close(sid, 0.0, 1.0)
    full = rec.tree()
    assert full[0]["name"] == "run"
    assert full[0]["children"][0]["children"][0]["name"] == "level 1"
    # Dropping the level category re-parents its children to the root.
    skeleton = rec.tree(categories={"run", "root", "module"})
    root_node = skeleton[0]["children"][0]
    assert [c["name"] for c in root_node["children"]] == ["forward_generator"]


def test_null_recorder_is_inert():
    rec = NullRecorder()
    assert rec.enabled is False
    assert rec.open("x", "y") == -1
    assert rec.record("x", "y", 0.0, 1.0) == -1
    rec.close(-1, 0.0, 1.0)  # no-op, no raise
    assert len(rec) == 0 and rec.spans == ()


def test_disabled_telemetry_is_null_configuration():
    tel = Telemetry(enabled=False)
    assert isinstance(tel.spans, NullRecorder)
    assert tel.record_intervals is False
    edges = KroneckerGenerator(scale=8, seed=3).generate()
    bfs = DistributedBFS(edges, 4, telemetry=tel)
    # attach_kernel is a no-op when disabled: no hooks installed anywhere.
    assert bfs.telemetry is None
    assert bfs.cluster.telemetry is None
    assert bfs.engine.telemetry is None
    assert all(s.pipeline.telemetry is None for s in bfs.states)
    result = bfs.run(1)
    assert result.levels > 0
    assert len(tel.spans) == 0


# --- critical-path attribution ------------------------------------------------
def test_classify_resource():
    assert classify_resource("node3.C1") == "relay"
    assert classify_resource("node0.M0") == "mpe"
    assert classify_resource("node0.M1") == "mpe"
    assert classify_resource("node2.C0") == "compute"
    assert classify_resource("node2.M2") == "compute"
    assert classify_resource("nic_out[5]") == "link"
    assert classify_resource("uplink[0]") == "link"


def test_attribute_window_equal_split_and_exact_sum():
    intervals = {
        "node0.C0": [(0.0, 4.0)],          # compute
        "node0.M0": [(2.0, 6.0)],          # mpe
        "nic_out[0]": [(2.0, 4.0)],        # link
    }
    seconds = attribute_window(intervals, 0.0, 8.0)
    # [0,2): compute alone; [2,4): three classes split 2s equally;
    # [4,6): mpe alone; [6,8): idle.
    assert seconds["compute"] == pytest.approx(2.0 + 2.0 / 3)
    assert seconds["mpe"] == pytest.approx(2.0 + 2.0 / 3)
    assert seconds["link"] == pytest.approx(2.0 / 3)
    assert seconds["relay"] == 0.0
    assert seconds["idle"] == pytest.approx(2.0)
    assert sum(seconds.values()) == pytest.approx(8.0, rel=1e-12)


def test_attribute_window_clips_to_window_and_handles_empty():
    intervals = {"node0.C0": [(0.0, 10.0)]}
    seconds = attribute_window(intervals, 2.0, 5.0)
    assert seconds["compute"] == pytest.approx(3.0)
    empty = attribute_window({}, 1.0, 2.0)
    assert empty["idle"] == pytest.approx(1.0)
    degenerate = attribute_window(intervals, 5.0, 5.0)
    assert sum(degenerate.values()) == 0.0


def test_analyze_critical_path_ranks_resources():
    intervals = {
        "node0.M0": [(0.0, 3.0)],
        "node0.C0": [(0.0, 1.0)],
        "node1.C1": [(1.0, 1.5)],
    }
    report = analyze_critical_path(intervals, [(1, 0.0, 2.0), (2, 2.0, 4.0)],
                                   top_k=2)
    assert [lv.level for lv in report.levels] == [1, 2]
    for lv in report.levels:
        assert lv.total() == pytest.approx(lv.duration, rel=1e-12)
    assert [r.name for r in report.top_resources] == ["node0.M0", "node0.C0"]
    assert report.top_resources[0].cls == "mpe"
    assert report.window == (0.0, 4.0)
    assert "level" in report.level_table()
    assert "node0.M0" in report.resource_table()


# --- exporters ---------------------------------------------------------------
def test_interval_events_golden():
    events = interval_events(
        {"node0.C0": [(1.0, 3.0)], "nic_out[2]": [(0.0, 2.0)]},
        time_scale=1.0,
    )
    assert events == [
        {"name": "nic_out[2]", "cat": "sim", "ph": "X", "ts": 0.0,
         "dur": 2.0, "pid": "network", "tid": "nic_out[2]"},
        {"name": "C0", "cat": "sim", "ph": "X", "ts": 1.0, "dur": 2.0,
         "pid": "node0", "tid": "C0"},
    ]


def test_span_events_skip_open_spans_and_carry_attrs():
    rec = SpanRecorder()
    a = rec.open("root 1", "root", root=1)
    rec.open("dangling", "root")  # never closed -> not exported
    rec.record("level 1", "level", 1e-6, 2e-6, parent=a, level=1)
    rec.close(a, 0.0, 3e-6)
    events = span_events(rec.spans)
    assert [e["name"] for e in events] == ["root 1", "level 1"]
    level = events[1]
    assert level["pid"] == "spans" and level["tid"] == "level"
    assert level["args"] == {"level": "1", "parent": "0"}


def test_chrome_trace_is_valid_json_envelope():
    rec = SpanRecorder()
    rec.record("root 0", "root", 0.0, 1e-6)
    doc = json.loads(
        to_chrome_trace({"node0.M0": [(0.0, 5e-7)]}, spans=rec.spans)
    )
    assert doc["displayTimeUnit"] == "ms"
    assert {e["ph"] for e in doc["traceEvents"]} == {"X"}
    assert len(doc["traceEvents"]) == 2


def test_run_report_attribution_check_flags_drift():
    good = {
        "root": 1, "sim_seconds": 2.0,
        "levels": [], "attribution": [
            {"level": 1, "start": 0.0, "finish": 1.5,
             "seconds": {"compute": 1.0, "idle": 0.5}},
        ],
        "class_seconds": {}, "attributed_seconds": 2.0,
        "attribution_error": 0.0,
    }
    bad = dict(good, attribution_error=0.2)
    report = run_report({"scale": 9}, {"messages": 1.0}, [good])
    assert report["attribution_check"] == {
        "worst_relative_error": 0.0, "within_1pct": True,
    }
    report = run_report({"scale": 9}, {}, [good, bad])
    assert report["attribution_check"]["within_1pct"] is False
    assert report["attribution_check"]["worst_relative_error"] == 0.2


def test_summary_csv_and_markdown_shapes():
    entry = {
        "root": 3, "sim_seconds": 1.0,
        "levels": [{"level": 1}],
        "attribution": [],
        "class_seconds": {"compute": 0.25, "relay": 0.0, "mpe": 0.25,
                          "link": 0.0, "idle": 0.25, "control": 0.25},
        "attributed_seconds": 1.0, "attribution_error": 0.0,
    }
    report = run_report({}, {}, [entry])
    csv = summary_csv(report)
    header, row = csv.strip().split("\n")
    assert header.split(",")[:4] == ["root", "sim_seconds", "levels", "compute"]
    assert row.split(",")[0] == "3"
    md = summary_markdown(report)
    assert "| root |" in md and "within 1%: True" in md


# --- deprecated shim ----------------------------------------------------------
def test_utils_trace_shim_warns_and_reexports(capsys):
    import importlib
    import sys

    sys.modules.pop("repro.utils.trace", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        mod = importlib.import_module("repro.utils.trace")
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)
    from repro.telemetry import export

    assert mod.enable_tracing is export.enable_tracing
    assert mod.collect_intervals is export.collect_intervals
    assert mod.to_chrome_trace is export.to_chrome_trace


# --- facade + kernel integration ----------------------------------------------
def _small_kernel(tel=None, nodes=4, scale=8):
    edges = KroneckerGenerator(scale=scale, seed=3).generate()
    return DistributedBFS(edges, nodes, telemetry=tel)


def test_attach_kernel_adopts_cluster_registry_and_migrates_counters():
    tel = Telemetry()
    tel.metrics.counter("preattach").add(7)
    bfs = _small_kernel(tel)
    assert tel.metrics is bfs.cluster.stats
    assert tel.metrics.value("preattach") == 7.0
    assert bfs.telemetry is tel
    assert bfs.engine.telemetry is tel
    assert bfs.cluster.telemetry is tel
    with pytest.raises(ConfigError, match="different kernel"):
        _small_kernel(tel)


def test_profiled_kernel_records_span_hierarchy_and_metrics():
    tel = Telemetry()
    bfs = _small_kernel(tel)
    result = bfs.run(1)
    roots = [s for s in tel.spans.by_category("root") if s.closed]
    assert len(roots) == 1
    assert roots[0].attrs["sim_seconds"] == result.sim_seconds
    levels = [s for s in tel.spans.by_category("level")]
    assert len(levels) == result.levels
    assert all(s.parent == roots[0].id for s in levels)
    for trace, span in zip(result.traces, levels):
        assert span.start == trace.start
        assert span.finish == trace.finish
        assert span.attrs["direction"] == trace.direction
    modules = tel.spans.by_category("module")
    assert modules and all(s.parent is not None for s in modules)
    snapshot = tel.metrics.snapshot()
    assert snapshot["engine_events"] > 0
    per_tag = sum(
        v for k, v in snapshot.items() if k.startswith("messages_by_tag{")
    )
    assert per_tag == snapshot["messages"]
    assert any(k.startswith("module_executions{") for k in snapshot)
    # Busy intervals were recorded for servers and links.
    intervals = tel.intervals()
    assert any("." in name for name in intervals)
    assert any("[" in name for name in intervals)
    doc = json.loads(tel.chrome_trace())
    assert len(doc["traceEvents"]) > len(tel.spans.spans)


def test_critical_path_from_level_spans_balances():
    tel = Telemetry()
    bfs = _small_kernel(tel)
    bfs.run(1)
    report = tel.critical_path()
    assert report.levels
    for lv in report.levels:
        assert lv.total() == pytest.approx(lv.duration, rel=1e-9)


def test_build_run_report_attribution_within_one_percent():
    tel = Telemetry()
    runner = Graph500Runner(scale=9, nodes=4, workers=1, telemetry=tel)
    bench = runner.run(num_roots=2)
    doc = build_run_report(tel, json.loads(bench.to_json()))
    assert doc["attribution_check"]["within_1pct"] is True
    assert len(doc["roots"]) == 2
    for entry in doc["roots"]:
        window_total = sum(
            row["finish"] - row["start"] for row in entry["attribution"]
        )
        attributed = sum(
            sum(row["seconds"].values()) for row in entry["attribution"]
        )
        assert attributed == pytest.approx(window_total, rel=1e-9)
        assert entry["class_seconds"]["control"] >= 0.0
        assert entry["sim_seconds"] >= window_total
    assert doc["critical_path"]["top_resources"]
    assert doc["spans"]["run"] == 1


def test_span_skeleton_deterministic_across_worker_counts():
    from repro.graph500.parallel import fork_available

    if not fork_available():  # pragma: no cover - platform dependent
        pytest.skip("needs fork")
    trees = []
    for workers in (1, 2):
        tel = Telemetry()
        runner = Graph500Runner(
            scale=9, nodes=4, validate="none", workers=workers, telemetry=tel
        )
        runner.run(num_roots=4)
        trees.append(tel.spans.tree(categories={"run", "root", "level"}))
    assert trees[0] == trees[1]


def test_runner_telemetry_disabled_records_nothing():
    tel = Telemetry(enabled=False)
    runner = Graph500Runner(scale=8, nodes=2, validate="none", telemetry=tel)
    runner.run(num_roots=1)
    assert len(tel.spans) == 0
    assert tel.metrics.snapshot() == {}
