"""Property-based tests for collectives and the superstep engine."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms.base import SuperstepEngine
from repro.core import BFSConfig
from repro.graph.generators import ring_edges
from repro.machine.specs import TAIHULIGHT
from repro.network import SimCluster
from repro.network.collectives import Collectives
from repro.sim import Engine

CFG = BFSConfig(hub_count_topdown=8, hub_count_bottomup=8)


def make(n):
    return Collectives(SimCluster(Engine(), n, TAIHULIGHT, nodes_per_super_node=4))


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=9),
    contributions=st.lists(st.integers(-1000, 1000), min_size=9, max_size=9),
)
def test_allreduce_sum_is_exact(n, contributions):
    coll = make(n)
    values, t = coll.allreduce(contributions[:n], lambda a, b: a + b)
    assert values == [sum(contributions[:n])] * n
    assert t > 0


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    root=st.integers(min_value=0, max_value=7),
    payload=st.integers(),
)
def test_broadcast_reaches_all_from_any_root(n, root, payload):
    root %= n
    coll = make(n)
    values, _ = coll.broadcast(root, payload)
    assert values == [payload] * n


@settings(max_examples=10, deadline=None)
@given(n=st.integers(min_value=2, max_value=7))
def test_allgather_every_rank_sees_every_segment(n):
    coll = make(n)
    gathered, _ = coll.allgather([r * 100 for r in range(n)])
    for got in gathered:
        assert sorted(got) == [r * 100 for r in range(n)]


@settings(max_examples=10, deadline=None)
@given(
    n_nodes=st.sampled_from([2, 4, 8]),
    seed=st.integers(0, 50),
)
def test_superstep_engine_conserves_records(n_nodes, seed):
    """Every record sent arrives exactly once at its owner, regardless of
    routing mode."""
    rng = np.random.default_rng(seed)
    eng = SuperstepEngine(ring_edges(32), n_nodes, config=CFG,
                          nodes_per_super_node=2)
    outgoing = []
    sent = []
    for part in eng.parts:
        k = int(rng.integers(0, 20))
        targets = rng.integers(0, 32, size=k).astype(np.int64)
        values = rng.random(k)
        outgoing.append((targets, values))
        sent.extend(zip(targets.tolist(), values.tolist()))
    inboxes = eng.superstep(outgoing)
    received = []
    for part, (v, x) in zip(eng.parts, inboxes):
        assert ((v >= part.lo) & (v < part.hi)).all()
        received.extend(zip(v.tolist(), x.tolist()))
    assert sorted(received) == sorted(sent)
