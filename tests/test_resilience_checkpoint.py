"""Corner cases of :mod:`repro.resilience.checkpoint`.

The store and snapshot dataclasses are the substrate both durability
schemes (buddy and RS) build on; these tests pin the edges the happy-path
recovery tests never hit — empty frontiers, empty stores, byte accounting,
and the buddy store's disk-fault semantics (single copy: any fault is
fatal).
"""

import numpy as np
import pytest

from repro.resilience.checkpoint import Checkpoint, CheckpointStore, NodeSnapshot


def _snapshot(n_local: int, frontier=()):
    parent = np.full(n_local, -1, dtype=np.int64)
    curr = np.asarray(sorted(frontier), dtype=np.int64)
    mask = np.zeros(n_local, dtype=bool)
    mask[curr] = True
    return NodeSnapshot(parent=parent, curr=curr, curr_mask=mask)


# --- snapshot byte accounting -------------------------------------------------
def test_snapshot_nbytes_counts_parent_plus_bitmap():
    snap = _snapshot(64, frontier=(1, 5))
    # 64 int64 parents + 64 mask bits packed into 8 bytes.
    assert snap.nbytes == 64 * 8 + 8


def test_snapshot_nbytes_rounds_bitmap_up():
    snap = _snapshot(65)
    assert snap.nbytes == 65 * 8 + 9  # 65 bits -> 9 bytes


def test_empty_frontier_snapshot_is_legal_and_costed():
    """A node whose frontier emptied still snapshots (its parents matter
    for recovery); the frontier contributes only the bitmap bytes."""
    snap = _snapshot(32)
    assert snap.curr.size == 0
    assert not snap.curr_mask.any()
    assert snap.nbytes == 32 * 8 + 4
    ckpt = Checkpoint(level=3, snapshots=(snap,))
    store = CheckpointStore()
    store.save(ckpt)
    restored = store.restore()
    assert restored.snapshots[0].curr.size == 0
    assert np.array_equal(restored.snapshots[0].parent, snap.parent)


def test_checkpoint_max_node_bytes_accounting():
    snaps = (_snapshot(16), _snapshot(256, frontier=(0, 255)), _snapshot(8))
    ckpt = Checkpoint(level=1, snapshots=snaps)
    assert ckpt.total_bytes == sum(s.nbytes for s in snaps)
    assert ckpt.max_node_bytes == snaps[1].nbytes  # the 256-vertex node
    assert Checkpoint(level=0, snapshots=()).max_node_bytes == 0
    assert Checkpoint(level=0, snapshots=()).total_bytes == 0


# --- store corner cases -------------------------------------------------------
def test_restore_from_empty_store_raises():
    store = CheckpointStore()
    with pytest.raises(LookupError, match="no checkpoint to restore"):
        store.restore()


def test_store_save_restore_counters_and_storage():
    store = CheckpointStore()
    a = Checkpoint(level=1, snapshots=(_snapshot(16),))
    b = Checkpoint(level=2, snapshots=(_snapshot(16), _snapshot(16)))
    store.save(a)
    store.save(b)  # replaces a: buddy memory holds exactly one
    assert store.taken == 2
    assert store.bytes_written == a.total_bytes + b.total_bytes
    assert store.raw_bytes == b.total_bytes
    assert store.storage_bytes == 2 * b.total_bytes  # full buddy copy
    assert store.restore() is b
    assert store.restore() is b  # restore does not consume
    assert store.restored == 2


def test_buddy_drop_holder_destroys_the_single_copy():
    store = CheckpointStore()
    assert store.drop_holder(3) == 0  # nothing saved yet: no-op
    store.save(Checkpoint(level=1, snapshots=(_snapshot(16),)))
    assert store.drop_holder(3) == 1
    assert store.shards_lost == 1
    assert store.storage_bytes == 0
    assert store.raw_bytes == 0
    with pytest.raises(LookupError):
        store.restore()


def test_buddy_corruption_is_detected_but_unrepairable():
    store = CheckpointStore()
    rng = np.random.default_rng(0)
    assert store.corrupt_shard(2, rng) is False  # empty store: no-op
    store.save(Checkpoint(level=1, snapshots=(_snapshot(16),)))
    assert store.corrupt_shard(2, rng) is True
    assert store.shards_corrupted == 1
    assert store.shards_lost == 0  # counted as corruption, not loss
    with pytest.raises(LookupError):
        store.restore()
