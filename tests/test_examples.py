"""Smoke tests: every shipped example runs to completion in-process."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, argv=()):  # -> captured stdout via capsys at caller
    path = EXAMPLES / name
    assert path.exists(), path
    old_argv = sys.argv
    sys.argv = [str(path), *argv]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py", argv=["9", "4"])
    out = capsys.readouterr().out
    assert "all validated" in out
    assert "GTEPS" in out


def test_machine_tour(capsys):
    run_example("machine_tour.py")
    out = capsys.readouterr().out
    assert "10,649,600 cores" in out
    assert "deadlock-free = True" in out
    assert "trunk" in out


def test_full_machine_projection(capsys):
    run_example("full_machine_projection.py")
    out = capsys.readouterr().out
    assert "23,755.7" in out
    assert "K Computer" in out
    assert "Figure 12" in out


def test_traversal_anatomy(capsys):
    run_example("traversal_anatomy.py")
    out = capsys.readouterr().out
    assert "bottomup" in out
    assert "avoided" in out


@pytest.mark.slow
def test_technique_comparison(capsys):
    run_example("technique_comparison.py")
    out = capsys.readouterr().out
    assert "CRASH:spm-overflow" in out
    assert "relay-cpe" in out


@pytest.mark.slow
def test_social_network_analysis(capsys):
    run_example("social_network_analysis.py")
    out = capsys.readouterr().out
    for tag in ("[WCC]", "[PageRank]", "[k-core]", "[BFS]", "[SSSP]"):
        assert tag in out


@pytest.mark.slow
def test_scaling_study(capsys):
    run_example("scaling_study.py")
    out = capsys.readouterr().out
    assert "weak scaling" in out
    assert "Strong scaling" in out.lower() or "strong scaling" in out
