"""CPE-cluster timing model tests (shuffle throughput calibration)."""

import pytest

from repro.errors import ConfigError
from repro.machine import CpeCluster
from repro.machine.cluster import (
    MEASURED_SHUFFLE_BANDWIDTH,
    SHUFFLE_PIPELINE_EFFICIENCY,
    THEORETICAL_SHUFFLE_BANDWIDTH,
)
from repro.utils.units import GBPS

cluster = CpeCluster()


def test_default_shuffle_bandwidth_matches_paper_measurement():
    # Section 4.3: "we achieve 10 GB/s register to register bandwidth out of
    # a theoretical 14.5 GB/s".
    bw = cluster.shuffle_bandwidth()
    assert bw == pytest.approx(10.0 * GBPS, rel=0.01)
    assert THEORETICAL_SHUFFLE_BANDWIDTH == pytest.approx(14.45 * GBPS)
    assert 0.6 < SHUFFLE_PIPELINE_EFFICIENCY < 0.75


def test_shuffle_bandwidth_limited_by_consumer_side():
    # Starve the write side: 2 consumers cap the pipe at ~2 x 2.4 GB/s x eff.
    bw = cluster.shuffle_bandwidth(n_producers=32, n_consumers=2)
    assert bw == pytest.approx(SHUFFLE_PIPELINE_EFFICIENCY * 2 * 2.4 * GBPS)


def test_shuffle_bandwidth_limited_by_producer_side():
    bw = cluster.shuffle_bandwidth(n_producers=2, n_consumers=16)
    assert bw == pytest.approx(SHUFFLE_PIPELINE_EFFICIENCY * 2 * 2.4 * GBPS)


def test_shuffle_time_is_bandwidth_bound_for_big_batches():
    t = cluster.shuffle_time(MEASURED_SHUFFLE_BANDWIDTH)  # one second's bytes
    assert t == pytest.approx(1.0, rel=0.01)


def test_shuffle_time_zero_bytes():
    assert cluster.shuffle_time(0) == 0.0


def test_partitioned_time_uses_cluster_dma():
    t = cluster.partitioned_time(28.9 * GBPS)
    assert t == pytest.approx(1.0)


def test_role_counts_validated():
    with pytest.raises(ConfigError):
        cluster.shuffle_bandwidth(n_producers=0)
    with pytest.raises(ConfigError):
        cluster.shuffle_bandwidth(n_producers=60, n_consumers=10)
    with pytest.raises(ConfigError):
        cluster.shuffle_time(-1)


def test_module_startup_is_submicrosecond():
    # Flag polling must beat the 10 us interrupt path or the design is moot.
    assert cluster.module_startup_time() < 1e-6
