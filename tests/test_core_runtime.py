"""NodeState functional-operation tests."""

import numpy as np
import pytest

from repro.core import BFSConfig
from repro.core.pipeline import NodePipeline
from repro.core.runtime import NodeState, expand_chunks
from repro.errors import ConfigError
from repro.graph import CSRGraph, EdgeList
from repro.machine.node import SunwayNode


def make_state(lo=0, hi=6):
    # Path graph 0-1-2-3-4-5 plus edge 0-5.
    edges = EdgeList(
        np.array([0, 1, 2, 3, 4, 0]), np.array([1, 2, 3, 4, 5, 5]), 6
    )
    g = CSRGraph.from_edges(edges)
    return NodeState(
        0, lo, hi, g.row_slice(lo, hi), NodePipeline(SunwayNode(0), BFSConfig())
    )


def test_seed_root_and_advance():
    s = make_state()
    s.seed_root(2)
    assert s.parent[2] == 2
    assert s.curr.tolist() == [2]
    assert s.curr_mask[2]


def test_seed_root_not_owned():
    s = make_state(lo=0, hi=3)
    with pytest.raises(ConfigError):
        s.seed_root(4)


def test_apply_forward_first_writer_wins():
    s = make_state()
    s.seed_root(0)
    settled = s.apply_forward(np.array([0, 5, 0]), np.array([1, 1, 5]))
    assert settled == 2  # vertices 1 and 5, each once
    assert s.parent[1] == 0  # first record for vertex 1 wins
    assert s.parent[5] == 0
    assert s.next_mask[1] and s.next_mask[5]
    # Re-delivery is a no-op.
    assert s.apply_forward(np.array([9]), np.array([1])) == 0
    assert s.parent[1] == 0


def test_apply_forward_rejects_foreign_vertices():
    s = make_state(lo=0, hi=3)
    with pytest.raises(ConfigError):
        s.apply_forward(np.array([0]), np.array([5]))


def test_match_backward_filters_by_frontier():
    s = make_state()
    s.seed_root(2)
    u = np.array([2, 3, 2])
    v = np.array([10, 11, 12])
    mu, mv = s.match_backward(u, v)
    assert mu.tolist() == [2, 2]
    assert mv.tolist() == [10, 12]


def test_advance_level_promotes_next():
    s = make_state()
    s.seed_root(0)
    s.apply_forward(np.array([0, 0]), np.array([1, 5]))
    n = s.advance_level()
    assert n == 2
    assert s.curr.tolist() == [1, 5]
    assert not s.next_mask.any()
    assert s.bu_cursor.tolist() == [0] * 6


def test_frontier_stats():
    s = make_state()
    s.seed_root(0)
    n_f, m_f, m_u = s.frontier_stats()
    assert n_f == 1
    assert m_f == 2  # vertex 0 has neighbours 1 and 5
    assert m_u == int(s.local_degrees.sum()) - 2


def test_bu_expand_chunking_and_cursors():
    s = make_state()
    s.seed_root(0)
    u1, v1 = s.bu_expand(chunk=1)
    # Every unvisited vertex (1..5) emits exactly its first neighbour.
    assert len(v1) == 5
    u2, v2 = s.bu_expand(chunk=1)
    # Second round: vertices with >= 2 neighbours emit their second.
    assert 0 < len(v2) <= 5
    assert not set(zip(u1.tolist(), v1.tolist())) & set(zip(u2.tolist(), v2.tolist()))


def test_bu_expand_chunk_zero_takes_everything():
    s = make_state()
    s.seed_root(0)
    u, v = s.bu_expand(chunk=0)
    degrees = s.local_degrees
    assert len(u) == int(degrees.sum()) - degrees[0]
    assert len(s.bu_remaining()) == 0


def test_bu_remaining_excludes_settled():
    s = make_state()
    s.seed_root(0)
    s.apply_forward(np.array([0, 0]), np.array([1, 5]))
    assert 1 not in s.bu_remaining().tolist()
    assert 5 not in s.bu_remaining().tolist()


def test_expand_chunks_helper():
    edges = EdgeList(np.array([0, 0, 0, 1]), np.array([1, 2, 3, 2]), 4)
    g = CSRGraph.from_edges(edges, symmetrize=False)
    verts = np.array([0, 1])
    cursors = np.array([1, 0])
    src, tgt, taken = expand_chunks(g, verts, cursors, chunk=2)
    assert taken.tolist() == [2, 1]
    assert src.tolist() == [0, 0, 1]
    assert tgt.tolist() == [2, 3, 2]
    with pytest.raises(ConfigError):
        expand_chunks(g, verts, np.array([0]), 1)


def test_reset_clears_everything():
    s = make_state()
    s.seed_root(0)
    s.apply_forward(np.array([0]), np.array([1]))
    s.bu_expand(2)
    s.reset()
    assert (s.parent == -1).all()
    assert len(s.curr) == 0
    assert not s.curr_mask.any()
    assert not s.next_mask.any()
    assert (s.bu_cursor == 0).all()
