"""Runtime sanitizers: SPM write conflicts, payload mutation, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.config import BFSConfig
from repro.core.shuffle import ShufflePlan
from repro.errors import ReproError
from repro.graph500.runner import Graph500Runner
from repro.network.simmpi import SimCluster
from repro.sanitizers import (
    MessageSanitizer,
    SanitizerViolation,
    SpmWriteSanitizer,
    check_determinism,
    payload_digest,
)
from repro.sim.engine import Engine


# --- SPM write-conflict detector ----------------------------------------------
def test_spm_disjoint_claims_pass():
    san = SpmWriteSanitizer()
    san.begin_phase("p0")
    san.claim((0, 6), 0, 1024)
    san.claim((1, 6), 1024, 2048)
    san.claim((0, 6), 0, 1024)  # same CPE re-claiming its region is fine
    assert san.conflicts == []
    assert san.claims_checked == 3


def test_spm_overlap_between_cpes_raises():
    san = SpmWriteSanitizer()
    san.begin_phase("p0")
    san.claim((0, 6), 0, 1024)
    with pytest.raises(SanitizerViolation, match="SPM write conflict"):
        san.claim((1, 6), 512, 1536)
    assert isinstance(san.conflicts[0].phase, str)


def test_spm_violation_is_a_repro_error():
    assert issubclass(SanitizerViolation, ReproError)
    assert issubclass(SanitizerViolation, RuntimeError)


def test_spm_accumulate_mode_and_phase_reset():
    san = SpmWriteSanitizer(raise_on_violation=False)
    san.begin_phase("p0")
    san.claim((0, 6), 0, 1024)
    san.claim((1, 6), 0, 1024)
    assert len(san.conflicts) == 1
    # A new phase clears the claim table: the same region is claimable again.
    san.begin_phase("p1")
    san.claim((1, 6), 0, 1024)
    assert len(san.conflicts) == 1
    assert san.phases_checked == 2


def test_spm_empty_region_rejected():
    san = SpmWriteSanitizer()
    san.begin_phase("p0")
    with pytest.raises(SanitizerViolation, match="empty or negative"):
        san.claim((0, 6), 1024, 1024)


def test_spm_bucket_writes_clean_on_paper_plan():
    plan = ShufflePlan.from_config(BFSConfig(), 64)
    san = SpmWriteSanitizer()
    san.check_bucket_writes(plan, np.arange(64), phase="node0:fwd@0")
    assert san.conflicts == []
    assert san.phases_checked == 1
    assert san.claims_checked == 64


class _BrokenOwnershipPlan:
    """consumer_for flip-flops: two CPEs end up owning one slot's region."""

    staging_buffer_bytes = 1024
    num_destinations = 8

    def __init__(self):
        self.calls = 0

    def consumer_for(self, slot):
        self.calls += 1
        return (0, 6) if self.calls % 2 else (1, 6)


def test_spm_bucket_writes_catch_broken_ownership():
    san = SpmWriteSanitizer(raise_on_violation=False)
    # 0 and 8 alias to slot 0 -> same region, but the broken plan hands it
    # to two different consumers.
    san.check_bucket_writes(_BrokenOwnershipPlan(), [0, 8], phase="bad")
    assert len(san.conflicts) == 1
    assert "dest 8" in san.conflicts[0].second.label


# --- payload digests ----------------------------------------------------------
def test_payload_digest_stability_and_sensitivity():
    a = np.arange(8, dtype=np.int64)
    assert payload_digest(a) == payload_digest(a.copy())
    assert payload_digest(a) != payload_digest(a.astype(np.int32))
    assert payload_digest((a, 3)) == payload_digest((a.copy(), 3))
    assert payload_digest({"k": a}) != payload_digest({"k": a + 1})
    assert payload_digest(None) == payload_digest(None)
    b = a.copy()
    before = payload_digest(b)
    b[0] = 99
    assert payload_digest(b) != before


# --- message-mutation detector ------------------------------------------------
def _cluster_pair():
    engine = Engine()
    cluster = SimCluster(engine, num_nodes=2)
    delivered = []
    cluster.register(0, delivered.append)
    cluster.register(1, delivered.append)
    return engine, cluster, delivered


def test_message_sanitizer_clean_send():
    engine, cluster, delivered = _cluster_pair()
    san = MessageSanitizer(cluster)
    payload = np.arange(4)
    cluster.send(0, 1, "data", 32, payload)
    engine.run()
    assert len(delivered) == 1
    assert san.messages_checked == 1
    assert san.violations == []


def test_message_sanitizer_detects_mutation_after_send():
    engine, cluster, _ = _cluster_pair()
    MessageSanitizer(cluster)
    payload = np.arange(4)
    cluster.send(0, 1, "data", 32, payload)
    payload[0] = 99  # mutate the in-flight buffer
    with pytest.raises(SanitizerViolation, match="mutated after send"):
        engine.run()


def test_message_sanitizer_covers_batch_sends():
    engine, cluster, delivered = _cluster_pair()
    san = MessageSanitizer(cluster, raise_on_violation=False)
    payloads = [np.arange(3), np.arange(3)]
    cluster.send_batch(
        0, np.array([1, 1]), "batch", np.array([24, 24]), payloads
    )
    payloads[1][2] = -1
    engine.run()
    assert len(delivered) == 2
    assert san.messages_checked == 2
    assert len(san.violations) == 1
    assert "batch" in san.violations[0].render()


def test_message_sanitizer_uninstall_restores_cluster():
    engine, cluster, delivered = _cluster_pair()
    san = MessageSanitizer(cluster)
    san.uninstall()
    assert "send" not in cluster.__dict__
    assert "_deliver" not in cluster.__dict__
    payload = np.arange(4)
    cluster.send(0, 1, "data", 32, payload)
    payload[0] = 99  # no longer watched
    engine.run()
    assert len(delivered) == 1
    assert san.messages_checked == 0


# --- determinism sanitizer ----------------------------------------------------
def test_check_determinism_passes_small_scale():
    result = check_determinism(
        scale=8, nodes=2, num_roots=2, runs=2, validate=True
    )
    assert result.ok, result.render()
    assert len(result.digests) == 2
    assert result.digests[0].report == result.digests[1].report
    assert "deterministic across 2 run(s)" in result.render()


def test_check_determinism_cycles_drain_workers():
    """drain_workers=[1, 2] at a fixed partition count proves the
    parallel drain digest-identical to the serial drain loop."""
    result = check_determinism(
        scale=8, nodes=4, num_roots=1, runs=2,
        engine_partitions=2, drain_workers=[1, 2],
    )
    assert result.ok, result.render()
    assert result.digests[0] == result.digests[1]


def test_determinism_report_flags_mismatch():
    result = check_determinism(scale=8, nodes=2, num_roots=1, runs=2)
    result.digests[1].spans = "0" * 64
    result.mismatches.append("spans digest of run 1 differs from run 0")
    assert not result.ok
    assert "MISMATCH" in result.render()


# --- runner integration -------------------------------------------------------
def test_runner_sanitize_forces_sequential_and_reports_counters():
    runner = Graph500Runner(
        scale=8, nodes=2, validate="none", workers=4, sanitize=True
    )
    assert runner._effective_workers(num_roots=4) == 1
    report = runner.run(num_roots=2)
    assert report.extra["sanitizer_messages_checked"] > 0
    assert report.extra["sanitizer_mutations"] == 0
    assert report.extra["sanitizer_spm_phases"] > 0
    assert report.extra["sanitizer_spm_conflicts"] == 0


def test_runner_without_sanitize_has_no_counters():
    runner = Graph500Runner(scale=8, nodes=2, validate="none")
    report = runner.run(num_roots=1)
    assert "sanitizer_messages_checked" not in report.extra


def test_cli_sanitize_command(capsys):
    rc = main(
        ["sanitize", "--scale", "8", "--nodes", "2", "--roots", "1",
         "--no-validate"]
    )
    assert rc == 0
    assert "deterministic" in capsys.readouterr().out


def test_cli_graph500_sanitize_flag(capsys):
    rc = main(
        ["graph500", "--scale", "8", "--nodes", "2", "--roots", "1",
         "--sanitize"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "sanitizer_messages_checked" in out
