"""SimMPI runtime + connection-table tests."""

import pytest

from repro.errors import ConnectionMemoryExhausted, SimulationError
from repro.machine import TAIHULIGHT
from repro.network import ConnectionTable, SimCluster
from repro.sim import Engine


def make_cluster(n=8, **kw):
    eng = Engine()
    return eng, SimCluster(eng, n, **kw)


def test_message_delivery_and_payload():
    eng, cluster = make_cluster()
    got = []
    for r in range(cluster.num_nodes):
        cluster.register(r, lambda m, r=r: got.append((r, m.tag, m.payload)))
    cluster.send(0, 3, "hello", nbytes=64, payload={"x": 1})
    eng.run()
    assert got == [(3, "hello", {"x": 1})]


def test_arrival_time_is_positive_and_ordered():
    eng, cluster = make_cluster()
    arrivals = []
    cluster.register(1, lambda m: arrivals.append(eng.now))
    for r in range(cluster.num_nodes):
        if r != 1:
            cluster.register(r, lambda m: None)
    cluster.send(0, 1, "a", nbytes=1 << 20)
    cluster.send(0, 1, "b", nbytes=1 << 20)
    eng.run()
    assert len(arrivals) == 2
    assert 0 < arrivals[0] < arrivals[1]


def test_handlers_can_send_in_response():
    eng, cluster = make_cluster()
    log = []

    def ponger(m):
        if m.tag == "ping":
            cluster.send(m.dst, m.src, "pong", 64)

    def pinger(m):
        log.append(m.tag)

    cluster.register(0, pinger)
    cluster.register(1, ponger)
    for r in range(2, cluster.num_nodes):
        cluster.register(r, lambda m: None)
    cluster.send(0, 1, "ping", 64)
    eng.run()
    assert log == ["pong"]


def test_stats_track_messages_and_central_traffic():
    eng, cluster = make_cluster(512)
    for r in range(cluster.num_nodes):
        cluster.register(r, lambda m: None)
    cluster.send(0, 1, "intra", 100)
    cluster.send(0, 300, "inter", 200)
    eng.run()
    assert cluster.stats.value("messages") == 2
    assert cluster.stats.value("bytes") == 300
    assert cluster.stats.value("central_messages") == 1
    assert cluster.stats.value("central_bytes") == 200


def test_double_register_rejected():
    _, cluster = make_cluster()
    cluster.register(0, lambda m: None)
    with pytest.raises(SimulationError):
        cluster.register(0, lambda m: None)


def test_unregistered_destination_is_an_error():
    eng, cluster = make_cluster()
    cluster.send(0, 1, "x", 10)
    with pytest.raises(SimulationError):
        eng.run()


def test_connection_accounting_both_ends():
    eng, cluster = make_cluster()
    for r in range(cluster.num_nodes):
        cluster.register(r, lambda m: None)
    cluster.send(0, 1, "x", 10)
    cluster.send(0, 2, "x", 10)
    cluster.send(3, 0, "x", 10)
    eng.run()
    assert cluster.connections[0].count == 3  # peers 1, 2, 3
    assert cluster.connections[1].count == 1
    assert cluster.max_connections() == 3
    # node0 has 3 peers; nodes 1, 2, 3 have one each -> 6 connection records.
    assert cluster.total_connection_memory() == 6 * 100_000


def test_connection_table_budget_crash():
    spec = TAIHULIGHT.node
    table = ConnectionTable(0, spec)
    budget_peers = spec.mpi_memory_budget // spec.mpi_connection_bytes
    for p in range(1, budget_peers + 1):
        table.ensure(p)
    with pytest.raises(ConnectionMemoryExhausted) as exc:
        table.ensure(budget_peers + 1)
    assert exc.value.node == 0


def test_connection_table_idempotent_and_ignores_self():
    table = ConnectionTable(5, TAIHULIGHT.node)
    table.ensure(5)
    table.ensure(1)
    table.ensure(1)
    assert table.count == 1
    assert table.memory_used == 100_000


def test_sixteen_k_direct_connections_exceed_budget():
    """The Figure 11 Direct-MPE crash: 16,384 peers x 100 KB > 1 GiB."""
    spec = TAIHULIGHT.node
    assert 4_096 * spec.mpi_connection_bytes < spec.mpi_memory_budget
    assert 16_384 * spec.mpi_connection_bytes > spec.mpi_memory_budget
