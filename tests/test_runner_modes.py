"""Graph500Runner validation-mode and result-serialisation tests."""

import json

import numpy as np
import pytest

from repro import Graph500Runner
from repro.core import BFSConfig, DistributedBFS
from repro.errors import ConfigError
from repro.graph import CSRGraph, KroneckerGenerator

CFG = BFSConfig(hub_count_topdown=8, hub_count_bottomup=8)


def test_distributed_validation_mode_records_its_cost():
    report = Graph500Runner(
        scale=8, nodes=4, config=CFG, nodes_per_super_node=2,
        validate="distributed",
    ).run(num_roots=2)
    assert report.all_validated  # no sequential failures recorded
    assert report.extra["validation_seconds"] > 0


def test_validation_can_be_disabled():
    report = Graph500Runner(
        scale=8, nodes=2, config=CFG, nodes_per_super_node=2, validate=False
    ).run(num_roots=2)
    assert len(report.runs) == 2
    assert "validation_seconds" not in report.extra


def test_bool_validate_back_compat():
    r = Graph500Runner(scale=8, nodes=2, config=CFG, validate=True)
    assert r.validate == "sequential"
    r = Graph500Runner(scale=8, nodes=2, config=CFG, validate=False)
    assert r.validate == "none"
    with pytest.raises(ConfigError):
        Graph500Runner(scale=8, nodes=2, validate="bogus")


def test_distributed_and_sequential_agree_on_gteps():
    kw = dict(scale=8, nodes=4, seed=5, config=CFG, nodes_per_super_node=2)
    seq = Graph500Runner(**kw, validate="sequential").run(num_roots=2)
    dist = Graph500Runner(**kw, validate="distributed").run(num_roots=2)
    assert seq.gteps == pytest.approx(dist.gteps)


def test_bfs_result_to_json_roundtrips():
    edges = KroneckerGenerator(scale=9, seed=7).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    bfs = DistributedBFS(edges, 4, config=CFG, nodes_per_super_node=2)
    result = bfs.run(root)
    blob = json.loads(result.to_json())
    assert blob["root"] == root
    assert blob["levels"] == result.levels
    assert blob["reached"] == int((result.parent >= 0).sum())
    assert len(blob["traces"]) == result.levels
    assert blob["traces"][0]["frontier_vertices"] == 1
    assert blob["stats"]["records_sent"] == result.stats["records_sent"]


def test_benchmark_report_to_json():
    report = Graph500Runner(
        scale=8, nodes=2, config=CFG, nodes_per_super_node=2
    ).run(num_roots=2)
    blob = json.loads(report.to_json())
    assert blob["scale"] == 8
    assert blob["variant"] == "relay-cpe"
    assert blob["all_validated"] is True
    assert len(blob["runs"]) == 2
    assert blob["gteps_harmonic_mean"] == pytest.approx(report.gteps)


def test_cli_reproduce_writes_artifacts(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "pack"
    assert main(["reproduce", "--out", str(out)]) == 0
    written = sorted(p.name for p in out.iterdir())
    assert "fig11.txt" in written
    assert "table2.txt" in written
    assert "full_benchmark.txt" in written
    assert "23,755.7" in (out / "fig12.txt").read_text()
