"""Mechanistic DMA engine vs the fitted Figure 3 curve."""

import pytest

from repro.errors import ConfigError
from repro.machine import DmaModel
from repro.machine.dma_engine import DmaEngineParams, DmaEngineSim
from repro.utils.units import GBPS

engine = DmaEngineSim()
fitted = DmaModel()


def test_saturation_chunk_derived_not_assumed():
    """~13 cycles of descriptor processing puts the knee at exactly 256 B."""
    assert engine.saturation_chunk() == 256


def test_peak_matches_published():
    assert engine.analytic_bandwidth(256) == pytest.approx(28.9 * GBPS)
    assert engine.analytic_bandwidth(4096) == pytest.approx(28.9 * GBPS)


def test_single_cpe_near_the_calibrated_share():
    """One CPE's request window caps it near the 2.4 GB/s the fitted model
    assigns per CPE."""
    bw = engine.single_cpe_bandwidth(256)
    assert bw == pytest.approx(2.4 * GBPS, rel=0.15)


def test_sixteen_cpes_saturate_mechanistically():
    assert engine.analytic_bandwidth(256, 16) == pytest.approx(28.9 * GBPS, rel=0.25)
    assert engine.analytic_bandwidth(256, 8) < 28.9 * GBPS


def test_mechanistic_and_fitted_curves_agree_within_3x():
    """The two models bracket each other below saturation and agree above."""
    for chunk in (8, 16, 32, 64, 128, 256, 1024):
        mech = engine.analytic_bandwidth(chunk)
        fit = fitted.cluster_bandwidth(chunk)
        assert mech / 3 < fit < mech * 3, chunk
    assert engine.analytic_bandwidth(512) == pytest.approx(
        fitted.cluster_bandwidth(512)
    )


def test_simulation_approaches_the_closed_form():
    for chunk in (64, 256, 1024):
        simulated = engine.stream(total_bytes=1 << 22, chunk=chunk, n_cpes=64)
        analytic = engine.analytic_bandwidth(chunk, 64)
        assert simulated == pytest.approx(analytic, rel=0.2), chunk


def test_simulation_respects_per_cpe_window():
    one = engine.stream(total_bytes=1 << 20, chunk=256, n_cpes=1)
    assert one == pytest.approx(engine.single_cpe_bandwidth(256), rel=0.1)


def test_more_outstanding_requests_raise_single_cpe_bandwidth():
    deeper = DmaEngineSim(DmaEngineParams(outstanding=4))
    assert deeper.single_cpe_bandwidth(256) > engine.single_cpe_bandwidth(256)


def test_validation():
    with pytest.raises(ConfigError):
        engine.analytic_bandwidth(0)
    with pytest.raises(ConfigError):
        engine.stream(0, 256)
    with pytest.raises(ConfigError):
        DmaEngineParams(setup_time=0)
    with pytest.raises(ConfigError):
        DmaEngineParams(outstanding=0)
