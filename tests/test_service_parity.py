"""Service results must be bit-identical to the batch paths.

The service is a *frontend*, not a fork: a query through the catalog's
pinned artifacts must produce exactly what ``Graph500Runner`` /
``repro.algorithms`` produce over the same inputs — same parent arrays,
same distances, same float ranks, same simulated seconds. Closeness is
not accepted; these are equality assertions.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.algorithms import (
    DistributedDeltaStepping,
    DistributedKCore,
    DistributedPageRank,
    DistributedSSSP,
    DistributedWCC,
)
from repro.baselines import make_variant
from repro.graph.kronecker import KroneckerGenerator
from repro.graph500.timing import traversed_edges
from repro.service import (
    GraphService,
    GraphSpec,
    QueryRequest,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
)

SCALE, NODES, SEED = 8, 4, 1


@pytest.fixture(scope="module")
def edges():
    return KroneckerGenerator(SCALE, seed=SEED).generate()


@pytest.fixture(scope="module")
def service():
    svc = GraphService(ServiceConfig(workers=2, host_shared=False))
    svc.load_graph("g", GraphSpec(scale=SCALE, nodes=NODES, seed=SEED))
    yield svc
    svc.close()


def _query(service, algo, params):
    result = service.query(QueryRequest(graph="g", algo=algo, params=params))
    assert result.status == "ok", result.error
    return result


def test_catalog_graph_matches_batch_generation(service, edges):
    entry = service.catalog.get("g")
    assert np.array_equal(entry.edges.src, edges.src)
    assert np.array_equal(entry.edges.dst, edges.dst)


def test_bfs_parity_with_make_variant(service, edges):
    kernel = make_variant("relay-cpe", edges, NODES)
    for root in (0, 3, 17):
        batch = kernel.run(root)
        served = _query(service, "bfs", {"root": root})
        assert np.array_equal(served.payload["parent"], batch.parent)
        assert served.payload["levels"] == batch.levels
        assert served.payload["sim_seconds"] == batch.sim_seconds
        assert served.payload["traversed_edges"] == traversed_edges(
            edges, batch.depths()
        )


def test_sssp_parity_both_methods(service, edges):
    root = 3
    batch = DistributedSSSP(edges, NODES).run(root)
    served = _query(service, "sssp", {"root": root})
    assert np.array_equal(served.payload["dist"], batch.dist)
    assert served.payload["sim_seconds"] == batch.sim_seconds

    batch_delta = DistributedDeltaStepping(edges, NODES, delta=2.0).run(root)
    served_delta = _query(
        service, "sssp", {"root": root, "method": "delta-stepping"}
    )
    assert np.array_equal(served_delta.payload["dist"], batch_delta.dist)
    assert served_delta.payload["sim_seconds"] == batch_delta.sim_seconds


def test_pagerank_parity_bitwise_floats(service, edges):
    batch = DistributedPageRank(edges, NODES).run(iterations=10)
    served = _query(service, "pagerank", {"iterations": 10})
    # Float ranks must match to the last bit, not to a tolerance.
    assert served.payload["ranks"].tobytes() == batch.ranks.tobytes()
    assert served.payload["supersteps"] == batch.supersteps


def test_kcore_and_wcc_parity(service, edges):
    kcore = DistributedKCore(edges, NODES).run(2)
    served = _query(service, "kcore", {"k": 2})
    assert np.array_equal(served.payload["in_core"], kcore.in_core)
    assert served.payload["core_size"] == kcore.core_size()

    wcc = DistributedWCC(edges, NODES).run()
    served = _query(service, "wcc", {})
    assert np.array_equal(served.payload["labels"], wcc.labels)
    assert served.payload["num_components"] == wcc.num_components()


def test_cached_result_is_the_same_payload(service):
    first = _query(service, "bfs", {"root": 23})
    again = _query(service, "bfs", {"root": 23})
    assert again.cached
    assert np.array_equal(again.payload["parent"], first.payload["parent"])


def test_runner_accepts_prebuilt_artifacts(edges):
    """Satellite: prebuilt edges/graph/roots thread through the runner
    without re-derivation and change nothing in the report."""
    from repro.graph.csr import CSRGraph
    from repro.graph500.roots import sample_roots
    from repro.graph500.runner import Graph500Runner

    runner = Graph500Runner(scale=SCALE, nodes=NODES, seed=SEED)
    baseline = runner.run(num_roots=2)
    graph = CSRGraph.from_edges(edges)
    roots = sample_roots(edges, 2, seed=SEED)
    prebuilt = Graph500Runner(scale=SCALE, nodes=NODES, seed=SEED).run(
        num_roots=2, edges=edges, graph=graph, roots=roots
    )
    assert [r.seconds for r in prebuilt.runs] == [
        r.seconds for r in baseline.runs
    ]
    assert [r.root for r in prebuilt.runs] == [r.root for r in baseline.runs]
    assert all(r.validated for r in prebuilt.runs)


def test_runner_rejects_graph_without_edges():
    from repro.errors import ConfigError
    from repro.graph.csr import CSRGraph
    from repro.graph500.runner import Graph500Runner

    gen = KroneckerGenerator(6, seed=1).generate()
    with pytest.raises(ConfigError):
        Graph500Runner(scale=6, nodes=2).run(
            num_roots=1, graph=CSRGraph.from_edges(gen)
        )


class _ServerThread:
    """A live socket frontend for over-the-wire parity."""

    def __init__(self, service):
        self.server = ServiceServer(service)
        self.loop = asyncio.new_event_loop()
        self.ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        self.ready.wait(10)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self.ready.set()
        self.loop.run_forever()

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)


def test_over_socket_parity(service, edges):
    frontend = _ServerThread(service)
    try:
        with ServiceClient(port=frontend.server.port) as client:
            wire = client.query("g", "bfs", {"root": 3})
            local = service.query(
                QueryRequest(graph="g", algo="bfs", params={"root": 3})
            )
            assert wire.status == "ok"
            assert np.array_equal(wire.payload["parent"], local.payload["parent"])
            assert wire.payload["parent"].dtype == local.payload["parent"].dtype
            assert wire.payload["sim_seconds"] == local.payload["sim_seconds"]

            ranks_wire = client.query("g", "pagerank", {"iterations": 5})
            ranks_local = service.query(
                QueryRequest(graph="g", algo="pagerank", params={"iterations": 5})
            )
            assert (
                ranks_wire.payload["ranks"].tobytes()
                == ranks_local.payload["ranks"].tobytes()
            )
    finally:
        frontend.stop()
