"""Extension: energy accounting (Green-Graph500 style).

The paper motivates TaihuLight with "extremely large-scale computation and
power efficiency"; this bench prices each Figure 11 variant's energy per
traversed edge and GTEPS/MW at a mid-size machine, showing the same 10x
CPE/MPE story in joules.
"""

from repro.errors import ConfigError
from repro.perf.energy import EnergyModel
from repro.utils.tables import Table

NODES = 4096
VPN = 16e6
VARIANTS = ("relay-cpe", "relay-mpe", "direct-mpe")

model = EnergyModel()


def run_sweep():
    out = {}
    for variant in VARIANTS:
        try:
            out[variant] = model.evaluate(NODES, VPN, variant)
        except ConfigError as exc:  # pragma: no cover - none crash at 4096
            out[variant] = exc
    return out


def render(out) -> str:
    t = Table(
        ["variant", "nJ/edge", "GTEPS/MW", "static share"],
        title=f"Energy extension: {NODES} nodes, 16M vertices/node",
    )
    for variant, e in out.items():
        t.add_row(
            [variant, f"{e.nanojoules_per_edge:.1f}",
             f"{e.gteps_per_megawatt:,.0f}",
             f"{100 * e.static_joules / e.total_joules:.0f}%"]
        )
    return t.render()


def test_extension_energy(benchmark, save_report):
    out = benchmark(run_sweep)
    save_report("extension_energy", render(out))
    cpe, mpe = out["relay-cpe"], out["relay-mpe"]
    # Faster is greener: the CPE variant wins energy/edge by roughly the
    # same factor it wins time.
    assert cpe.nanojoules_per_edge < mpe.nanojoules_per_edge / 4
    assert cpe.gteps_per_megawatt > 4 * mpe.gteps_per_megawatt
    # Static power dominates everywhere at these run lengths.
    for e in out.values():
        assert e.static_joules / e.total_joules > 0.5
