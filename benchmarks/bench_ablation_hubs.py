"""Ablation: degree-aware hub prefetch (Section 5).

Sweeps the per-node hub count (0 disables the technique) and reports
locally-settled vertices, records shuffled, messages, and simulated time.
"""

import numpy as np

from repro.core import BFSConfig, DistributedBFS
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.validate import validate_bfs_result
from repro.utils.tables import Table
from repro.utils.units import fmt_time

SCALE = 13
NODES = 8
HUB_COUNTS = (0, 8, 32, 128)


def run_sweep():
    edges = KroneckerGenerator(scale=SCALE, seed=37).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    rows = []
    for hubs in HUB_COUNTS:
        cfg = BFSConfig(
            use_hub_prefetch=hubs > 0,
            hub_count_topdown=max(hubs, 1),
            hub_count_bottomup=max(hubs, 1),
            hub_fraction_cap=1.0,  # let the sweep parameter rule
        )
        bfs = DistributedBFS(edges, NODES, config=cfg, nodes_per_super_node=4)
        result = bfs.run(root)
        validate_bfs_result(graph, edges, root, result.parent)
        rows.append((hubs, result))
    return rows


def render(rows) -> str:
    t = Table(
        ["hubs/node", "hub-settled", "records", "messages", "sim time"],
        title=f"Hub-prefetch ablation: scale {SCALE}, {NODES} nodes",
    )
    for hubs, r in rows:
        t.add_row(
            [hubs, int(r.stats["hub_settled"]), int(r.stats["records_sent"]),
             int(r.stats["messages"]), fmt_time(r.sim_seconds)]
        )
    return t.render()


def test_ablation_hubs(benchmark, save_report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_report("ablation_hubs", render(rows))
    by_hubs = dict(rows)
    # No hubs -> nothing hub-settled; enabling hubs settles vertices locally.
    assert by_hubs[0].stats["hub_settled"] == 0
    assert by_hubs[32].stats["hub_settled"] > 0
    # More hubs -> monotonically fewer records on the wire.
    records = [r.stats["records_sent"] for _, r in rows]
    assert all(b <= a for a, b in zip(records, records[1:]))
    # And a solid overall reduction at the largest setting.
    assert records[-1] < 0.7 * records[0]
