"""Extension: message compression (Section 7's named future work).

"Message compression is also an important optimization method [4], [27],
[28], which is orthogonal to our work. It may be integrated with our work
in future." This bench integrates it: a wire-compression factor on record
payloads, measured functionally and priced at full-machine scale.
"""

import numpy as np

from repro.core import BFSConfig, DistributedBFS
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.validate import validate_bfs_result
from repro.perf import CostModel
from repro.utils.tables import Table
from repro.utils.units import fmt_bytes, fmt_time

SCALE = 13
NODES = 8
RATIOS = (1.0, 2.0, 4.0)


def run_sweep():
    edges = KroneckerGenerator(scale=SCALE, seed=53).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    rows = []
    for ratio in RATIOS:
        cfg = BFSConfig(
            compression_ratio=ratio,
            hub_count_topdown=32,
            hub_count_bottomup=32,
        )
        bfs = DistributedBFS(edges, NODES, config=cfg, nodes_per_super_node=4)
        result = bfs.run(root)
        validate_bfs_result(graph, edges, root, result.parent)
        rows.append((ratio, result.stats["bytes"], result.sim_seconds))
    return rows


def render(rows, model_points) -> str:
    t = Table(
        ["compression", "wire bytes", "sim time"],
        title=f"Compression extension (functional): scale {SCALE}, {NODES} nodes",
    )
    for ratio, nbytes, seconds in rows:
        t.add_row([f"{ratio:g}x", fmt_bytes(nbytes), fmt_time(seconds)])
    t2 = Table(
        ["compression", "modelled GTEPS @ full machine, 26.2M vpn"],
        title="Compression extension (modelled)",
    )
    for ratio, gteps in model_points:
        t2.add_row([f"{ratio:g}x", f"{gteps:,.0f}"])
    return t.render() + "\n\n" + t2.render()


def test_ablation_compression(benchmark, save_report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    cost = CostModel()
    model_points = [
        (r, cost.evaluate(40_768, 26.2e6, BFSConfig(compression_ratio=r)).gteps)
        for r in RATIOS
    ]
    save_report("ablation_compression", render(rows, model_points))

    # Wire bytes shrink monotonically with the ratio; results stay valid.
    wire = [b for _, b, _ in rows]
    assert wire == sorted(wire, reverse=True)
    assert wire[0] > 1.5 * wire[-1]
    # At full-machine scale, where the central trunk dominates, compression
    # buys real GTEPS — the paper's expectation for the integration.
    gteps = [g for _, g in model_points]
    assert gteps[1] > 1.1 * gteps[0]
    assert gteps[2] >= gteps[1]
