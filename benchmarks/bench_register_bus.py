"""Section 4.3 micro-benchmark: register-shuffle bandwidth.

Paper: "in a micro-benchmark, we achieve 10 GB/s register to register
bandwidth out of a theoretical 14.5 GB/s (half of peak bandwidth in
Figure 3 for both read and write)."

Two measurements: the steady-state shuffle model (end-to-end, DMA-bound)
and the cycle-stepped register-mesh simulator (raw mesh traffic under the
producer/router/consumer role schema).
"""

import pytest

from repro.core import ShufflePlan
from repro.core.config import RoleLayout
from repro.machine.cluster import (
    CpeCluster,
    MEASURED_SHUFFLE_BANDWIDTH,
    THEORETICAL_SHUFFLE_BANDWIDTH,
)
from repro.utils.tables import Table
from repro.utils.units import GBPS, fmt_rate


def measure():
    cluster = CpeCluster()
    plan = ShufflePlan(RoleLayout(), num_destinations=64)
    assert plan.verify_deadlock_free()
    end_to_end = cluster.shuffle_bandwidth()
    mesh_raw = plan.micro_benchmark_throughput(records_per_flow=64)
    return end_to_end, mesh_raw


def render(end_to_end, mesh_raw) -> str:
    t = Table(["measurement", "bandwidth"], title="Register-shuffle micro-benchmark")
    t.add_row(["theoretical (half of DMA peak)", fmt_rate(THEORETICAL_SHUFFLE_BANDWIDTH)])
    t.add_row(["steady-state shuffle (model)", fmt_rate(end_to_end)])
    t.add_row(["raw mesh traffic (cycle sim)", fmt_rate(mesh_raw)])
    return t.render()


def test_register_bus_bandwidth(benchmark, save_report):
    end_to_end, mesh_raw = benchmark(measure)
    save_report("register_bus", render(end_to_end, mesh_raw))
    # The paper's measured 10 of 14.5 GB/s.
    assert end_to_end == pytest.approx(MEASURED_SHUFFLE_BANDWIDTH, rel=0.01)
    assert end_to_end / THEORETICAL_SHUFFLE_BANDWIDTH == pytest.approx(10 / 14.45, rel=0.02)
    # The mesh itself is not the bottleneck: raw register throughput under
    # the role schema exceeds what DMA can feed it.
    assert mesh_raw > end_to_end
    assert mesh_raw > 14.5 * GBPS
