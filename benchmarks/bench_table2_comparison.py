"""Table 2: distributed-BFS results from the literature, with our
reproduced full-machine number in the "Present Work" row."""

from repro.perf import ScalingModel, TABLE2_PUBLISHED
from repro.utils.tables import Table


def build():
    model = ScalingModel()
    return model.table2_rows(), model.headline()


def render(rows) -> str:
    t = Table(
        ["Authors", "Year", "Scale", "GTEPS", "Num Processors",
         "Architecture", "Hetero"],
        title="Table 2: BFS on distributed systems (GTEPS: ours for Present Work)",
    )
    for row, measured in rows:
        shown = f"{measured:,.1f}" if measured is not None else f"{row.gteps:,.1f}"
        t.add_row(
            [row.authors, row.year, row.scale, shown, row.processors,
             row.architecture, "Hetero." if row.heterogeneous else "Homo."]
        )
    return t.render()


def test_table2_comparison(benchmark, save_report):
    rows, headline = benchmark(build)
    save_report("table2_comparison", render(rows))
    assert len(rows) == len(TABLE2_PUBLISHED) == 8
    # The paper's placement claims, evaluated with OUR reproduced number:
    others = [r for r, m in rows if m is None]
    ours = headline.gteps
    # best among heterogeneous machines...
    assert all(ours > r.gteps for r in others if r.heterogeneous)
    # ...and second overall (only the K Computer ahead).
    ahead = [r.authors for r in others if r.gteps > ours]
    assert ahead == ["K Computer"]
