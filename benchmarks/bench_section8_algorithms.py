"""Section 8 exhibit: the techniques carry over to other graph algorithms.

"The key operations of the distributed BFS can be viewed as shuffling
dynamically generated data, which is also the major operations of many
other graph algorithms, such as SSSP, WCC, PageRank, and K-core
decomposition. All the three key techniques we used are readily
applicable." — this bench runs all four (plus delta-stepping) on the same
simulated machine and shows relay routing cutting their connection sets
exactly as it does for BFS.
"""

import numpy as np

from repro.algorithms import (
    DistributedDeltaStepping,
    DistributedKCore,
    DistributedPageRank,
    DistributedSSSP,
    DistributedWCC,
)
from repro.core import BFSConfig
from repro.graph import CSRGraph, KroneckerGenerator
from repro.utils.tables import Table
from repro.utils.units import fmt_time

SCALE = 11
NODES = 16
CFG = BFSConfig(hub_count_topdown=32, hub_count_bottomup=32)
KW = dict(config=CFG, nodes_per_super_node=4)


def run_all():
    edges = KroneckerGenerator(scale=SCALE, seed=71).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    out = {}
    algo = DistributedSSSP(edges, NODES, **KW)
    out["SSSP (Bellman-Ford)"] = (algo.run(root), algo.engine)
    algo = DistributedDeltaStepping(edges, NODES, delta=2.0, **KW)
    out["SSSP (delta-stepping)"] = (algo.run(root), algo.engine)
    algo = DistributedWCC(edges, NODES, **KW)
    out["WCC"] = (algo.run(), algo.engine)
    algo = DistributedPageRank(edges, NODES, **KW)
    out["PageRank (20 it)"] = (algo.run(iterations=20), algo.engine)
    algo = DistributedKCore(edges, NODES, **KW)
    out["k-core (k=4)"] = (algo.run(4), algo.engine)
    return out


def render(out) -> str:
    t = Table(
        ["algorithm", "supersteps", "records", "sim time", "max conns"],
        title=f"Section 8: the substrate reused, scale {SCALE}, {NODES} nodes",
    )
    for label, (result, engine) in out.items():
        t.add_row(
            [label, result.supersteps, int(result.stats["records_sent"]),
             fmt_time(result.sim_seconds), engine.cluster.max_connections()]
        )
    return t.render()


def test_section8_algorithms(benchmark, save_report):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_report("section8_algorithms", render(out))
    groups_bound = (NODES // 4) + 4 - 1  # N + M - 1 with 4-wide groups
    for label, (result, engine) in out.items():
        assert result.sim_seconds > 0, label
        assert result.supersteps >= 1, label
        # Relay routing bounds every algorithm's connection set like BFS's.
        assert engine.cluster.max_connections() <= groups_bound, label
    # Delta-stepping does the same work in fewer or equal supersteps than
    # round-per-distance Bellman-Ford on weighted graphs.
    bf = out["SSSP (Bellman-Ford)"][0]
    ds = out["SSSP (delta-stepping)"][0]
    assert np.array_equal(
        np.nan_to_num(bf.dist, posinf=-1), np.nan_to_num(ds.dist, posinf=-1)
    )
