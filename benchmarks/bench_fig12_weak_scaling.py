"""Figure 12: weak scaling of the final system (Relay CPE).

Functional grounding: a weak-scaling sweep on the simulator with fixed
vertices per node. Analytic extension: the 80 -> 40,768-node series at
the paper's three per-node sizes (1.6M / 6.5M / 26.2M vertices).
"""

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.validate import validate_bfs_result
from repro.perf import ScalingModel
from repro.perf.scaling import (
    FIG12_NODE_COUNTS,
    FIG12_VERTICES_PER_NODE,
    PAPER_HEADLINE_GTEPS,
)
from repro.utils.tables import Table
from repro.utils.units import fmt_count

#: Functional weak scaling: 2^11 vertices per node, growing node counts.
FUNCTIONAL_VPN_SCALE = 11
FUNCTIONAL_NODES = (2, 4, 8, 16)


def run_functional():
    cfg = BFSConfig(hub_count_topdown=32, hub_count_bottomup=32)
    rows = []
    for nodes in FUNCTIONAL_NODES:
        scale = FUNCTIONAL_VPN_SCALE + int(np.log2(nodes))
        edges = KroneckerGenerator(scale=scale, seed=23).generate()
        graph = CSRGraph.from_edges(edges)
        root = int(np.flatnonzero(graph.degrees() > 0)[0])
        bfs = DistributedBFS(edges, nodes, config=cfg, nodes_per_super_node=4)
        result = bfs.run(root)
        validate_bfs_result(graph, edges, root, result.parent)
        depth = result.depths()
        traversed = edges.edges_within(depth >= 0)
        rows.append((nodes, scale, traversed / result.sim_seconds / 1e9))
    return rows


def run_model():
    model = ScalingModel()
    return {vpn: model.fig12_series(vpn) for vpn in FIG12_VERTICES_PER_NODE}


def render(functional, modelled) -> str:
    lines = []
    t = Table(
        ["nodes", "scale", "simulated GTEPS"],
        title=f"Figure 12 (functional): weak scaling at 2^{FUNCTIONAL_VPN_SCALE} "
        "vertices/node",
    )
    for nodes, scale, gteps in functional:
        t.add_row([nodes, scale, f"{gteps:.4f}"])
    lines.append(t.render())
    t = Table(
        ["nodes", *(fmt_count(v) + " vpn" for v in FIG12_VERTICES_PER_NODE)],
        title="Figure 12 (modelled): GTEPS, Relay CPE",
    )
    for i, n in enumerate(FIG12_NODE_COUNTS):
        t.add_row(
            [n, *(f"{modelled[v][i].gteps:,.0f}" for v in FIG12_VERTICES_PER_NODE)]
        )
    lines.append(t.render())
    return "\n\n".join(lines)


def test_fig12_weak_scaling(benchmark, save_report):
    functional = benchmark.pedantic(run_functional, rounds=1, iterations=1)
    modelled = run_model()
    save_report("fig12_weak_scaling", render(functional, modelled))

    # Functional: aggregate simulated GTEPS grows with node count.
    gteps = [g for _, _, g in functional]
    assert gteps[-1] > gteps[0]

    # Modelled: near-linear scaling per line, monotone throughout.
    for vpn in FIG12_VERTICES_PER_NODE:
        series = [p.gteps for p in modelled[vpn]]
        assert all(b > a for a, b in zip(series, series[1:]))
        node_ratio = FIG12_NODE_COUNTS[-1] / FIG12_NODE_COUNTS[0]
        assert series[-1] / series[0] > node_ratio / 4.5

    # The size gaps at the full machine ("nearly four times").
    full = {v: modelled[v][-1].gteps for v in FIG12_VERTICES_PER_NODE}
    assert 2.0 < full[6.5e6] / full[1.6e6] < 5.0
    assert 2.0 < full[26.2e6] / full[6.5e6] < 5.0


def test_headline_point():
    """The scale-40 full-machine projection behind the 23,755.7 GTEPS."""
    model = ScalingModel()
    h = model.headline()
    assert h.ok
    assert h.gteps == pytest.approx(PAPER_HEADLINE_GTEPS, rel=0.2)
