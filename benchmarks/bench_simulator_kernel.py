"""Wall-clock benchmark of the simulator itself.

Unlike the figure benchmarks (which report *simulated* time), this one
measures the library's real execution speed: how fast the functional
simulator traverses a graph, and the raw generator/CSR substrate.
pytest-benchmark's statistics apply meaningfully here.
"""

import numpy as np

from repro.core import BFSConfig, DistributedBFS
from repro.graph import CSRGraph, KroneckerGenerator

SCALE = 11
NODES = 8


def test_kernel_wall_clock(benchmark):
    edges = KroneckerGenerator(scale=SCALE, seed=47).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    cfg = BFSConfig(hub_count_topdown=32, hub_count_bottomup=32)
    bfs = DistributedBFS(edges, NODES, config=cfg, nodes_per_super_node=4)

    result = benchmark(lambda: bfs.run(root))
    assert result.levels >= 3
    assert (result.parent >= 0).sum() > 0


def test_generator_wall_clock(benchmark):
    gen = KroneckerGenerator(scale=14, seed=47)
    edges = benchmark(gen.generate)
    assert edges.num_edges == 16 << 14


def test_csr_construction_wall_clock(benchmark):
    edges = KroneckerGenerator(scale=14, seed=47).generate()
    graph = benchmark(lambda: CSRGraph.from_edges(edges))
    assert graph.num_vertices == 1 << 14
