"""Section 4.4 arithmetic: message/connection reduction from group batching.

Paper: "every node will send (N x M) messages... applying our technique,
the message number is only (N + M - 1)... the MPI library memory overhead
is reduced from 4 GB to approximately 40 MB."
"""

from repro.core.batching import GroupLayout
from repro.machine.specs import TAIHULIGHT
from repro.utils.tables import Table
from repro.utils.units import fmt_bytes

CASES = (
    (40_000, 200),   # the paper's worked example
    (40_768, 256),   # the actual machine (groups = super nodes)
    (1_024, 256),
)


def sweep():
    rows = []
    per_conn = TAIHULIGHT.node.mpi_connection_bytes
    for nodes, width in CASES:
        g = GroupLayout(nodes, width)
        direct = g.direct_connections()
        relay = max(g.relay_connections(i) for i in range(0, nodes, max(1, nodes // 64)))
        rows.append(
            (nodes, width, direct, relay, direct * per_conn, relay * per_conn)
        )
    return rows


def render(rows) -> str:
    t = Table(
        ["nodes", "group M", "direct conns", "relay conns",
         "direct MPI mem", "relay MPI mem"],
        title="Group batching: connections and MPI memory per node",
    )
    for nodes, width, direct, relay, dmem, rmem in rows:
        t.add_row([nodes, width, direct, relay, fmt_bytes(dmem), fmt_bytes(rmem)])
    return t.render()


def test_message_reduction(benchmark, save_report):
    rows = benchmark(sweep)
    save_report("message_reduction", render(rows))
    by_nodes = {r[0]: r for r in rows}
    nodes, width, direct, relay, dmem, rmem = by_nodes[40_000]
    # The paper's numbers: 40,000 -> ~400 connections; 4 GB -> ~40 MB.
    assert direct == 39_999
    assert relay <= 200 + 200 - 1
    assert dmem > 3.9e9
    assert rmem < 41e6
    # Reduction ratio ~ 100x.
    assert direct / relay > 90


def test_relay_connection_bound_is_universal():
    g = GroupLayout(40_768, 256)
    sample = list(range(0, 40_768, 997))
    assert all(
        g.relay_connections(n) <= g.num_groups + g.width - 1 for n in sample
    )
