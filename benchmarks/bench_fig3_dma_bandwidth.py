"""Figure 3: DMA bandwidth of a CPE cluster vs chunk size (and the MPE).

Paper: "A CPE cluster can get the desired bandwidth with a chunk size
equal to or larger than 256 Bytes... the speed CPE clusters accessing the
memory is 10 times faster than the MPE."
"""

import pytest

from repro.machine import DmaModel
from repro.utils.tables import Table
from repro.utils.units import GBPS, fmt_rate

CHUNKS = (8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def sweep():
    dma = DmaModel()
    return [
        (c, dma.cluster_bandwidth(c), dma.mpe_bandwidth(c)) for c in CHUNKS
    ]


def render(rows) -> str:
    t = Table(
        ["chunk (B)", "CPE cluster", "MPE"],
        title="Figure 3: DMA bandwidth vs chunk size",
    )
    for chunk, cluster, mpe in rows:
        t.add_row([chunk, fmt_rate(cluster), fmt_rate(mpe)])
    return t.render()


def test_fig3_dma_bandwidth(benchmark, save_report):
    rows = benchmark(sweep)
    save_report("fig3_dma_bandwidth", render(rows))
    by_chunk = {c: (cl, mp) for c, cl, mp in rows}
    # Saturation at >= 256 B to the published 28.9 GB/s.
    assert by_chunk[256][0] == pytest.approx(28.9 * GBPS)
    assert by_chunk[4096][0] == pytest.approx(28.9 * GBPS)
    # Monotone rise below saturation.
    series = [cl for _, cl, _ in rows]
    assert all(b >= a for a, b in zip(series, series[1:]))
    # The MPE peaks at its published 9.4 GB/s.
    assert by_chunk[256][1] == pytest.approx(9.4 * GBPS)
    # Cluster vs MPE gap at saturation.
    assert by_chunk[256][0] / by_chunk[256][1] == pytest.approx(28.9 / 9.4)
