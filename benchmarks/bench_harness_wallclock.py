"""Harness wall-clock benchmark: where the *real* seconds go.

Unlike the other benchmarks (which report simulated seconds from the
machine model), this one times the Python harness itself — the
generate/construct/kernel/validate phases of a Graph500 run — and writes
the numbers to ``BENCH_harness.json`` at the repo root. That file is the
perf trajectory: each entry records phase wall-clock at fixed
(scale, nodes, roots) points so later changes can be checked against it.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_harness_wallclock.py \
        --scale 13 --scale 15 --nodes 16 --roots 8

or let pytest exercise the tiny smoke configuration. ``--max-regression``
turns the run into a gate: if a (scale, nodes, roots, workers) point in
the existing JSON got slower by more than the given fraction, exit 1.

``--mode kernel-scaling`` sweeps the partitioned event engine instead:
one kernel-only timing per ``engine_partitions`` x ``drain_workers``
point (defaults: partitions 1, 2, 4; drain workers 1) at each scale,
with a ``speedup_vs_1`` column relative to the sequential engine and,
for partitioned points, occupancy/imbalance/fallback columns from the
engine's ``partition_report()``. Scaling rows carry
``mode: kernel-scaling`` so they key separately from phase rows in the
regression gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_harness.json"


def time_phases(
    scale: int,
    nodes: int,
    roots: int,
    workers: int = 1,
    seed: int = 1,
    engine_partitions: int = 1,
) -> dict:
    """One benchmark run, phase by phase; wall-clock seconds per phase."""
    import numpy as np

    from repro.baselines import make_variant
    from repro.graph.csr import CSRGraph
    from repro.graph.kronecker import KroneckerGenerator
    from repro.graph500.roots import sample_roots
    from repro.graph500.timing import traversed_edges
    from repro.graph500.validate import validate_bfs_result

    phases: dict[str, float] = {}
    t0 = time.perf_counter()
    edges = KroneckerGenerator(scale, 16, seed=seed).generate()
    phases["generate"] = time.perf_counter() - t0

    root_list = [int(r) for r in sample_roots(edges, roots, seed=seed)]

    config = None
    if engine_partitions != 1:
        from repro.core.config import BFSConfig

        config = BFSConfig(engine_partitions=engine_partitions)
    t0 = time.perf_counter()
    graph = CSRGraph.from_edges(edges)
    bfs = make_variant("relay-cpe", edges, nodes, graph=graph, config=config)
    phases["construct"] = time.perf_counter() - t0

    kernel = validate = 0.0
    total_edges = 0
    total_sim_seconds = 0.0
    events_executed = None
    messages_per_sec = None
    if workers > 1:
        from repro.graph500.parallel import run_roots_parallel

        t0 = time.perf_counter()
        outcomes = run_roots_parallel(
            bfs, graph, edges, np.asarray(root_list), "sequential", None, workers
        )
        kernel = time.perf_counter() - t0  # kernel+validate fused in workers
        for o in outcomes:
            assert o.validated, f"root {o.root} failed validation: {o.failure}"
            total_edges += o.traversed_edges
            total_sim_seconds += o.seconds
    else:
        # In-process runs expose the engine and stats: record how many
        # simulator events and messages the kernel phase chewed through
        # (the fork-based workers path can't surface these counters).
        events_before = bfs.engine.events_executed
        messages_before = bfs.cluster.stats.value("messages")
        for root in root_list:
            t0 = time.perf_counter()
            result = bfs.run(root)
            kernel += time.perf_counter() - t0
            t0 = time.perf_counter()
            validate_bfs_result(graph, edges, root, result.parent)
            validate += time.perf_counter() - t0
            total_edges += traversed_edges(edges, result.depths())
            total_sim_seconds += result.sim_seconds
        events_executed = bfs.engine.events_executed - events_before
        messages = bfs.cluster.stats.value("messages") - messages_before
        messages_per_sec = messages / kernel if kernel > 0 else 0.0
    phases["kernel"] = kernel
    phases["validate"] = validate
    phases["total"] = sum(phases.values())
    return {
        "scale": scale,
        "nodes": nodes,
        "roots": roots,
        "workers": workers,
        "engine_partitions": engine_partitions,
        "phases": {k: round(v, 4) for k, v in phases.items()},
        "events_executed": events_executed,
        "messages_per_sec": (
            round(messages_per_sec, 1) if messages_per_sec is not None else None
        ),
        "mean_teps": (
            total_edges / total_sim_seconds if total_sim_seconds else 0.0
        ),
    }


def time_kernel_scaling(
    scale: int,
    nodes: int,
    roots: int,
    partitions_list: list[int],
    seed: int = 1,
    drain_workers_list: list[int] | None = None,
    drain_backend: str = "thread",
) -> list[dict]:
    """Sweep ``engine_partitions`` x ``drain_workers``; kernel wall-clock.

    Validation is skipped — this mode times the PDES kernel — but parents
    are checked bit-identical across the sweep, so a scaling run doubles
    as a parity check. ``speedup_vs_1`` is relative to the sweep's
    ``engine_partitions=1``/``drain_workers=1`` entry (or the first entry
    if that point is absent). ``drain_workers > 1`` points are only
    measured at ``engine_partitions >= 2`` (parallel drain needs at least
    two compute lanes); partitioned points also record the engine's
    occupancy/imbalance/fallback accounting from ``partition_report()``.
    """
    import numpy as np

    from repro.baselines import make_variant
    from repro.core.config import BFSConfig
    from repro.graph.csr import CSRGraph
    from repro.graph.kronecker import KroneckerGenerator
    from repro.graph500.roots import sample_roots
    from repro.sim.partition import PartitionedEngine

    edges = KroneckerGenerator(scale, 16, seed=seed).generate()
    root_list = [int(r) for r in sample_roots(edges, roots, seed=seed)]
    graph = CSRGraph.from_edges(edges)
    drain_list = drain_workers_list or [1]

    entries: list[dict] = []
    baseline_kernel = None
    baseline_parents = None
    for partitions in partitions_list:
        for drain in drain_list:
            if drain != 1 and partitions < 2:
                continue
            config = BFSConfig(
                engine_partitions=partitions,
                drain_workers=drain,
                drain_backend=drain_backend,
            )
            bfs = make_variant(
                "relay-cpe", edges, nodes, graph=graph, config=config
            )
            events_before = bfs.engine.events_executed
            kernel = 0.0
            parents = []
            for root in root_list:
                t0 = time.perf_counter()
                result = bfs.run(root)
                kernel += time.perf_counter() - t0
                parents.append(result.parent.copy())
            if baseline_parents is None or (partitions == 1 and drain == 1):
                baseline_parents = parents
                baseline_kernel = kernel
            else:
                for a, b in zip(baseline_parents, parents):
                    if not np.array_equal(a, b):
                        raise AssertionError(
                            f"engine_partitions={partitions}/"
                            f"drain_workers={drain} diverged from the "
                            f"sweep baseline at scale {scale}"
                        )
            entry = {
                "mode": "kernel-scaling",
                "scale": scale,
                "nodes": nodes,
                "roots": roots,
                "workers": 1,
                "engine_partitions": partitions,
                "drain_workers": drain,
                "drain_backend": drain_backend,
                "phases": {
                    "kernel": round(kernel, 4),
                    "total": round(kernel, 4),
                },
                "events_executed": (
                    bfs.engine.events_executed - events_before
                ),
                "speedup_vs_1": (
                    round(baseline_kernel / kernel, 3) if kernel > 0 else None
                ),
            }
            if isinstance(bfs.engine, PartitionedEngine):
                report = bfs.engine.partition_report()
                occupancy = report["occupancy"]
                imbalance = report["imbalance"]
                entry["parallel_windows"] = report["parallel_windows"]
                entry["occupancy"] = (
                    round(occupancy, 3) if occupancy is not None else None
                )
                entry["imbalance"] = (
                    round(imbalance, 3) if imbalance is not None else None
                )
                entry["parallel_fallback"] = report["parallel_fallback"]
            entries.append(entry)
    return entries


def _point_key(entry: dict) -> tuple:
    return (
        entry.get("mode", "phases"),
        entry["scale"],
        entry["nodes"],
        entry["roots"],
        entry["workers"],
        entry.get("engine_partitions", 1),
        entry.get("drain_workers", 1),
    )


def check_regressions(
    previous: dict, results: list[dict], max_regression: float
) -> list[str]:
    """Compare ``results`` against a previous file's matching points."""
    old = {_point_key(e): e for e in previous.get("results", [])}
    complaints = []
    for entry in results:
        prior = old.get(_point_key(entry))
        if prior is None:
            continue
        before = prior["phases"]["total"]
        after = entry["phases"]["total"]
        if before > 0 and after > before * (1.0 + max_regression):
            complaints.append(
                f"scale {entry['scale']}/nodes {entry['nodes']}: total "
                f"{after:.3f}s vs {before:.3f}s "
                f"(+{100 * (after / before - 1):.0f}%)"
            )
    return complaints


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, action="append",
                        help="repeatable; default: 13 and 15")
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--roots", type=int, default=8)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--mode", choices=("phases", "kernel-scaling"),
                        default="phases",
                        help="phases: full phase breakdown; kernel-scaling: "
                             "sweep --engine-partitions, kernel time only")
    parser.add_argument("--engine-partitions", type=int, action="append",
                        help="repeatable; kernel-scaling sweep values "
                             "(default: 1 2 4). In phases mode the first "
                             "value configures the engine (default 1)")
    parser.add_argument("--drain-workers", type=int, action="append",
                        help="repeatable; kernel-scaling sweeps each value "
                             "against each --engine-partitions >= 2 point "
                             "(default: 1)")
    parser.add_argument("--drain-backend", choices=("thread", "process"),
                        default="thread",
                        help="parallel drain backend for the sweep")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    parser.add_argument("--max-regression", type=float, default=None,
                        help="fail if a matching point's total slowed by more "
                             "than this fraction vs the existing JSON")
    args = parser.parse_args(argv)
    scales = args.scale or [13, 15]

    out_path = pathlib.Path(args.output)
    previous = None
    if out_path.exists():
        try:
            previous = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            previous = None

    partitions_list = args.engine_partitions or [1, 2, 4]

    results = []
    for scale in scales:
        if args.mode == "kernel-scaling":
            sweep = time_kernel_scaling(
                scale, args.nodes, args.roots, partitions_list,
                seed=args.seed,
                drain_workers_list=args.drain_workers,
                drain_backend=args.drain_backend,
            )
            results.extend(sweep)
            for entry in sweep:
                extra = ""
                if entry.get("occupancy") is not None:
                    extra = (f" occupancy={entry['occupancy']}"
                             f" imbalance={entry['imbalance']}")
                if entry.get("parallel_fallback"):
                    extra += f" fallback={entry['parallel_fallback']!r}"
                print(f"scale {scale} nodes {args.nodes} roots {args.roots} "
                      f"partitions {entry['engine_partitions']} "
                      f"drain {entry['drain_workers']}: "
                      f"kernel={entry['phases']['kernel']:.3f}s "
                      f"speedup_vs_1={entry['speedup_vs_1']}{extra}")
            continue
        entry = time_phases(
            scale, args.nodes, args.roots, workers=args.workers,
            seed=args.seed, engine_partitions=partitions_list[0],
        )
        results.append(entry)
        phases = " ".join(f"{k}={v:.3f}s" for k, v in entry["phases"].items())
        extra = ""
        if entry["events_executed"] is not None:
            extra = (f" events={entry['events_executed']}"
                     f" msg/s={entry['messages_per_sec']:.0f}")
        print(f"scale {scale} nodes {args.nodes} roots {args.roots} "
              f"workers {args.workers}: {phases}{extra}")

    # A run only re-measures its own points; carry forward the latest row
    # for every other point so results stays the union of freshest rows
    # (a kernel-scaling run must not evict the phase rows, or vice versa).
    if previous is not None:
        measured = {_point_key(e) for e in results}
        results = [
            e for e in previous.get("results", [])
            if _point_key(e) not in measured
        ] + results

    payload = {
        "benchmark": "harness_wallclock",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": __import__("os").cpu_count(),
        },
        "results": results,
    }
    # Carry forward the recorded history (baseline + prior runs) so the
    # trajectory accumulates instead of resetting every invocation.
    if previous is not None and "baseline" in previous:
        payload["baseline"] = previous["baseline"]
    if previous is not None:
        history = previous.get("history", [])
        if previous.get("results"):
            history.append(
                {"timestamp": previous.get("timestamp"),
                 "results": previous["results"]}
            )
        if history:
            payload["history"] = history[-20:]

    complaints = []
    if args.max_regression is not None and previous is not None:
        complaints = check_regressions(previous, results, args.max_regression)
        for line in complaints:
            print(f"REGRESSION: {line}", file=sys.stderr)

    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 1 if complaints else 0


def test_harness_wallclock_smoke(save_report):
    """Pytest smoke: a tiny configuration runs and reports sane phases."""
    entry = time_phases(scale=8, nodes=4, roots=2)
    assert set(entry["phases"]) == {
        "generate", "construct", "kernel", "validate", "total",
    }
    assert entry["phases"]["total"] > 0
    assert entry["mean_teps"] > 0
    assert entry["events_executed"] > 0
    assert entry["messages_per_sec"] > 0
    save_report(
        "harness_wallclock_smoke",
        json.dumps(entry, indent=2),
    )


def test_kernel_scaling_smoke(save_report):
    """Pytest smoke: the scaling sweep runs, keys distinctly, agrees."""
    sweep = time_kernel_scaling(
        scale=8, nodes=4, roots=2, partitions_list=[1, 2]
    )
    assert [e["engine_partitions"] for e in sweep] == [1, 2]
    assert all(e["mode"] == "kernel-scaling" for e in sweep)
    assert all(e["phases"]["kernel"] > 0 for e in sweep)
    assert all(e["events_executed"] > 0 for e in sweep)
    assert sweep[0]["speedup_vs_1"] == 1.0
    # Scaling rows must not collide with phase rows in the gate.
    keys = {_point_key(e) for e in sweep}
    keys.add(_point_key(time_phases(scale=8, nodes=4, roots=2)))
    assert len(keys) == 3
    save_report(
        "harness_kernel_scaling_smoke",
        json.dumps(sweep, indent=2),
    )


def test_kernel_scaling_drain_sweep(save_report):
    """Pytest smoke: the drain-worker sweep stays bit-identical and keys
    distinctly from serial-drain rows; partitioned rows carry the
    occupancy accounting."""
    sweep = time_kernel_scaling(
        scale=8, nodes=4, roots=2, partitions_list=[1, 2],
        drain_workers_list=[1, 2],
    )
    # drain_workers=2 is skipped at partitions=1 (needs two lanes).
    assert [
        (e["engine_partitions"], e["drain_workers"]) for e in sweep
    ] == [(1, 1), (2, 1), (2, 2)]
    assert len({_point_key(e) for e in sweep}) == 3
    for entry in sweep:
        if entry["engine_partitions"] > 1:
            assert "parallel_fallback" in entry
            assert "occupancy" in entry and "imbalance" in entry
    save_report(
        "harness_kernel_scaling_drain_sweep",
        json.dumps(sweep, indent=2),
    )


if __name__ == "__main__":
    sys.exit(main())
