"""Harness wall-clock benchmark: where the *real* seconds go.

Unlike the other benchmarks (which report simulated seconds from the
machine model), this one times the Python harness itself — the
generate/construct/kernel/validate phases of a Graph500 run — and writes
the numbers to ``BENCH_harness.json`` at the repo root. That file is the
perf trajectory: each entry records phase wall-clock at fixed
(scale, nodes, roots) points so later changes can be checked against it.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_harness_wallclock.py \
        --scale 13 --scale 15 --nodes 16 --roots 8

or let pytest exercise the tiny smoke configuration. ``--max-regression``
turns the run into a gate: if a (scale, nodes, roots, workers) point in
the existing JSON got slower by more than the given fraction, exit 1.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_harness.json"


def time_phases(
    scale: int, nodes: int, roots: int, workers: int = 1, seed: int = 1
) -> dict:
    """One benchmark run, phase by phase; wall-clock seconds per phase."""
    import numpy as np

    from repro.baselines import make_variant
    from repro.graph.csr import CSRGraph
    from repro.graph.kronecker import KroneckerGenerator
    from repro.graph500.roots import sample_roots
    from repro.graph500.timing import traversed_edges
    from repro.graph500.validate import validate_bfs_result

    phases: dict[str, float] = {}
    t0 = time.perf_counter()
    edges = KroneckerGenerator(scale, 16, seed=seed).generate()
    phases["generate"] = time.perf_counter() - t0

    root_list = [int(r) for r in sample_roots(edges, roots, seed=seed)]

    t0 = time.perf_counter()
    graph = CSRGraph.from_edges(edges)
    bfs = make_variant("relay-cpe", edges, nodes, graph=graph)
    phases["construct"] = time.perf_counter() - t0

    kernel = validate = 0.0
    total_edges = 0
    total_sim_seconds = 0.0
    events_executed = None
    messages_per_sec = None
    if workers > 1:
        from repro.graph500.parallel import run_roots_parallel

        t0 = time.perf_counter()
        outcomes = run_roots_parallel(
            bfs, graph, edges, np.asarray(root_list), "sequential", None, workers
        )
        kernel = time.perf_counter() - t0  # kernel+validate fused in workers
        for o in outcomes:
            assert o.validated, f"root {o.root} failed validation: {o.failure}"
            total_edges += o.traversed_edges
            total_sim_seconds += o.seconds
    else:
        # In-process runs expose the engine and stats: record how many
        # simulator events and messages the kernel phase chewed through
        # (the fork-based workers path can't surface these counters).
        events_before = bfs.engine.events_executed
        messages_before = bfs.cluster.stats.value("messages")
        for root in root_list:
            t0 = time.perf_counter()
            result = bfs.run(root)
            kernel += time.perf_counter() - t0
            t0 = time.perf_counter()
            validate_bfs_result(graph, edges, root, result.parent)
            validate += time.perf_counter() - t0
            total_edges += traversed_edges(edges, result.depths())
            total_sim_seconds += result.sim_seconds
        events_executed = bfs.engine.events_executed - events_before
        messages = bfs.cluster.stats.value("messages") - messages_before
        messages_per_sec = messages / kernel if kernel > 0 else 0.0
    phases["kernel"] = kernel
    phases["validate"] = validate
    phases["total"] = sum(phases.values())
    return {
        "scale": scale,
        "nodes": nodes,
        "roots": roots,
        "workers": workers,
        "phases": {k: round(v, 4) for k, v in phases.items()},
        "events_executed": events_executed,
        "messages_per_sec": (
            round(messages_per_sec, 1) if messages_per_sec is not None else None
        ),
        "mean_teps": (
            total_edges / total_sim_seconds if total_sim_seconds else 0.0
        ),
    }


def _point_key(entry: dict) -> tuple:
    return (entry["scale"], entry["nodes"], entry["roots"], entry["workers"])


def check_regressions(
    previous: dict, results: list[dict], max_regression: float
) -> list[str]:
    """Compare ``results`` against a previous file's matching points."""
    old = {_point_key(e): e for e in previous.get("results", [])}
    complaints = []
    for entry in results:
        prior = old.get(_point_key(entry))
        if prior is None:
            continue
        before = prior["phases"]["total"]
        after = entry["phases"]["total"]
        if before > 0 and after > before * (1.0 + max_regression):
            complaints.append(
                f"scale {entry['scale']}/nodes {entry['nodes']}: total "
                f"{after:.3f}s vs {before:.3f}s "
                f"(+{100 * (after / before - 1):.0f}%)"
            )
    return complaints


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, action="append",
                        help="repeatable; default: 13 and 15")
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--roots", type=int, default=8)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    parser.add_argument("--max-regression", type=float, default=None,
                        help="fail if a matching point's total slowed by more "
                             "than this fraction vs the existing JSON")
    args = parser.parse_args(argv)
    scales = args.scale or [13, 15]

    out_path = pathlib.Path(args.output)
    previous = None
    if out_path.exists():
        try:
            previous = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            previous = None

    results = []
    for scale in scales:
        entry = time_phases(
            scale, args.nodes, args.roots, workers=args.workers, seed=args.seed
        )
        results.append(entry)
        phases = " ".join(f"{k}={v:.3f}s" for k, v in entry["phases"].items())
        extra = ""
        if entry["events_executed"] is not None:
            extra = (f" events={entry['events_executed']}"
                     f" msg/s={entry['messages_per_sec']:.0f}")
        print(f"scale {scale} nodes {args.nodes} roots {args.roots} "
              f"workers {args.workers}: {phases}{extra}")

    payload = {
        "benchmark": "harness_wallclock",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": __import__("os").cpu_count(),
        },
        "results": results,
    }
    # Carry forward the recorded history (baseline + prior runs) so the
    # trajectory accumulates instead of resetting every invocation.
    if previous is not None and "baseline" in previous:
        payload["baseline"] = previous["baseline"]
    if previous is not None:
        history = previous.get("history", [])
        if previous.get("results"):
            history.append(
                {"timestamp": previous.get("timestamp"),
                 "results": previous["results"]}
            )
        if history:
            payload["history"] = history[-20:]

    complaints = []
    if args.max_regression is not None and previous is not None:
        complaints = check_regressions(previous, results, args.max_regression)
        for line in complaints:
            print(f"REGRESSION: {line}", file=sys.stderr)

    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 1 if complaints else 0


def test_harness_wallclock_smoke(save_report):
    """Pytest smoke: a tiny configuration runs and reports sane phases."""
    entry = time_phases(scale=8, nodes=4, roots=2)
    assert set(entry["phases"]) == {
        "generate", "construct", "kernel", "validate", "total",
    }
    assert entry["phases"]["total"] > 0
    assert entry["mean_teps"] > 0
    assert entry["events_executed"] > 0
    assert entry["messages_per_sec"] > 0
    save_report(
        "harness_wallclock_smoke",
        json.dumps(entry, indent=2),
    )


if __name__ == "__main__":
    sys.exit(main())
