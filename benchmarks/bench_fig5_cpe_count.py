"""Figure 5: memory bandwidth vs number of CPEs at 256 B chunks.

Paper: "we find that 16 CPEs can generate an acceptable memory access
bandwidth."
"""

import pytest

from repro.machine import DmaModel
from repro.utils.tables import Table
from repro.utils.units import GBPS, fmt_rate

COUNTS = (1, 2, 4, 8, 12, 16, 24, 32, 48, 64)


def sweep():
    dma = DmaModel()
    return [(n, dma.cluster_bandwidth(256, n)) for n in COUNTS]


def render(rows) -> str:
    t = Table(
        ["CPEs", "bandwidth"],
        title="Figure 5: cluster bandwidth vs participating CPEs (256 B chunks)",
    )
    for n, bw in rows:
        t.add_row([n, fmt_rate(bw)])
    return t.render()


def test_fig5_cpe_count(benchmark, save_report):
    rows = benchmark(sweep)
    save_report("fig5_cpe_count", render(rows))
    by_n = dict(rows)
    # Rises with CPE count, saturates by 16.
    series = [bw for _, bw in rows]
    assert all(b >= a for a, b in zip(series, series[1:]))
    assert by_n[16] == pytest.approx(by_n[64], rel=0.05)
    assert by_n[1] < by_n[64] / 8
    assert by_n[64] == pytest.approx(28.9 * GBPS)
    assert DmaModel().saturating_cpe_count(256) <= 16
