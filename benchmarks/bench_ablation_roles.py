"""Ablation: producer/router/consumer column split on the mesh.

Section 4.3: "the number of producers, routers and consumers depends on
specific architecture details. Specifically, DMA read bandwidth, DMA write
bandwidth, CPE processing rate, and register bus bandwidth together
determine the final count." The sweep prices alternative splits and
verifies the paper's 4/2/2 choice sits at the optimum of the model.
"""

import pytest

from repro.core import ShufflePlan
from repro.core.config import RoleLayout
from repro.errors import SpmOverflow
from repro.machine.cluster import CpeCluster
from repro.utils.tables import Table
from repro.utils.units import fmt_rate

SPLITS = ((1, 2, 5), (2, 2, 4), (3, 2, 3), (4, 2, 2), (5, 2, 1))


def sweep():
    cluster = CpeCluster()
    rows = []
    for p, r, c in SPLITS:
        layout = RoleLayout(producer_cols=p, router_cols=r, consumer_cols=c)
        bw = cluster.shuffle_bandwidth(layout.n_producers, layout.n_consumers)
        # Destination capacity: consumers' SPM staging limit.
        try:
            lo, hi = 1, 4096
            while lo < hi:
                mid = (lo + hi + 1) // 2
                try:
                    ShufflePlan(layout, num_destinations=mid)
                    lo = mid
                except SpmOverflow:
                    hi = mid - 1
            max_dests = lo
        except SpmOverflow:
            max_dests = 0
        rows.append(((p, r, c), bw, max_dests))
    return rows


def render(rows) -> str:
    t = Table(
        ["producers/routers/consumers (cols)", "shuffle bandwidth", "max destinations"],
        title="Role-split ablation (8x8 mesh)",
    )
    for split, bw, dests in rows:
        t.add_row(["/".join(map(str, split)), fmt_rate(bw), dests])
    return t.render()


def test_ablation_roles(benchmark, save_report):
    rows = benchmark(sweep)
    save_report("ablation_roles", render(rows))
    by_split = {s: (bw, d) for s, bw, d in rows}
    best_bw = max(bw for _, bw, _ in rows)
    # The paper's 4/2/2 split achieves the best modelled bandwidth. In the
    # model, any full column on each side (8 CPEs x 2.4 GB/s = 19.2 GB/s)
    # already saturates the shared DMA engine's read+write half, so the
    # bandwidth row is flat — which is exactly why the *capacity* column is
    # what the split really trades: consumer columns buy SPM staging
    # buffers, i.e. how many destinations one shuffle can fan out to.
    assert by_split[(4, 2, 2)][0] == pytest.approx(best_bw)
    caps = [d for _, _, d in rows]  # consumer columns shrink along SPLITS
    assert caps == sorted(caps, reverse=True)
    # The paper's split handles ~1024 destinations ("we can handle up to
    # 1024 destinations in practice").
    assert 512 <= by_split[(4, 2, 2)][1] <= 1024
    assert by_split[(5, 2, 1)][1] < by_split[(4, 2, 2)][1]
    assert by_split[(1, 2, 5)][1] > 2 * by_split[(4, 2, 2)][1]


def test_all_splits_are_deadlock_free():
    for p, r, c in SPLITS:
        plan = ShufflePlan(
            RoleLayout(producer_cols=p, router_cols=r, consumer_cols=c),
            num_destinations=64,
        )
        assert plan.verify_deadlock_free()
