"""Resilience overhead: what reliability and durability cost.

The paper's runs assume a perfect interconnect; the resilience layer buys
fault tolerance with protocol overhead. This benchmark quantifies it:
simulated time and message volume for (1) the bare kernel, (2) the
reliable transport (per-message acks), (3) buddy checkpointing every
level, (4) RS(4, 2) erasure-coded checkpointing every level, and the
full stacks riding out an actual mid-traversal node crash — head-to-head
on storage bytes, checkpoint traffic, and recovery time, where RS should
hold <= 1.6x storage against buddy's 2.0x while surviving twice the
simultaneous losses.
"""

import numpy as np

from repro.core import BFSConfig, DistributedBFS
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.validate import validate_bfs_result
from repro.resilience import ResilienceConfig
from repro.sim.faults import NodeFaultInjector, NodeFaultPlan
from repro.utils.tables import Table
from repro.utils.units import fmt_bytes, fmt_count, fmt_time

SCALE = 13
NODES = 8
CFG = BFSConfig(hub_count_topdown=64, hub_count_bottomup=64)

_BUDDY = dict(reliable_transport=True, checkpoint_interval=1)
_RS = dict(
    reliable_transport=True,
    checkpoint_interval=1,
    checkpoint_mode="rs",
    rs_data_shards=4,
    rs_parity_shards=2,
)

MODES = {
    "baseline": dict(resilience=None, crash=()),
    "reliable": dict(
        resilience=ResilienceConfig(reliable_transport=True), crash=()
    ),
    "buddy-ckpt": dict(resilience=ResilienceConfig(**_BUDDY), crash=()),
    "rs-ckpt": dict(resilience=ResilienceConfig(**_RS), crash=()),
    "buddy+crash": dict(
        resilience=ResilienceConfig(**_BUDDY), crash=(NODES // 2,)
    ),
    "rs+crash": dict(resilience=ResilienceConfig(**_RS), crash=(NODES // 2,)),
    "rs+2crash": dict(
        resilience=ResilienceConfig(**_RS), crash=(NODES // 2, NODES - 1)
    ),
}


def run_modes():
    edges = KroneckerGenerator(scale=SCALE, seed=83).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    out = {}
    for name, mode in MODES.items():
        bfs = DistributedBFS(
            edges, NODES, config=CFG, nodes_per_super_node=4,
            resilience=mode["resilience"],
        )
        if mode["crash"]:
            NodeFaultInjector(
                bfs.cluster,
                NodeFaultPlan(
                    crash_at={rank: 2e-4 for rank in mode["crash"]}
                ),
            )
        result = bfs.run(root)
        validate_bfs_result(graph, edges, root, result.parent)
        out[name] = result
    return out


def _storage_ratio(result) -> float:
    raw = result.stats.get("checkpoint_raw_bytes", 0.0)
    return result.stats.get("checkpoint_storage_bytes", 0.0) / raw if raw else 0.0


def render(out) -> str:
    base = out["baseline"]
    t = Table(
        ["mode", "sim time", "overhead", "messages", "ckpt time",
         "storage", "ckpt traffic", "recov", "recov time"],
        title=(
            f"Resilience overhead: scale-{SCALE} Kronecker, {NODES} nodes "
            f"(buddy vs RS(4,2))"
        ),
    )
    for name, result in out.items():
        overhead = result.sim_seconds / base.sim_seconds - 1.0
        ratio = _storage_ratio(result)
        t.add_row([
            name,
            fmt_time(result.sim_seconds),
            f"{overhead:+.1%}",
            fmt_count(int(result.stats["messages"])),
            fmt_time(result.stats.get("checkpoint_seconds", 0.0)),
            f"{ratio:.3f}x" if ratio else "-",
            fmt_bytes(int(result.stats.get("checkpoint_traffic_bytes", 0))),
            int(result.stats.get("recoveries", 0)),
            fmt_time(result.stats.get("recovery_seconds", 0.0)),
        ])
    return t.render()


def test_resilience_overhead(benchmark, save_report):
    out = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    save_report("resilience_overhead", render(out))
    base, reliable = out["baseline"], out["reliable"]
    buddy, rs = out["buddy-ckpt"], out["rs-ckpt"]
    buddy_crash, rs_crash = out["buddy+crash"], out["rs+crash"]
    rs_double = out["rs+2crash"]
    # Every mode computes the identical tree.
    for result in out.values():
        assert np.array_equal(result.depths(), base.depths())
    # Acks double the message count but cost no simulated makespan on a
    # loss-free wire (they never gate a compute stage).
    assert reliable.stats["messages"] > 1.9 * base.stats["messages"]
    assert reliable.sim_seconds <= base.sim_seconds * 1.01
    # Checkpoints charge real (bounded) time...
    for ckpt in (buddy, rs):
        assert ckpt.stats["checkpoints"] >= 1
        assert 0 < ckpt.stats["checkpoint_seconds"] < base.sim_seconds
    # ...and buy recovery: the crash runs replay levels instead of dying.
    assert buddy_crash.stats["recoveries"] == 1
    assert rs_crash.stats["recoveries"] == 1
    assert rs_double.stats["recoveries"] >= 1  # two simultaneous losses
    for crash, ckpt in ((buddy_crash, buddy), (rs_crash, rs)):
        assert crash.sim_seconds > ckpt.sim_seconds
        assert crash.stats["recovery_seconds"] > 0
    # The durability headline: RS holds the checkpoint at <= 1.6x the
    # serialized bytes where buddy pays a full 2.0x copy.
    assert _storage_ratio(buddy) == 2.0
    assert 1.5 <= _storage_ratio(rs) <= 1.6
    # RS recovery decodes + heals shards (it did real codec work).
    assert rs_crash.stats["shards_rebuilt"] > 0
    assert rs_double.stats["shards_rebuilt"] > rs_crash.stats["shards_rebuilt"]
