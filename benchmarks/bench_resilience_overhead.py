"""Resilience overhead: what reliability costs on a fault-free machine.

The paper's runs assume a perfect interconnect; the resilience layer buys
fault tolerance with protocol overhead. This benchmark quantifies it:
simulated time and message volume for (1) the bare kernel, (2) the
reliable transport (per-message acks), (3) checkpointing every level, and
(4) the full stack riding out an actual mid-traversal node crash.
"""

import numpy as np

from repro.core import BFSConfig, DistributedBFS
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.validate import validate_bfs_result
from repro.resilience import ResilienceConfig
from repro.sim.faults import NodeFaultInjector, NodeFaultPlan
from repro.utils.tables import Table
from repro.utils.units import fmt_count, fmt_time

SCALE = 13
NODES = 8
CFG = BFSConfig(hub_count_topdown=64, hub_count_bottomup=64)

MODES = {
    "baseline": dict(resilience=None, crash=False),
    "reliable": dict(
        resilience=ResilienceConfig(reliable_transport=True), crash=False
    ),
    "reliable+ckpt": dict(
        resilience=ResilienceConfig(
            reliable_transport=True, checkpoint_interval=1
        ),
        crash=False,
    ),
    "reliable+ckpt+crash": dict(
        resilience=ResilienceConfig(
            reliable_transport=True, checkpoint_interval=1
        ),
        crash=True,
    ),
}


def run_modes():
    edges = KroneckerGenerator(scale=SCALE, seed=83).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    out = {}
    for name, mode in MODES.items():
        bfs = DistributedBFS(
            edges, NODES, config=CFG, nodes_per_super_node=4,
            resilience=mode["resilience"],
        )
        if mode["crash"]:
            NodeFaultInjector(
                bfs.cluster, NodeFaultPlan(crash_at={NODES // 2: 2e-4})
            )
        result = bfs.run(root)
        validate_bfs_result(graph, edges, root, result.parent)
        out[name] = result
    return out


def render(out) -> str:
    base = out["baseline"]
    t = Table(
        ["mode", "sim time", "overhead", "messages", "ckpt time", "recoveries"],
        title=f"Resilience overhead: scale-{SCALE} Kronecker, {NODES} nodes",
    )
    for name, result in out.items():
        overhead = result.sim_seconds / base.sim_seconds - 1.0
        t.add_row([
            name,
            fmt_time(result.sim_seconds),
            f"{overhead:+.1%}",
            fmt_count(int(result.stats["messages"])),
            fmt_time(result.stats.get("checkpoint_seconds", 0.0)),
            int(result.stats.get("recoveries", 0)),
        ])
    return t.render()


def test_resilience_overhead(benchmark, save_report):
    out = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    save_report("resilience_overhead", render(out))
    base, reliable = out["baseline"], out["reliable"]
    ckpt, crash = out["reliable+ckpt"], out["reliable+ckpt+crash"]
    # Every mode computes the identical tree.
    for result in out.values():
        assert np.array_equal(result.depths(), base.depths())
    # Acks double the message count but cost no simulated makespan on a
    # loss-free wire (they never gate a compute stage).
    assert reliable.stats["messages"] > 1.9 * base.stats["messages"]
    assert reliable.sim_seconds <= base.sim_seconds * 1.01
    # Checkpoints charge real (bounded) time...
    assert ckpt.stats["checkpoints"] >= 1
    assert 0 < ckpt.stats["checkpoint_seconds"] < base.sim_seconds
    # ...and buy recovery: the crash run replays levels instead of dying.
    assert crash.stats["recoveries"] == 1
    assert crash.sim_seconds > ckpt.sim_seconds
