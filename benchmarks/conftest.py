"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures as text,
asserts its shape properties, and archives the rendered series under
``benchmarks/results/`` so the reproduction artefacts survive the run
(pytest captures stdout; the files don't lie).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_report():
    """Write a rendered table under benchmarks/results/<name>.txt."""

    def _save(name: str, content: str) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(content + "\n")
        print(content)
        return path

    return _save
