"""Service load benchmark: throughput, fairness, and the CI smoke gate.

Three modes against the long-lived query service (``repro.service``),
each writing a ``mode``-keyed entry into ``BENCH_harness.json`` next to
the harness wall-clock rows:

- ``load`` — four closed-loop tenants hammer one pinned scale-13 graph
  over a warmed hot-root set; the gate is sustained throughput
  (``--throughput-floor``, default 500 queries/sec). This is the
  hot-root cache doing its job: a hit costs microseconds and never
  touches the scheduler.
- ``skew`` — a 10:1 load skew with the cache disabled: three flooding
  tenants submit ten times the queries of one light ("starved") tenant,
  everything lands in the queues up front, and the fairness ratio is
  snapshotted the moment the light tenant's last future resolves:
  ``light_served / (total_served / tenants)``. Deficit-round-robin keeps
  this near 1.0; a FIFO queue would score ~0.1 because the light tenant
  drains last. Gate: ``--fairness-floor`` (default 0.8 — the starved
  tenant gets at least 80% of its fair share).
- ``smoke`` — the CI job: a real asyncio socket server, two tenants
  mixing BFS and PageRank at scale 11, asserting zero sheds and a p99
  latency gate, and writing the per-tenant service report as an
  artifact (``--report-out``).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_service_load.py

records the ``load`` and ``skew`` entries; ``--mode smoke`` is what
``.github/workflows/ci.yml``'s service-smoke job runs. ``--max-regression``
gates ``phases.total`` against the existing JSON exactly like the
wall-clock benchmark (entries share its point keying).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_harness.json"


def _service(scale, nodes, workers, cache_capacity, seed):
    """A service with one resident graph ``g`` plus its hot roots."""
    from repro.service import GraphService, GraphSpec, ServiceConfig

    svc = GraphService(
        ServiceConfig(
            workers=workers,
            cache_capacity=cache_capacity,
            host_shared=False,  # benchmark in-process; no shm segments
        )
    )
    entry = svc.load_graph("g", GraphSpec(scale=scale, nodes=nodes, seed=seed))
    return svc, entry


def time_service_load(
    scale: int = 13,
    nodes: int = 4,
    tenants: int = 4,
    hot_roots: int = 64,
    queries_per_tenant: int = 500,
    workers: int = 2,
    seed: int = 1,
) -> dict:
    """Closed-loop multi-tenant throughput over a warmed hot-root set."""
    from repro.service import QueryRequest
    from repro.service.catalog import sample_hot_roots

    svc, entry = _service(scale, nodes, workers, 4096, seed)
    try:
        roots = [int(r) for r in sample_hot_roots(entry, hot_roots, seed=seed)]
        t0 = time.perf_counter()
        for root in roots:
            result = svc.query(QueryRequest("g", "bfs", {"root": root},
                                            tenant="warm"))
            assert result.ok, result.error
        warm = time.perf_counter() - t0

        statuses: list[dict[str, int]] = [
            {"ok": 0, "shed": 0, "timeout": 0, "error": 0}
            for _ in range(tenants)
        ]

        def drive(i: int) -> None:
            for j in range(queries_per_tenant):
                root = roots[(i + j) % len(roots)]
                result = svc.query(
                    QueryRequest("g", "bfs", {"root": root}, tenant=f"t{i}")
                )
                statuses[i][result.status] += 1

        threads = [
            threading.Thread(target=drive, args=(i,), name=f"tenant-{i}")
            for i in range(tenants)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        drive_seconds = time.perf_counter() - t0

        total = tenants * queries_per_tenant
        ok = sum(s["ok"] for s in statuses)
        shed = sum(s["shed"] for s in statuses)
        cache = svc.cache.stats()
        p99 = max(
            svc.tenant_stats(f"t{i}")["p99_seconds"] for i in range(tenants)
        )
        return {
            "mode": "service-load",
            "scale": scale,
            "nodes": nodes,
            "roots": hot_roots,
            "workers": workers,
            "tenants": tenants,
            "queries": total,
            "phases": {
                "warm": round(warm, 4),
                "drive": round(drive_seconds, 4),
                "total": round(drive_seconds, 4),
            },
            "queries_per_sec": round(total / drive_seconds, 1),
            "ok": ok,
            "shed": shed,
            "cache_hit_rate": round(cache["hit_rate"], 4),
            "p99_seconds": round(p99, 6),
        }
    finally:
        svc.close()


def time_service_skew(
    scale: int = 11,
    nodes: int = 4,
    heavy_tenants: int = 3,
    skew: int = 10,
    light_queries: int = 6,
    workers: int = 1,
    seed: int = 1,
) -> dict:
    """10:1 load skew, cache off: DRR fairness for the starved tenant.

    All queries are submitted up front — the heavy floods first, so the
    light tenant arrives to already-deep queues. ``fairness_ratio`` is
    the light tenant's share of completed work, relative to an exact
    1/tenants split, measured when its last future resolves (the service
    keeps draining the flood afterwards; that part isn't the metric).
    """
    from repro.service import QueryRequest
    from repro.service.catalog import sample_hot_roots

    svc, entry = _service(scale, nodes, workers, 0, seed)
    try:
        roots = [int(r) for r in sample_hot_roots(entry, 8, seed=seed)]
        num_tenants = heavy_tenants + 1
        t0 = time.perf_counter()
        heavy_futures = []
        for i in range(heavy_tenants):
            for j in range(skew * light_queries):
                heavy_futures.append(
                    svc.submit(
                        QueryRequest("g", "bfs",
                                     {"root": roots[j % len(roots)]},
                                     tenant=f"heavy{i}")
                    )
                )
        light_futures = [
            svc.submit(
                QueryRequest("g", "bfs", {"root": roots[j % len(roots)]},
                             tenant="light")
            )
            for j in range(light_queries)
        ]
        for f in light_futures:
            result = f.result()
            assert result.ok, result.error
        # Snapshot now — while the flood is still draining — not after.
        light_served = svc.scheduler.stats("light")["served"]
        heavy_served = [
            svc.scheduler.stats(f"heavy{i}")["served"]
            for i in range(heavy_tenants)
        ]
        total_served = light_served + sum(heavy_served)
        fair_share = total_served / num_tenants
        fairness = light_served / fair_share if fair_share else 0.0
        light_done = time.perf_counter() - t0
        for f in heavy_futures:
            f.result()
        elapsed = time.perf_counter() - t0
        return {
            "mode": "service-skew",
            "scale": scale,
            "nodes": nodes,
            "roots": len(roots),
            "workers": workers,
            "tenants": num_tenants,
            "skew": skew,
            "light_queries": light_queries,
            "heavy_queries": heavy_tenants * skew * light_queries,
            "phases": {
                "light_done": round(light_done, 4),
                "drain": round(elapsed - light_done, 4),
                "total": round(elapsed, 4),
            },
            "light_served_at_snapshot": light_served,
            "heavy_served_at_snapshot": heavy_served,
            "fairness_ratio": round(fairness, 3),
        }
    finally:
        svc.close()


def time_service_smoke(
    scale: int = 11,
    nodes: int = 4,
    tenants: int = 2,
    hot_roots: int = 8,
    queries_per_tenant: int = 24,
    workers: int = 2,
    seed: int = 1,
    report_out: str | None = None,
) -> dict:
    """The CI smoke: mixed BFS/PageRank over a real loopback socket."""
    import asyncio

    from repro.service import ServiceClient, ServiceServer
    from repro.service.catalog import sample_hot_roots

    svc, entry = _service(scale, nodes, workers, 4096, seed)
    roots = [int(r) for r in sample_hot_roots(entry, hot_roots, seed=seed)]
    loop = asyncio.new_event_loop()
    server = ServiceServer(svc)
    ready = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=run, name="svc-server", daemon=True)
    thread.start()
    assert ready.wait(30), "server failed to start"
    try:
        def drive(i: int, counts: dict) -> None:
            with ServiceClient(port=server.port) as client:
                for j in range(queries_per_tenant):
                    # Even tenants walk BFS hot roots; odd tenants mix in
                    # PageRank so both kernel families cross the wire.
                    if i % 2 == 0 or j % 2 == 0:
                        result = client.query(
                            "g", "bfs", {"root": roots[j % len(roots)]},
                            tenant=f"t{i}", arrays=False,
                        )
                    else:
                        result = client.query(
                            "g", "pagerank", {"iterations": 10},
                            tenant=f"t{i}", arrays=False,
                        )
                    counts[result.status] = counts.get(result.status, 0) + 1

        counts: list[dict] = [{} for _ in range(tenants)]
        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=drive, args=(i, counts[i]))
            for i in range(tenants)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0

        sheds = sum(c.get("shed", 0) for c in counts)
        errors = sum(c.get("error", 0) for c in counts)
        ok = sum(c.get("ok", 0) for c in counts)
        p99 = max(
            svc.tenant_stats(f"t{i}")["p99_seconds"] for i in range(tenants)
        )
        report = svc.report()
        if report_out:
            path = pathlib.Path(report_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(report + "\n")
        return {
            "mode": "service-smoke",
            "scale": scale,
            "nodes": nodes,
            "roots": hot_roots,
            "workers": workers,
            "tenants": tenants,
            "queries": tenants * queries_per_tenant,
            "phases": {"total": round(elapsed, 4)},
            "queries_per_sec": round(tenants * queries_per_tenant / elapsed, 1),
            "ok": ok,
            "shed": sheds,
            "error": errors,
            "p99_seconds": round(p99, 6),
        }
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(30)
        loop.close()
        svc.close()


def main(argv: list[str] | None = None) -> int:
    from bench_harness_wallclock import _point_key, check_regressions

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("load", "skew", "smoke", "all"),
                        default="all",
                        help="all = load + skew (the recorded trajectory "
                             "points); smoke is the CI socket gate")
    parser.add_argument("--scale", type=int, default=None,
                        help="override the per-mode default scale "
                             "(load: 13, skew/smoke: 11)")
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--hot-roots", type=int, default=64)
    parser.add_argument("--queries-per-tenant", type=int, default=500)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--skew", type=int, default=10)
    parser.add_argument("--light-queries", type=int, default=6)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--throughput-floor", type=float, default=500.0,
                        help="load mode fails under this many queries/sec")
    parser.add_argument("--fairness-floor", type=float, default=0.8,
                        help="skew mode fails if the starved tenant gets "
                             "less than this fraction of its fair share")
    parser.add_argument("--p99-gate", type=float, default=None,
                        help="smoke mode fails if any tenant's p99 latency "
                             "exceeds this many seconds")
    parser.add_argument("--report-out", default=None,
                        help="smoke mode: write the per-tenant service "
                             "report here (the CI artifact)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    parser.add_argument("--max-regression", type=float, default=None,
                        help="fail if a matching point's total slowed by "
                             "more than this fraction vs the existing JSON")
    args = parser.parse_args(argv)

    out_path = pathlib.Path(args.output)
    previous = None
    if out_path.exists():
        try:
            previous = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            previous = None

    results = []
    complaints: list[str] = []
    modes = ("load", "skew") if args.mode == "all" else (args.mode,)

    if "load" in modes:
        entry = time_service_load(
            scale=args.scale or 13, nodes=args.nodes, tenants=args.tenants,
            hot_roots=args.hot_roots,
            queries_per_tenant=args.queries_per_tenant,
            workers=args.workers, seed=args.seed,
        )
        results.append(entry)
        print(f"load: scale {entry['scale']} tenants {entry['tenants']} "
              f"queries {entry['queries']}: "
              f"{entry['queries_per_sec']:.0f} q/s "
              f"(hit rate {entry['cache_hit_rate']:.2%}, "
              f"p99 {entry['p99_seconds'] * 1e3:.3f} ms, "
              f"shed {entry['shed']})")
        if entry["queries_per_sec"] < args.throughput_floor:
            complaints.append(
                f"load throughput {entry['queries_per_sec']:.0f} q/s is "
                f"under the {args.throughput_floor:.0f} q/s floor"
            )
        if entry["ok"] != entry["queries"]:
            complaints.append(
                f"load run had {entry['queries'] - entry['ok']} non-ok "
                f"queries of {entry['queries']}"
            )

    if "skew" in modes:
        entry = time_service_skew(
            scale=args.scale or 11, nodes=args.nodes,
            heavy_tenants=args.tenants - 1, skew=args.skew,
            light_queries=args.light_queries, seed=args.seed,
        )
        results.append(entry)
        print(f"skew: scale {entry['scale']} "
              f"{entry['tenants'] - 1}x{args.skew}:1 flood: starved tenant "
              f"served {entry['light_served_at_snapshot']} vs fair share — "
              f"ratio {entry['fairness_ratio']:.3f} "
              f"(light done in {entry['phases']['light_done']:.3f}s, "
              f"flood drained in {entry['phases']['total']:.3f}s)")
        if entry["fairness_ratio"] < args.fairness_floor:
            complaints.append(
                f"skew fairness ratio {entry['fairness_ratio']:.3f} is "
                f"under the {args.fairness_floor:.2f} floor"
            )

    if "smoke" in modes:
        entry = time_service_smoke(
            scale=args.scale or 11, nodes=args.nodes,
            hot_roots=args.hot_roots,
            queries_per_tenant=args.queries_per_tenant,
            workers=args.workers, seed=args.seed,
            report_out=args.report_out,
        )
        results.append(entry)
        print(f"smoke: scale {entry['scale']} {entry['tenants']} tenants "
              f"over the socket: {entry['queries']} queries in "
              f"{entry['phases']['total']:.3f}s "
              f"({entry['queries_per_sec']:.0f} q/s, "
              f"p99 {entry['p99_seconds'] * 1e3:.3f} ms, "
              f"shed {entry['shed']}, error {entry['error']})")
        if entry["shed"]:
            complaints.append(f"smoke run shed {entry['shed']} queries")
        if entry["error"]:
            complaints.append(f"smoke run had {entry['error']} errors")
        if args.p99_gate is not None and entry["p99_seconds"] > args.p99_gate:
            complaints.append(
                f"smoke p99 {entry['p99_seconds']:.3f}s exceeds the "
                f"{args.p99_gate:.3f}s gate"
            )

    # Same carry-forward union as the wall-clock benchmark: this run only
    # re-measures its own modes; every other recorded point survives.
    merged = results
    if previous is not None:
        measured = {_point_key(e) for e in results}
        merged = [
            e for e in previous.get("results", [])
            if _point_key(e) not in measured
        ] + results

    payload = {
        "benchmark": previous.get("benchmark", "harness_wallclock")
        if previous else "harness_wallclock",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": __import__("os").cpu_count(),
        },
        "results": merged,
    }
    if previous is not None and "baseline" in previous:
        payload["baseline"] = previous["baseline"]
    if previous is not None:
        history = previous.get("history", [])
        if previous.get("results"):
            history.append(
                {"timestamp": previous.get("timestamp"),
                 "results": previous["results"]}
            )
        if history:
            payload["history"] = history[-20:]

    if args.max_regression is not None and previous is not None:
        complaints.extend(
            check_regressions(previous, results, args.max_regression)
        )

    for line in complaints:
        print(f"GATE: {line}", file=sys.stderr)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 1 if complaints else 0


def test_service_load_smoke(save_report):
    """Pytest smoke: a tiny closed-loop run serves everything from the
    hot-root cache and reports a positive throughput."""
    entry = time_service_load(
        scale=9, nodes=2, tenants=2, hot_roots=8, queries_per_tenant=40,
        workers=2,
    )
    assert entry["ok"] == entry["queries"] == 80
    assert entry["shed"] == 0
    assert entry["queries_per_sec"] > 0
    # Everything after the warm is hot; the warm itself charges two misses
    # per root (the cache is consulted at submit and again at dequeue).
    assert entry["cache_hit_rate"] > 0.8
    save_report("service_load_smoke", json.dumps(entry, indent=2))


def test_service_skew_smoke(save_report):
    """Pytest smoke: under a 5:1 flood the starved tenant still gets at
    least 80% of its fair share (DRR, not FIFO)."""
    entry = time_service_skew(
        scale=9, nodes=2, heavy_tenants=2, skew=5, light_queries=4,
    )
    assert entry["light_served_at_snapshot"] == 4
    assert entry["fairness_ratio"] >= 0.8
    save_report("service_skew_smoke", json.dumps(entry, indent=2))


def test_service_socket_smoke(save_report, tmp_path):
    """Pytest smoke: the socket mode round-trips both kernel families
    with zero sheds and writes the report artifact."""
    report_path = tmp_path / "service-report.txt"
    entry = time_service_smoke(
        scale=8, nodes=2, hot_roots=4, queries_per_tenant=4, workers=1,
        report_out=str(report_path),
    )
    assert entry["ok"] == entry["queries"] == 8
    assert entry["shed"] == 0 and entry["error"] == 0
    assert "per-tenant service report" in report_path.read_text()
    save_report("service_socket_smoke", json.dumps(entry, indent=2))


if __name__ == "__main__":
    sys.exit(main())
