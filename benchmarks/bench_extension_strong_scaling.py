"""Extension: strong scaling (the paper reports only weak scaling).

Fixed total problem (scale 36), growing node counts. The same fixed
per-level costs that flatten Figure 12's small-size lines produce the
classic strong-scaling rolloff here.
"""

from repro.perf import ScalingModel
from repro.utils.tables import Table

model = ScalingModel()


def run_sweep():
    return model.strong_scaling(scale=36)


def render(points) -> str:
    t = Table(
        ["nodes", "vertices/node", "GTEPS", "speedup", "efficiency"],
        title="Strong scaling (extension): scale 36 fixed, Relay CPE",
    )
    base = points[0]
    for p in points:
        speedup = p.gteps / base.gteps
        ideal = p.nodes / base.nodes
        t.add_row(
            [p.nodes, f"{p.vertices_per_node:,.0f}", f"{p.gteps:,.0f}",
             f"{speedup:.1f}x", f"{100 * speedup / ideal:.0f}%"]
        )
    return t.render()


def test_extension_strong_scaling(benchmark, save_report):
    points = benchmark(run_sweep)
    save_report("extension_strong_scaling", render(points))
    gteps = [p.gteps for p in points]
    # Real speedup at first, a peak before the end, poor final efficiency.
    assert gteps[1] > 2 * gteps[0]
    assert max(gteps) > gteps[-1]
    final_eff = (gteps[-1] / gteps[0]) / (points[-1].nodes / points[0].nodes)
    assert final_eff < 0.2
