"""Section 4.4 relay-overhead test.

Paper: "We compare the speed of sending only relatively big messages only
to the relay node and having the messages sent to the destination node,
through the relay node... no bandwidth difference between the two settings
exists, as both achieve an average 1.2 GB/s per node. This may be because
the central network is capped at one fourth of the maximum bisection
bandwidth... and the relay operation being hidden by the higher super node
network."

We replay the test on the simulated fabric: every node of one super node
streams large messages to a partner in another super node (offset column,
so the relay is a genuine third node), once directly and once through the
group relay, driven by the event engine so link contention is exact.
"""

import numpy as np
import pytest

from repro.core.batching import GroupLayout
from repro.machine.specs import TAIHULIGHT
from repro.network import SimCluster
from repro.sim import Engine
from repro.utils.tables import Table
from repro.utils.units import GBPS, MiB, fmt_rate

NODES = 512
NPS = 256
MESSAGE = 16 * MiB
ROUNDS = 4


def _stream(relay: bool) -> float:
    """Average per-node goodput with every first-super-node node streaming."""
    engine = Engine()
    cluster = SimCluster(engine, NODES, TAIHULIGHT, nodes_per_super_node=NPS)
    groups = GroupLayout(NODES, NPS)
    done = np.zeros(NODES)
    sent = np.zeros(NODES, dtype=int)

    def partner(node: int) -> int:
        return NPS + (node + 13) % NPS  # different column -> real relay hop

    def on_message(msg):
        if msg.tag == "stage1":  # relay forwards within the group
            cluster.send(msg.dst, msg.payload, "stage2", msg.nbytes,
                         payload=None)
        elif msg.tag in ("stage2", "direct"):
            src = msg.src if msg.tag == "direct" else (msg.dst - 13) % NPS
            done[src] = engine.now
            if sent[src] < ROUNDS:
                _send_round(src)

    def _send_round(node: int) -> None:
        sent[node] += 1
        dst = partner(node)
        if relay:
            r = groups.relay_for(node, dst)
            cluster.send(node, r, "stage1", MESSAGE, payload=dst)
        else:
            cluster.send(node, dst, "direct", MESSAGE)

    for n in range(NODES):
        cluster.register(n, on_message)
    for n in range(NPS):
        _send_round(n)
    engine.run_until_quiescent()
    per_node = [ROUNDS * MESSAGE / done[n] for n in range(NPS)]
    return float(np.mean(per_node))


def measure():
    return _stream(relay=False), _stream(relay=True)


def render(direct_bw, relay_bw) -> str:
    t = Table(["routing", "avg per-node goodput"],
              title="Relay-overhead test (16 MiB messages across super nodes)")
    t.add_row(["direct", fmt_rate(direct_bw)])
    t.add_row(["via relay node", fmt_rate(relay_bw)])
    return t.render()


def test_relay_overhead(benchmark, save_report):
    direct_bw, relay_bw = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_report("relay_overhead", render(direct_bw, relay_bw))
    # The paper's observation: the relay hop costs (almost) nothing because
    # the crossing leg is the bottleneck and stage two rides the
    # full-bandwidth lower network.
    assert relay_bw == pytest.approx(direct_bw, rel=0.25)
    # With the whole super node streaming, the 1:4 trunk caps each node at
    # nic/4 = 0.3 GB/s for the crossing leg.
    assert 0.15 * GBPS < relay_bw <= 1.2 * GBPS


def test_relay_overhead_single_pair_full_speed():
    """One pair alone (no trunk contention) moves at NIC speed."""
    from repro.network import FatTreeTopology, NetworkModel

    net = NetworkModel(FatTreeTopology(NODES, nodes_per_super_node=NPS), TAIHULIGHT)
    t = net.transfer(0, 300, MESSAGE, 0.0)
    bw = MESSAGE / t
    # Store-and-forward over two NIC serialisations halves the apparent
    # rate for a single unpipelined message.
    assert bw == pytest.approx(1.2 * GBPS / 2, rel=0.05)
