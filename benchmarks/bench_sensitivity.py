"""Robustness exhibit: shape claims under calibrated-constant perturbation.

Perturbs each of the model's honest free parameters by 0.5x and 2x and
re-evaluates every Figure 11/12 shape claim. The reproduction's
conclusions should not hinge on any one fitted number.
"""

from repro.perf.sensitivity import CALIBRATED_FIELDS, robust_claims, sweep
from repro.utils.tables import Table


def run_sweep():
    return sweep(factors=(0.5, 2.0))


def render(results) -> str:
    claims = [k for k in next(iter(results.values())) if k != "headline_gteps"]
    t = Table(
        ["parameter", "factor", "headline GTEPS", *claims],
        title="Sensitivity of the reproduction's conclusions",
    )
    for (name, factor), row in results.items():
        t.add_row(
            [name, f"x{factor:g}", f"{row['headline_gteps']:,.0f}",
             *("ok" if row[c] else "FAILS" for c in claims)]
        )
    return t.render()


def test_sensitivity(benchmark, save_report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_report("sensitivity", render(results))
    robust = robust_claims(results)
    # Every shape claim survives every perturbation.
    assert len(robust) == 6
    # Perturbations cover all calibrated fields both ways.
    assert len(results) == 2 * len(CALIBRATED_FIELDS)
