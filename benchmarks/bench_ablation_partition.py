"""Ablation: 1-D (the paper's choice) vs 2-D partitioning.

Section 7: "The distributed BFS algorithm can be divided into 1D and 2D
partitioning in terms of data layout [26]; Buluc et al. discuss the pros
and cons [6]." This bench runs both decompositions on the same graph and
machine and reports the trade the literature describes: 2-D bounds the
connection set by the grid dimensions but ships frontier bitmaps up the
processor columns every level, while the paper's 1-D + relay gets the same
connection bound from group batching and moves records only.
"""

import numpy as np

from repro.baselines.twod import TwoDBFS
from repro.core import BFSConfig, DistributedBFS
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.validate import validate_bfs_result
from repro.utils.tables import Table
from repro.utils.units import fmt_bytes, fmt_time

SCALE = 12
NODES = 16  # 4x4 grid for the 2-D runs


def run_comparison():
    edges = KroneckerGenerator(scale=SCALE, seed=59).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    cfg = BFSConfig(hub_count_topdown=32, hub_count_bottomup=32)
    plain_cfg = BFSConfig(
        direction_optimizing=False, use_hub_prefetch=False, use_relay=False
    )

    out = {}
    one_d = DistributedBFS(edges, NODES, config=cfg, nodes_per_super_node=4)
    out["1D + relay (paper)"] = (one_d.run(root), one_d.cluster.max_connections())
    one_plain = DistributedBFS(edges, NODES, config=plain_cfg, nodes_per_super_node=4)
    out["1D plain top-down"] = (one_plain.run(root), one_plain.cluster.max_connections())
    two_d = TwoDBFS(edges, 4, 4, config=plain_cfg, nodes_per_super_node=4)
    out["2D 4x4 grid"] = (two_d.run(root), two_d.cluster.max_connections())

    for result, _ in out.values():
        validate_bfs_result(graph, edges, root, result.parent)
    return out


def render(out) -> str:
    t = Table(
        ["layout", "sim time", "messages", "bytes", "max conns"],
        title=f"1-D vs 2-D partitioning: scale {SCALE}, {NODES} nodes",
    )
    for label, (r, conns) in out.items():
        t.add_row(
            [label, fmt_time(r.sim_seconds), int(r.stats["messages"]),
             fmt_bytes(r.stats["bytes"]), conns]
        )
    return t.render()


def test_ablation_partition(benchmark, save_report):
    out = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    save_report("ablation_partition", render(out))
    paper, paper_conns = out["1D + relay (paper)"]
    plain, plain_conns = out["1D plain top-down"]
    twod, twod_conns = out["2D 4x4 grid"]
    # 2-D and relayed 1-D both bound their connection sets by the grid...
    assert twod_conns <= (4 - 1) + (4 - 1)
    assert paper_conns <= (4 - 1) + (4 - 1)
    # ...while plain direct 1-D talks to everyone.
    assert plain_conns == NODES - 1
    # Direction optimisation + hubs move by far the fewest bytes.
    assert paper.stats["bytes"] < 0.5 * plain.stats["bytes"]
    # 2-D ships fewer, larger transfers than record-level plain 1-D.
    assert twod.stats["messages"] < plain.stats["messages"]
    # (Simulated *times* at this toy scale favour whichever scheme has the
    # least per-level control traffic; the scale-dependent ordering is the
    # Figure 11/12 benches' job.)
    assert all(r.sim_seconds > 0 for r, _ in out.values())
