"""Ablation: the small-message quick path (Section 5).

"If the input of a module is small enough, the work is done in the MPE
directly instead of sending it to a CPE cluster. We set the threshold to
1 KB." The sweep compares never (0), the paper's 1 KB, and always-MPE
(inf) on a workload with many small module inputs.
"""

import numpy as np

from repro.core import BFSConfig, DistributedBFS
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.validate import validate_bfs_result
from repro.utils.tables import Table
from repro.utils.units import fmt_time

SCALE = 13
NODES = 16
THRESHOLDS = (0, 1024, 1 << 30)
LABELS = {0: "never (always cluster)", 1024: "1 KB (paper)", 1 << 30: "always MPE"}


def run_sweep():
    edges = KroneckerGenerator(scale=SCALE, seed=41).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    rows = []
    for threshold in THRESHOLDS:
        cfg = BFSConfig(
            quick_path_threshold=threshold,
            hub_count_topdown=32,
            hub_count_bottomup=32,
        )
        bfs = DistributedBFS(edges, NODES, config=cfg, nodes_per_super_node=4)
        result = bfs.run(root)
        validate_bfs_result(graph, edges, root, result.parent)
        rows.append((threshold, result.sim_seconds))
    return rows


def render(rows) -> str:
    t = Table(
        ["threshold", "sim time"],
        title=f"Quick-path ablation: scale {SCALE}, {NODES} nodes",
    )
    for threshold, seconds in rows:
        t.add_row([LABELS[threshold], fmt_time(seconds)])
    return t.render()


def test_ablation_quickpath(benchmark, save_report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_report("ablation_quickpath", render(rows))
    times = dict(rows)
    # The paper's 1 KB threshold is never worse than either extreme.
    assert times[1024] <= times[0] * 1.001
    assert times[1024] <= times[1 << 30] * 1.001
    # Forcing everything onto the MPE hurts on the big levels.
    assert times[1 << 30] > times[1024]
