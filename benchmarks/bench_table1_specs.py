"""Table 1: Sunway TaihuLight specifications, regenerated from the model."""

from repro.machine import TAIHULIGHT
from repro.machine.specs import spec_table_rows
from repro.utils.tables import Table


def render_table1() -> str:
    t = Table(["Item", "Specifications"], title="Table 1: Sunway TaihuLight")
    for item, spec in spec_table_rows():
        t.add_row([item, spec])
    return t.render()


def test_table1_specs(benchmark, save_report):
    rendered = benchmark(render_table1)
    save_report("table1_specs", rendered)
    assert "64KB SPM" in rendered
    assert "40 Cabinets" in rendered
    # The composition arithmetic behind the table.
    assert TAIHULIGHT.taihulight.total_nodes == 40_960
    assert TAIHULIGHT.taihulight.total_cores == 10_649_600
