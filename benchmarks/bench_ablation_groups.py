"""Ablation: the N x M group shape of the relay matrix.

The paper maps groups onto 256-node super nodes. This sweep varies the
group width M for a fixed node count and reports connection counts and
functional simulated time — showing the square-ish factorisations minimise
connections while the super-node mapping keeps stage two on the
full-bandwidth lower network.
"""

import numpy as np

from repro.core import BFSConfig, DistributedBFS
from repro.core.batching import GroupLayout
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.validate import validate_bfs_result
from repro.utils.tables import Table
from repro.utils.units import fmt_time

SCALE = 12
NODES = 16
WIDTHS = (2, 4, 8, 16)


def run_sweep():
    edges = KroneckerGenerator(scale=SCALE, seed=43).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    rows = []
    for width in WIDTHS:
        cfg = BFSConfig(
            group_width=width, hub_count_topdown=32, hub_count_bottomup=32
        )
        bfs = DistributedBFS(edges, NODES, config=cfg, nodes_per_super_node=4)
        result = bfs.run(root)
        validate_bfs_result(graph, edges, root, result.parent)
        layout = GroupLayout(NODES, width)
        conns = max(layout.relay_connections(i) for i in range(NODES))
        rows.append((width, layout.num_groups, conns, result.sim_seconds))
    return rows


def render(rows) -> str:
    t = Table(
        ["group width M", "groups N", "max connections", "sim time"],
        title=f"Group-shape ablation: {NODES} nodes, scale {SCALE}",
    )
    for width, groups, conns, seconds in rows:
        t.add_row([width, groups, conns, fmt_time(seconds)])
    return t.render()


def test_ablation_groups(benchmark, save_report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_report("ablation_groups", render(rows))
    by_width = {w: (g, c, s) for w, g, c, s in rows}
    # The square factorisation minimises connections (N + M - 2 at 4x4).
    conns = {w: c for w, (g, c, s) in by_width.items()}
    assert conns[4] == min(conns.values())
    assert conns[4] <= 4 + 4 - 1
    # Degenerate shapes approach direct messaging's connection count.
    assert conns[16] == NODES - 1
    # Every width still produces a valid traversal (checked in run_sweep).
    assert all(np.isfinite(s) and s > 0 for _, _, _, s in rows)
