"""Ablation: direction optimisation (hybrid vs pure top-down).

The paper adopts direction optimisation because it "can skip massive
unnecessary edge look-ups" on power-law graphs. This ablation measures the
saving functionally (records shuffled, simulated time) and in the model.
"""

import numpy as np

from repro.core import BFSConfig, DistributedBFS
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.validate import validate_bfs_result
from repro.perf import CostModel
from repro.utils.tables import Table
from repro.utils.units import fmt_time

SCALE = 13
NODES = 8


def run_functional():
    edges = KroneckerGenerator(scale=SCALE, seed=31).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    out = {}
    for label, cfg in (
        ("hybrid", BFSConfig(use_hub_prefetch=False)),
        ("pure top-down", BFSConfig(direction_optimizing=False, use_hub_prefetch=False)),
    ):
        bfs = DistributedBFS(edges, NODES, config=cfg, nodes_per_super_node=4)
        result = bfs.run(root)
        validate_bfs_result(graph, edges, root, result.parent)
        out[label] = result
    return out


def render(results, model_points) -> str:
    t = Table(
        ["policy", "records", "sim time", "BU levels"],
        title=f"Direction ablation (functional): scale {SCALE}, {NODES} nodes",
    )
    for label, r in results.items():
        t.add_row(
            [label, int(r.stats["records_sent"]), fmt_time(r.sim_seconds),
             int(r.stats["bu_levels"])]
        )
    t2 = Table(
        ["policy", "modelled GTEPS @ 4096 nodes, 16M vpn"],
        title="Direction ablation (modelled)",
    )
    for label, gteps in model_points.items():
        t2.add_row([label, f"{gteps:,.0f}"])
    return t.render() + "\n\n" + t2.render()


def test_ablation_direction(benchmark, save_report):
    results = benchmark.pedantic(run_functional, rounds=1, iterations=1)
    cost = CostModel()
    model_points = {
        "hybrid": cost.evaluate(
            4096, 16e6, BFSConfig(use_hub_prefetch=False)
        ).gteps,
        "pure top-down": cost.evaluate(
            4096, 16e6,
            BFSConfig(direction_optimizing=False, use_hub_prefetch=False),
        ).gteps,
    }
    save_report("ablation_direction", render(results, model_points))

    hybrid, plain = results["hybrid"], results["pure top-down"]
    # The hybrid switched at least once and shuffled far fewer records.
    assert hybrid.stats["bu_levels"] >= 1
    assert hybrid.stats["records_sent"] < 0.5 * plain.stats["records_sent"]
    assert hybrid.sim_seconds < plain.sim_seconds
    # The model agrees at scale.
    assert model_points["hybrid"] > 2 * model_points["pure top-down"]
