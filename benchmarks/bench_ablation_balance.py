"""Ablation: edge-balanced vs block 1-D partitioning (Section 5).

"we also balance the graph partitioning ... to scale the entire benchmark"
— on a power-law graph, equal-width vertex blocks give some nodes far more
edges than others. The balanced partition cuts per-node work skew.
"""

import numpy as np

from repro.core import BFSConfig, DistributedBFS
from repro.core.analysis import load_imbalance
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.validate import validate_bfs_result
from repro.utils.tables import Table
from repro.utils.units import fmt_time

SCALE = 13
NODES = 8


def run_comparison():
    # Unpermuted Kronecker concentrates hubs at low ids — the worst case
    # for block partitioning and exactly why production codes permute
    # and/or balance.
    edges = KroneckerGenerator(
        scale=SCALE, seed=83, permute_vertices=False
    ).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    out = {}
    for mode in ("block", "balanced"):
        # Strip the optimisations that mask raw edge skew (hubs absorb the
        # heavy vertices; the quick path hides work on MPEs) so the
        # partitioner's effect is measured directly on cluster work.
        cfg = BFSConfig(
            partition_mode=mode,
            use_hub_prefetch=False,
            direction_optimizing=False,
            quick_path_threshold=0,
        )
        bfs = DistributedBFS(edges, NODES, config=cfg, nodes_per_super_node=4)
        result = bfs.run(root)
        validate_bfs_result(graph, edges, root, result.parent)
        out[mode] = (result, load_imbalance(bfs, kinds=("C",)))
    return out


def render(out) -> str:
    t = Table(
        ["partition", "sim time", "cluster-work imbalance (max/mean)"],
        title=f"Partition-balance ablation: unpermuted scale-{SCALE} Kronecker, "
        f"{NODES} nodes",
    )
    for mode, (result, imbalance) in out.items():
        t.add_row([mode, fmt_time(result.sim_seconds), f"{imbalance.factor:.2f}x"])
    return t.render()


def test_ablation_balance(benchmark, save_report):
    out = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    save_report("ablation_balance", render(out))
    block = out["block"][1].factor
    balanced = out["balanced"][1].factor
    # Balancing by edges flattens per-node compute skew dramatically
    # (2.9x -> 1.03x here); total time at this toy scale is network-bound,
    # so the win shows in compute headroom, not makespan.
    assert block > 2.0
    assert balanced < 1.2
    assert balanced < block / 2
