"""Figure 11: performance comparison of the four technique combinations.

Two layers, as in DESIGN.md:

- **functional grounding** — the four variants executed end-to-end on the
  simulator at small scale (validated traversals, simulated times);
- **analytic extension** — the calibrated model sweeps 64 -> 40,768 nodes
  at the figure's 16M vertices/node, reproducing the crossovers, the
  ~10x CPE/MPE gap, and both crash points.
"""

import numpy as np

from repro.baselines import make_variant
from repro.core import BFSConfig
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.validate import validate_bfs_result
from repro.perf import ScalingModel
from repro.perf.scaling import FIG11_NODE_COUNTS, FIG11_VARIANTS
from repro.utils.tables import Table
from repro.utils.units import fmt_time

FUNCTIONAL_SCALE = 13
FUNCTIONAL_NODES = 16


def run_functional():
    edges = KroneckerGenerator(scale=FUNCTIONAL_SCALE, seed=17).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    cfg = BFSConfig(hub_count_topdown=32, hub_count_bottomup=32)
    out = {}
    for name in FIG11_VARIANTS:
        bfs = make_variant(
            name, edges, FUNCTIONAL_NODES, config=cfg, nodes_per_super_node=4
        )
        result = bfs.run(root)
        validate_bfs_result(graph, edges, root, result.parent)
        out[name] = result
    return out


def run_model():
    return ScalingModel().fig11_all()


def render(functional, modelled) -> str:
    lines = []
    t = Table(
        ["variant", "sim time", "messages", "records"],
        title=f"Figure 11 (functional): scale {FUNCTIONAL_SCALE}, "
        f"{FUNCTIONAL_NODES} nodes, all validated",
    )
    for name, result in functional.items():
        t.add_row(
            [name, fmt_time(result.sim_seconds),
             int(result.stats["messages"]), int(result.stats["records_sent"])]
        )
    lines.append(t.render())
    t = Table(
        ["nodes", *FIG11_VARIANTS],
        title="Figure 11 (modelled): GTEPS at 16M vertices/node",
    )
    for i, n in enumerate(FIG11_NODE_COUNTS):
        row = [n]
        for v in FIG11_VARIANTS:
            p = modelled[v][i]
            row.append(f"CRASH:{p.crashed}" if p.crashed else f"{p.gteps:.0f}")
        t.add_row(row)
    lines.append(t.render())
    return "\n\n".join(lines)


def test_fig11_techniques(benchmark, save_report):
    functional = benchmark.pedantic(run_functional, rounds=1, iterations=1)
    modelled = run_model()
    save_report("fig11_techniques", render(functional, modelled))

    # Functional shape: relay reduces message count vs direct.
    assert (
        functional["relay-cpe"].stats["messages"]
        < functional["direct-cpe"].stats["messages"]
    )
    # Modelled shapes (the figure's claims):
    by = {v: {p.nodes: p for p in pts} for v, pts in modelled.items()}
    # 1. ~10x CPE over MPE at matched routing.
    for n in FIG11_NODE_COUNTS:
        assert 5 < by["relay-cpe"][n].gteps / by["relay-mpe"][n].gteps < 20
    # 2. Direct CPE best up to 256 nodes, crashes beyond.
    assert by["direct-cpe"][256].gteps >= by["relay-cpe"][256].gteps
    assert by["direct-cpe"][1024].crashed == "spm-overflow"
    # 3. Direct MPE dies at 16,384 from MPI connection memory.
    assert by["direct-mpe"][4096].ok
    assert by["direct-mpe"][16384].crashed == "connection-memory"
    # 4. Relay CPE is the only variant that reaches the whole machine and
    #    is fastest there.
    survivors = [v for v in FIG11_VARIANTS if by[v][40768].ok]
    assert "relay-cpe" in survivors
    assert by["relay-cpe"][40768].gteps == max(
        by[v][40768].gteps for v in survivors
    )


def test_fig11_functional_and_model_agree_on_ordering():
    """At small scale the functional simulator and model agree that CPE
    variants are at least as fast as their MPE counterparts."""
    functional = run_functional()
    assert (
        functional["relay-cpe"].sim_seconds
        <= functional["relay-mpe"].sim_seconds * 1.001
    )
    assert (
        functional["direct-cpe"].sim_seconds
        <= functional["direct-mpe"].sim_seconds * 1.001
    )
