#!/usr/bin/env python3
"""Quickstart: run the Graph500 benchmark on a simulated Sunway slice.

Generates a Kronecker graph, runs the paper's BFS (relay routing +
contention-free CPE shuffling + direction optimisation + hub prefetch) on
eight simulated SW26010 nodes, validates every traversal against the
Graph500 rules, and prints the benchmark report.

Run:  python examples/quickstart.py [scale] [nodes]
"""

import sys

from repro import Graph500Runner


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    print(f"Graph500 on a simulated TaihuLight slice: scale {scale}, {nodes} nodes")
    runner = Graph500Runner(
        scale=scale,
        nodes=nodes,
        seed=42,
        variant="relay-cpe",
        # Small super nodes so the group relay actually crosses levels of
        # the fat tree even in a small simulation.
        nodes_per_super_node=max(2, nodes // 4),
    )
    report = runner.run(num_roots=8)

    print()
    print(report.summary())
    print()
    print(report.per_root_table())
    print()
    print(
        "Every run above executed the real distributed algorithm over the "
        "simulated machine;\ntimes are simulated seconds from the SW26010 "
        "and fat-tree cost models."
    )


if __name__ == "__main__":
    main()
