#!/usr/bin/env python3
"""Project the Graph500 submission: the paper's headline run.

Uses the calibrated analytic model to price the scale-40 run on all
40,768 nodes, prints the time breakdown, the Figure 12 weak-scaling
series, and Table 2 with our reproduced number inserted.

Run:  python examples/full_machine_projection.py
"""

from repro.perf import ScalingModel
from repro.perf.scaling import FIG12_VERTICES_PER_NODE, PAPER_HEADLINE_GTEPS
from repro.utils.tables import Table
from repro.utils.units import fmt_count


def main() -> None:
    model = ScalingModel()

    h = model.headline()
    print("== Headline: scale-40 Kronecker on 40,768 nodes (10.6M cores) ==")
    print(f"modelled:  {h.gteps:,.1f} GTEPS over {h.total_seconds:.3f} s per root")
    print(f"published: {PAPER_HEADLINE_GTEPS:,.1f} GTEPS "
          f"(we land at {100 * model.headline_vs_paper():.0f}%)")
    t = Table(["term", "seconds", "share"])
    for k, v in sorted(h.breakdown.items(), key=lambda kv: -kv[1]):
        t.add_row([k, f"{v:.3f}", f"{100 * v / h.total_seconds:.0f}%"])
    print(t.render())
    print()

    print("== Figure 12: weak scaling of the final system ==")
    t = Table(["nodes", *(fmt_count(v) + " vpn" for v in FIG12_VERTICES_PER_NODE)])
    series = {v: model.fig12_series(v) for v in FIG12_VERTICES_PER_NODE}
    for i, n in enumerate(series[FIG12_VERTICES_PER_NODE[0]]):
        t.add_row(
            [n.nodes, *(f"{series[v][i].gteps:,.0f}" for v in FIG12_VERTICES_PER_NODE)]
        )
    print(t.render())
    full = {v: series[v][-1].gteps for v in FIG12_VERTICES_PER_NODE}
    print(
        f"full-machine gaps: 6.5M/1.6M = {full[6.5e6] / full[1.6e6]:.1f}x, "
        f"26.2M/6.5M = {full[26.2e6] / full[6.5e6]:.1f}x "
        "(paper: 'nearly four times')\n"
    )

    print("== Table 2: distributed BFS results (published + ours) ==")
    t = Table(["authors", "year", "scale", "GTEPS", "processors", "arch", "hetero"])
    for row, measured in model.table2_rows():
        gteps = f"{measured:,.1f} (ours)" if measured is not None else f"{row.gteps:,.1f}"
        t.add_row(
            [row.authors, row.year, row.scale, gteps, row.processors,
             row.architecture, "yes" if row.heterogeneous else "no"]
        )
    print(t.render())


if __name__ == "__main__":
    main()
