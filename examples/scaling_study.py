#!/usr/bin/env python3
"""Weak + strong scaling study, functional and modelled.

Weak scaling (Figure 12's protocol) on the functional simulator with the
benchmark suite, then the modelled strong-scaling extension — fixed total
problem, growing machine — showing where fixed per-level costs eat the
speed-up.

Run:  python examples/scaling_study.py
"""

import numpy as np

from repro.core import BFSConfig
from repro.graph500.suite import BenchmarkSuite, SuiteCase
from repro.perf import ScalingModel
from repro.utils.tables import Table

CFG = BFSConfig(hub_count_topdown=32, hub_count_bottomup=32)


def functional_weak_scaling() -> None:
    print("== Functional weak scaling: 2^9 vertices per node ==")
    cases = [
        SuiteCase(scale=9 + int(np.log2(n)), nodes=n) for n in (2, 4, 8, 16)
    ]
    suite = BenchmarkSuite(cases, num_roots=3, config=CFG, nodes_per_super_node=4)
    suite.run()
    print(suite.table())
    print()


def modelled_strong_scaling() -> None:
    print("== Modelled strong scaling (extension): scale 36 fixed ==")
    model = ScalingModel()
    points = model.strong_scaling(scale=36)
    t = Table(["nodes", "vertices/node", "GTEPS", "speedup", "efficiency"])
    base = points[0]
    for p in points:
        speedup = p.gteps / base.gteps
        ideal = p.nodes / base.nodes
        t.add_row(
            [p.nodes, f"{p.vertices_per_node:,.0f}", f"{p.gteps:,.0f}",
             f"{speedup:.1f}x", f"{100 * speedup / ideal:.0f}%"]
        )
    print(t.render())
    print(
        "\nEfficiency falls as per-node data shrinks: the per-level "
        "collectives and message overheads are fixed costs — the same "
        "mechanism behind the small-size lines of Figure 12."
    )


def main() -> None:
    functional_weak_scaling()
    modelled_strong_scaling()


if __name__ == "__main__":
    main()
