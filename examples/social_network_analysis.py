#!/usr/bin/env python3
"""Social-network analysis on the BFS substrate (the Section 8 claim).

The paper's introduction motivates BFS with "analyzing unstructured data,
such as social network graphs"; its discussion claims the three techniques
carry over to SSSP, WCC, PageRank and k-core. This example runs that whole
pipeline on one synthetic social graph over the simulated machine:

1. components (WCC) — find the giant community;
2. influencers (PageRank) — rank accounts;
3. engagement core (k-core) — the densely-connected backbone;
4. degrees of separation (BFS levels) and weighted reachability (SSSP).

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro.algorithms import (
    DistributedKCore,
    DistributedPageRank,
    DistributedSSSP,
    DistributedWCC,
)
from repro.core import BFSConfig, DistributedBFS
from repro.graph import CSRGraph, KroneckerGenerator
from repro.utils.tables import Table
from repro.utils.units import fmt_time

SCALE = 12
NODES = 8
CFG = BFSConfig(hub_count_topdown=64, hub_count_bottomup=64)
KW = dict(config=CFG, nodes_per_super_node=4)


def main() -> None:
    edges = KroneckerGenerator(scale=SCALE, seed=2026).generate()
    graph = CSRGraph.from_edges(edges)
    n = graph.num_vertices
    print(
        f"Synthetic social graph: {n} accounts, {edges.num_edges} follow "
        f"events, on {NODES} simulated nodes\n"
    )

    # 1. Communities.
    wcc = DistributedWCC(edges, NODES, **KW).run()
    labels, counts = np.unique(wcc.labels, return_counts=True)
    print(
        f"[WCC]      {wcc.num_components()} components in "
        f"{wcc.supersteps} supersteps ({fmt_time(wcc.sim_seconds)} simulated); "
        f"giant component holds {counts.max()} accounts"
    )

    # 2. Influencers.
    pr = DistributedPageRank(edges, NODES, **KW).run(iterations=30)
    top = np.argsort(pr.ranks)[::-1][:5]
    print(
        f"[PageRank] 30 iterations in {fmt_time(pr.sim_seconds)} simulated; "
        f"top accounts: {top.tolist()}"
    )

    # 3. Engagement backbone.
    core = DistributedKCore(edges, NODES, **KW).run(k=8)
    print(
        f"[k-core]   8-core has {core.core_size()} accounts "
        f"({core.supersteps} peeling rounds, {fmt_time(core.sim_seconds)} simulated)"
    )

    # 4. Degrees of separation from the top influencer.
    hub = int(top[0])
    bfs = DistributedBFS(edges, NODES, **KW)
    result = bfs.run(hub)
    depths = result.depths()
    reached = depths >= 0
    print(
        f"[BFS]      from account {hub}: {int(reached.sum())} reachable, "
        f"median separation {int(np.median(depths[reached]))} hops, "
        f"{result.levels} levels ({fmt_time(result.sim_seconds)} simulated)"
    )
    t = Table(["hops", "accounts"])
    for d in range(int(depths[reached].max()) + 1):
        t.add_row([d, int((depths == d).sum())])
    print(t.render())

    # 5. Weighted closeness.
    sssp = DistributedSSSP(edges, NODES, **KW).run(hub)
    finite = np.isfinite(sssp.dist)
    print(
        f"[SSSP]     weighted distances from {hub}: mean "
        f"{sssp.dist[finite].mean():.2f} over {int(finite.sum())} accounts "
        f"({sssp.supersteps} rounds, {fmt_time(sssp.sim_seconds)} simulated)"
    )


if __name__ == "__main__":
    main()
