#!/usr/bin/env python3
"""A guided tour of the simulated SW26010 and its interconnect.

Walks through the architectural facts Section 3 of the paper builds on,
each produced live by the machine model: the DMA bandwidth curves, the
SPM budget, the register-mesh deadlock rules, atomics costs, and the
fat-tree's oversubscription.

Run:  python examples/machine_tour.py
"""

from repro.core import ShufflePlan
from repro.core.config import RoleLayout
from repro.errors import DeadlockError, SpmOverflow
from repro.machine import AtomicsModel, DmaModel, MeshTopology, Route, Spm, TAIHULIGHT
from repro.machine.mesh import check_deadlock_free
from repro.machine.specs import spec_table_rows
from repro.network import FatTreeTopology, NetworkModel
from repro.utils.tables import Table
from repro.utils.units import GBPS, MiB, fmt_rate, fmt_time


def main() -> None:
    print("== Table 1: the machine ==")
    t = Table(["Item", "Specifications"])
    for item, spec in spec_table_rows():
        t.add_row([item, spec])
    print(t.render())
    total = TAIHULIGHT.taihulight
    print(f"=> {total.total_nodes} nodes, {total.total_cores:,} cores\n")

    print("== DMA: why everything is batched at 256 B (Figure 3) ==")
    dma = DmaModel()
    t = Table(["chunk", "CPE cluster", "MPE"])
    for chunk in (8, 64, 256, 1024):
        t.add_row([f"{chunk} B", fmt_rate(dma.cluster_bandwidth(chunk)),
                   fmt_rate(dma.mpe_bandwidth(chunk))])
    print(t.render())
    print(f"=> random 8 B access is {dma.cluster_bandwidth(256)/dma.cluster_bandwidth(8):.1f}x "
          "slower than batched — the shuffle exists to convert random "
          "access into 256 B DMA\n")

    print("== SPM: 64 KB per CPE, and what fits ==")
    spm = Spm()
    spm.alloc("control", 4 * 1024)
    spm.alloc("staging x 60 destinations", 60 * 1024)
    print(f"   used {spm.used} of {spm.capacity} B — 60 staging buffers is the limit")
    try:
        spm.alloc("one more destination", 1024)
    except SpmOverflow as exc:
        print(f"   61st buffer: {exc}\n")

    print("== Register mesh: deadlock is real ==")
    mesh = MeshTopology()
    cycle = [
        Route.through((0, 0), (0, 1), (1, 1)),
        Route.through((0, 1), (1, 1), (1, 0)),
        Route.through((1, 1), (1, 0), (0, 0)),
        Route.through((1, 0), (0, 0), (0, 1)),
    ]
    try:
        check_deadlock_free(cycle, mesh)
    except DeadlockError as exc:
        print(f"   arbitrary routing: {exc}")
    plan = ShufflePlan(RoleLayout(), num_destinations=256)
    print(f"   producer/router/consumer schema over {plan.num_destinations} "
          f"destinations: deadlock-free = {plan.verify_deadlock_free()}\n")

    print("== Atomics: why the shuffle avoids them ==")
    atomics = AtomicsModel()
    n = 1_000_000
    locked = atomics.lock_based_append_time(n, 64)
    from repro.machine import CpeCluster

    shuffled = CpeCluster().shuffle_time(n * 8)
    print(f"   appending {n:,} records with emulated locks: {fmt_time(locked)}")
    print(f"   shuffling the same records contention-free:  {fmt_time(shuffled)}")
    print(f"   => {locked / shuffled:.0f}x difference\n")

    print("== Network: the 1:4 central trunk ==")
    net = NetworkModel(FatTreeTopology(512, nodes_per_super_node=256), TAIHULIGHT)
    solo = (16 * MiB) / net.transfer(0, 300, 16 * MiB, 0.0)
    net.reset()
    finish = max(
        net.transfer(i, 256 + i, 16 * MiB, 0.0) for i in range(256)
    )
    crowded = 16 * MiB / finish * 1  # per-node share when everyone crosses
    print(f"   one pair crossing super nodes: {fmt_rate(solo)} "
          "(store-and-forward NIC halves)")
    print(f"   256 pairs at once: {fmt_rate(crowded)} per node "
          f"(trunk cap {fmt_rate(1.2 * GBPS / 4)})")
    print("   => batching and group relays exist because of this trunk")


if __name__ == "__main__":
    main()
