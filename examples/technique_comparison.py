#!/usr/bin/env python3
"""Reproduce the Figure 11 story: what each technique buys.

Part 1 runs the four variants (Direct/Relay x MPE/CPE) *functionally* on a
small simulated machine and reports simulated times, message counts and
record counts — every run validated against the Graph500 rules.

Part 2 extends the comparison to the full 40,768-node machine with the
calibrated analytic model, reproducing the crossovers and both crash
points of Figure 11.

Run:  python examples/technique_comparison.py
"""

import numpy as np

from repro.baselines import make_variant
from repro.core import BFSConfig
from repro.graph import CSRGraph, KroneckerGenerator
from repro.graph500.validate import validate_bfs_result
from repro.perf import ScalingModel
from repro.utils.tables import Table
from repro.utils.units import fmt_time

VARIANTS = ("direct-mpe", "direct-cpe", "relay-mpe", "relay-cpe")


def functional_comparison() -> None:
    print("== Functional simulation: scale 14 Kronecker on 16 nodes ==")
    edges = KroneckerGenerator(scale=14, seed=7).generate()
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    cfg = BFSConfig(hub_count_topdown=64, hub_count_bottomup=64)
    table = Table(["variant", "sim time", "messages", "records", "levels", "valid"])
    for name in VARIANTS:
        bfs = make_variant(name, edges, 16, config=cfg, nodes_per_super_node=4)
        result = bfs.run(root)
        validate_bfs_result(graph, edges, root, result.parent)
        table.add_row(
            [
                name,
                fmt_time(result.sim_seconds),
                int(result.stats["messages"]),
                int(result.stats["records_sent"]),
                result.levels,
                "yes",
            ]
        )
    print(table.render())
    print()


def modelled_comparison() -> None:
    print("== Analytic model: 16M vertices/node, up to the full machine ==")
    model = ScalingModel()
    node_counts = (64, 256, 1024, 4096, 16384, 40768)
    table = Table(["nodes", *VARIANTS], title="GTEPS (CRASH = simulated failure)")
    for i, n in enumerate(node_counts):
        row = [n]
        for v in VARIANTS:
            p = model.fig11_series(v, node_counts)[i]
            row.append(f"CRASH:{p.crashed}" if p.crashed else f"{p.gteps:.0f}")
        table.add_row(row)
    print(table.render())
    print()
    print("Paper's Figure 11 shapes reproduced:")
    print(" - Direct CPE leads up to 256 nodes, then dies of SPM overflow;")
    print(" - Direct MPE dies of MPI connection memory at 16,384 nodes;")
    print(" - CPE shuffling beats MPE processing by roughly 10x;")
    print(" - only Relay CPE scales to the whole machine.")


def main() -> None:
    functional_comparison()
    modelled_comparison()


if __name__ == "__main__":
    main()
