#!/usr/bin/env python3
"""Anatomy of one direction-optimised traversal.

Prints the per-level trace of a BFS over the simulated machine: the
direction the policy chose, frontier sizes, records shuffled, messages
sent, hub-settled vertices and simulated per-level time — the data behind
Algorithm 1's TRAVERSAL_POLICY and the Section 5 hub optimisation.

Run:  python examples/traversal_anatomy.py
"""

import numpy as np

from repro.core import BFSConfig, DistributedBFS
from repro.graph import CSRGraph, KroneckerGenerator
from repro.utils.tables import Table
from repro.utils.units import fmt_time


def trace_run(edges, nodes, config, label):
    graph = CSRGraph.from_edges(edges)
    root = int(np.flatnonzero(graph.degrees() > 0)[0])
    bfs = DistributedBFS(edges, nodes, config=config, nodes_per_super_node=4)
    result = bfs.run(root)
    print(f"-- {label}: {result.levels} levels, "
          f"{fmt_time(result.sim_seconds)} simulated, "
          f"{int(result.stats['records_sent'])} records --")
    t = Table(
        ["lvl", "dir", "frontier", "front-edges", "records", "msgs",
         "hub-settled", "subrounds", "time"]
    )
    for tr in result.traces:
        t.add_row(
            [tr.level, tr.direction, tr.frontier_vertices, tr.frontier_edges,
             tr.records_sent, tr.messages, tr.hub_settled, tr.subrounds,
             fmt_time(tr.seconds)]
        )
    print(t.render())
    print()
    return result


def main() -> None:
    edges = KroneckerGenerator(scale=13, seed=11).generate()

    hybrid = BFSConfig(hub_count_topdown=64, hub_count_bottomup=64)
    r1 = trace_run(edges, 8, hybrid, "hybrid + hub prefetch (the paper)")

    plain = BFSConfig(direction_optimizing=False, use_hub_prefetch=False)
    r2 = trace_run(edges, 8, plain, "pure top-down, no hubs (textbook 1-D BFS)")

    saved = 1 - r1.stats["records_sent"] / r2.stats["records_sent"]
    print(
        "Direction optimisation + hub prefetch avoided "
        f"{100 * saved:.0f}% of the records the textbook traversal shuffles."
    )


if __name__ == "__main__":
    main()
