"""repro.telemetry — unified observability for the simulated machine.

One :class:`Telemetry` object carries the three instruments the paper's
own analysis needed (module timelines, message-volume breakdowns,
per-phase attribution):

- a :class:`~repro.telemetry.metrics.MetricsRegistry` of labeled
  counters/gauges/histograms (labels like ``node``, ``module``, ``tag``,
  ``direction``) — the cluster's stats registry is adopted on attach, so
  kernel counters and telemetry metrics live in one namespace;
- a :class:`~repro.telemetry.spans.SpanRecorder` of hierarchical spans
  over simulated time (run -> root -> level -> module execution /
  message batch), with a :class:`~repro.telemetry.spans.NullRecorder`
  when disabled so instrumentation costs one attribute check;
- busy-interval recording on every server and link, feeding the
  :mod:`~repro.telemetry.critical_path` analyzer and the Chrome-trace /
  JSON-report exporters in :mod:`~repro.telemetry.export`.

Wiring::

    tel = Telemetry()
    runner = Graph500Runner(scale=13, nodes=8, telemetry=tel)
    report = runner.run(num_roots=4)
    pathlib.Path("trace.json").write_text(tel.chrome_trace())

or, standalone on a kernel::

    bfs = DistributedBFS(edges, nodes, telemetry=Telemetry())

``repro profile`` packages the whole flow on the command line.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigError
from repro.telemetry.critical_path import (
    CriticalPathReport,
    analyze_critical_path,
    attribute_window,
    classify_resource,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.telemetry.spans import NullRecorder, Span, SpanRecorder
from repro.telemetry import export

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "Span",
    "SpanRecorder",
    "NullRecorder",
    "CriticalPathReport",
    "analyze_critical_path",
    "attribute_window",
    "classify_resource",
    "export",
]


class Telemetry:
    """Facade bundling metrics, spans and interval recording.

    ``enabled=False`` builds the null configuration: a
    :class:`NullRecorder` for spans, no interval recording, and
    ``attach_kernel`` as a no-op — the object can be threaded through the
    whole harness at near-zero cost (the bench gate holds the harness to
    <= 2% overhead in this state).
    """

    def __init__(
        self,
        enabled: bool = True,
        record_spans: bool = True,
        record_intervals: bool = True,
    ) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.spans = (
            SpanRecorder() if (enabled and record_spans) else NullRecorder()
        )
        self.record_intervals = enabled and record_intervals
        self._stack: list[int] = []
        self._kernel = None

    # -- span-stack helpers (parents for nested instrumentation) ---------------
    @property
    def current(self) -> int | None:
        """The innermost open span id (parent for new children)."""
        return self._stack[-1] if self._stack else None

    def push(self, span_id: int) -> None:
        if span_id >= 0:
            self._stack.append(span_id)

    def pop(self) -> int | None:
        return self._stack.pop() if self._stack else None

    # -- wiring ------------------------------------------------------------------
    def attach_kernel(self, bfs: Any) -> None:
        """Instrument a constructed :class:`~repro.core.bfs.DistributedBFS`.

        Adopts the kernel cluster's stats registry as :attr:`metrics`
        (carrying over anything already recorded), installs the telemetry
        hooks on the engine, cluster, pipelines and reliable channel, and
        turns on busy-interval recording for every server and link.
        """
        if not self.enabled:
            return
        if self._kernel is not None and self._kernel is not bfs:
            raise ConfigError(
                "telemetry already attached to a different kernel"
            )
        self._kernel = bfs
        cluster = bfs.cluster
        if self.metrics is not cluster.stats:
            # One namespace: pre-attach counters move into the cluster's
            # registry, which becomes the facade's registry.
            for name, family in self.metrics._families.items():
                if family.kind != "counter":
                    continue
                for values, child in family.children.items():
                    if child.value:
                        labels = dict(zip(family.label_keys, values))
                        cluster.stats.counter(name, **labels).add(child.value)
            self.metrics = cluster.stats
        bfs.telemetry = self
        cluster.telemetry = self
        bfs.engine.telemetry = self
        if bfs.channel is not None:
            bfs.channel.telemetry = self
        for state in bfs.states:
            state.pipeline.telemetry = self
        if self.record_intervals:
            export.enable_tracing(bfs._all_servers())
            export.enable_tracing(cluster.network.all_links())

    # -- collection ---------------------------------------------------------------
    def intervals(self) -> dict[str, list[tuple[float, float]]]:
        """Busy intervals of every attached server and link."""
        if self._kernel is None:
            return {}
        out = export.collect_intervals(self._kernel._all_servers())
        out.update(
            export.collect_intervals(self._kernel.cluster.network.all_links())
        )
        return out

    def chrome_trace(self, time_scale: float = 1e6) -> str:
        """Trace Event JSON of all busy intervals plus recorded spans."""
        return export.to_chrome_trace(
            self.intervals(), time_scale=time_scale, spans=self.spans.spans
        )

    def critical_path(
        self,
        level_windows: list[tuple[int, float, float]] | None = None,
        top_k: int = 10,
    ) -> CriticalPathReport:
        """Attribute level windows over the recorded intervals.

        Defaults to every recorded ``level`` span (all roots); pass
        explicit ``(level, start, finish)`` windows to narrow the view.
        """
        if level_windows is None:
            level_windows = [
                (int(s.attrs.get("level", i)), s.start, s.finish)
                for i, s in enumerate(self.spans.by_category("level"))
                if s.closed
            ]
        return analyze_critical_path(self.intervals(), level_windows, top_k)
