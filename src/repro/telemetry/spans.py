"""Hierarchical spans over *simulated* time.

The simulator computes every start/finish up front (servers are FIFO
next-free-time resources), so spans are recorded retrospectively rather
than timed: a caller *opens* a span to obtain its id (children can then
point at it immediately) and *closes* it once the window is known. The
canonical hierarchy a profiled Graph500 run produces::

    run                      (the whole benchmark, runner-level)
      root <r>               (one traversal; kernel-level)
        level <k>            (one BFS level between barriers)
          <module kind>      (one module execution on an MPE/CPE cluster)
          message-batch      (one bucket fan-out injected by a module)

Two recorders share the interface: :class:`SpanRecorder` collects, and
:class:`NullRecorder` is the disabled path — every method is a constant
no-op, so instrumented code costs one attribute check when telemetry is
off (the bench gate pins this at <= 2% harness overhead).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError

#: Thread-local drain journal (see :mod:`repro.telemetry.metrics`): while
#: a parallel drain window executes, worker-thread ``record`` calls are
#: journaled and replayed on the coordinator in global event order, so
#: span ids stay allocation-ordered exactly as the sequential engine
#: would have handed them out. ``open``/``close`` are coordinator-only
#: (they brace driver-level phases, never event callbacks) and refuse to
#: run on a worker — an id allocated out of order would corrupt every
#: later parent reference.
_DRAIN_SINK = threading.local()


def set_drain_sink(journal: Any) -> None:
    """Install (or with ``None`` clear) this thread's span journal."""
    _DRAIN_SINK.journal = journal


@dataclass(slots=True)
class Span:
    """One named window of simulated time inside an optional parent."""

    id: int
    name: str
    category: str
    start: float = 0.0
    finish: float = 0.0
    parent: int | None = None
    attrs: dict = field(default_factory=dict)
    closed: bool = False

    @property
    def seconds(self) -> float:
        return self.finish - self.start


class NullRecorder:
    """The disabled recorder: accepts everything, stores nothing."""

    enabled = False
    spans: tuple = ()

    def open(self, name: str, category: str, parent: int | None = None, **attrs: Any) -> int:
        return -1

    def close(self, span_id: int, start: float, finish: float, **attrs: Any) -> None:
        pass

    def record(self, name: str, category: str, start: float, finish: float, parent: int | None = None, **attrs: Any) -> int:
        return -1

    def __len__(self) -> int:
        return 0


class SpanRecorder:
    """Collects spans; ids are allocation-ordered and stable.

    Record order is deterministic for a deterministic simulation — ids are
    handed out by a monotone counter at ``open`` time, so two runs of the
    same configuration produce identical span lists.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def __len__(self) -> int:
        return len(self.spans)

    # -- recording -------------------------------------------------------------
    def open(self, name: str, category: str, parent: int | None = None,
             **attrs: Any) -> int:
        """Allocate a span id now; times arrive at :meth:`close`."""
        if getattr(_DRAIN_SINK, "journal", None) is not None:
            raise ConfigError(
                f"span {name!r} opened from a parallel drain worker — "
                "open/close spans are coordinator-only; event callbacks "
                "must use record(), which journals"
            )
        if parent is not None and parent >= 0:
            if not 0 <= parent < len(self.spans):
                raise ConfigError(f"unknown parent span {parent}")
        else:
            parent = None
        span_id = len(self.spans)
        self.spans.append(Span(span_id, name, category, parent=parent,
                               attrs=dict(attrs)))
        return span_id

    def close(self, span_id: int, start: float, finish: float, **attrs: Any) -> None:
        if span_id < 0:
            return
        if getattr(_DRAIN_SINK, "journal", None) is not None:
            raise ConfigError(
                f"span {span_id} closed from a parallel drain worker — "
                "open/close spans are coordinator-only"
            )
        span = self.spans[span_id]
        if finish < start:
            raise ConfigError(
                f"span {span.name!r} closes before it starts "
                f"({finish} < {start})"
            )
        span.start = start
        span.finish = finish
        span.closed = True
        if attrs:
            span.attrs.update(attrs)

    def record(self, name: str, category: str, start: float, finish: float,
               parent: int | None = None, **attrs: Any) -> int:
        """Open and close in one call (for windows already known).

        On a parallel drain worker the span is journaled and its id is
        allocated later, at coordinator replay in global event order; the
        provisional ``-1`` return is safe because retrospective callers
        never parent other spans under a recorded leaf.
        """
        journal = getattr(_DRAIN_SINK, "journal", None)
        if journal is not None:
            journal.span_op(self, name, category, start, finish, parent, attrs)
            return -1
        span_id = self.open(name, category, parent=parent, **attrs)
        self.close(span_id, start, finish)
        return span_id

    # -- queries -----------------------------------------------------------------
    def by_category(self, *categories: str) -> list[Span]:
        wanted = set(categories)
        return [s for s in self.spans if s.category in wanted]

    def children(self, parent: int | None) -> list[Span]:
        return [s for s in self.spans if s.parent == parent]

    def tree(self, categories: set[str] | None = None) -> list[dict]:
        """Nested ``{name, category, children}`` dicts in record order.

        With ``categories`` given, spans of other categories are skipped
        and their children re-parented to the nearest kept ancestor —
        useful for comparing the run/root/level skeleton across harness
        modes whose deep instrumentation differs (e.g. ``workers=N``
        derives root/level spans from merged results and has no module
        spans to show).
        """
        keep: dict[int, dict] = {}
        remap: dict[int, int | None] = {}
        roots: list[dict] = []
        for span in self.spans:
            parent = span.parent
            # Walk up through skipped ancestors.
            while parent is not None and parent not in keep:
                parent = remap.get(parent, self.spans[parent].parent)
            if categories is not None and span.category not in categories:
                remap[span.id] = parent
                continue
            node = {
                "name": span.name,
                "category": span.category,
                "children": [],
            }
            keep[span.id] = node
            if parent is None:
                roots.append(node)
            else:
                keep[parent]["children"].append(node)
        return roots
