"""Profile-run assembly: telemetry + benchmark report -> run report dict.

``repro profile`` drives a normal Graph500 run with a :class:`Telemetry`
attached, then calls :func:`build_run_report` to fold the recorded spans,
busy intervals and metrics into one machine-readable document:

- per root: the level windows, the critical-path class attribution of
  each window, and the check that attributed seconds re-sum to the root's
  ``sim_seconds`` (the acceptance gate is <= 1% relative error);
- globally: the metrics snapshot, a Figure 10-style top-k occupancy
  table over the whole run, and span counts per category.
"""

from __future__ import annotations

from repro.telemetry import Telemetry, analyze_critical_path, attribute_window
from repro.telemetry.spans import Span
from repro.telemetry.export import root_attribution_entry, run_report


def _level_windows_of(
    tel: Telemetry, root_span: Span
) -> list[tuple[int, float, float]]:
    return [
        (int(s.attrs.get("level", 0)), s.start, s.finish)
        for s in tel.spans.spans
        if s.category == "level" and s.parent == root_span.id and s.closed
    ]


def build_run_report(tel: Telemetry, benchmark: dict, top_k: int = 10) -> dict:
    """Assemble the run report from recorded telemetry.

    Works from the ``root``/``level`` spans (present in both the
    sequential kernel-instrumented path and the workers>1 derived path);
    interval-based attribution needs the sequential path — without
    intervals every level attributes to ``idle`` and the check still
    balances.
    """
    intervals = tel.intervals()
    root_entries = []
    all_windows: list[tuple[int, float, float]] = []
    for root_span in tel.spans.by_category("root"):
        if not root_span.closed:
            continue
        windows = _level_windows_of(tel, root_span)
        all_windows.extend(windows)
        attribution = []
        levels = []
        for level, start, finish in windows:
            attribution.append(
                {
                    "level": level,
                    "start": start,
                    "finish": finish,
                    "seconds": attribute_window(intervals, start, finish),
                }
            )
            levels.append(
                {"level": level, "start": start, "finish": finish}
            )
        sim_seconds = float(
            root_span.attrs.get("sim_seconds", root_span.seconds)
        )
        root_entries.append(
            root_attribution_entry(
                int(root_span.attrs.get("root", -1)),
                sim_seconds,
                levels,
                attribution,
            )
        )
    critical = (
        analyze_critical_path(intervals, all_windows, top_k=top_k)
        if all_windows
        else None
    )
    span_counts: dict[str, int] = {}
    for span in tel.spans.spans:
        span_counts[span.category] = span_counts.get(span.category, 0) + 1
    return run_report(
        benchmark,
        tel.metrics.snapshot(),
        root_entries,
        critical_path=critical,
        span_counts=span_counts,
    )
