"""Labeled metrics: counters, gauges, histograms under one registry.

This is the measurement half of :mod:`repro.telemetry`. A
:class:`MetricsRegistry` hands out metric instances keyed by ``(name,
label values)`` with create-on-first-use semantics — the same contract the
old ``repro.sim.stats.StatsRegistry`` had for bare counters, which now
subclasses this registry and keeps its exact unlabeled behaviour (hot-path
code resolves a :class:`Counter` once and calls ``add`` forever).

Label semantics follow the Prometheus conventions that matter here:

- a metric *family* (one name) has a fixed label-key set, established on
  first use — ``counter("messages", node=0)`` followed by
  ``counter("messages", level=1)`` is a :class:`~repro.errors.ConfigError`;
- a family also has a fixed kind — registering ``"depth"`` as a counter
  and later as a gauge is an error;
- ``snapshot()`` flattens everything to ``{"name{k=v,...}": value}`` with
  labels sorted by key, so snapshots compare with plain ``==``. Unlabeled
  metrics keep their bare name, which preserves every existing stats
  snapshot byte for byte.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError

#: Thread-local drain journal. While a parallel drain window executes
#: (:mod:`repro.sim.partition`), every metric mutation made on a worker
#: thread is routed into the worker's journal instead of the shared
#: object, and replayed on the coordinator in exact global event order —
#: the only way float accumulation and span/metric interleavings stay
#: bit-identical to the sequential engine. Coordinator threads (and every
#: run without parallel drain) see ``journal is None`` and take the plain
#: in-place path, so the sequential hot path costs one thread-local read.
_DRAIN_SINK = threading.local()


def set_drain_sink(journal: Any) -> None:
    """Install (or with ``None`` clear) this thread's metric journal."""
    _DRAIN_SINK.journal = journal

#: Default histogram bucket upper bounds (seconds-ish, log-spaced).
DEFAULT_BUCKETS = (
    1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, float("inf")
)


@dataclass
class Counter:
    """A monotone counter (events, bytes, messages...)."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:  # repro: effect=journaled
        journal = getattr(_DRAIN_SINK, "journal", None)
        if journal is None:
            self.value += amount
        else:
            journal.metric_op("cadd", self, amount)


@dataclass
class Gauge:
    """A value that goes up and down (queue depth, in-flight frames...)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:  # repro: effect=journaled
        journal = getattr(_DRAIN_SINK, "journal", None)
        if journal is None:
            self.value = value
        else:
            journal.metric_op("gset", self, value)

    def add(self, amount: float = 1.0) -> None:  # repro: effect=journaled
        journal = getattr(_DRAIN_SINK, "journal", None)
        if journal is None:
            self.value += amount
        else:
            journal.metric_op("gadd", self, amount)

    def max(self, value: float) -> None:  # repro: effect=journaled
        """Keep the running maximum (peak-tracking gauges)."""
        journal = getattr(_DRAIN_SINK, "journal", None)
        if journal is None:
            if value > self.value:
                self.value = value
        else:
            journal.metric_op("gmax", self, value)


@dataclass
class Histogram:
    """Cumulative-bucket histogram of observations."""

    name: str
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if list(self.buckets) != sorted(self.buckets):
            raise ConfigError(f"histogram {self.name!r} buckets must ascend")
        if not self.counts:
            self.counts = [0] * len(self.buckets)

    def observe(self, value: float) -> None:  # repro: effect=journaled
        journal = getattr(_DRAIN_SINK, "journal", None)
        if journal is not None:
            journal.metric_op("hobs", self, value)
            return
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            # No +inf bucket configured: clamp into the last one.
            self.counts[-1] += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def value(self) -> float:
        """Snapshot value of a histogram is its observation count."""
        return float(self.count)

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile from the cumulative buckets.

        Prometheus-style linear interpolation inside the bucket that
        crosses rank ``q * count`` (assuming uniform spread within it);
        a hit in the unbounded last bucket reports that bucket's lower
        edge — the histogram cannot see past its largest finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        lo = 0.0
        for bound, bucket_count in zip(self.buckets, self.counts):
            if bucket_count and cum + bucket_count >= rank:
                if bound == float("inf"):
                    return lo
                fraction = (rank - cum) / bucket_count
                return lo + (bound - lo) * fraction
            cum += bucket_count
            lo = bound if bound != float("inf") else lo
        return lo


@dataclass
class TimeSeries:
    """A sequence of (time, value) observations."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def observe(self, time: float, value: float) -> None:  # repro: effect=journaled
        journal = getattr(_DRAIN_SINK, "journal", None)
        if journal is None:
            self.times.append(time)
            self.values.append(value)
        else:
            journal.metric_op("tobs", self, (time, value))

    def __len__(self) -> int:
        return len(self.values)

    def total(self) -> float:
        return sum(self.values)

    def mean(self) -> float:
        return self.total() / len(self.values) if self.values else 0.0

    def max(self) -> float:
        return max(self.values) if self.values else 0.0


@dataclass
class _Family:
    """One metric name: its kind, fixed label keys, and children."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    label_keys: tuple[str, ...]
    children: dict[tuple, object] = field(default_factory=dict)


def _render_key(  # repro: effect=pure
    name: str, label_keys: tuple[str, ...], values: tuple
) -> str:
    if not label_keys:
        return name
    inner = ",".join(f"{k}={v}" for k, v in zip(label_keys, values))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Named, optionally labeled metrics with create-on-first-use semantics.

    The unlabeled fast path is exactly the old stats registry:
    ``registry.counter("messages")`` returns the same :class:`Counter`
    object forever, and ``value``/``snapshot`` read it under its bare name.
    """

    def __init__(self) -> None:
        # Bare-name views kept for the hot unlabeled path (and backward
        # compatibility: SimCluster and tests read ``registry.counters``).
        self.counters: dict[str, Counter] = {}
        self._families: dict[str, _Family] = {}
        # Guards family/child *creation* only. Parallel drain workers may
        # race to materialise the same labeled child; without the lock two
        # Counter objects could exist for one key and journaled mutations
        # on the loser would be lost. Reads stay lock-free (dict.get is
        # atomic) and snapshots sort, so creation order never leaks.
        self._create_lock = threading.Lock()

    # -- family plumbing -----------------------------------------------------
    def _child(  # repro: effect=locked:MetricsRegistry._create_lock
        self, name: str, kind: str, labels: dict, factory: Callable[[str], Any]
    ) -> Any:
        keys = tuple(sorted(labels))
        family = self._families.get(name)
        if family is not None and family.kind == kind and family.label_keys == keys:
            values = tuple(labels[k] for k in keys)
            child = family.children.get(values)
            if child is not None:
                return child
        with self._create_lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(name, kind, keys)
            elif family.kind != kind:
                raise ConfigError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            elif family.label_keys != keys:
                raise ConfigError(
                    f"metric {name!r} has labels {family.label_keys}, "
                    f"got {keys}"
                )
            values = tuple(labels[k] for k in keys)
            child = family.children.get(values)
            if child is None:
                child = family.children[values] = factory(
                    _render_key(name, keys, values)
                )
                if kind == "counter" and not keys:
                    self.counters[name] = child
            return child

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_create_lock"]  # locks don't pickle; recreated on load
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._create_lock = threading.Lock()

    # -- metric constructors ---------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        if not labels:
            # Hot path: one dict hit in the steady state.
            c = self.counters.get(name)
            if c is not None:
                return c
        return self._child(name, "counter", labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._child(name, "gauge", labels, Gauge)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._child(
            name, "histogram", labels, lambda n: Histogram(n, buckets)
        )

    # -- reads --------------------------------------------------------------------
    def value(self, name: str, **labels: Any) -> float:
        """Read a metric's value (0.0 if it was never touched)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        values = tuple(labels[k] for k in family.label_keys if k in labels)
        if len(values) != len(family.label_keys):
            return 0.0
        child = family.children.get(values)
        return child.value if child is not None else 0.0

    def snapshot(self) -> dict[str, float]:
        """Flatten every metric to ``{rendered name: value}``, sorted."""
        out: dict[str, float] = {}
        for family in self._families.values():
            for values, child in family.children.items():
                out[_render_key(family.name, family.label_keys, values)] = (
                    child.value
                )
        return dict(sorted(out.items()))

    def families(self) -> dict[str, str]:
        """``{name: kind}`` for every registered family."""
        return {name: f.kind for name, f in sorted(self._families.items())}
