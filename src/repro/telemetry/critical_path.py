"""Critical-path / occupancy attribution (the paper's Figure 10 view).

Given every resource's busy intervals and the per-level windows of a
traversal, attribute each level's simulated seconds to resource classes:

- **compute** — module executions on CPE clusters C0/C2/C3 and the aux
  MPEs M2/M3 (generators, handlers, hub settle, quick-path work);
- **relay**  — cluster C1, which owns the Forward/Backward Relay modules
  (the group-batching extra hop);
- **mpe**    — the dedicated communication MPEs M0/M1 (per-message send
  and receive software overhead);
- **link**   — NIC in/out and the central up/down trunks;
- **idle**   — instants inside the level where nothing is busy
  (propagation latency, sub-round allreduce gaps).

An instant where several classes are busy at once splits its duration
equally among them, so per-level class seconds sum *exactly* to the level
duration (this is what makes the run report's attribution check against
``sim_seconds`` meaningful). Control time between levels (direction
allreduce + hub allgather) is reported by the caller as the remainder
``sim_seconds - sum(level windows)``.

The top-k table ranks individual resources by busy time inside the
analysed window — the most serialised server is the bottleneck candidate,
exactly how the paper reads its module timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.tables import Table

#: Attribution classes, in reporting order.
CLASSES = ("compute", "relay", "mpe", "link", "idle")


def classify_resource(name: str) -> str:
    """Map a server/link name to an attribution class.

    Server names look like ``node3.C1`` / ``node0.M0``; link names like
    ``nic_out[5]``, ``uplink[0]``. Unknown names count as compute (they
    are, by construction, execution units someone added to a node).
    """
    if "[" in name:
        return "link"
    unit = name.rsplit(".", 1)[-1]
    if unit == "C1":
        return "relay"
    if unit in ("M0", "M1"):
        return "mpe"
    return "compute"


@dataclass
class LevelAttribution:
    """One level's window and its class-seconds breakdown."""

    level: int
    start: float
    finish: float
    seconds: dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.finish - self.start

    def total(self) -> float:
        return sum(self.seconds.values())


@dataclass
class ResourceOccupancy:
    """One resource's busy time inside the analysed window."""

    name: str
    cls: str
    busy: float
    jobs: int
    occupancy: float  # busy / window duration


@dataclass
class CriticalPathReport:
    """Per-level attribution plus the top serialised resources."""

    levels: list[LevelAttribution]
    top_resources: list[ResourceOccupancy]
    window: tuple[float, float]

    def to_dict(self) -> dict:
        return {
            "window": list(self.window),
            "levels": [
                {
                    "level": lv.level,
                    "start": lv.start,
                    "finish": lv.finish,
                    "duration": lv.duration,
                    "seconds": dict(lv.seconds),
                }
                for lv in self.levels
            ],
            "top_resources": [
                {
                    "name": r.name,
                    "class": r.cls,
                    "busy_seconds": r.busy,
                    "jobs": r.jobs,
                    "occupancy": r.occupancy,
                }
                for r in self.top_resources
            ],
        }

    def level_table(self) -> str:
        t = Table(
            ["level", "duration", *CLASSES],
            title="Per-level time attribution (seconds, equal-split)",
        )
        for lv in self.levels:
            t.add_row(
                [
                    lv.level,
                    f"{lv.duration:.3e}",
                    *(f"{lv.seconds.get(c, 0.0):.3e}" for c in CLASSES),
                ]
            )
        return t.render()

    def resource_table(self) -> str:
        t = Table(
            ["resource", "class", "busy", "occupancy"],
            title="Top serialized resources (busy time in window)",
        )
        for r in self.top_resources:
            t.add_row(
                [r.name, r.cls, f"{r.busy:.3e}", f"{100 * r.occupancy:.1f}%"]
            )
        return t.render()


def _clip(
    intervals: list[tuple[float, float]], lo: float, hi: float
) -> list[tuple[float, float]]:
    """Intervals intersected with ``[lo, hi]`` (inputs are start-sorted)."""
    out = []
    for start, finish in intervals:
        if finish <= lo:
            continue
        if start >= hi:
            break
        out.append((max(start, lo), min(finish, hi)))
    return out


def attribute_window(
    intervals_by_resource: dict[str, list[tuple[float, float]]],
    lo: float,
    hi: float,
) -> dict[str, float]:
    """Split ``[lo, hi]`` across attribution classes by a boundary sweep.

    Each elementary slice's duration is divided equally among the classes
    busy during it; slices where nothing is busy go to ``idle``. The
    returned values sum to exactly ``hi - lo`` (one subtraction per slice,
    no reassociation across slices beyond the final sum).
    """
    seconds = dict.fromkeys(CLASSES, 0.0)
    if hi <= lo:
        return seconds
    # Per-class clipped interval edges: (time, class, +1/-1).
    events: list[tuple[float, int, str]] = []
    for name, intervals in intervals_by_resource.items():
        cls = classify_resource(name)
        for start, finish in _clip(intervals, lo, hi):
            if finish > start:
                events.append((start, +1, cls))
                events.append((finish, -1, cls))
    if not events:
        seconds["idle"] = hi - lo
        return seconds
    events.sort(key=lambda e: (e[0], e[1]))
    active = dict.fromkeys(CLASSES, 0)
    prev = lo
    for time, delta, cls in events:
        if time > prev:
            busy = [c for c in CLASSES if active[c] > 0]
            width = time - prev
            if busy:
                share = width / len(busy)
                for c in busy:
                    seconds[c] += share
            else:
                seconds["idle"] += width
            prev = time
        active[cls] += delta
    if hi > prev:
        seconds["idle"] += hi - prev
    return seconds


def analyze_critical_path(
    intervals_by_resource: dict[str, list[tuple[float, float]]],
    level_windows: list[tuple[int, float, float]],
    top_k: int = 10,
) -> CriticalPathReport:
    """Attribute each level window and rank resources across all of them.

    ``level_windows`` is ``[(level, start, finish), ...]`` — typically one
    root's :class:`~repro.core.bfs.LevelTrace` list.
    """
    levels = []
    for level, start, finish in level_windows:
        levels.append(
            LevelAttribution(
                level, start, finish,
                attribute_window(intervals_by_resource, start, finish),
            )
        )
    lo = min((s for _, s, _ in level_windows), default=0.0)
    hi = max((f for _, _, f in level_windows), default=0.0)
    duration = max(hi - lo, 1e-300)
    occupancies = []
    for name, intervals in intervals_by_resource.items():
        clipped = _clip(intervals, lo, hi)
        busy = sum(f - s for s, f in clipped)
        if busy > 0:
            occupancies.append(
                ResourceOccupancy(
                    name, classify_resource(name), busy, len(clipped),
                    busy / duration,
                )
            )
    occupancies.sort(key=lambda r: (-r.busy, r.name))
    return CriticalPathReport(levels, occupancies[:top_k], (lo, hi))
