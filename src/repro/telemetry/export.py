"""Exporters: Chrome/Perfetto trace JSON, JSON run reports, CSV/markdown.

This module is the successor of ``repro.utils.trace`` (now a deprecated
shim over it): busy-interval collection and Chrome Trace Event rendering
live here, extended with span events and the machine-readable run report
that ``repro profile`` writes.
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from repro.sim.resources import Server
from repro.telemetry.critical_path import CLASSES, CriticalPathReport
from repro.telemetry.spans import Span


# -- busy intervals (migrated from repro.utils.trace) --------------------------
def enable_tracing(servers: Iterable[Server]) -> None:
    """Attach interval logs to servers (idempotent)."""
    for s in servers:
        if getattr(s, "intervals", None) is None:
            s.intervals = []  # type: ignore[attr-defined]


def collect_intervals(servers: Iterable[Server]) -> dict[str, list[tuple[float, float]]]:
    out = {}
    for s in servers:
        intervals = getattr(s, "intervals", None)
        if intervals:
            out[s.name] = list(intervals)
    return out


def interval_events(
    intervals_by_server: dict[str, list[tuple[float, float]]],
    time_scale: float = 1e6,
) -> list[dict]:
    """Busy intervals as Trace Event Format ``X`` events (times in us).

    Servers group by node (``node3.C0`` -> pid ``node3``); links group
    under a ``network`` process so the viewer shows one row per link.
    """
    events = []
    for name in sorted(intervals_by_server):
        if "." in name:
            pid, tid = name.split(".", 1)
        elif "[" in name:
            pid, tid = "network", name
        else:
            pid, tid = "machine", name
        for start, finish in intervals_by_server[name]:
            events.append(
                {
                    "name": tid,
                    "cat": "sim",
                    "ph": "X",
                    "ts": start * time_scale,
                    "dur": max(finish - start, 0.0) * time_scale,
                    "pid": pid,
                    "tid": tid,
                }
            )
    return events


def span_events(spans: Iterable[Span], time_scale: float = 1e6) -> list[dict]:
    """Spans as ``X`` events under a dedicated ``spans`` process.

    Each category gets its own thread row, so the run/root/level hierarchy
    reads as stacked timelines in ``chrome://tracing``.
    """
    events = []
    for span in spans:
        if not span.closed:
            continue
        args = {k: str(v) for k, v in span.attrs.items()}
        if span.parent is not None:
            args["parent"] = str(span.parent)
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * time_scale,
                "dur": max(span.seconds, 0.0) * time_scale,
                "pid": "spans",
                "tid": span.category,
                "args": args,
            }
        )
    return events


def to_chrome_trace(
    intervals_by_server: dict[str, list[tuple[float, float]]],
    time_scale: float = 1e6,
    spans: Iterable[Span] = (),
) -> str:
    """Render busy intervals (and optional spans) as Trace Event JSON."""
    events = interval_events(intervals_by_server, time_scale)
    events.extend(span_events(spans, time_scale))
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}, indent=None)


# -- run reports ---------------------------------------------------------------
def run_report(
    benchmark: dict,
    metrics_snapshot: dict[str, float],
    roots: list[dict],
    critical_path: CriticalPathReport | None = None,
    span_counts: dict[str, int] | None = None,
) -> dict:
    """Assemble the machine-readable run report.

    ``roots`` carries one entry per traversal with its per-level
    attribution (see :func:`root_attribution_entry`); the report-level
    ``attribution_check`` summarises how closely each root's attributed
    seconds re-sum to its ``sim_seconds`` — the profile acceptance gate.
    """
    worst = 0.0
    for entry in roots:
        err = entry.get("attribution_error", 0.0)
        if err > worst:
            worst = err
    report = {
        "report": "repro.telemetry run report",
        "version": 1,
        "benchmark": benchmark,
        "metrics": metrics_snapshot,
        "roots": roots,
        "attribution_check": {
            "worst_relative_error": worst,
            "within_1pct": worst <= 0.01,
        },
    }
    if critical_path is not None:
        report["critical_path"] = critical_path.to_dict()
    if span_counts is not None:
        report["spans"] = span_counts
    return report


def root_attribution_entry(
    root: int,
    sim_seconds: float,
    levels: list[dict],
    attribution: list[dict],
) -> dict:
    """One root's report entry: levels, class attribution, and the check.

    ``attribution`` rows carry per-level class seconds (summing to the
    level window); ``control`` is the remainder between the sum of level
    windows and ``sim_seconds`` — the inter-level allreduce/allgather
    charges that happen outside any level window.

    ``attribution_error`` is the real check, not an identity: the sweep's
    class seconds must re-sum to the level windows (any drift means the
    attribution algorithm lost or double-counted time), and the control
    remainder must be non-negative (levels must fit inside the root's
    span). Both failures show up as relative error against
    ``sim_seconds``.
    """
    attributed = sum(sum(row["seconds"].values()) for row in attribution)
    window_total = sum(row["finish"] - row["start"] for row in attribution)
    control = sim_seconds - window_total
    total = attributed + max(control, 0.0)
    error = (
        (abs(attributed - window_total) + max(-control, 0.0)) / sim_seconds
        if sim_seconds > 0
        else 0.0
    )
    classes = dict.fromkeys(CLASSES, 0.0)
    for row in attribution:
        for cls, value in row["seconds"].items():
            classes[cls] = classes.get(cls, 0.0) + value
    classes["control"] = control
    return {
        "root": root,
        "sim_seconds": sim_seconds,
        "levels": levels,
        "attribution": attribution,
        "class_seconds": classes,
        "attributed_seconds": total,
        "attribution_error": error,
    }


# -- flat summaries ------------------------------------------------------------
def summary_rows(report: dict) -> list[dict]:
    """Per-root rows of the run report, flattened for CSV/markdown."""
    rows = []
    for entry in report.get("roots", []):
        row = {
            "root": entry["root"],
            "sim_seconds": entry["sim_seconds"],
            "levels": len(entry.get("levels", [])),
        }
        for cls in (*CLASSES, "control"):
            row[cls] = entry.get("class_seconds", {}).get(cls, 0.0)
        rows.append(row)
    return rows


def summary_csv(report: dict) -> str:
    rows = summary_rows(report)
    header = ["root", "sim_seconds", "levels", *CLASSES, "control"]
    lines = [",".join(header)]
    for row in rows:
        lines.append(
            ",".join(
                str(row[h]) if h in ("root", "levels") else f"{row[h]:.9e}"
                for h in header
            )
        )
    return "\n".join(lines) + "\n"


def summary_markdown(report: dict) -> str:
    rows = summary_rows(report)
    header = ["root", "sim_seconds", "levels", *CLASSES, "control"]
    lines = [
        "# Run report summary",
        "",
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in rows:
        lines.append(
            "| "
            + " | ".join(
                str(row[h]) if h in ("root", "levels") else f"{row[h]:.3e}"
                for h in header
            )
            + " |"
        )
    check = report.get("attribution_check", {})
    lines += [
        "",
        f"Worst attribution error vs `sim_seconds`: "
        f"{100 * check.get('worst_relative_error', 0.0):.4f}% "
        f"(within 1%: {check.get('within_1pct', True)})",
        "",
    ]
    return "\n".join(lines)
