"""Constants of the analytic cost model, each with its provenance.

Three kinds of constants:

1. **published** — straight from the paper (bandwidths, overheads,
   topology, hub counts);
2. **derived** — implied by the machine model (per-destination SPM limits,
   connection budgets);
3. **calibrated** — work/remoteness fractions and the straggler
   coefficient, tuned once so the model's full-machine point lands near the
   paper's 23,755.7 GTEPS while the functional simulator pins the
   small-scale end. These are the honest "free parameters" of the
   reproduction and are documented as such.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GBPS, US


@dataclass(frozen=True)
class PerfParams:
    # -- problem shape -----------------------------------------------------
    edge_factor: int = 16
    record_bytes: int = 8
    #: BFS levels of a Kronecker graph (effectively scale-free at ef=16).
    levels: int = 7
    #: Bottom-up levels and their early-termination sub-rounds; with the
    #: level loop this gives the number of global synchronisation epochs.
    bottomup_levels: int = 2
    bottomup_subrounds: int = 3
    #: Levels whose hub-frontier bitmap is non-empty (the rest gather the
    #: one-byte flag of Section 5's "reduce global communication").
    bitmap_levels: int = 2
    #: Hub bitmap bits contributed per node (2^14, the bottom-up count).
    hub_bits_per_node: int = 1 << 14

    # -- machine rates (published / machine-model) ---------------------------
    #: Steady-state per-node module throughput with CPE shuffling
    #: (Section 4.3's measured 10 GB/s register-shuffle bandwidth).
    cpe_node_rate: float = 10.0 * GBPS
    #: Per-node module throughput in MPE mode: two scratch MPEs each
    #: spending ~45 ns/record on random-access pointer chasing (1.45 GHz
    #: in-order core, non-coherent memory at ~100-cycle latency). Calibrated
    #: so the Figure 11 CPE/MPE gap brackets the paper's "factor of 10".
    mpe_node_rate: float = 2 * 8 / 45e-9
    #: Module passes each record makes through a node (generate + handle;
    #: the relay pass is charged where it occurs via the hop count).
    compute_passes: float = 2.0
    #: Effective per-node NIC bandwidth (Section 4.4's measured 1.2 GB/s).
    nic_rate: float = 1.2 * GBPS
    #: Central-network oversubscription (Section 3.3).
    oversubscription: int = 4
    nodes_per_super_node: int = 256
    #: Per-message MPE software overhead with dedicated communication MPEs.
    alpha_msg: float = 2.0 * US
    #: Per-message overhead when a single MPE thread multiplexes compute
    #: and messaging (MPE-mode variants): matching, buffer churn, cache
    #: thrash on the 256 KB L2.
    alpha_msg_mpe_mode: float = 10.0 * US
    inter_latency: float = 3.0 * US

    # -- algorithmic intensity (calibrated) -------------------------------------
    #: Fraction of the 2m directed edge slots that become shuffle records
    #: under direction optimisation + hub prefetch.
    work_fraction_optimized: float = 0.12
    #: ... with direction optimisation but no hubs.
    work_fraction_no_hubs: float = 0.30
    #: ... pure top-down (every slot).
    work_fraction_topdown: float = 1.0
    #: Fraction of shuffle records that must cross the network after local
    #: settling (hub prefetch keeps most updates node-local).
    remote_fraction: float = 0.12
    remote_fraction_no_hubs: float = 0.35
    #: Load-imbalance multiplier on data terms (power-law skew).
    imbalance: float = 1.3
    #: Per-epoch straggler skew coefficient: each global epoch pays
    #: ``straggle_coeff * log2(P)`` of tail latency (seconds per log-node).
    straggle_coeff: float = 1.5e-3
    #: Fraction of input edge tuples inside the traversed component (TEPS
    #: numerator; ~1 for ef=16 Kronecker giants).
    traversed_fraction: float = 1.0

    # -- failure thresholds (derived from the machine model) ----------------------
    #: Max per-destination staging buffers the shuffle consumers hold
    #: (16 consumers x (64 KB - 4 KB) / 1 KB).
    max_shuffle_destinations: int = 960
    #: MPI connection budget per node and cost per connection.
    connection_budget_bytes: int = 1 << 30
    connection_bytes: int = 100_000

    @property
    def epochs(self) -> int:
        """Global synchronisation epochs per BFS run."""
        return self.levels + self.bottomup_levels * (self.bottomup_subrounds - 1)

    @property
    def trunk_rate_per_super_node(self) -> float:
        return self.nodes_per_super_node * self.nic_rate / self.oversubscription
