"""Calibration checks: measure the model's free parameters functionally.

The cost model's calibrated constants (work fraction, remote fraction)
claim to describe what the algorithm *does*. This module measures those
same quantities from functional runs so tests can confront the constants
with data — not to re-fit them per run, but to show they sit inside the
behaviourally plausible band at scales the simulator can execute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bfs import DistributedBFS
from repro.core.config import BFSConfig
from repro.graph.csr import CSRGraph
from repro.graph.kronecker import KroneckerGenerator


@dataclass(frozen=True)
class MeasuredFractions:
    """Empirical counterparts of PerfParams' calibrated intensities."""

    scale: int
    nodes: int
    #: records shuffled / (2m directed edge slots)
    work_fraction: float
    #: network bytes / (records * record_bytes) — proxies the remote share
    #: (relay double-counting and headers included, so an upper bound).
    remote_fraction: float
    levels: int
    bu_levels: int


def measure_fractions(
    scale: int,
    nodes: int,
    config: BFSConfig | None = None,
    seed: int = 1,
    num_roots: int = 3,
    nodes_per_super_node: int = 4,
) -> MeasuredFractions:
    """Average the intensity fractions over a few roots."""
    edges = KroneckerGenerator(scale=scale, seed=seed).generate()
    graph = CSRGraph.from_edges(edges)
    cfg = config or BFSConfig()
    bfs = DistributedBFS(
        edges, nodes, config=cfg, nodes_per_super_node=nodes_per_super_node
    )
    roots = np.flatnonzero(graph.degrees() > 0)[:num_roots]
    work, remote, levels, bu = [], [], [], []
    slots = 2 * edges.num_edges
    for root in roots:
        result = bfs.run(int(root))
        records = result.stats["records_sent"]
        work.append(records / slots)
        payload = records * cfg.record_bytes
        remote.append(result.stats["bytes"] / payload if payload else 0.0)
        levels.append(result.levels)
        bu.append(result.stats["bu_levels"])
    return MeasuredFractions(
        scale=scale,
        nodes=nodes,
        work_fraction=float(np.mean(work)),
        remote_fraction=float(np.mean(remote)),
        levels=int(np.median(levels)),
        bu_levels=int(np.median(bu)),
    )
