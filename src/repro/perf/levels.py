"""Per-level refinement of the cost model.

The lumped model prices a whole BFS run; this module distributes that work
over a canonical level profile so the model can answer level-resolution
questions (where does time go? which levels are latency-bound?) the way
the functional traces do.

The canonical profile is the empirical shape of direction-optimised BFS on
edge-factor-16 Kronecker graphs — measured from functional runs (see
``repro.perf.calibration``) and effectively scale-free: a couple of tiny
top-down levels, one or two huge bottom-up levels carrying almost all
records, then a shrinking tail.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.config import BFSConfig
from repro.errors import ConfigError
from repro.perf.cost import CostModel
from repro.perf.params import PerfParams

#: Canonical per-level record shares for the hybrid traversal (sums to 1).
#: Shape measured from functional runs at scales 12-16: level 2 (first big
#: top-down) and level 3 (bottom-up bulk) dominate.
HYBRID_LEVEL_SHARES = (0.002, 0.188, 0.58, 0.20, 0.028, 0.002)
#: Directions of those levels under the Beamer policy.
HYBRID_LEVEL_DIRECTIONS = (
    "topdown", "topdown", "bottomup", "bottomup", "topdown", "topdown",
)


@dataclass(frozen=True)
class LevelCost:
    level: int
    direction: str
    record_share: float
    data_seconds: float
    overhead_seconds: float

    @property
    def seconds(self) -> float:
        return self.data_seconds + self.overhead_seconds

    @property
    def latency_bound(self) -> bool:
        return self.overhead_seconds > self.data_seconds


class LevelModel:
    """Distribute a lumped run cost over the canonical level profile."""

    def __init__(self, params: PerfParams | None = None,
                 shares=HYBRID_LEVEL_SHARES, directions=HYBRID_LEVEL_DIRECTIONS):
        if len(shares) != len(directions):
            raise ConfigError("shares and directions must align")
        if abs(sum(shares) - 1.0) > 1e-6:
            raise ConfigError(f"level shares must sum to 1, got {sum(shares)}")
        self.params = params or PerfParams()
        self.cost = CostModel(self.params)
        self.shares = tuple(shares)
        self.directions = tuple(directions)

    def level_costs(
        self,
        nodes: int,
        vertices_per_node: float,
        variant: str | BFSConfig = "relay-cpe",
    ) -> list[LevelCost]:
        """Per-level breakdown whose totals equal the lumped evaluation."""
        point = self.cost.evaluate(nodes, vertices_per_node, variant)
        if not point.ok:
            raise ConfigError(f"configuration crashes: {point.crashed}")
        b = point.breakdown
        data_total = max(b["compute"], b["inject"], b["central"])
        # Per-epoch overheads distribute over levels (BU levels carry their
        # sub-rounds' share of sync + straggle; allgather is per level).
        p = self.params
        epochs_per_level = []
        for d in self.directions:
            epochs_per_level.append(
                p.bottomup_subrounds if d == "bottomup" else 1
            )
        total_epochs = sum(epochs_per_level)
        overhead_total = b["messages"] + b["sync"] + b["straggle"] + b["allgather"]
        out = []
        for i, (share, direction) in enumerate(zip(self.shares, self.directions)):
            overhead = overhead_total * epochs_per_level[i] / total_epochs
            out.append(
                LevelCost(
                    level=i + 1,
                    direction=direction,
                    record_share=share,
                    data_seconds=data_total * share,
                    overhead_seconds=overhead,
                )
            )
        return out

    def total_seconds(self, nodes, vertices_per_node, variant="relay-cpe") -> float:
        return sum(lc.seconds for lc in self.level_costs(nodes, vertices_per_node, variant))

    def latency_bound_levels(self, nodes, vertices_per_node, variant="relay-cpe") -> int:
        """How many levels are dominated by fixed overheads — the paper's
        'high latency is the main reason for inefficiency' at small sizes."""
        return sum(
            lc.latency_bound
            for lc in self.level_costs(nodes, vertices_per_node, variant)
        )
