"""Sensitivity analysis: which conclusions depend on which constants.

The model's calibrated constants are honest free parameters; this module
perturbs each one over a factor range and reports how the headline number
and the key Figure 11/12 *shape claims* respond. Conclusions that survive
2x perturbations of every calibrated constant are robust reproduction
results; anything fragile is flagged.
"""

from __future__ import annotations

from dataclasses import fields, replace
from collections.abc import Sequence

from repro.errors import ConfigError
from repro.perf.params import PerfParams
from repro.perf.scaling import ScalingModel

#: The honest free parameters (see PerfParams docstrings).
CALIBRATED_FIELDS = (
    "work_fraction_optimized",
    "remote_fraction",
    "imbalance",
    "straggle_coeff",
    "mpe_node_rate",
)


def perturbed_params(field_name: str, factor: float) -> PerfParams:
    base = PerfParams()
    if field_name not in {f.name for f in fields(PerfParams)}:
        raise ConfigError(f"unknown parameter {field_name!r}")
    if factor <= 0:
        raise ConfigError(f"factor must be positive, got {factor}")
    value = getattr(base, field_name) * factor
    return replace(base, **{field_name: value})


def shape_claims(model: ScalingModel) -> dict[str, bool]:
    """The Figure 11/12 claims as booleans under one parameterisation."""
    f11 = model.fig11_all()
    by = {v: {p.nodes: p for p in pts} for v, pts in f11.items()}
    full = {
        vpn: model.fig12_series(vpn)[-1].gteps
        for vpn in (1.6e6, 6.5e6, 26.2e6)
    }
    cpe_over_mpe = [
        by["relay-cpe"][n].gteps / by["relay-mpe"][n].gteps
        for n in (256, 4096, 40768)
    ]
    rc = [p.gteps for p in f11["relay-cpe"]]
    return {
        "direct_cpe_crashes": by["direct-cpe"][1024].crashed == "spm-overflow",
        "direct_mpe_crashes": by["direct-mpe"][16384].crashed
        == "connection-memory",
        "cpe_beats_mpe_severalfold": min(cpe_over_mpe) > 3,
        "relay_cpe_monotone": all(b > a for a, b in zip(rc, rc[1:])),
        "size_gaps_hold": 1.7 < full[6.5e6] / full[1.6e6] < 6
        and 1.7 < full[26.2e6] / full[6.5e6] < 6,
        "headline_within_3x": 1 / 3
        < model.headline().gteps / 23_755.7
        < 3,
    }


def sweep(
    factors: Sequence[float] = (0.5, 2.0),
    field_names: Sequence[str] = CALIBRATED_FIELDS,
) -> dict[tuple[str, float], dict[str, bool | float]]:
    """Perturb each calibrated constant; return claims + headline per case."""
    out: dict[tuple[str, float], dict] = {}
    for name in field_names:
        for factor in factors:
            model = ScalingModel(perturbed_params(name, factor))
            row: dict[str, bool | float] = dict(shape_claims(model))
            row["headline_gteps"] = model.headline().gteps
            out[(name, factor)] = row
    return out


def robust_claims(results=None) -> list[str]:
    """Claims that hold under every perturbation in the sweep."""
    results = results or sweep()
    claims = [k for k in next(iter(results.values())) if k != "headline_gteps"]
    return [
        c for c in claims if all(bool(row[c]) for row in results.values())
    ]
