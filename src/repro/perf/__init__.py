"""Analytic performance model for full-machine projections.

The functional simulator executes the real algorithm up to ~64 nodes; the
paper's evaluation runs up to 40,768. This package closes the gap with a
closed-form cost model per (node count, vertices/node, variant):

- data terms — shuffle compute, NIC injection, the 1:4-oversubscribed
  central trunk — scale with per-node volume;
- fixed terms — per-level collectives, hub-bitmap allgathers (the paper's
  "does not scale well" operation), per-message MPE overheads, straggler
  skew — scale with node count and level structure;
- failure conditions — SPM staging overflow (Direct CPE) and MPI
  connection memory (Direct *) — reproduce Figure 11's crash points.

All constants live in :class:`~repro.perf.params.PerfParams` with their
provenance; :class:`~repro.perf.scaling.ScalingModel` produces the Figure
11/12 series and the Table 2 comparison.
"""

from repro.perf.params import PerfParams
from repro.perf.cost import CostModel, PerfPoint
from repro.perf.scaling import ScalingModel, TABLE2_PUBLISHED

__all__ = [
    "PerfParams",
    "CostModel",
    "PerfPoint",
    "ScalingModel",
    "TABLE2_PUBLISHED",
]
