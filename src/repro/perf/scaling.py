"""Figure-level sweeps and the Table 2 comparison.

:class:`ScalingModel` turns the cost model into the paper's evaluation
series: the Figure 11 technique comparison at 16 M vertices/node, the
Figure 12 weak scaling at three per-node sizes, the headline full-machine
point, and the Table 2 literature comparison with our reproduced number
inserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.cost import CostModel, PerfPoint
from repro.perf.params import PerfParams

#: Node counts of the Figure 11 sweep (powers of four up to the machine).
FIG11_NODE_COUNTS = (64, 256, 1024, 4096, 16384, 40768)
#: Average vertices per node in Figure 11 ("16 million").
FIG11_VERTICES_PER_NODE = 16e6
#: Figure 11's four lines.
FIG11_VARIANTS = ("direct-mpe", "direct-cpe", "relay-mpe", "relay-cpe")

#: Figure 12: node counts and the three per-node sizes (1.6M/6.5M/26.2M,
#: giving 2^36 / 2^38 / 2^40 vertices at 40,768 nodes).
FIG12_NODE_COUNTS = (80, 320, 1280, 2560, 5120, 10240, 20480, 40768)
FIG12_VERTICES_PER_NODE = (1.6e6, 6.5e6, 26.2e6)

#: Full machine as used for the Graph500 submission.
FULL_MACHINE_NODES = 40_768
HEADLINE_VERTICES_PER_NODE = (1 << 40) / FULL_MACHINE_NODES  # scale-40 run
PAPER_HEADLINE_GTEPS = 23_755.7


@dataclass(frozen=True)
class Table2Row:
    authors: str
    year: int
    scale: int
    gteps: float
    processors: str
    architecture: str
    heterogeneous: bool


#: Table 2 of the paper, verbatim.
TABLE2_PUBLISHED = (
    Table2Row("Ueno", 2013, 35, 317.0, "1,366 (16.4K cores) + 4096", "Xeon X5670 + Fermi M2050", True),
    Table2Row("Beamer", 2013, 35, 240.0, "7,187 (115.0K cores)", "Cray XK6", False),
    Table2Row("Hiragushi", 2013, 31, 117.0, "1,024", "Tesla M2090", True),
    Table2Row("Checconi", 2014, 40, 15_363.0, "65,536 (1.05M cores)", "Blue Gene/Q", False),
    Table2Row("Buluc", 2015, 36, 865.3, "4,817 (115.6K cores)", "Cray XC30", False),
    Table2Row("K Computer", 2015, 40, 38_621.4, "82,944 (663.5K cores)", "SPARC64 VIIIfx", False),
    Table2Row("Bisson", 2016, 33, 830.0, "4,096", "Kepler K20X", True),
    Table2Row("Present Work", 2016, 40, PAPER_HEADLINE_GTEPS, "40,768 (10.6M cores)", "SW26010", True),
)


@dataclass
class ScalingModel:
    """Evaluation-series factory over one cost model."""

    params: PerfParams = field(default_factory=PerfParams)

    def __post_init__(self) -> None:
        self.cost = CostModel(self.params)

    # ---------------------------------------------------------------- figure 11 --
    def fig11_point(self, variant: str, nodes: int) -> PerfPoint:
        return self.cost.evaluate(nodes, FIG11_VERTICES_PER_NODE, variant)

    def fig11_series(self, variant: str, node_counts=FIG11_NODE_COUNTS) -> list[PerfPoint]:
        return [self.fig11_point(variant, n) for n in node_counts]

    def fig11_all(self, node_counts=FIG11_NODE_COUNTS) -> dict[str, list[PerfPoint]]:
        return {v: self.fig11_series(v, node_counts) for v in FIG11_VARIANTS}

    # ---------------------------------------------------------------- figure 12 --
    def fig12_series(self, vertices_per_node: float, node_counts=FIG12_NODE_COUNTS):
        return [
            self.cost.evaluate(n, vertices_per_node, "relay-cpe")
            for n in node_counts
        ]

    def fig12_all(self, node_counts=FIG12_NODE_COUNTS) -> dict[float, list[PerfPoint]]:
        return {
            vpn: self.fig12_series(vpn, node_counts)
            for vpn in FIG12_VERTICES_PER_NODE
        }

    # ------------------------------------------------------------- strong scaling --
    def strong_scaling(
        self,
        scale: int = 36,
        node_counts=FIG12_NODE_COUNTS,
        variant: str = "relay-cpe",
    ) -> list[PerfPoint]:
        """Fixed total problem, growing node counts (extension: the paper
        only reports weak scaling). Per-node data shrinks as nodes grow, so
        fixed per-node/per-level overheads eventually dominate and the
        curve rolls off — the same mechanism behind Figure 12's small-size
        lines."""
        total_vertices = float(1 << scale)
        return [
            self.cost.evaluate(n, total_vertices / n, variant)
            for n in node_counts
            if total_vertices / n >= 1
        ]

    # ------------------------------------------------------------------ headline --
    def headline(self) -> PerfPoint:
        """The scale-40 full-machine run behind the 23,755.7 GTEPS entry."""
        return self.cost.evaluate(
            FULL_MACHINE_NODES, HEADLINE_VERTICES_PER_NODE, "relay-cpe"
        )

    def headline_vs_paper(self) -> float:
        """Our modelled headline as a fraction of the published number."""
        return self.headline().gteps / PAPER_HEADLINE_GTEPS

    # --------------------------------------------------------------- whole benchmark --
    def full_benchmark_time(
        self,
        nodes: int = FULL_MACHINE_NODES,
        vertices_per_node: float = HEADLINE_VERTICES_PER_NODE,
        variant: str = "relay-cpe",
        num_roots: int = 64,
    ) -> dict[str, float]:
        """Wall-time estimate for the *entire* benchmark (steps 1-6).

        The paper scaled every step, not just the kernel ("we also balance
        the graph partitioning and optimize the BFS verification algorithm
        to scale the entire benchmark"). Per step:

        - generation: embarrassingly parallel Kronecker sampling, priced at
          cluster DMA rate over the 16 B raw tuples;
        - construction: ship each node its partition + two sort passes;
        - kernel: ``num_roots`` x the cost model's per-root time;
        - validation: per root, a depth-resolution sweep (~levels epochs)
          plus a depth allgather — about half a kernel run each.
        """
        p = self.params
        per_node_tuples = vertices_per_node * p.edge_factor * 16  # bytes
        generate = 2 * per_node_tuples / (28.9e9)
        construct = per_node_tuples / p.nic_rate + 2 * per_node_tuples / 28.9e9
        kernel_point = self.cost.evaluate(nodes, vertices_per_node, variant)
        kernel = num_roots * kernel_point.total_seconds
        validate = num_roots * 0.5 * kernel_point.total_seconds
        return {
            "generate": generate,
            "construct": construct,
            "kernel": kernel,
            "validate": validate,
            "total": generate + construct + kernel + validate,
        }

    # -------------------------------------------------------------------- table 2 --
    def table2_rows(self) -> list[tuple[Table2Row, float | None]]:
        """Published rows, with our reproduced GTEPS attached to ours."""
        ours = self.headline().gteps
        return [
            (row, ours if row.authors == "Present Work" else None)
            for row in TABLE2_PUBLISHED
        ]
