"""Closed-form per-configuration cost evaluation.

``CostModel.evaluate(nodes, vertices_per_node, variant)`` prices one BFS
run and returns a :class:`PerfPoint`: the GTEPS estimate, the total time,
a term-by-term breakdown, and — for infeasible configurations — the crash
reason instead of a number. The structure:

    T = max(T_compute, T_inject, T_central)        # overlapped data paths
        + T_messages + T_sync + T_allgather + T_straggle   # serial overheads

Crashes:

- Direct + CPE with more destinations than SPM staging can hold ->
  ``spm-overflow`` (Figure 11: Direct CPE dies past 256 nodes);
- Direct with more peers than the MPI memory budget -> ``connection-
  memory`` (Figure 11: Direct MPE dies at 16,384 nodes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import BFSConfig
from repro.baselines.variants import variant_config
from repro.errors import ConfigError
from repro.perf.params import PerfParams


@dataclass(frozen=True)
class PerfPoint:
    """One evaluated (nodes, vertices/node, variant) configuration."""

    nodes: int
    vertices_per_node: float
    variant: str
    gteps: float
    total_seconds: float
    breakdown: dict = field(default_factory=dict)
    crashed: str | None = None

    @property
    def ok(self) -> bool:
        return self.crashed is None

    @property
    def total_edges(self) -> float:
        return self.nodes * self.vertices_per_node * 16


class CostModel:
    """Price BFS runs under :class:`PerfParams`."""

    def __init__(self, params: PerfParams | None = None):
        self.params = params or PerfParams()

    # ------------------------------------------------------------------ util --
    def _config_for(self, variant: str | BFSConfig) -> BFSConfig:
        if isinstance(variant, BFSConfig):
            return variant
        return variant_config(variant)

    def _work_fractions(self, cfg: BFSConfig) -> tuple[float, float]:
        """(work fraction of 2m, remote fraction of records) for a config."""
        p = self.params
        if not cfg.direction_optimizing:
            return p.work_fraction_topdown, p.remote_fraction_no_hubs
        if not cfg.use_hub_prefetch:
            return p.work_fraction_no_hubs, p.remote_fraction_no_hubs
        return p.work_fraction_optimized, p.remote_fraction

    def _check_crash(self, cfg: BFSConfig, nodes: int) -> str | None:
        p = self.params
        if not cfg.use_relay:
            if cfg.use_cpe_clusters and nodes > p.max_shuffle_destinations:
                return "spm-overflow"
            if (nodes - 1) * p.connection_bytes > p.connection_budget_bytes:
                return "connection-memory"
        return None

    # -------------------------------------------------------------- evaluation --
    def evaluate(
        self,
        nodes: int,
        vertices_per_node: float,
        variant: str | BFSConfig = "relay-cpe",
    ) -> PerfPoint:
        if nodes < 1 or vertices_per_node <= 0:
            raise ConfigError(
                f"bad configuration: {nodes} nodes, {vertices_per_node} vpn"
            )
        p = self.params
        cfg = self._config_for(variant)
        name = cfg.variant_name
        crashed = self._check_crash(cfg, nodes)
        if crashed:
            return PerfPoint(nodes, vertices_per_node, name, 0.0, math.inf,
                             crashed=crashed)

        edges_per_node = vertices_per_node * p.edge_factor
        edge_slots_per_node = 2 * edges_per_node
        work, remote = self._work_fractions(cfg)
        records = work * edge_slots_per_node  # per node, whole run
        local_scale = 1.0 if nodes == 1 else 1.0
        bytes_shuffled = records * p.record_bytes
        remote_bytes = (0.0 if nodes == 1 else remote * bytes_shuffled)
        hops = 2.0 if cfg.use_relay else 1.0

        # --- overlapped data paths -------------------------------------------
        rate = p.cpe_node_rate if cfg.use_cpe_clusters else p.mpe_node_rate
        t_compute = p.compute_passes * bytes_shuffled / rate * p.imbalance
        # Optional wire compression (config knob; Section 7 future work)
        # shrinks network volume but not compute.
        wire_bytes = remote_bytes / cfg.compression_ratio
        t_inject = hops * wire_bytes / p.nic_rate * p.imbalance * local_scale
        cross_frac = max(0.0, 1.0 - p.nodes_per_super_node / nodes)
        t_central = (
            p.oversubscription * wire_bytes * cross_frac / p.nic_rate
        )
        t_data = max(t_compute, t_inject, t_central)

        # --- serial overheads ----------------------------------------------------
        alpha = p.alpha_msg if cfg.use_cpe_clusters else p.alpha_msg_mpe_mode
        if nodes == 1:
            msgs_per_epoch = 0.0
        elif cfg.use_relay:
            n_groups = -(-nodes // p.nodes_per_super_node)
            width = min(nodes, p.nodes_per_super_node)
            # send + recv on both relay stages, data + termination markers.
            msgs_per_epoch = 4.0 * (n_groups + width - 2)
        else:
            msgs_per_epoch = 2.0 * (nodes - 1)
        t_messages = p.epochs * msgs_per_epoch * alpha

        log_p = math.ceil(math.log2(nodes)) if nodes > 1 else 0
        t_sync = p.epochs * log_p * (p.inter_latency + alpha)
        t_straggle = p.epochs * p.straggle_coeff * log_p

        if cfg.use_hub_prefetch and nodes > 1:
            bitmap_bytes = nodes * p.hub_bits_per_node / 8
            flag_bytes = float(nodes)
            t_allgather = (
                p.bitmap_levels * bitmap_bytes
                + (p.levels - p.bitmap_levels) * flag_bytes
            ) / p.nic_rate
        else:
            t_allgather = 0.0

        total = t_data + t_messages + t_sync + t_straggle + t_allgather
        traversed = p.traversed_fraction * nodes * edges_per_node
        gteps = traversed / total / 1e9
        return PerfPoint(
            nodes,
            vertices_per_node,
            name,
            gteps,
            total,
            breakdown={
                "compute": t_compute,
                "inject": t_inject,
                "central": t_central,
                "messages": t_messages,
                "sync": t_sync,
                "straggle": t_straggle,
                "allgather": t_allgather,
            },
        )
