"""Energy model: joules per traversed edge (extension).

The paper's opening frames TaihuLight around "extremely large-scale
computation and power efficiency", and Graph500 has a Green-Graph500
sibling list. This extension prices a BFS run's energy from the same
quantities the cost model already produces:

- **static power** — the machine idles at a floor wattage per node for the
  run's duration (the dominant term for latency-bound runs);
- **data movement** — picojoules per byte through DRAM (DMA) and through
  the network (NIC + switches);
- **per-message overhead** — the MPE cycles burned on software messaging.

Constants are order-of-magnitude engineering numbers for 2016-era HPC
silicon, documented inline; the interesting output is *relative*: which
variant wastes energy where, and how energy/edge scales.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BFSConfig
from repro.errors import ConfigError
from repro.perf.cost import CostModel, PerfPoint
from repro.perf.params import PerfParams


@dataclass(frozen=True)
class EnergyParams:
    #: Node floor power: SW26010 + memory + NIC share, ~375 W (the machine's
    #: 15.4 MW / 40,960 nodes).
    node_static_watts: float = 375.0
    #: DRAM access energy (~15 pJ/byte class for DDR3 systems).
    dram_pj_per_byte: float = 15.0
    #: Network energy end to end (NIC serdes + switch hops, ~50 pJ/byte).
    network_pj_per_byte: float = 50.0
    #: Software messaging energy: the MPE burning its ~3 W for alpha.
    mpe_watts: float = 3.0

    def __post_init__(self) -> None:
        if min(self.node_static_watts, self.dram_pj_per_byte,
               self.network_pj_per_byte, self.mpe_watts) <= 0:
            raise ConfigError("energy parameters must be positive")


@dataclass(frozen=True)
class EnergyPoint:
    point: PerfPoint
    static_joules: float
    dram_joules: float
    network_joules: float
    messaging_joules: float

    @property
    def total_joules(self) -> float:
        return (
            self.static_joules + self.dram_joules
            + self.network_joules + self.messaging_joules
        )

    @property
    def nanojoules_per_edge(self) -> float:
        return self.total_joules / self.point.total_edges * 1e9

    @property
    def gteps_per_megawatt(self) -> float:
        """The Green-Graph500 figure of merit."""
        watts = self.total_joules / self.point.total_seconds
        return self.point.gteps / (watts / 1e6)


class EnergyModel:
    """Energy accounting layered over the cost model."""

    def __init__(self, params: PerfParams | None = None,
                 energy: EnergyParams | None = None):
        self.cost = CostModel(params)
        self.params = self.cost.params
        self.energy = energy or EnergyParams()

    def evaluate(
        self, nodes: int, vertices_per_node: float,
        variant: str | BFSConfig = "relay-cpe",
    ) -> EnergyPoint:
        point = self.cost.evaluate(nodes, vertices_per_node, variant)
        if not point.ok:
            raise ConfigError(f"configuration crashes: {point.crashed}")
        p, e = self.params, self.energy
        cfg = self.cost._config_for(variant)
        work, remote = self.cost._work_fractions(cfg)
        records_bytes = work * 2 * vertices_per_node * p.edge_factor * p.record_bytes
        dram_bytes = nodes * records_bytes * p.compute_passes * 2  # read+write
        hops = 2 if cfg.use_relay else 1
        net_bytes = nodes * remote * records_bytes * hops / cfg.compression_ratio
        msgs_seconds = point.breakdown["messages"] * nodes
        return EnergyPoint(
            point=point,
            static_joules=nodes * e.node_static_watts * point.total_seconds,
            dram_joules=dram_bytes * e.dram_pj_per_byte * 1e-12,
            network_joules=net_bytes * e.network_pj_per_byte * 1e-12,
            messaging_joules=msgs_seconds * e.mpe_watts,
        )
