"""Frame-of-reference integer packing for message payloads.

Section 7: "Message compression is also an important optimization method
[4], [27], [28], which is orthogonal to our work. It may be integrated
with our work in future." This module is that integration: a real codec
(not a modelling knob) in the style HPC BFS codes use — sort the batch by
target id, delta-encode, and bit-pack each field at the width its range
needs, with a small frame header.

The functional simulator uses :func:`encoded_size` to put *exact* encoded
byte counts on the wire (payloads still travel by reference — only time is
simulated); :func:`encode_records` / :func:`decode_records` provide the
full round-trip for verification.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

#: Per-frame header: record count (4), base values (2 x 8), widths (2 x 1).
FRAME_HEADER_BYTES = 4 + 16 + 2


def _bit_width(max_value: int) -> int:
    """Bits needed for values in [0, max_value]."""
    if max_value < 0:
        raise ConfigError(f"negative range: {max_value}")
    return max(1, int(max_value).bit_length())


def _pack(values: np.ndarray, width: int) -> np.ndarray:
    """Bit-pack non-negative ints of ``width`` bits into a byte array."""
    if len(values) == 0:
        return np.empty(0, dtype=np.uint8)
    shifts = np.arange(width, dtype=np.uint64)
    bits = ((values[:, None].astype(np.uint64) >> shifts) & 1).astype(np.uint8)
    return np.packbits(bits.reshape(-1), bitorder="little")


def _unpack(packed: np.ndarray, count: int, width: int) -> np.ndarray:
    """Inverse of :func:`_pack`."""
    if count == 0:
        return np.empty(0, dtype=np.int64)
    bits = np.unpackbits(packed, bitorder="little", count=count * width)
    shifts = np.arange(width, dtype=np.uint64)
    chunks = bits.reshape(count, width).astype(np.uint64)
    return (chunks << shifts).sum(axis=1).astype(np.int64)


def encode_records(u: np.ndarray, v: np.ndarray) -> bytes:
    """Encode (u, v) pairs; pair order is not preserved (sorted by v)."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if u.shape != v.shape or u.ndim != 1:
        raise ConfigError("u and v must be equal-length 1-D arrays")
    if len(u) and (u.min() < 0 or v.min() < 0):
        raise ConfigError("codec requires non-negative ids")
    order = np.argsort(v, kind="stable")
    u, v = u[order], v[order]
    n = len(v)
    if n == 0:
        header = np.zeros(FRAME_HEADER_BYTES, dtype=np.uint8)
        return header.tobytes()
    deltas = np.diff(v, prepend=v[0])
    u_base = int(u.min())
    d_width = _bit_width(int(deltas.max()))
    u_width = _bit_width(int((u - u_base).max()))
    header = (
        np.array([n], dtype="<u4").tobytes()
        + np.array([int(v[0]), u_base], dtype="<i8").tobytes()
        + bytes([d_width, u_width])
    )
    return (
        header
        + _pack(deltas, d_width).tobytes()
        + _pack(u - u_base, u_width).tobytes()
    )


def decode_records(blob: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_records` (returns v-sorted pairs)."""
    if len(blob) < FRAME_HEADER_BYTES:
        raise ConfigError("truncated frame header")
    n = int(np.frombuffer(blob[:4], dtype="<u4")[0])
    v0, u_base = np.frombuffer(blob[4:20], dtype="<i8")
    d_width, u_width = blob[20], blob[21]
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    d_bytes = -(-n * d_width // 8)
    u_bytes = -(-n * u_width // 8)
    body = np.frombuffer(blob[FRAME_HEADER_BYTES:], dtype=np.uint8)
    if len(body) < d_bytes + u_bytes:
        raise ConfigError("truncated frame body")
    deltas = _unpack(body[:d_bytes], n, d_width)
    deltas[0] = 0
    v = int(v0) + np.cumsum(deltas)
    u = int(u_base) + _unpack(body[d_bytes : d_bytes + u_bytes], n, u_width)
    return u, v


def encoded_size(u: np.ndarray, v: np.ndarray) -> int:
    """Exact encoded byte count, without materialising the frame."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    n = len(v)
    if n == 0:
        return FRAME_HEADER_BYTES
    v_sorted = np.sort(v)
    deltas = np.diff(v_sorted)
    d_width = _bit_width(int(deltas.max()) if len(deltas) else 0)
    u_width = _bit_width(int(u.max() - u.min()))
    return FRAME_HEADER_BYTES + -(-n * d_width // 8) + -(-n * u_width // 8)


def compression_ratio(u: np.ndarray, v: np.ndarray, raw_record_bytes: int = 8) -> float:
    """Raw bytes over encoded bytes for one batch."""
    n = len(np.asarray(v))
    if n == 0:
        return 1.0
    return n * raw_record_bytes / encoded_size(u, v)
