"""The TaihuLight interconnect: two-level fat tree + rank-level messaging.

Section 3.3 of the paper: 40,960 nodes on FDR InfiniBand; 256-node super
nodes with full bisection bandwidth at the bottom; a central switching
network with a 1:4 oversubscription on top; static destination-based
routing; and ~100 KB of MPI library memory pinned per connection.

- :mod:`repro.network.topology` — node/super-node geometry and route
  classification;
- :mod:`repro.network.links` — FIFO link servers with bandwidth;
- :mod:`repro.network.cost` — the alpha-beta transfer-time model with
  per-link contention and the central-switch bandwidth cap;
- :mod:`repro.network.connection` — per-node MPI connection memory
  accounting (the Direct-MPE crash at 16,384 nodes lives here);
- :mod:`repro.network.simmpi` — SimMPI, the deterministic message-passing
  runtime the functional BFS runs on.
"""

from repro.network.topology import FatTreeTopology
from repro.network.cost import NetworkModel
from repro.network.connection import ConnectionTable
from repro.network.simmpi import SimCluster, Message

__all__ = [
    "FatTreeTopology",
    "NetworkModel",
    "ConnectionTable",
    "SimCluster",
    "Message",
]
