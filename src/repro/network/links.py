"""FIFO link servers: a bandwidth plus a next-free time.

Every physical resource a message serialises on — a node's NIC in each
direction, and a super node's aggregate up/down pipes into the central
switches — is one :class:`Link`. Contention emerges from FIFO queueing:
two messages on the same link back to back finish later than in parallel.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.sim.resources import Server


class Link(Server):
    """A server whose service time is ``bytes / bandwidth``."""

    __slots__ = ("bandwidth", "bytes_carried")

    def __init__(self, name: str, bandwidth: float):
        if bandwidth <= 0:
            raise ConfigError(f"link {name!r} needs positive bandwidth")
        super().__init__(name)
        self.bandwidth = float(bandwidth)
        self.bytes_carried = 0.0

    def transfer(self, now: float, nbytes: float) -> tuple[float, float]:
        """Queue ``nbytes`` at time ``now``; returns (start, finish)."""
        if nbytes < 0:
            raise ConfigError(f"negative transfer: {nbytes}")
        self.bytes_carried += nbytes
        return self.admit(now, nbytes / self.bandwidth)

    def reset(self) -> None:  # type: ignore[override]
        super().reset()
        self.bytes_carried = 0.0
