"""Collective operations over SimMPI: broadcast, reduce, allreduce, allgather.

The BFS driver charges its per-level control collectives analytically (one
formula, zero events); this module provides the *executed* equivalents —
real message patterns over the simulated fabric — for substrate testing
and for algorithms that want collective semantics (binomial trees for
broadcast/reduce, recursive doubling for allreduce, ring for allgather).

Each collective runs to quiescence on the engine and returns both the
functional results and the completion time, so tests can check the
analytic charges against executed patterns.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any


from repro.errors import ConfigError
from repro.network.simmpi import Message, SimCluster


class Collectives:
    """Stateful collective executor bound to one cluster.

    One collective may run at a time (like a communicator); handlers are
    installed at construction, so build this *instead of* registering your
    own handlers on the same ranks.
    """

    def __init__(self, cluster: SimCluster, item_bytes: int = 8):
        self.cluster = cluster
        self.item_bytes = item_bytes
        self._values: list[Any] = [None] * cluster.num_nodes
        self._pending: dict[int, list[Any]] = {}
        self._op: Callable[[Any, Any], Any] | None = None
        for rank in range(cluster.num_nodes):
            cluster.register(rank, self._on_message)

    @property
    def P(self) -> int:
        return self.cluster.num_nodes

    # ------------------------------------------------------------- plumbing --
    def _on_message(self, msg: Message) -> None:
        kind, payload = msg.payload
        if kind == "set":
            self._values[msg.dst] = payload
        elif kind == "combine":
            assert self._op is not None
            self._values[msg.dst] = self._op(self._values[msg.dst], payload)
        elif kind == "append":
            self._pending.setdefault(msg.dst, []).append(payload)
        else:  # pragma: no cover - defensive
            raise ConfigError(f"unknown collective message {kind!r}")

    def _send(self, src: int, dst: int, kind: str, payload: Any, items: int) -> None:
        self.cluster.send(
            src, dst, f"coll:{kind}", max(1, items) * self.item_bytes,
            payload=(kind, payload),
        )

    def _size_of(self, value: Any) -> int:
        return len(value) if hasattr(value, "__len__") else 1

    # ----------------------------------------------------------- collectives --
    def broadcast(self, root: int, value: Any) -> tuple[list[Any], float]:
        """Binomial-tree broadcast; returns (per-rank values, finish time)."""
        self.cluster.topology.check_node(root)
        self._values = [None] * self.P
        self._values[root] = value
        items = self._size_of(value)
        # Binomial tree on ranks relative to the root, stage by stage so a
        # rank only forwards after it holds the value.
        span = 1
        while span < self.P:
            for rel in range(span):
                rel_dst = rel + span
                if rel_dst >= self.P:
                    continue
                src = (root + rel) % self.P
                dst = (root + rel_dst) % self.P
                self._send(src, dst, "set", value, items)
            self.cluster.engine.run_until_quiescent()
            span *= 2
        return list(self._values), self.cluster.engine.now

    def reduce(
        self, root: int, contributions: list[Any], op: Callable[[Any, Any], Any]
    ) -> tuple[Any, float]:
        """Binomial-tree reduction to ``root``."""
        if len(contributions) != self.P:
            raise ConfigError("need one contribution per rank")
        self._values = list(contributions)
        self._op = op
        items = self._size_of(contributions[0])
        span = 1
        while span < self.P:
            for rel in range(0, self.P, span * 2):
                rel_src = rel + span
                if rel_src >= self.P:
                    continue
                src = (root + rel_src) % self.P
                dst = (root + rel) % self.P
                # Value sent is whatever src has accumulated by then;
                # functional ordering matches because lower spans flushed
                # to quiescence first.
                self._send(src, dst, "combine", self._values[src], items)
            self.cluster.engine.run_until_quiescent()
            span *= 2
        return self._values[root], self.cluster.engine.now

    def allreduce(
        self, contributions: list[Any], op: Callable[[Any, Any], Any]
    ) -> tuple[list[Any], float]:
        """Recursive doubling (power-of-two ranks) or reduce+broadcast."""
        if len(contributions) != self.P:
            raise ConfigError("need one contribution per rank")
        p = self.P
        if p & (p - 1) == 0 and p > 1:
            self._values = list(contributions)
            self._op = op
            items = self._size_of(contributions[0])
            span = 1
            while span < p:
                snapshot = list(self._values)
                for rank in range(p):
                    self._send(rank, rank ^ span, "combine", snapshot[rank], items)
                self.cluster.engine.run_until_quiescent()
                span *= 2
            return list(self._values), self.cluster.engine.now
        total, _ = self.reduce(0, contributions, op)
        values, t = self.broadcast(0, total)
        return values, t

    def allgather(self, contributions: list[Any]) -> tuple[list[list[Any]], float]:
        """Ring allgather: P-1 steps, each rank forwarding what it received."""
        if len(contributions) != self.P:
            raise ConfigError("need one contribution per rank")
        items = self._size_of(contributions[0])
        self._pending = {r: [contributions[r]] for r in range(self.P)}
        carried = list(contributions)
        for _step in range(self.P - 1):
            for rank in range(self.P):
                self._send(rank, (rank + 1) % self.P, "append", carried[rank], items)
            self.cluster.engine.run_until_quiescent()
            carried = [self._pending[r][-1] for r in range(self.P)]
        return [self._pending[r] for r in range(self.P)], self.cluster.engine.now
