"""MPI connection-memory accounting.

Section 3.3: "every connection uses 100 KB memory due to the MPI library, so
an MPE needs 4 GB memory just for establishing connections" at 40,000 peers.
Group-based batching (Section 4.4) cuts the peer set from N*M to N+M-1,
"reducing the MPI library memory overhead from 4 GB to approximately 40 MB".

The table records every distinct peer a node has exchanged a message with
and charges the per-connection cost against a budget; exceeding the budget
raises :class:`~repro.errors.ConnectionMemoryExhausted` — the Figure 11
Direct-MPE crash at 16,384 nodes.
"""

from __future__ import annotations

from repro.errors import ConnectionMemoryExhausted
from repro.machine.specs import NodeSpec


class ConnectionTable:
    """Distinct-peer tracking with a memory budget for one node."""

    def __init__(self, node_id: int, spec: NodeSpec):
        self.node_id = node_id
        self.bytes_per_connection = spec.mpi_connection_bytes
        self.budget = spec.mpi_memory_budget
        self.peers: set[int] = set()

    @property
    def count(self) -> int:
        return len(self.peers)

    @property
    def memory_used(self) -> int:
        return self.count * self.bytes_per_connection

    def ensure(self, peer: int) -> None:
        """Record a connection to ``peer`` (idempotent); enforce the budget."""
        if peer == self.node_id or peer in self.peers:
            return
        needed = (self.count + 1) * self.bytes_per_connection
        if needed > self.budget:
            raise ConnectionMemoryExhausted(
                f"{self.count + 1} MPI connections need {needed} B, "
                f"budget is {self.budget} B",
                node=self.node_id,
            )
        self.peers.add(peer)

    def require(self, n_peers: int) -> None:
        """Assert the budget can hold ``n_peers`` connections *at all*.

        Used at job construction: MPI connections to every potential peer
        are established up front, so a configuration that needs more peers
        than the budget allows dies before the first message — exactly how
        the paper's Direct runs failed at 16,384 nodes.
        """
        needed = n_peers * self.bytes_per_connection
        if needed > self.budget:
            raise ConnectionMemoryExhausted(
                f"{n_peers} MPI connections need {needed} B, "
                f"budget is {self.budget} B",
                node=self.node_id,
            )

    def reset(self) -> None:
        self.peers.clear()
