"""SimMPI: a deterministic rank-level message-passing runtime.

This is the substitute for MPI on 40,768 nodes: each simulated node is a
*rank* with a registered message handler; sends charge the fat-tree link
model and deliver by scheduling the destination handler on the
discrete-event engine. Payloads are passed by reference (numpy arrays) —
only *time* is simulated, data moves functionally.

Connection accounting is live: the first message between two ranks creates
connections on both ends, and either side may crash with
:class:`~repro.errors.ConnectionMemoryExhausted` exactly like the paper's
Direct-MPE baseline did.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.machine.specs import MachineSpec, TAIHULIGHT
from repro.network.connection import ConnectionTable
from repro.network.cost import NetworkModel
from repro.network.topology import FatTreeTopology
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry


@dataclass(slots=True, eq=False)
class Message:
    """One simulated message (header plus by-reference payload).

    Constructed exactly once per send; ``arrival_time`` starts at ``-1.0``
    and is filled in by the injection step once the link model has priced
    the transfer. Identity comparison (``eq=False``) keeps messages
    hashable and reflects what they are: unique in-flight objects, not
    values.
    """

    src: int
    dst: int
    tag: str
    nbytes: int
    payload: Any = None
    send_time: float = 0.0
    arrival_time: float = 0.0


Handler = Callable[[Message], None]

#: Batch width at which :meth:`SimCluster.send_batch` switches from the
#: plain pricing loop to vectorised :meth:`NetworkModel.price_batch` (both
#: produce bit-identical prices; this is purely a constant-factor choice).
_VECTOR_THRESHOLD = 32


class SimCluster:
    """A set of ranks over one engine, network model and stats registry."""

    def __init__(
        self,
        engine: Engine,
        num_nodes: int,
        spec: MachineSpec = TAIHULIGHT,
        nodes_per_super_node: int | None = None,
        track_connections: bool = True,
    ):
        if num_nodes <= 0:
            raise ConfigError(f"cluster needs at least one node, got {num_nodes}")
        self.engine = engine
        self.spec = spec
        self.topology = FatTreeTopology(
            num_nodes,
            nodes_per_super_node=(
                nodes_per_super_node
                if nodes_per_super_node is not None
                else spec.taihulight.nodes_per_super_node
            ),
            central_oversubscription=spec.taihulight.central_oversubscription,
        )
        self.network = NetworkModel(self.topology, spec)
        self.stats = StatsRegistry()
        # Hot-path counters, resolved once (the registry hands out the same
        # Counter object for a name forever).
        self._stat_messages = self.stats.counter("messages")
        self._stat_bytes = self.stats.counter("bytes")
        self._stat_central_messages = self.stats.counter("central_messages")
        self._stat_central_bytes = self.stats.counter("central_bytes")
        self._stat_dead_letters = self.stats.counter("dead_letters")
        self.track_connections = track_connections
        self.connections = [
            ConnectionTable(i, spec.node) for i in range(num_nodes)
        ]
        self._handlers: dict[int, Handler] = {}
        self._dead: set[int] = set()
        #: Optional :class:`repro.telemetry.Telemetry`; when set, sends
        #: also count into per-tag labeled families.
        self.telemetry = None

    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes

    # -- wiring -------------------------------------------------------------
    def register(self, rank: int, handler: Handler) -> None:
        """Install the message handler for ``rank`` (exactly one per rank)."""
        self.topology.check_node(rank)
        if rank in self._handlers:
            raise SimulationError(f"rank {rank} already has a handler")
        self._handlers[rank] = handler

    # -- node lifecycle -------------------------------------------------------
    def deregister(self, rank: int) -> None:
        """Mark ``rank`` crashed: its handler is removed and every message
        addressed to (or injected by) it from now on is counted under the
        ``dead_letters`` stat instead of raising inside the engine."""
        self.topology.check_node(rank)
        self._handlers.pop(rank, None)
        self._dead.add(rank)

    def revive(self, rank: int, handler: Handler) -> None:
        """Bring a crashed rank back (a replacement node taking over the
        rank): clears the dead mark and installs a fresh handler."""
        self.topology.check_node(rank)
        self._dead.discard(rank)
        self._handlers[rank] = handler

    def is_alive(self, rank: int) -> bool:
        return rank not in self._dead

    def dead_ranks(self) -> frozenset[int]:
        return frozenset(self._dead)

    # -- sending --------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        tag: str,
        nbytes: int,
        payload: Any = None,
        at_time: float | None = None,
    ) -> Message:
        """Inject a message; its handler fires at the modelled arrival time.

        ``at_time`` lets callers queue a send for when their MPE finishes
        preparing it; default is engine-now.
        """
        if nbytes < 0:
            raise ConfigError(f"negative message size: {nbytes}")
        now = self.engine.now if at_time is None else at_time
        if at_time is not None and at_time < self.engine.now:
            raise SimulationError("cannot send in the past")
        if self.track_connections:
            journal = self.engine.journal
            if journal is None:
                self.connections[src].ensure(dst)
                self.connections[dst].ensure(src)
            else:
                # Parallel drain worker: connection tables are shared
                # across lanes and ensure() budget-checks, so the op is
                # journaled and replayed (idempotently) at the sync point
                # in exact global order — a budget exhaustion raises at
                # the same event it would have sequentially.
                if dst not in self.connections[src].peers:
                    journal.ensure(self.connections[src], dst)
                if src not in self.connections[dst].peers:
                    journal.ensure(self.connections[dst], src)
        msg = Message(src, dst, tag, nbytes, payload, now, -1.0)
        self._stat_messages.add()
        self._stat_bytes.add(nbytes)
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("messages_by_tag", tag=tag).add()
            tel.metrics.counter("bytes_by_tag", tag=tag).add(nbytes)
        if src != dst and not self.topology.is_intra_super_node(src, dst):
            self._stat_central_messages.add()
            self._stat_central_bytes.add(nbytes)
        # Inject through the engine so link admissions happen in simulated-
        # time order — the FIFO link servers are only exact under ordered
        # arrivals (out-of-order future admissions would fabricate idle gaps).
        self.engine.call_at(now, self._inject, msg)
        return msg

    def send_batch(
        self,
        src: int,
        dests: np.ndarray,
        tag: str,
        nbytes: np.ndarray,
        payloads: Sequence[Any] | None = None,
        at_times: np.ndarray | None = None,
    ) -> list[Message]:
        """Inject ``N`` same-tag messages from one source in one call.

        Semantically identical to ``N`` :meth:`send` calls in batch order —
        same arrival times, same stats, same delivery interleaving with
        every other sender — but validation, connection accounting, stats
        counters and route pricing happen once per batch instead of once
        per message. Each message still gets its own injection event, so
        FIFO link admission runs in global simulated-time order (the only
        order in which the shared ``free_at`` recurrences are exact).

        When a fault injector has wrapped :meth:`send`, the batch degrades
        to per-message calls through the wrapper so per-message fault
        draws stay on the path.
        """
        # Plain lists pass through untouched (every element a Python int);
        # arrays are converted once. Either spelling is accepted from
        # callers — the driver sends lists to skip the round trip.
        if type(dests) is list:
            dests_l = dests
        else:
            dests_l = np.asarray(dests, dtype=np.int64).tolist()
        if type(nbytes) is list:
            nbytes_l = nbytes
        else:
            nbytes_l = np.asarray(nbytes, dtype=np.int64).tolist()
        n = len(dests_l)
        if len(nbytes_l) != n or (payloads is not None and len(payloads) != n):
            raise ConfigError("send_batch arrays must have equal lengths")
        if n == 0:
            return []
        now = self.engine.now
        if at_times is None:
            at_list = [now] * n
        else:
            if type(at_times) is list:
                at_list = at_times
            else:
                at_list = np.asarray(at_times, dtype=np.float64).tolist()
            if len(at_list) != n:
                raise ConfigError("send_batch arrays must have equal lengths")
            if min(at_list) < now:
                raise SimulationError("cannot send in the past")
        if "send" in self.__dict__:
            # An interceptor (fault injector) owns the send path; keep its
            # per-message semantics.
            return [
                self.send(
                    src, d, tag, nb,
                    payload=None if payloads is None else payloads[i],
                    at_time=at_list[i],
                )
                for i, (d, nb) in enumerate(zip(dests_l, nbytes_l))
            ]
        if min(nbytes_l) < 0:
            raise ConfigError(f"negative message size: {min(nbytes_l)}")
        if min(dests_l) < 0 or max(dests_l) >= self.topology.num_nodes:
            # Raises with the first bad node named.
            self.topology.check_nodes(np.asarray(dests_l, dtype=np.int64))
        if self.track_connections:
            my_table = self.connections[src]
            my_peers = my_table.peers
            connections = self.connections
            journal = self.engine.journal
            if journal is None:
                for d in dests_l:
                    # Steady state is two set-membership hits; ensure()
                    # only runs (and budget-checks) the first time a pair
                    # appears.
                    if d not in my_peers:
                        my_table.ensure(d)
                    other = connections[d]
                    if src not in other.peers:
                        other.ensure(src)
            else:
                # See send(): journaled, replayed idempotently at merge.
                for d in dests_l:
                    if d not in my_peers:
                        journal.ensure(my_table, d)
                    other = connections[d]
                    if src not in other.peers:
                        journal.ensure(other, src)
        self._stat_messages.add(n)
        self._stat_bytes.add(sum(nbytes_l))
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("messages_by_tag", tag=tag).add(n)
            tel.metrics.counter("bytes_by_tag", tag=tag).add(sum(nbytes_l))
        payload_list = (None,) * n if payloads is None else payloads
        network = self.network
        nic_in, downlink = network.nic_in, network.downlink
        nps = self.topology.nodes_per_super_node
        sn_src = src // nps
        out = network.nic_out[src]
        up = network.uplink[sn_src]
        msgs = []
        argses = []
        if n >= _VECTOR_THRESHOLD:
            # Vectorised pricing: worth the fixed numpy call overhead only
            # for wide fan-outs (large eol broadcasts in direct mode).
            dests = np.asarray(dests_l, dtype=np.int64)
            nbytes = np.asarray(nbytes_l, dtype=np.int64)
            sn = self.topology.super_ids
            central = dests != src
            np.logical_and(central, sn[dests] != sn_src, out=central)
            n_central = int(np.count_nonzero(central))
            if n_central:
                self._stat_central_messages.add(n_central)
                self._stat_central_bytes.add(int(nbytes[central].sum()))
            d_nic, d_trunk, latency, intra = network.price_batch(
                src, dests, nbytes
            )
            sn_dst = sn[dests]
            d_nic, d_trunk = d_nic.tolist(), d_trunk.tolist()
            latency, intra = latency.tolist(), intra.tolist()
            for i, (dst, nb, payload, at) in enumerate(
                zip(dests_l, nbytes_l, payload_list, at_list)
            ):
                msg = Message(src, dst, tag, nb, payload, at, -1.0)
                msgs.append(msg)
                if dst == src:
                    argses.append((msg, (), 0.0))
                elif intra[i]:
                    dn = d_nic[i]
                    argses.append(
                        (msg, ((out, dn), (nic_in[dst], dn)), latency[i])
                    )
                else:
                    dn, dt = d_nic[i], d_trunk[i]
                    argses.append(
                        (msg,
                         ((out, dn), (up, dt), (downlink[sn_dst[i]], dt),
                          (nic_in[dst], dn)),
                         latency[i])
                    )
        else:
            # Narrow batch (the common case: a handful of buckets per module
            # execution): a plain loop beats numpy's per-call overhead, and
            # scalar float division is the same IEEE operation, so prices
            # are bit-identical to price_batch.
            t = self.spec.taihulight
            lat_intra = t.intra_super_node_latency
            lat_inter = t.inter_super_node_latency
            nic_bw, trunk_bw = network.nic_bandwidth, network.trunk_bandwidth
            n_central = 0
            central_bytes = 0
            for dst, nb, payload, at in zip(
                dests_l, nbytes_l, payload_list, at_list
            ):
                msg = Message(src, dst, tag, nb, payload, at, -1.0)
                msgs.append(msg)
                if dst == src:
                    argses.append((msg, (), 0.0))
                    continue
                dn = nb / nic_bw
                sn_dst = dst // nps
                if sn_dst == sn_src:
                    argses.append(
                        (msg, ((out, dn), (nic_in[dst], dn)), lat_intra)
                    )
                else:
                    n_central += 1
                    central_bytes += nb
                    dt = nb / trunk_bw
                    argses.append(
                        (msg,
                         ((out, dn), (up, dt), (downlink[sn_dst], dt),
                          (nic_in[dst], dn)),
                         lat_inter)
                    )
            if n_central:
                self._stat_central_messages.add(n_central)
                self._stat_central_bytes.add(central_bytes)
        self.engine.schedule_batch(at_list, self._inject_batched, argses)
        return msgs

    def _inject(self, msg: Message) -> None:
        if msg.src in self._dead:
            # The sender crashed before its NIC got the message out.
            self._stat_dead_letters.add()
            return
        arrival = self.network.transfer(
            msg.src, msg.dst, msg.nbytes, self.engine.now
        )
        msg.arrival_time = arrival
        self.engine.call_at(arrival, self._deliver, msg)

    def _inject_batched(
        self,
        msg: Message,
        route: tuple,
        latency: float,
    ) -> None:
        """Injection with the route pre-priced: inline FIFO admission.

        Same float operations as :meth:`NetworkModel.transfer` in the same
        order — ``start = max(now, free_at)``, ``finish = start + d`` per
        link — with the per-call route construction and bounds checks
        already paid once for the whole batch.
        """
        if msg.src in self._dead:
            self._stat_dead_letters.add()
            return
        t = self.engine.now
        if not route:  # self-send: no links, no latency
            msg.arrival_time = t
            self.engine.call_at(t, self._deliver, msg)
            return
        nb = msg.nbytes
        for link, d in route:
            link.bytes_carried += nb
            free = link.free_at
            start = t if t > free else free
            t = start + d
            link.free_at = t
            link.busy_time += d
            link.jobs += 1
            if link.intervals is not None:
                link.intervals.append((start, t))
        arrival = t + latency
        msg.arrival_time = arrival
        self.engine.call_at(arrival, self._deliver, msg)

    def _deliver(self, msg: Message) -> None:
        handler = self._handlers.get(msg.dst)
        if handler is None:
            if msg.dst in self._dead:
                self._stat_dead_letters.add()
                return
            raise SimulationError(f"rank {msg.dst} has no handler for {msg.tag!r}")
        handler(msg)

    # -- diagnostics ------------------------------------------------------------
    def max_connections(self) -> int:
        return max(c.count for c in self.connections)

    def total_connection_memory(self) -> int:
        return sum(c.memory_used for c in self.connections)
