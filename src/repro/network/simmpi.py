"""SimMPI: a deterministic rank-level message-passing runtime.

This is the substitute for MPI on 40,768 nodes: each simulated node is a
*rank* with a registered message handler; sends charge the fat-tree link
model and deliver by scheduling the destination handler on the
discrete-event engine. Payloads are passed by reference (numpy arrays) —
only *time* is simulated, data moves functionally.

Connection accounting is live: the first message between two ranks creates
connections on both ends, and either side may crash with
:class:`~repro.errors.ConnectionMemoryExhausted` exactly like the paper's
Direct-MPE baseline did.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

from repro.errors import ConfigError, SimulationError
from repro.machine.specs import MachineSpec, TAIHULIGHT
from repro.network.connection import ConnectionTable
from repro.network.cost import NetworkModel
from repro.network.topology import FatTreeTopology
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry


@dataclass(frozen=True)
class Message:
    """One simulated message (header plus by-reference payload)."""

    src: int
    dst: int
    tag: str
    nbytes: int
    payload: Any = None
    send_time: float = 0.0
    arrival_time: float = 0.0


Handler = Callable[[Message], None]


class SimCluster:
    """A set of ranks over one engine, network model and stats registry."""

    def __init__(
        self,
        engine: Engine,
        num_nodes: int,
        spec: MachineSpec = TAIHULIGHT,
        nodes_per_super_node: int | None = None,
        track_connections: bool = True,
    ):
        if num_nodes <= 0:
            raise ConfigError(f"cluster needs at least one node, got {num_nodes}")
        self.engine = engine
        self.spec = spec
        self.topology = FatTreeTopology(
            num_nodes,
            nodes_per_super_node=(
                nodes_per_super_node
                if nodes_per_super_node is not None
                else spec.taihulight.nodes_per_super_node
            ),
            central_oversubscription=spec.taihulight.central_oversubscription,
        )
        self.network = NetworkModel(self.topology, spec)
        self.stats = StatsRegistry()
        self.track_connections = track_connections
        self.connections = [
            ConnectionTable(i, spec.node) for i in range(num_nodes)
        ]
        self._handlers: dict[int, Handler] = {}
        self._dead: set[int] = set()

    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes

    # -- wiring -------------------------------------------------------------
    def register(self, rank: int, handler: Handler) -> None:
        """Install the message handler for ``rank`` (exactly one per rank)."""
        self.topology.check_node(rank)
        if rank in self._handlers:
            raise SimulationError(f"rank {rank} already has a handler")
        self._handlers[rank] = handler

    # -- node lifecycle -------------------------------------------------------
    def deregister(self, rank: int) -> None:
        """Mark ``rank`` crashed: its handler is removed and every message
        addressed to (or injected by) it from now on is counted under the
        ``dead_letters`` stat instead of raising inside the engine."""
        self.topology.check_node(rank)
        self._handlers.pop(rank, None)
        self._dead.add(rank)

    def revive(self, rank: int, handler: Handler) -> None:
        """Bring a crashed rank back (a replacement node taking over the
        rank): clears the dead mark and installs a fresh handler."""
        self.topology.check_node(rank)
        self._dead.discard(rank)
        self._handlers[rank] = handler

    def is_alive(self, rank: int) -> bool:
        return rank not in self._dead

    def dead_ranks(self) -> frozenset[int]:
        return frozenset(self._dead)

    # -- sending --------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        tag: str,
        nbytes: int,
        payload: Any = None,
        at_time: float | None = None,
    ) -> Message:
        """Inject a message; its handler fires at the modelled arrival time.

        ``at_time`` lets callers queue a send for when their MPE finishes
        preparing it; default is engine-now.
        """
        if nbytes < 0:
            raise ConfigError(f"negative message size: {nbytes}")
        now = self.engine.now if at_time is None else at_time
        if at_time is not None and at_time < self.engine.now:
            raise SimulationError("cannot send in the past")
        if self.track_connections:
            self.connections[src].ensure(dst)
            self.connections[dst].ensure(src)
        msg = Message(src, dst, tag, nbytes, payload, now, -1.0)
        self.stats.counter("messages").add()
        self.stats.counter("bytes").add(nbytes)
        if src != dst and not self.topology.is_intra_super_node(src, dst):
            self.stats.counter("central_messages").add()
            self.stats.counter("central_bytes").add(nbytes)
        # Inject through the engine so link admissions happen in simulated-
        # time order — the FIFO link servers are only exact under ordered
        # arrivals (out-of-order future admissions would fabricate idle gaps).
        self.engine.call_at(now, self._inject, msg)
        return msg

    def _inject(self, msg: Message) -> None:
        if msg.src in self._dead:
            # The sender crashed before its NIC got the message out.
            self.stats.counter("dead_letters").add()
            return
        arrival = self.network.transfer(
            msg.src, msg.dst, msg.nbytes, self.engine.now
        )
        self.engine.call_at(
            arrival,
            self._deliver,
            Message(
                msg.src, msg.dst, msg.tag, msg.nbytes, msg.payload,
                msg.send_time, arrival,
            ),
        )

    def _deliver(self, msg: Message) -> None:
        handler = self._handlers.get(msg.dst)
        if handler is None:
            if msg.dst in self._dead:
                self.stats.counter("dead_letters").add()
                return
            raise SimulationError(f"rank {msg.dst} has no handler for {msg.tag!r}")
        handler(msg)

    # -- diagnostics ------------------------------------------------------------
    def max_connections(self) -> int:
        return max(c.count for c in self.connections)

    def total_connection_memory(self) -> int:
        return sum(c.memory_used for c in self.connections)
