"""Fat-tree geometry: nodes, super nodes, and route classification.

The topology is purely structural — which super node a node lives in and
whether a message crosses the central switches. Bandwidth and latency live
in :mod:`repro.network.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class FatTreeTopology:
    """A two-level fat tree over ``num_nodes`` compute nodes."""

    num_nodes: int
    nodes_per_super_node: int = 256
    central_oversubscription: int = 4

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigError(f"need at least one node, got {self.num_nodes}")
        if self.nodes_per_super_node <= 0:
            raise ConfigError(
                f"bad super node size {self.nodes_per_super_node}"
            )
        if self.central_oversubscription < 1:
            raise ConfigError(
                f"oversubscription must be >= 1, got {self.central_oversubscription}"
            )

    @property
    def num_super_nodes(self) -> int:
        return -(-self.num_nodes // self.nodes_per_super_node)

    def check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ConfigError(f"node {node} out of range [0, {self.num_nodes})")

    def super_node_of(self, node: int) -> int:
        self.check_node(node)
        return node // self.nodes_per_super_node

    def nodes_in_super_node(self, sn: int) -> range:
        if not 0 <= sn < self.num_super_nodes:
            raise ConfigError(f"super node {sn} out of range")
        lo = sn * self.nodes_per_super_node
        return range(lo, min(lo + self.nodes_per_super_node, self.num_nodes))

    def is_intra_super_node(self, src: int, dst: int) -> bool:
        """True when a message stays below the central switches."""
        return self.super_node_of(src) == self.super_node_of(dst)

    def hop_count(self, src: int, dst: int) -> int:
        """Switch hops on the static route (0 self, 2 intra, 4 via central)."""
        self.check_node(src)
        self.check_node(dst)
        if src == dst:
            return 0
        return 2 if self.is_intra_super_node(src, dst) else 4
