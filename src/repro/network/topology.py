"""Fat-tree geometry: nodes, super nodes, and route classification.

The topology is purely structural — which super node a node lives in and
whether a message crosses the central switches. Bandwidth and latency live
in :mod:`repro.network.cost`.

Validation happens at the boundary: :meth:`FatTreeTopology.check_node` /
:meth:`FatTreeTopology.check_nodes` are the entry gates (message injection,
rank registration), while the classification helpers (`super_node_of`,
`is_intra_super_node`, `hop_count`) trust their inputs — they sit on the
per-message hot path and used to burn a bounds check per call from paths
that had already validated. Batch callers should use the precomputed
:attr:`super_ids` array instead of scalar calls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class FatTreeTopology:
    """A two-level fat tree over ``num_nodes`` compute nodes."""

    num_nodes: int
    nodes_per_super_node: int = 256
    central_oversubscription: int = 4

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigError(f"need at least one node, got {self.num_nodes}")
        if self.nodes_per_super_node <= 0:
            raise ConfigError(
                f"bad super node size {self.nodes_per_super_node}"
            )
        if self.central_oversubscription < 1:
            raise ConfigError(
                f"oversubscription must be >= 1, got {self.central_oversubscription}"
            )
        # Lazily built (frozen dataclass: assign around the freeze).
        object.__setattr__(self, "_super_ids", None)

    @property
    def num_super_nodes(self) -> int:
        return -(-self.num_nodes // self.nodes_per_super_node)

    @property
    def super_ids(self) -> np.ndarray:
        """Per-node super-node id, ``super_ids[node] == node // nps``.

        Built on first use and cached; batch paths index this array instead
        of calling :meth:`super_node_of` per message.
        """
        ids = self._super_ids
        if ids is None:
            ids = np.arange(self.num_nodes, dtype=np.int64) // self.nodes_per_super_node
            object.__setattr__(self, "_super_ids", ids)
        return ids

    # -- boundary validation -----------------------------------------------------
    def check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ConfigError(f"node {node} out of range [0, {self.num_nodes})")

    def check_nodes(self, nodes: np.ndarray) -> None:
        """Vectorised :meth:`check_node` over an array of node ids."""
        nodes = np.asarray(nodes)
        if len(nodes) and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            bad = nodes[(nodes < 0) | (nodes >= self.num_nodes)][0]
            raise ConfigError(
                f"node {int(bad)} out of range [0, {self.num_nodes})"
            )

    # -- classification (inputs boundary-validated) ------------------------------
    def super_node_of(self, node: int) -> int:
        return node // self.nodes_per_super_node

    def nodes_in_super_node(self, sn: int) -> range:
        if not 0 <= sn < self.num_super_nodes:
            raise ConfigError(f"super node {sn} out of range")
        lo = sn * self.nodes_per_super_node
        return range(lo, min(lo + self.nodes_per_super_node, self.num_nodes))

    def super_node_span(self, lo: int, hi: int) -> tuple[int, int]:
        """Inclusive super-node range covered by the node range ``[lo, hi)``.

        Engine partition layouts use this to reason about alignment: a
        contiguous node range always maps to a contiguous super-node range,
        so two node ranges share a super node iff their spans intersect.
        """
        if not 0 <= lo < hi <= self.num_nodes:
            raise ConfigError(f"bad node range [{lo}, {hi})")
        return self.super_node_of(lo), self.super_node_of(hi - 1)

    def is_intra_super_node(self, src: int, dst: int) -> bool:
        """True when a message stays below the central switches."""
        return self.super_node_of(src) == self.super_node_of(dst)

    def hop_count(self, src: int, dst: int) -> int:
        """Switch hops on the static route (0 self, 2 intra, 4 via central)."""
        if src == dst:
            return 0
        return 2 if self.is_intra_super_node(src, dst) else 4
