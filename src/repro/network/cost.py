"""Alpha-beta transfer-time model over the fat tree with link contention.

A message from ``src`` to ``dst`` serialises, in order, on:

1. the source node's NIC egress (1.2 GB/s effective, the paper's measured
   per-node bandwidth for large messages);
2. if it leaves the super node: the source super node's aggregate uplink
   and the destination super node's aggregate downlink, each provisioned at
   ``nodes_per_super_node * nic_bw / oversubscription`` — the 1:4 central
   network cap of Section 3.3;
3. the destination node's NIC ingress;

plus a propagation latency (1 us intra, 3 us inter) — the "alpha" — paid
once per message. Per-message *software* cost on the MPE is charged by the
runtime, not here, because it depends on which MPE is free.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.machine.specs import MachineSpec, TAIHULIGHT
from repro.network.links import Link
from repro.network.topology import FatTreeTopology


class NetworkModel:
    """Shared-state link model for one simulated machine."""

    def __init__(self, topology: FatTreeTopology, spec: MachineSpec = TAIHULIGHT):
        self.topology = topology
        self.spec = spec
        t = spec.taihulight
        nic_bw = t.nic_effective_bandwidth
        self.nic_out = [Link(f"nic_out[{i}]", nic_bw) for i in range(topology.num_nodes)]
        self.nic_in = [Link(f"nic_in[{i}]", nic_bw) for i in range(topology.num_nodes)]
        trunk_bw = (
            topology.nodes_per_super_node * nic_bw / topology.central_oversubscription
        )
        n_sn = topology.num_super_nodes
        self.uplink = [Link(f"uplink[{s}]", trunk_bw) for s in range(n_sn)]
        self.downlink = [Link(f"downlink[{s}]", trunk_bw) for s in range(n_sn)]
        self.nic_bandwidth = float(nic_bw)
        self.trunk_bandwidth = float(trunk_bw)

    # -- queries ----------------------------------------------------------------
    def latency(self, src: int, dst: int) -> float:
        t = self.spec.taihulight
        if src == dst:
            return 0.0
        if self.topology.is_intra_super_node(src, dst):
            return t.intra_super_node_latency
        return t.inter_super_node_latency

    def min_cross_latency(
        self, a: tuple[int, int], b: tuple[int, int]
    ) -> float:
        """Minimum propagation latency from node range ``[a0, a1)`` to
        ``[b0, b1)`` (disjoint, non-empty ranges).

        This is the conservative-sync *lookahead* between two engine
        partitions: every link on a route only delays a message further,
        so no cross-partition event can be delivered earlier than its send
        time plus this bound. When the two ranges share no super node,
        every cross message rides the central switches and the bound is
        the inter-super-node latency; when they straddle one, the
        intra-super-node latency is the floor.
        """
        t = self.spec.taihulight
        a_lo, a_hi = self.topology.super_node_span(*a)
        b_lo, b_hi = self.topology.super_node_span(*b)
        if a_lo > b_hi or b_lo > a_hi:
            return t.inter_super_node_latency
        return t.intra_super_node_latency

    def links_on_route(self, src: int, dst: int) -> list[Link]:
        if src == dst:
            return []
        route = [self.nic_out[src]]
        if not self.topology.is_intra_super_node(src, dst):
            route.append(self.uplink[self.topology.super_node_of(src)])
            route.append(self.downlink[self.topology.super_node_of(dst)])
        route.append(self.nic_in[dst])
        return route

    # -- transfers ---------------------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: float, now: float) -> float:
        """Send ``nbytes`` from ``src`` to ``dst`` starting at ``now``.

        Returns the arrival time. Each link on the static route is occupied
        FIFO (store-and-forward at message granularity — conservative but
        simple, and the paper's messages are batched large precisely so that
        per-hop pipelining stops mattering).
        """
        if nbytes < 0:
            raise ConfigError(f"negative message size: {nbytes}")
        self.topology.check_node(src)
        self.topology.check_node(dst)
        if src == dst:
            return now
        t = now
        for link in self.links_on_route(src, dst):
            _, t = link.transfer(t, nbytes)
        return t + self.latency(src, dst)

    # -- batched transfers --------------------------------------------------------
    def price_batch(
        self, src: int, dests: np.ndarray, nbytes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised pricing inputs for ``N`` sends from one source.

        Returns ``(d_nic, d_trunk, latency, intra)``: per-message service
        durations on a NIC and on a central trunk, the propagation latency,
        and the intra-super-node mask. Inputs must be boundary-validated.
        The per-message *admissions* are deliberately not computed here:
        FIFO admission is an order-dependent ``max`` recurrence over shared
        ``free_at`` state and must run in simulated-time order, interleaved
        with every other sender's traffic, to stay exact.
        """
        t = self.spec.taihulight
        sn = self.topology.super_ids
        intra = sn[dests] == sn[src]
        d_nic = nbytes / self.nic_bandwidth
        d_trunk = nbytes / self.trunk_bandwidth
        latency = np.where(
            intra, t.intra_super_node_latency, t.inter_super_node_latency
        )
        return d_nic, d_trunk, latency, intra

    def transfer_batch(
        self,
        src: int,
        dests: np.ndarray,
        nbytes: np.ndarray,
        at_times: np.ndarray,
    ) -> np.ndarray:
        """Price ``N`` transfers from ``src`` in one call; returns arrivals.

        Equivalent to calling :meth:`transfer` once per message in
        simulated-time order (ties broken by batch position), but with the
        per-message route classification, durations and latencies computed
        vectorised up front. The FIFO admissions themselves stay a
        sequential scan: ``start = max(now, free_at)`` chains through every
        link's state, and reassociating that recurrence (e.g. a cumsum over
        idle-free spans) changes float rounding — this path is pinned
        bit-identical against the scalar one.

        Precondition: between ``min(at_times)`` and the last arrival no
        *other* traffic is admitted onto the touched links — the batch owns
        its window. :class:`~repro.network.simmpi.SimCluster` therefore
        defers admission to per-message injection events instead of calling
        this; use this entry point for closed-form batch pricing (analysis,
        collectives sized offline, microbenchmarks).
        """
        dests = np.asarray(dests, dtype=np.int64)
        nbytes = np.asarray(nbytes)
        at_times = np.asarray(at_times, dtype=np.float64)
        if len(nbytes) and nbytes.min() < 0:
            raise ConfigError(f"negative message size: {int(nbytes.min())}")
        self.topology.check_node(src)
        self.topology.check_nodes(dests)
        d_nic, d_trunk, latency, intra = self.price_batch(src, dests, nbytes)
        order = np.argsort(at_times, kind="stable")
        arrivals = np.empty(len(dests), dtype=np.float64)
        out = self.nic_out[src]
        up = self.uplink[self.topology.super_node_of(src)]
        nic_in, downlink = self.nic_in, self.downlink
        sn_dst = self.topology.super_ids[dests]
        for i in order.tolist():
            dst = int(dests[i])
            if dst == src:
                arrivals[i] = at_times[i]
                continue
            nb, dn, dt = nbytes[i], d_nic[i], d_trunk[i]
            if intra[i]:
                route = ((out, dn), (nic_in[dst], dn))
            else:
                route = (
                    (out, dn), (up, dt),
                    (downlink[sn_dst[i]], dt), (nic_in[dst], dn),
                )
            t = at_times[i]
            for link, d in route:
                link.bytes_carried += nb
                _, t = link.admit(t, d)
            arrivals[i] = t + latency[i]
        return arrivals

    # -- bookkeeping ----------------------------------------------------------------
    def all_links(self):
        """Every link in the model (NICs then trunks), for tracing/telemetry."""
        yield from self.nic_out
        yield from self.nic_in
        yield from self.uplink
        yield from self.downlink

    def reset(self) -> None:
        for group in (self.nic_out, self.nic_in, self.uplink, self.downlink):
            for link in group:
                link.reset()

    def total_bytes(self) -> float:
        """Bytes injected at source NICs (each message counted once)."""
        return sum(link.bytes_carried for link in self.nic_out)

    def central_bytes(self) -> float:
        """Bytes that crossed the oversubscribed central switches."""
        return sum(link.bytes_carried for link in self.uplink)
