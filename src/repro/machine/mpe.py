"""Management Processing Element (MPE) model.

The MPE is a single-threaded general-purpose core: it runs MPI, schedules
work onto CPE clusters, and — in the MPE baselines and the small-message
quick path — processes module data itself at main-memory speed (9.4 GB/s
max with 256 B batches, Section 3.2).

Notification between MPEs and CPE clusters cannot use interrupts (10 us
latency, Section 3.1); both sides busy-wait on memory flags, which costs a
couple of round trips through non-coherent main memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.dma import DmaModel
from repro.machine.specs import MachineSpec, TAIHULIGHT


@dataclass(frozen=True)
class Mpe:
    """Timing helpers for work executed on one MPE."""

    spec: MachineSpec = TAIHULIGHT
    dma: DmaModel = field(default_factory=DmaModel)

    def process_time(self, nbytes: float, chunk_bytes: int = 256) -> float:
        """Streaming ``nbytes`` through the MPE (memory-bandwidth bound)."""
        return self.dma.mpe_transfer_time(nbytes, chunk_bytes)

    def notify_cluster_time(self) -> float:
        """MPE -> CPE-cluster notification via a polled memory flag.

        One write by the MPE, one polled read by the representative CPE and
        an in-cluster register broadcast: ~4 main-memory latencies end to end.
        """
        return 4 * self.spec.core_group.mpe.memory_latency

    def interrupt_time(self) -> float:
        """What a hardware interrupt *would* cost (why polling is used)."""
        return self.spec.core_group.mpe.interrupt_latency
