"""Hardware specifications (Table 1) and calibrated performance constants.

Two kinds of numbers live here:

1. **Published specifications** straight from the paper / Table 1
   (frequencies, SPM size, memory sizes, topology counts).
2. **Calibrated model constants** — parameters of the simple analytic models
   we fit so that the micro-benchmarks reproduce the paper's measurements
   (28.9 GB/s cluster DMA at >=256 B chunks, 9.4 GB/s MPE bandwidth,
   saturation at ~16 CPEs, ~10 GB/s register-shuffle throughput, 10 us
   interrupt latency). Each constant documents which measurement pins it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.units import GBPS, GiB, KiB, US, NS


@dataclass(frozen=True)
class MpeSpec:
    """Management Processing Element (one per core group)."""

    frequency_hz: float = 1.45e9
    l1d_bytes: int = 32 * KiB
    l1i_bytes: int = 32 * KiB
    l2_bytes: int = 256 * KiB
    #: Max sustained main-memory bandwidth with 256 B batches (Section 3.2).
    memory_bandwidth: float = 9.4 * GBPS
    #: System-interrupt latency — "about 10 us, ten times Intel's" (Section 3.1).
    interrupt_latency: float = 10 * US
    #: Main-memory access latency ("around one hundred cycles", Section 3.1).
    memory_latency: float = 100 / 1.45e9


@dataclass(frozen=True)
class CpeSpec:
    """Computing Processing Element (64 per cluster)."""

    frequency_hz: float = 1.45e9
    spm_bytes: int = 64 * KiB
    l1i_bytes: int = 16 * KiB
    #: Per-CPE share of DMA bandwidth; calibrated so that ~>=13 CPEs saturate
    #: the cluster's 28.9 GB/s, matching Figure 5's "16 CPEs are enough".
    dma_bandwidth: float = 2.4 * GBPS
    #: Register bus moves up to 256 bits per cycle between row/column peers
    #: with no inter-pair conflicts (Section 3.1).
    register_bus_bytes_per_cycle: int = 32


@dataclass(frozen=True)
class CoreGroupSpec:
    """One core group: 1 MPE + 64 CPEs + 1 memory controller + 8 GB DRAM."""

    mpe: MpeSpec = field(default_factory=MpeSpec)
    cpe: CpeSpec = field(default_factory=CpeSpec)
    cpes_per_cluster: int = 64
    mesh_rows: int = 8
    mesh_cols: int = 8
    dram_bytes: int = 8 * GiB
    #: Peak cluster DMA bandwidth at saturating chunk size (Figure 3).
    cluster_dma_bandwidth: float = 28.9 * GBPS
    #: Chunk size at which cluster DMA saturates (Figure 3).
    dma_saturation_chunk: int = 256
    #: Shape exponent of the sub-saturation bandwidth curve in Figure 3
    #: (bandwidth ~ (chunk/256)^gamma below 256 B). Calibrated to give the
    #: order-of-magnitude gap between 8 B and 256 B transfers the figure shows.
    dma_chunk_exponent: float = 0.7


@dataclass(frozen=True)
class NodeSpec:
    """One TaihuLight node: one SW26010 CPU (4 core groups) + 32 GB memory."""

    core_group: CoreGroupSpec = field(default_factory=CoreGroupSpec)
    core_groups: int = 4
    memory_bytes: int = 32 * GiB
    #: Memory an MPI connection pins per peer (Section 3.3: "every connection
    #: uses 100 KB memory due to the MPI library").
    mpi_connection_bytes: int = 100_000
    #: Budget the runtime may spend on MPI connection state before the node
    #: dies of memory exhaustion. Calibrated so that ~4,096 direct
    #: connections survive (~0.4 GB) but 16,384 (~1.6 GB) crash, matching
    #: Figure 11's Direct-MPE failure point.
    mpi_memory_budget: int = 1 * GiB

    @property
    def total_cpes(self) -> int:
        return self.core_groups * self.core_group.cpes_per_cluster

    @property
    def total_cores(self) -> int:
        return self.core_groups * (1 + self.core_group.cpes_per_cluster)


@dataclass(frozen=True)
class TaihuLightSpec:
    """The full machine (Table 1): 40 cabinets = 40,960 nodes."""

    node: NodeSpec = field(default_factory=NodeSpec)
    nodes_per_super_node: int = 256
    super_nodes_per_cabinet: int = 4
    cabinets: int = 40
    #: FDR InfiniBand NIC: 56 Gbps signalling = 7 GB/s raw.
    nic_raw_bandwidth: float = 56e9 / 8
    #: Effective achievable point-to-point bandwidth per node for large
    #: messages, as measured by the paper's relay-overhead test (Section 4.4:
    #: "both achieve an average 1.2 GB/s per node").
    nic_effective_bandwidth: float = 1.2 * GBPS
    #: Oversubscription of the central switching network (Section 3.3).
    central_oversubscription: int = 4
    #: Message latencies for the alpha-beta cost model; intra-super-node FDR
    #: InfiniBand is ~1 us class, crossing the central switches adds hops.
    intra_super_node_latency: float = 1.0 * US
    inter_super_node_latency: float = 3.0 * US
    #: Per-message software overhead on the MPE (matching, headers, polling).
    message_overhead: float = 2.0 * US

    @property
    def total_nodes(self) -> int:
        return self.nodes_per_super_node * self.super_nodes_per_cabinet * self.cabinets

    @property
    def total_cores(self) -> int:
        return self.total_nodes * self.node.total_cores


@dataclass(frozen=True)
class MachineSpec:
    """Bundle used by simulations: the machine plus run-scale parameters."""

    taihulight: TaihuLightSpec = field(default_factory=TaihuLightSpec)

    @property
    def node(self) -> NodeSpec:
        return self.taihulight.node

    @property
    def core_group(self) -> CoreGroupSpec:
        return self.taihulight.node.core_group


#: The default machine: Sunway TaihuLight exactly as published.
TAIHULIGHT = MachineSpec()


def spec_table_rows() -> list[tuple[str, str]]:
    """Rows of Table 1 as rendered by ``benchmarks/bench_table1_specs.py``."""
    t = TAIHULIGHT.taihulight
    n = t.node
    return [
        ("MPE", "1.45 GHz, 32KB L1 D-Cache, 256KB L2"),
        ("CPE", "1.45 GHz, 64KB SPM"),
        ("CG", "1 MPE + 64 CPEs + 1 MC"),
        ("Node", f"1 CPU ({n.core_groups} CGs) + 4x8GB DDR3 Memory"),
        ("Super Node", f"{t.nodes_per_super_node} Nodes, FDR 56 Gbps Infiniband"),
        ("Cabinet", f"{t.super_nodes_per_cabinet} Super Nodes"),
        ("TaihuLight", f"{t.cabinets} Cabinets"),
    ]


# Consistency guards: the composed machine must equal the published totals.
assert TAIHULIGHT.taihulight.total_nodes == 40_960
assert TAIHULIGHT.taihulight.total_cores == 40_960 * 260
assert abs(TAIHULIGHT.node.core_group.mpe.memory_latency - 69 * NS) < 1 * NS
assert TAIHULIGHT.node.total_cpes == 256
