"""The 8x8 CPE register-communication mesh.

Section 3.1: CPEs in one cluster sit on an 8x8 mesh; register communication
is *only* possible between CPEs in the same row or the same column, is
synchronous, moves up to 256 bits (32 B) per cycle, and has **no hardware
deadlock avoidance** — "the random access nature of BFS makes it easy to
cause a deadlock in the register communication once the messaging route
includes a cycle".

This module provides:

- :class:`MeshTopology` — coordinates and legality of register channels;
- :class:`Route` — a multi-hop path through the mesh with direction labels;
- :func:`check_deadlock_free` — the channel-dependency-graph test (Dally &
  Seitz): a set of routes is deadlock-free iff the graph whose nodes are
  directed channels and whose edges connect consecutive hops of any route is
  acyclic;
- :class:`RegisterMesh` — a cycle-stepped transfer simulator used by the
  register-bandwidth micro-benchmark and the shuffle tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.errors import ConfigError, DeadlockError

Pos = tuple[int, int]  # (row, col)
Channel = tuple[Pos, Pos]  # directed register channel


@dataclass(frozen=True)
class MeshTopology:
    """Geometry of one CPE cluster's register mesh."""

    rows: int = 8
    cols: int = 8

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigError(f"bad mesh shape {self.rows}x{self.cols}")

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def positions(self) -> list[Pos]:
        return [(r, c) for r in range(self.rows) for c in range(self.cols)]

    def contains(self, pos: Pos) -> bool:
        r, c = pos
        return 0 <= r < self.rows and 0 <= c < self.cols

    def channel_allowed(self, src: Pos, dst: Pos) -> bool:
        """Register channels exist only between distinct same-row/col CPEs."""
        if not (self.contains(src) and self.contains(dst)) or src == dst:
            return False
        return src[0] == dst[0] or src[1] == dst[1]

    def direction(self, src: Pos, dst: Pos) -> str:
        """Compass direction of a legal channel: E/W along rows, S/N along columns."""
        if not self.channel_allowed(src, dst):
            raise ConfigError(f"no register channel {src} -> {dst}")
        if src[0] == dst[0]:
            return "E" if dst[1] > src[1] else "W"
        return "S" if dst[0] > src[0] else "N"


@dataclass(frozen=True)
class Route:
    """A path through the mesh as a sequence of CPE positions."""

    stops: tuple[Pos, ...]

    @classmethod
    def through(cls, *stops: Pos) -> "Route":
        return cls(tuple(stops))

    def __post_init__(self) -> None:
        if len(self.stops) < 2:
            raise ConfigError("a route needs at least a source and a destination")

    @property
    def source(self) -> Pos:
        return self.stops[0]

    @property
    def destination(self) -> Pos:
        return self.stops[-1]

    def channels(self, mesh: MeshTopology) -> list[Channel]:
        chans: list[Channel] = []
        for a, b in zip(self.stops, self.stops[1:]):
            if not mesh.channel_allowed(a, b):
                raise ConfigError(f"illegal hop {a} -> {b} (not same row/column)")
            chans.append((a, b))
        return chans

    def hop_count(self) -> int:
        return len(self.stops) - 1


def check_deadlock_free(
    routes: Iterable[Route], mesh: MeshTopology | None = None, raise_on_cycle: bool = True
) -> bool:
    """Channel-dependency-graph deadlock test over a set of routes.

    With synchronous register messaging, a packet occupying channel ``c_i``
    of its route waits for channel ``c_{i+1}``; if those waits-for edges form
    a cycle, an arbitrary traffic pattern can deadlock. The producer/router/
    consumer role schema of Section 4.3 is engineered to make this graph
    acyclic ("a deadlock situation cannot arise if there is no circular wait
    in the system").
    """
    mesh = mesh or MeshTopology()
    edges: dict[Channel, set[Channel]] = {}
    for route in routes:
        chans = route.channels(mesh)
        for a, b in zip(chans, chans[1:]):
            edges.setdefault(a, set()).add(b)
            edges.setdefault(b, set())
        for c in chans:
            edges.setdefault(c, set())

    # Iterative three-colour DFS for a cycle.
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {c: WHITE for c in edges}
    for start in edges:
        if colour[start] != WHITE:
            continue
        stack: list[tuple[Channel, Iterable[Channel]]] = [(start, iter(edges[start]))]
        colour[start] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if colour[nxt] == GREY:
                    if raise_on_cycle:
                        raise DeadlockError(
                            f"circular channel wait involving {node} -> {nxt}"
                        )
                    return False
                if colour[nxt] == WHITE:
                    colour[nxt] = GREY
                    stack.append((nxt, iter(edges[nxt])))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return True


class RegisterMesh:
    """Cycle-stepped simulator of register transfers on the mesh.

    Model: each cycle a CPE can inject at most one 32 B packet into one of
    its outgoing channels and accept at most one incoming packet (the paper:
    256-bit transfers, no conflicts *between* distinct pairs — the port at a
    single CPE is still serial). Intermediate stops buffer packets in a small
    forwarding queue. The simulator is deterministic: flows advance in
    round-robin order by flow id.

    Used for the Section 4.3 micro-benchmark ("10 GB/s register to register
    bandwidth") and for validating that role-based shuffles make progress.
    """

    PACKET_BYTES = 32

    def __init__(
        self,
        mesh: MeshTopology | None = None,
        frequency_hz: float = 1.45e9,
        queue_capacity: int = 4,
    ):
        self.mesh = mesh or MeshTopology()
        self.frequency_hz = frequency_hz
        self.queue_capacity = queue_capacity

    def simulate(self, flows: Sequence[tuple[Route, int]], max_cycles: int = 10_000_000):
        """Run flows to completion; returns (cycles, delivered_bytes_per_flow).

        Each flow is ``(route, nbytes)``; bytes are split into 32 B packets.
        Routes are validated for deadlock-freedom first, which licenses the
        simulator's simplifying assumption that forwarding queues drain.
        """
        check_deadlock_free([r for r, _ in flows], self.mesh)
        # Per-flow state: packets waiting at each stop index.
        npackets = [max(0, -(-n // self.PACKET_BYTES)) for _, n in flows]
        waiting: list[list[int]] = []  # waiting[f][stop_idx] = packets queued
        for (route, _), k in zip(flows, npackets):
            q = [0] * len(route.stops)
            q[0] = k
            waiting.append(q)
        delivered = [0] * len(flows)
        total = sum(npackets)
        done = 0
        cycles = 0
        order = list(range(len(flows)))
        while done < total:
            if cycles >= max_cycles:
                raise DeadlockError(
                    f"register mesh made no progress within {max_cycles} cycles"
                )
            cycles += 1
            sends_used: set[Pos] = set()
            recvs_used: set[Pos] = set()
            moved = False
            for f in order:
                route = flows[f][0]
                stops = route.stops
                # Move at most one packet per hop per cycle, farthest hop first
                # so a pipeline drains front-to-back.
                for i in range(len(stops) - 2, -1, -1):
                    if waiting[f][i] == 0:
                        continue
                    src, dst = stops[i], stops[i + 1]
                    if src in sends_used or dst in recvs_used:
                        continue
                    is_last = i + 1 == len(stops) - 1
                    if not is_last and waiting[f][i + 1] >= self.queue_capacity:
                        continue
                    waiting[f][i] -= 1
                    waiting[f][i + 1] += 1
                    sends_used.add(src)
                    recvs_used.add(dst)
                    moved = True
                    if is_last:
                        delivered[f] += 1
                        done += 1
            if not moved and done < total:
                raise DeadlockError("register mesh stalled with packets in flight")
        return cycles, [d * self.PACKET_BYTES for d in delivered]

    def throughput(self, flows: Sequence[tuple[Route, int]]) -> float:
        """Aggregate delivered bytes/second over a simulated flow set."""
        cycles, delivered = self.simulate(flows)
        if cycles == 0:
            return 0.0
        return sum(delivered) * self.frequency_hz / cycles
