"""Model of the Sunway TaihuLight compute node (SW26010 CPU).

The model captures exactly the architectural features Section 3 of the paper
says drive the BFS design:

- heterogeneous cores: 4 MPEs (general purpose, one thread each, no shared
  cache) + 4 CPE clusters (64 accelerator cores each);
- 64 KB scratch-pad memory (SPM) per CPE, explicitly managed;
- DMA to shared off-chip memory whose effective bandwidth depends on chunk
  size (Figure 3) and on how many CPEs issue transfers (Figure 5);
- an 8x8 register mesh with row/column-only synchronous communication and
  no deadlock avoidance in hardware;
- only atomic-increment in main memory, at painful cost;
- a ~10 us interrupt latency, which forces flag-polling notification.

Everything is parameterised by :class:`~repro.machine.specs.MachineSpec`,
whose defaults are the paper's published numbers.
"""

from repro.machine.specs import (
    MpeSpec,
    CpeSpec,
    CoreGroupSpec,
    NodeSpec,
    TaihuLightSpec,
    MachineSpec,
    TAIHULIGHT,
)
from repro.machine.dma import DmaModel
from repro.machine.spm import Spm
from repro.machine.mesh import MeshTopology, RegisterMesh, Route
from repro.machine.mpe import Mpe
from repro.machine.cluster import CpeCluster
from repro.machine.node import SunwayNode
from repro.machine.atomics import AtomicsModel

__all__ = [
    "MpeSpec",
    "CpeSpec",
    "CoreGroupSpec",
    "NodeSpec",
    "TaihuLightSpec",
    "MachineSpec",
    "TAIHULIGHT",
    "DmaModel",
    "Spm",
    "MeshTopology",
    "RegisterMesh",
    "Route",
    "Mpe",
    "CpeCluster",
    "SunwayNode",
    "AtomicsModel",
]
