"""CPE cluster timing model.

A cluster is 64 CPEs on the register mesh plus a DMA engine into main
memory. For the BFS it runs in one of two shapes:

- **partitioned** (dispose modules, e.g. Forward Handler): the input is
  split across CPEs, each streams its slice via DMA — bandwidth-bound at
  the Figure 3 curve;
- **shuffling** (reaction modules): producers read, routers shuffle over
  the register mesh, consumers write per-destination batches — the
  contention-free data shuffle of Section 4.3.

Steady-state shuffle throughput is limited by whichever is smallest: the
producer-side DMA share, the consumer-side DMA share, or half the cluster's
peak DMA bandwidth (the engine carries reads *and* writes), derated by a
pipeline efficiency calibrated to the paper's measurement: "we achieve
10 GB/s register to register bandwidth out of a theoretical 14.5 GB/s".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.machine.dma import DmaModel
from repro.machine.specs import MachineSpec, TAIHULIGHT
from repro.utils.units import GBPS

#: Paper-measured steady-state shuffle bandwidth (Section 4.3).
MEASURED_SHUFFLE_BANDWIDTH = 10.0 * GBPS
#: Theoretical bound quoted next to it: half of the 28.9 GB/s DMA peak.
THEORETICAL_SHUFFLE_BANDWIDTH = 28.9 * GBPS / 2
#: Pipeline efficiency implied by the two numbers above (~0.69): register
#: synchronisation bubbles and imperfect read/write overlap.
SHUFFLE_PIPELINE_EFFICIENCY = MEASURED_SHUFFLE_BANDWIDTH / THEORETICAL_SHUFFLE_BANDWIDTH

#: CPE cycles to inspect/steer one record through the shuffle (comparison,
#: bucket select, register send) — small, deliberately non-binding next to DMA.
RECORD_PROCESS_CYCLES = 4


@dataclass(frozen=True)
class CpeCluster:
    """Timing helpers for work executed on one CPE cluster."""

    spec: MachineSpec = TAIHULIGHT
    dma: DmaModel = field(default_factory=DmaModel)

    # -- partitioned (dispose) work ------------------------------------------
    def partitioned_time(
        self, nbytes: float, chunk_bytes: int = 256, n_cpes: int = 64
    ) -> float:
        """Streaming ``nbytes`` split across ``n_cpes`` CPEs (DMA bound)."""
        return self.dma.cluster_transfer_time(nbytes, chunk_bytes, n_cpes)

    # -- shuffling (reaction) work ---------------------------------------------
    def shuffle_bandwidth(
        self,
        n_producers: int = 32,
        n_consumers: int = 16,
        efficiency: float = SHUFFLE_PIPELINE_EFFICIENCY,
    ) -> float:
        """Steady-state bytes/second through a producer/router/consumer shuffle."""
        cg = self.spec.core_group
        if n_producers <= 0 or n_consumers <= 0:
            raise ConfigError("shuffle needs at least one producer and one consumer")
        if n_producers + n_consumers > cg.cpes_per_cluster:
            raise ConfigError(
                f"{n_producers} producers + {n_consumers} consumers exceed "
                f"{cg.cpes_per_cluster} CPEs"
            )
        read_side = n_producers * cg.cpe.dma_bandwidth
        write_side = n_consumers * cg.cpe.dma_bandwidth
        engine_side = cg.cluster_dma_bandwidth / 2  # reads + writes share the engine
        return efficiency * min(read_side, write_side, engine_side)

    def shuffle_time(
        self,
        nbytes: float,
        n_producers: int = 32,
        n_consumers: int = 16,
        record_bytes: int = 8,
    ) -> float:
        """Seconds for a reaction module to shuffle ``nbytes`` of records."""
        if nbytes < 0:
            raise ConfigError(f"negative shuffle size: {nbytes}")
        if nbytes == 0:
            return 0.0
        cg = self.spec.core_group
        bw = self.shuffle_bandwidth(n_producers, n_consumers)
        records = nbytes / max(1, record_bytes)
        compute = (
            records
            * RECORD_PROCESS_CYCLES
            / (n_producers * cg.cpe.frequency_hz)
        )
        return max(nbytes / bw, compute)

    def module_startup_time(self) -> float:
        """Fixed cost to kick a module into a cluster (flag poll + broadcast)."""
        return 4 * self.spec.core_group.mpe.memory_latency
