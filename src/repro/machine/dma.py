"""DMA bandwidth model for CPE clusters and MPE memory access.

Reproduces the two micro-benchmarks the paper bases its design on:

- **Figure 3** — cluster DMA bandwidth vs chunk size: saturates at 28.9 GB/s
  for chunks >= 256 B, degrades sharply below that ("a CPE cluster can get
  the desired bandwidth with a chunk size equal to or larger than 256
  Bytes... 10 times faster than the MPE").
- **Figure 5** — bandwidth vs number of participating CPEs at 256 B chunks:
  each CPE contributes ~2.4 GB/s up to the cluster cap, so "16 CPEs can
  generate an acceptable memory access bandwidth".

The model is a documented fit, not a cycle simulation: below the saturation
chunk, effective bandwidth follows ``peak * (chunk/256)**gamma`` (gamma from
the spec); above, it is flat at the peak. MPE bandwidth uses the same shape
with a 9.4 GB/s peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.machine.specs import MachineSpec, TAIHULIGHT


@dataclass(frozen=True)
class DmaModel:
    """Effective-bandwidth calculator bound to a machine spec."""

    spec: MachineSpec = TAIHULIGHT

    # -- cluster (CPE-side) ---------------------------------------------------
    def cluster_bandwidth(self, chunk_bytes: int, n_cpes: int = 64) -> float:
        """Aggregate DMA bandwidth of ``n_cpes`` CPEs using ``chunk_bytes`` chunks."""
        cg = self.spec.core_group
        if chunk_bytes <= 0:
            raise ConfigError(f"chunk must be positive, got {chunk_bytes}")
        if not 1 <= n_cpes <= cg.cpes_per_cluster:
            raise ConfigError(
                f"n_cpes must be in [1, {cg.cpes_per_cluster}], got {n_cpes}"
            )
        peak = min(cg.cluster_dma_bandwidth, n_cpes * cg.cpe.dma_bandwidth)
        if chunk_bytes >= cg.dma_saturation_chunk:
            return peak
        return peak * (chunk_bytes / cg.dma_saturation_chunk) ** cg.dma_chunk_exponent

    def cluster_transfer_time(
        self, nbytes: float, chunk_bytes: int = 256, n_cpes: int = 64
    ) -> float:
        """Seconds for a cluster to move ``nbytes`` to/from main memory."""
        if nbytes < 0:
            raise ConfigError(f"negative transfer size: {nbytes}")
        if nbytes == 0:
            return 0.0
        return nbytes / self.cluster_bandwidth(chunk_bytes, n_cpes)

    # -- MPE side --------------------------------------------------------------
    def mpe_bandwidth(self, chunk_bytes: int = 256) -> float:
        """Sustained MPE main-memory bandwidth for ``chunk_bytes`` accesses."""
        cg = self.spec.core_group
        if chunk_bytes <= 0:
            raise ConfigError(f"chunk must be positive, got {chunk_bytes}")
        peak = cg.mpe.memory_bandwidth
        if chunk_bytes >= cg.dma_saturation_chunk:
            return peak
        return peak * (chunk_bytes / cg.dma_saturation_chunk) ** cg.dma_chunk_exponent

    def mpe_transfer_time(self, nbytes: float, chunk_bytes: int = 256) -> float:
        """Seconds for an MPE to stream ``nbytes`` through main memory."""
        if nbytes < 0:
            raise ConfigError(f"negative transfer size: {nbytes}")
        if nbytes == 0:
            return 0.0
        return nbytes / self.mpe_bandwidth(chunk_bytes)

    # -- derived quantities the paper quotes ------------------------------------
    def cpe_to_mpe_speedup(self, chunk_bytes: int = 256) -> float:
        """The "10 times faster than the MPE" ratio under identical chunks."""
        return self.cluster_bandwidth(chunk_bytes) / self.mpe_bandwidth(chunk_bytes)

    def saturating_cpe_count(self, chunk_bytes: int = 256, fraction: float = 0.95) -> int:
        """Fewest CPEs reaching ``fraction`` of the saturated cluster bandwidth."""
        target = fraction * self.cluster_bandwidth(chunk_bytes, 64)
        for n in range(1, self.spec.core_group.cpes_per_cluster + 1):
            if self.cluster_bandwidth(chunk_bytes, n) >= target:
                return n
        return self.spec.core_group.cpes_per_cluster
