"""Scratch-pad memory (SPM) allocator.

Each CPE owns 64 KB of software-managed SPM. The BFS shuffle carves it into
per-destination staging buffers; when a buffer layout no longer fits — which
is exactly what happens to the Direct CPE baseline past 256 nodes — the
allocation raises :class:`~repro.errors.SpmOverflow` (the paper: "it crashes
when the scale increases because of the limitation of SPM size on the CPEs").
"""

from __future__ import annotations

from repro.errors import ConfigError, SpmOverflow


class Spm:
    """A bump allocator over one CPE's scratch-pad memory."""

    def __init__(self, capacity: int = 64 * 1024, owner: str = "cpe"):
        if capacity <= 0:
            raise ConfigError(f"SPM capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.owner = owner
        self._allocations: dict[str, int] = {}
        self._used = 0

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def alloc(self, name: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``name``; raise SpmOverflow if it won't fit."""
        if nbytes < 0:
            raise ConfigError(f"negative allocation: {nbytes}")
        if name in self._allocations:
            raise ConfigError(f"SPM buffer {name!r} already allocated")
        if self._used + nbytes > self.capacity:
            raise SpmOverflow(
                f"SPM of {self.owner} cannot fit {name!r}: "
                f"need {nbytes} B, only {self.free} B of {self.capacity} B free"
            )
        self._allocations[name] = nbytes
        self._used += nbytes

    def free_buffer(self, name: str) -> None:
        try:
            self._used -= self._allocations.pop(name)
        except KeyError:
            raise ConfigError(f"SPM buffer {name!r} was never allocated") from None

    def reset(self) -> None:
        self._allocations.clear()
        self._used = 0

    def layout(self) -> dict[str, int]:
        """Current named allocations (for diagnostics and tests)."""
        return dict(self._allocations)


def check_staging_layout(
    num_buffers: int,
    buffer_bytes: int,
    spm_bytes: int = 64 * 1024,
    reserved_bytes: int = 4 * 1024,
    owner: str = "cpe",
) -> int:
    """Validate a per-destination staging layout against one CPE's SPM.

    ``reserved_bytes`` accounts for stack/control state that always lives in
    SPM. Returns the bytes used; raises :class:`SpmOverflow` when the layout
    cannot fit — the Direct CPE failure mode.
    """
    spm = Spm(spm_bytes, owner=owner)
    spm.alloc("reserved", reserved_bytes)
    for i in range(num_buffers):
        spm.alloc(f"dest{i}", buffer_bytes)
    return spm.used
