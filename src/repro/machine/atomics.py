"""Cost model for main-memory atomics on the SW26010.

Section 3.1: CPEs support **only atomic increment** in main memory, and
"it is inefficient to only use the atomic increase operation to implement
other atomic functions such as compare-and-swap". This model prices a
lock-based shuffle alternative so the ablation benchmark can show why the
paper rejected it (its performance was below even the plain MPE version).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.machine.specs import MachineSpec, TAIHULIGHT


@dataclass(frozen=True)
class AtomicsModel:
    spec: MachineSpec = TAIHULIGHT
    #: Main-memory atomics are uncached read-modify-writes over the NoC:
    #: roughly two memory latencies each, fully serialised per location.
    latencies_per_op: float = 2.0

    def atomic_increment_time(self) -> float:
        return self.latencies_per_op * self.spec.core_group.mpe.memory_latency

    def contended_increments_time(self, n_ops: int, n_locations: int = 1) -> float:
        """Time for ``n_ops`` increments spread over ``n_locations`` counters.

        Operations to the same location serialise; distinct locations proceed
        in parallel (bounded below by one op's latency).
        """
        if n_ops < 0 or n_locations <= 0:
            raise ConfigError(f"bad atomics workload: ops={n_ops} locs={n_locations}")
        if n_ops == 0:
            return 0.0
        per_location = -(-n_ops // n_locations)  # ceil
        return per_location * self.atomic_increment_time()

    def emulated_cas_time(self) -> float:
        """A compare-and-swap emulated from increments: several round trips."""
        return 3 * self.atomic_increment_time()

    def lock_based_append_time(self, n_records: int, n_buffers: int) -> float:
        """Price of the rejected design: CPEs appending to shared send buffers
        guarded by emulated locks — one lock acquire/release per record."""
        if n_records == 0:
            return 0.0
        per_record = self.emulated_cas_time() + self.atomic_increment_time()
        per_buffer = -(-n_records // max(1, n_buffers))
        return per_buffer * per_record
