"""Composition of one TaihuLight node for the simulator.

A :class:`SunwayNode` bundles the timing models (4 MPEs, 4 CPE clusters,
DMA, atomics) with a simple main-memory budget. The BFS runtime layers
:class:`~repro.sim.resources.Server` queues over the units; this class owns
the *rates*, not the scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError, SimulatedCrash
from repro.machine.atomics import AtomicsModel
from repro.machine.cluster import CpeCluster
from repro.machine.dma import DmaModel
from repro.machine.mpe import Mpe
from repro.machine.specs import MachineSpec, TAIHULIGHT


@dataclass
class MemoryBudget:
    """Tracks named reservations against the node's 32 GB main memory."""

    capacity: int
    node_id: int = -1
    reservations: dict[str, int] = field(default_factory=dict)

    @property
    def used(self) -> int:
        return sum(self.reservations.values())

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def reserve(self, name: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ConfigError(f"negative reservation: {nbytes}")
        current = self.reservations.get(name, 0)
        if self.used - current + nbytes > self.capacity:
            raise SimulatedCrash(
                f"main memory exhausted reserving {name!r} "
                f"({nbytes} B requested, {self.free + current} B free)",
                node=self.node_id if self.node_id >= 0 else None,
            )
        self.reservations[name] = nbytes

    def release(self, name: str) -> None:
        self.reservations.pop(name, None)


class SunwayNode:
    """One node: timing models + memory accounting, identified by ``node_id``."""

    def __init__(self, node_id: int = 0, spec: MachineSpec = TAIHULIGHT):
        if node_id < 0:
            raise ConfigError(f"bad node id {node_id}")
        self.node_id = node_id
        self.spec = spec
        self.dma = DmaModel(spec)
        self.mpe = Mpe(spec, self.dma)
        self.cluster = CpeCluster(spec, self.dma)
        self.atomics = AtomicsModel(spec)
        self.memory = MemoryBudget(spec.node.memory_bytes, node_id)

    @property
    def num_mpes(self) -> int:
        return self.spec.node.core_groups

    @property
    def num_clusters(self) -> int:
        return self.spec.node.core_groups

    def __repr__(self) -> str:
        return f"SunwayNode(id={self.node_id})"
