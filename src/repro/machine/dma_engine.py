"""Mechanistic DMA-engine model: deriving the Figure 3 curve.

:class:`~repro.machine.dma.DmaModel` *fits* the published bandwidth curve;
this module *derives* it from a minimal mechanism, as a cross-check that
the fitted shape is physically sensible:

- the cluster's DMA engine processes transaction descriptors **serially**
  (``setup_time`` per transaction — control logic, address translation);
- the data mover streams at the memory system's ``peak_bandwidth``;
- each CPE keeps at most ``outstanding`` requests in flight and waits a
  ``memory_latency`` round trip before reusing a slot.

Consequences, with the calibrated constants:

- aggregate bandwidth ``~ chunk / setup_time`` until the mover saturates —
  which happens almost exactly at a 256 B chunk for a ~8.9 ns setup
  (13 cycles at 1.45 GHz), reproducing the published saturation point;
- a single CPE is capped near 2.4 GB/s by its request window, reproducing
  the Figure 5 "16 CPEs saturate" behaviour.

The queueing simulation (:meth:`DmaEngineSim.stream`) runs actual
transactions through (serial setup -> shared mover) and is compared
against both the closed form and the fitted curve in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.resources import Server
from repro.utils.units import GBPS


@dataclass(frozen=True)
class DmaEngineParams:
    #: Serial descriptor-processing time per transaction (~13 cycles at
    #: 1.45 GHz); pinned so the descriptor bound clears the mover exactly
    #: at a 256 B chunk — the published knee.
    setup_time: float = 256 / (28.9 * GBPS)
    #: Data-mover streaming bandwidth (the memory system's ceiling).
    peak_bandwidth: float = 28.9 * GBPS
    #: Main-memory round trip before a CPE's request slot frees.
    memory_latency: float = 96e-9
    #: Request slots per CPE.
    outstanding: int = 1

    def __post_init__(self) -> None:
        if min(self.setup_time, self.peak_bandwidth, self.memory_latency) <= 0:
            raise ConfigError("engine parameters must be positive")
        if self.outstanding < 1:
            raise ConfigError("need at least one outstanding request per CPE")


class DmaEngineSim:
    """Transaction-level simulation of one cluster's DMA engine."""

    def __init__(self, params: DmaEngineParams | None = None):
        self.params = params or DmaEngineParams()

    # ----------------------------------------------------------- closed form --
    def analytic_bandwidth(self, chunk: int, n_cpes: int = 64) -> float:
        """Steady-state throughput from the mechanism, no simulation."""
        p = self.params
        if chunk <= 0 or n_cpes < 1:
            raise ConfigError(f"bad workload: chunk={chunk}, cpes={n_cpes}")
        engine_rate = chunk / p.setup_time            # descriptor bound
        per_cpe = (
            p.outstanding * chunk
            / (p.memory_latency + p.setup_time + chunk / p.peak_bandwidth)
        )
        return min(p.peak_bandwidth, engine_rate, n_cpes * per_cpe)

    # ------------------------------------------------------------- simulation --
    def stream(self, total_bytes: int, chunk: int, n_cpes: int = 64) -> float:
        """Simulate moving ``total_bytes`` in ``chunk`` pieces; returns the
        achieved bandwidth."""
        p = self.params
        if total_bytes <= 0 or chunk <= 0 or n_cpes < 1:
            raise ConfigError("bad workload")
        n_txns = -(-total_bytes // chunk)
        setup = Server("setup")
        mover = Server("mover")
        transfer_time = chunk / p.peak_bandwidth
        # Per-CPE slot availability (outstanding-request window).
        slots = [[0.0] * p.outstanding for _ in range(n_cpes)]
        finish_last = 0.0
        for t in range(n_txns):
            cpe = t % n_cpes
            # Earliest slot on this CPE.
            slot_idx = min(range(p.outstanding), key=lambda k: slots[cpe][k])
            issue = slots[cpe][slot_idx]
            _, setup_done = setup.admit(issue, p.setup_time)
            _, moved = mover.admit(setup_done, transfer_time)
            complete = moved + p.memory_latency
            slots[cpe][slot_idx] = complete
            finish_last = max(finish_last, moved)
        return n_txns * chunk / finish_last

    # ------------------------------------------------------------- derivations --
    def saturation_chunk(self) -> int:
        """Smallest power-of-two chunk where the descriptor bound clears
        the mover's peak — the Figure 3 knee."""
        p = self.params
        chunk = 1
        while chunk / p.setup_time < p.peak_bandwidth:
            chunk *= 2
            if chunk > 1 << 20:  # pragma: no cover - mis-parameterised
                raise ConfigError("engine never saturates")
        return chunk

    def single_cpe_bandwidth(self, chunk: int = 256) -> float:
        return self.analytic_bandwidth(chunk, n_cpes=1)
