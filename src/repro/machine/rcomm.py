"""Register-communication primitives with cycle costs.

Section 3.1: "CPEs in the same row or column can communicate to each other
using a fast register communication, which has very low communication
latency. In one cycle, the register communication can support up to
256-bit communication between two CPEs in the same row or column."

These primitives price the intra-cluster control patterns the paper
describes — point-to-point transfers, row/column broadcasts, and the
MPE-notification fan-out of Section 4.2 ("the representative CPE gets the
notification in memory and broadcasts the flag to all other CPEs") — and
enforce the same-row/column legality rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.machine.mesh import MeshTopology, Pos

#: Cycles of synchronisation handshake per register message (producer and
#: consumer must rendezvous — the "synchronous explicit messaging").
SYNC_CYCLES = 4
#: Payload moved per cycle per channel (256 bits).
BYTES_PER_CYCLE = 32


@dataclass(frozen=True)
class RegisterComm:
    """Cycle/time calculator for register-bus operations on one cluster."""

    mesh: MeshTopology = MeshTopology()
    frequency_hz: float = 1.45e9

    # ------------------------------------------------------------- primitives --
    def send_cycles(self, src: Pos, dst: Pos, nbytes: int) -> int:
        """Point-to-point transfer between same-row/column CPEs."""
        if not self.mesh.channel_allowed(src, dst):
            raise ConfigError(f"no register channel {src} -> {dst}")
        if nbytes < 0:
            raise ConfigError(f"negative payload: {nbytes}")
        return SYNC_CYCLES + -(-nbytes // BYTES_PER_CYCLE)

    def row_broadcast_cycles(self, src: Pos, nbytes: int) -> int:
        """One CPE to every peer in its row.

        The register bus carries distinct pairs without conflicts, but one
        sender's port is serial: cols-1 back-to-back sends whose sync
        phases overlap after the first (pipelined handshakes).
        """
        self.mesh.contains(src) or self._bad(src)
        peers = self.mesh.cols - 1
        payload = -(-nbytes // BYTES_PER_CYCLE)
        return SYNC_CYCLES + peers * payload

    def column_broadcast_cycles(self, src: Pos, nbytes: int) -> int:
        self.mesh.contains(src) or self._bad(src)
        peers = self.mesh.rows - 1
        payload = -(-nbytes // BYTES_PER_CYCLE)
        return SYNC_CYCLES + peers * payload

    def cluster_broadcast_cycles(self, representative: Pos, nbytes: int) -> int:
        """The Section 4.2 notification fan-out: the representative CPE
        broadcasts along its row, then every row member broadcasts down its
        column — two pipelined phases reach all 64 CPEs."""
        return self.row_broadcast_cycles(representative, nbytes) + \
            self.column_broadcast_cycles(representative, nbytes)

    # ------------------------------------------------------------------ times --
    def seconds(self, cycles: int) -> float:
        return cycles / self.frequency_hz

    def send_time(self, src: Pos, dst: Pos, nbytes: int) -> float:
        return self.seconds(self.send_cycles(src, dst, nbytes))

    def cluster_broadcast_time(self, nbytes: int = 8,
                               representative: Pos = (0, 0)) -> float:
        return self.seconds(self.cluster_broadcast_cycles(representative, nbytes))

    # ------------------------------------------------------------- diagnostics --
    def peak_pair_bandwidth(self) -> float:
        """One channel's 256-bit-per-cycle ceiling (46.4 GB/s at 1.45 GHz)."""
        return BYTES_PER_CYCLE * self.frequency_hz

    @staticmethod
    def _bad(pos: Pos) -> None:
        raise ConfigError(f"position {pos} outside the mesh")
