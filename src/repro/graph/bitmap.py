"""Dense bitmaps over vertex sets.

Bitmaps are the representation the paper uses for hub-vertex frontiers
("a bitmap is used for compressing the frontiers", Section 5): one bit per
vertex, cheap unions, popcounts, and — crucially for message-size
accounting — an exact wire size of ``ceil(n/8)`` bytes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

_WORD_BITS = 64


class Bitmap:
    """A fixed-size bit vector backed by uint64 words."""

    __slots__ = ("num_bits", "words")

    def __init__(self, num_bits: int, words: np.ndarray | None = None):
        if num_bits < 0:
            raise ConfigError(f"negative bitmap size: {num_bits}")
        self.num_bits = num_bits
        n_words = -(-num_bits // _WORD_BITS) if num_bits else 0
        if words is None:
            self.words = np.zeros(n_words, dtype=np.uint64)
        else:
            words = np.asarray(words, dtype=np.uint64)
            if words.shape != (n_words,):
                raise ConfigError(
                    f"expected {n_words} words for {num_bits} bits, got {words.shape}"
                )
            self.words = words.copy()

    # -- construction -------------------------------------------------------------
    @classmethod
    def from_indices(cls, num_bits: int, indices: np.ndarray) -> "Bitmap":
        bm = cls(num_bits)
        bm.set_many(indices)
        return bm

    @classmethod
    def from_bool(cls, mask: np.ndarray) -> "Bitmap":
        mask = np.asarray(mask, dtype=bool)
        bm = cls(len(mask))
        bm.set_many(np.flatnonzero(mask))
        return bm

    # -- mutation -------------------------------------------------------------------
    def set_many(self, indices: np.ndarray) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self.num_bits:
            raise ConfigError("bit index out of range")
        np.bitwise_or.at(
            self.words, idx // _WORD_BITS, np.uint64(1) << (idx % _WORD_BITS).astype(np.uint64)
        )

    def set(self, index: int) -> None:
        self.set_many(np.array([index]))

    def clear(self) -> None:
        self.words[:] = 0

    def ior(self, other: "Bitmap") -> None:
        self._check_compatible(other)
        self.words |= other.words

    # -- queries ---------------------------------------------------------------------
    def get(self, index: int) -> bool:
        if not 0 <= index < self.num_bits:
            raise ConfigError(f"bit index {index} out of range")
        word = self.words[index // _WORD_BITS]
        return bool((word >> np.uint64(index % _WORD_BITS)) & np.uint64(1))

    def test_many(self, indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return np.zeros(0, dtype=bool)
        if idx.min() < 0 or idx.max() >= self.num_bits:
            raise ConfigError("bit index out of range")
        words = self.words[idx // _WORD_BITS]
        return ((words >> (idx % _WORD_BITS).astype(np.uint64)) & np.uint64(1)).astype(bool)

    def count(self) -> int:
        return int(np.bitwise_count(self.words).sum()) if len(self.words) else 0

    def indices(self) -> np.ndarray:
        """Set bit positions, ascending."""
        if self.num_bits == 0:
            return np.empty(0, dtype=np.int64)
        bits = np.unpackbits(self.words.view(np.uint8), bitorder="little")
        return np.flatnonzero(bits[: self.num_bits]).astype(np.int64)

    def any(self) -> bool:
        return bool(self.words.any())

    def nbytes_wire(self) -> int:
        """Exact bytes to transmit this bitmap (what the allgather costs)."""
        return -(-self.num_bits // 8)

    def copy(self) -> "Bitmap":
        return Bitmap(self.num_bits, self.words)

    def _check_compatible(self, other: "Bitmap") -> None:
        if self.num_bits != other.num_bits:
            raise ConfigError(
                f"bitmap size mismatch: {self.num_bits} vs {other.num_bits}"
            )

    def __or__(self, other: "Bitmap") -> "Bitmap":
        self._check_compatible(other)
        out = self.copy()
        out.ior(other)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self.num_bits == other.num_bits and np.array_equal(self.words, other.words)

    def __repr__(self) -> str:
        return f"Bitmap(bits={self.num_bits}, set={self.count()})"
