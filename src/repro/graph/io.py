"""Graph persistence: NPZ archives and Graph500-style edge text files.

The Graph500 pipeline materialises the raw edge list (step 1) before
construction; these helpers let experiments cache generated graphs and
import external edge lists.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.errors import ConfigError
from repro.graph.edgelist import EdgeList

_FORMAT_VERSION = 1


def save_edgelist(path: str | pathlib.Path, edges: EdgeList) -> pathlib.Path:
    """Write an edge list as a compressed ``.npz`` archive."""
    path = pathlib.Path(path)
    np.savez_compressed(
        path,
        src=edges.src,
        dst=edges.dst,
        num_vertices=np.int64(edges.num_vertices),
        format_version=np.int64(_FORMAT_VERSION),
    )
    # np.savez appends .npz when missing.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_edgelist(path: str | pathlib.Path) -> EdgeList:
    """Read an edge list written by :func:`save_edgelist`."""
    with np.load(pathlib.Path(path)) as data:
        try:
            version = int(data["format_version"])
            src = data["src"]
            dst = data["dst"]
            n = int(data["num_vertices"])
        except KeyError as exc:
            raise ConfigError(f"not a repro edge-list archive: missing {exc}") from exc
    if version > _FORMAT_VERSION:
        raise ConfigError(f"edge-list format v{version} is newer than this reader")
    return EdgeList(src, dst, n)


def write_edge_text(path: str | pathlib.Path, edges: EdgeList) -> pathlib.Path:
    """Write the Graph500-style whitespace ``src dst`` text format."""
    path = pathlib.Path(path)
    np.savetxt(
        path,
        np.column_stack([edges.src, edges.dst]),
        fmt="%d",
        header=f"num_vertices={edges.num_vertices}",
    )
    return path


def write_matrix_market(path: str | pathlib.Path, edges: EdgeList) -> pathlib.Path:
    """Write the MatrixMarket coordinate pattern format (1-based ids) —
    the lingua franca of HPC graph collections (SuiteSparse, etc.)."""
    path = pathlib.Path(path)
    with open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern general\n")
        fh.write(f"{edges.num_vertices} {edges.num_vertices} {edges.num_edges}\n")
        for u, v in zip(edges.src.tolist(), edges.dst.tolist()):
            fh.write(f"{u + 1} {v + 1}\n")
    return path


def read_matrix_market(path: str | pathlib.Path) -> EdgeList:
    """Read a coordinate MatrixMarket file (pattern or weighted; weights
    are dropped — the Graph500 pipeline synthesises its own)."""
    path = pathlib.Path(path)
    with open(path) as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket matrix coordinate"):
            raise ConfigError(f"{path} is not a coordinate MatrixMarket file")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        try:
            rows, cols, nnz = (int(x) for x in line.split())
        except ValueError as exc:
            raise ConfigError(f"bad MatrixMarket size line: {line!r}") from exc
        data = np.loadtxt(fh, dtype=np.float64, ndmin=2)
    n = max(rows, cols)
    if nnz == 0 or data.size == 0:
        return EdgeList(np.empty(0, np.int64), np.empty(0, np.int64), max(n, 1))
    if data.shape[0] != nnz:
        raise ConfigError(
            f"MatrixMarket header promises {nnz} entries, file has {data.shape[0]}"
        )
    src = data[:, 0].astype(np.int64) - 1
    dst = data[:, 1].astype(np.int64) - 1
    return EdgeList(src, dst, n)


def read_edge_text(
    path: str | pathlib.Path, num_vertices: int | None = None
) -> EdgeList:
    """Read ``src dst`` text; vertex count from the header or the data."""
    path = pathlib.Path(path)
    header_n = None
    with open(path) as fh:
        first = fh.readline()
        if first.startswith("#") and "num_vertices=" in first:
            header_n = int(first.split("num_vertices=")[1])
    data = np.loadtxt(path, dtype=np.int64, ndmin=2, comments="#")
    if data.size == 0:
        src = dst = np.empty(0, dtype=np.int64)
    else:
        if data.shape[1] != 2:
            raise ConfigError(f"expected two columns, got {data.shape[1]}")
        src, dst = data[:, 0], data[:, 1]
    n = num_vertices if num_vertices is not None else header_n
    if n is None:
        n = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
        if n <= 0:
            raise ConfigError("cannot infer vertex count from an empty file")
    return EdgeList(src, dst, n)
