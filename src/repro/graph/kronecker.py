"""The Graph500 Kronecker (R-MAT style) graph generator.

Section 6: "Our framework conforms to the Graph500 benchmark specifications
using the Kronecker graph raw data generator, and the suggested graph
parameter, that is, the edge factor, is fixed to 16."

The generator follows the published reference algorithm: each of
``edgefactor * 2**scale`` edges picks one quadrant of the adjacency matrix
per scale level with initiator probabilities (A, B, C, D) =
(0.57, 0.19, 0.19, 0.05); vertex labels are then randomly permuted so the
generator's locality cannot leak into the traversal, and the edge tuples are
shuffled. Fully vectorised: one pass over all edges per scale level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.graph.edgelist import EdgeList
from repro.sim.rng import substream

#: Graph500 initiator matrix.
INITIATOR = (0.57, 0.19, 0.19, 0.05)
#: Graph500 default edge factor (edges per vertex).
DEFAULT_EDGE_FACTOR = 16


@dataclass(frozen=True)
class KroneckerGenerator:
    """Deterministic Kronecker generator for a given (scale, edgefactor, seed)."""

    scale: int
    edge_factor: int = DEFAULT_EDGE_FACTOR
    seed: int = 1
    initiator: tuple[float, float, float, float] = INITIATOR
    permute_vertices: bool = True
    shuffle_edges: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.scale <= 42:
            raise ConfigError(f"scale {self.scale} out of the sane range [1, 42]")
        if self.edge_factor <= 0:
            raise ConfigError(f"edge factor must be positive, got {self.edge_factor}")
        a, b, c, d = self.initiator
        if min(a, b, c, d) < 0 or abs(a + b + c + d - 1.0) > 1e-9:
            raise ConfigError(f"initiator must be a distribution, got {self.initiator}")

    @property
    def num_vertices(self) -> int:
        return 1 << self.scale

    @property
    def num_edges(self) -> int:
        return self.edge_factor << self.scale

    def generate(self) -> EdgeList:
        """Produce the raw (directed, loop/duplicate-bearing) edge list."""
        n, m = self.num_vertices, self.num_edges
        a, b, c, _d = self.initiator
        ab = a + b
        c_norm = c / (1.0 - ab)
        a_norm = a / ab
        rng = substream(self.seed, "kronecker", self.scale, self.edge_factor)
        src = np.zeros(m, dtype=np.int64)
        dst = np.zeros(m, dtype=np.int64)
        for level in range(self.scale):
            r1 = rng.random(m)
            r2 = rng.random(m)
            src_bit = r1 > ab
            dst_bit = r2 > np.where(src_bit, c_norm, a_norm)
            src |= src_bit.astype(np.int64) << level
            dst |= dst_bit.astype(np.int64) << level
        edges = EdgeList(src, dst, n)
        if self.permute_vertices:
            perm_rng = substream(self.seed, "kronecker-permute", self.scale)
            edges = edges.permuted(perm_rng.permutation(n))
        if self.shuffle_edges:
            shuf_rng = substream(self.seed, "kronecker-shuffle", self.scale)
            edges = edges.shuffled(shuf_rng)
        return edges

    def describe(self) -> str:
        return (
            f"Kronecker scale={self.scale} (2^{self.scale} = {self.num_vertices} "
            f"vertices), edgefactor={self.edge_factor} ({self.num_edges} edges), "
            f"seed={self.seed}"
        )
