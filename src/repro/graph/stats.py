"""Graph statistics: degree distributions, skew, component structure.

Backs the characterisation claims of Section 2.2 (power-law degrees,
non-uniform distribution causing load imbalance) with measurable numbers,
and gives examples/benchmarks a common vocabulary for describing inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph500.reference import reference_depths


@dataclass(frozen=True)
class DegreeStats:
    """Summary of an undirected degree distribution."""

    num_vertices: int
    num_edge_tuples: int
    max_degree: int
    mean_degree: float
    median_degree: float
    isolated: int
    #: Fraction of all endpoint slots held by the top 1% of vertices.
    top1pct_share: float
    #: Gini coefficient of the degree distribution (0 uniform, ->1 skewed).
    gini: float

    def is_heavily_skewed(self) -> bool:
        """The paper's premise: hubs dominate ("power law distribution")."""
        return self.top1pct_share > 0.05 and self.gini > 0.4


def degree_stats(edges: EdgeList) -> DegreeStats:
    deg = edges.undirected_degrees().astype(np.float64)
    n = len(deg)
    if n == 0:
        raise ConfigError("empty graph")
    sorted_deg = np.sort(deg)
    total = sorted_deg.sum()
    top = max(1, n // 100)
    top_share = float(sorted_deg[-top:].sum() / total) if total else 0.0
    if total > 0:
        # Gini via the sorted-rank formula.
        ranks = np.arange(1, n + 1)
        gini = float((2 * ranks - n - 1) @ sorted_deg / (n * total))
    else:
        gini = 0.0
    return DegreeStats(
        num_vertices=n,
        num_edge_tuples=edges.num_edges,
        max_degree=int(sorted_deg[-1]),
        mean_degree=float(deg.mean()),
        median_degree=float(np.median(deg)),
        isolated=int((deg == 0).sum()),
        top1pct_share=top_share,
        gini=gini,
    )


def component_sizes(graph: CSRGraph) -> np.ndarray:
    """Sizes of connected components, descending (BFS sweep)."""
    remaining = np.ones(graph.num_vertices, dtype=bool)
    sizes = []
    while remaining.any():
        root = int(np.flatnonzero(remaining)[0])
        depth = reference_depths(graph, root)
        members = depth >= 0
        sizes.append(int(members.sum()))
        remaining &= ~members
    return np.sort(np.array(sizes, dtype=np.int64))[::-1]


def eccentricity_profile(graph: CSRGraph, root: int) -> dict[str, float]:
    """Level-structure summary of a BFS from ``root`` (for workload docs)."""
    depth = reference_depths(graph, root)
    reached = depth[depth >= 0]  # never empty: the root is depth 0
    return {
        "reached": float(len(reached)),
        "levels": float(reached.max() + 1),
        "median_depth": float(np.median(reached)),
        "mean_depth": float(reached.mean()),
    }
