"""1-D vertex partitioning.

The paper uses 1D row partitioning: each vertex (and its adjacency row)
belongs to exactly one node. Three strategies are provided:

- ``block`` — contiguous equal-width vertex ranges (the default; owner
  lookup is one divide, which is what production codes use);
- ``cyclic`` — round-robin ownership, which spreads hub vertices at the
  cost of locality;
- ``balanced`` — contiguous ranges with boundaries chosen so that *edge*
  counts per node are even; this is the "balance the graph partitioning"
  refinement of Section 5.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class Partition1D:
    """Maps global vertex ids to (owner node, local index) and back."""

    def __init__(self, num_vertices: int, num_parts: int, mode: str = "block",
                 edge_weights: np.ndarray | None = None):
        if num_vertices <= 0 or num_parts <= 0:
            raise ConfigError(
                f"bad partition: {num_vertices} vertices over {num_parts} parts"
            )
        if num_parts > num_vertices:
            raise ConfigError(
                f"more parts ({num_parts}) than vertices ({num_vertices})"
            )
        self.num_vertices = num_vertices
        self.num_parts = num_parts
        self.mode = mode
        if mode == "block":
            width = -(-num_vertices // num_parts)
            bounds = np.minimum(
                np.arange(num_parts + 1, dtype=np.int64) * width, num_vertices
            )
        elif mode == "cyclic":
            bounds = None
        elif mode == "balanced":
            if edge_weights is None:
                raise ConfigError("balanced mode needs per-vertex edge weights")
            w = np.asarray(edge_weights, dtype=np.float64)
            if w.shape != (num_vertices,):
                raise ConfigError("edge_weights must have one entry per vertex")
            # Give every vertex a small base weight so empty-degree prefixes
            # still split, then cut the prefix-sum into equal shares.
            cum = np.cumsum(w + 1.0)
            targets = cum[-1] * np.arange(1, num_parts) / num_parts
            cuts = np.searchsorted(cum, targets, side="left") + 1
            bounds = np.concatenate(([0], cuts, [num_vertices])).astype(np.int64)
            bounds = np.maximum.accumulate(bounds)
        else:
            raise ConfigError(f"unknown partition mode {mode!r}")
        self._bounds = bounds

    # -- ownership ---------------------------------------------------------------
    def owner(self, v: np.ndarray | int):
        """Owning part of vertex id(s) ``v`` (vectorised)."""
        v_arr = np.asarray(v, dtype=np.int64)
        if v_arr.size and (v_arr.min() < 0 or v_arr.max() >= self.num_vertices):
            raise ConfigError("vertex id out of range")
        if self.mode == "cyclic":
            out = v_arr % self.num_parts
        else:
            out = np.searchsorted(self._bounds, v_arr, side="right") - 1
        return out if isinstance(v, np.ndarray) else int(out)

    def local_index(self, v: np.ndarray | int):
        """Index of ``v`` within its owner's local arrays."""
        v_arr = np.asarray(v, dtype=np.int64)
        if self.mode == "cyclic":
            out = v_arr // self.num_parts
        else:
            out = v_arr - self._bounds[self.owner(np.atleast_1d(v_arr))]
            out = out.reshape(v_arr.shape)
        return out if isinstance(v, np.ndarray) else int(out)

    def global_ids(self, part: int) -> np.ndarray:
        """All vertex ids owned by ``part`` in local-index order."""
        self._check_part(part)
        if self.mode == "cyclic":
            return np.arange(part, self.num_vertices, self.num_parts, dtype=np.int64)
        return np.arange(self._bounds[part], self._bounds[part + 1], dtype=np.int64)

    def part_range(self, part: int) -> tuple[int, int]:
        """Contiguous [lo, hi) vertex range (block/balanced modes only)."""
        self._check_part(part)
        if self.mode == "cyclic":
            raise ConfigError("cyclic partitions are not contiguous")
        return int(self._bounds[part]), int(self._bounds[part + 1])

    def part_size(self, part: int) -> int:
        self._check_part(part)
        if self.mode == "cyclic":
            n, p = self.num_vertices, self.num_parts
            return (n - part + p - 1) // p
        return int(self._bounds[part + 1] - self._bounds[part])

    def _check_part(self, part: int) -> None:
        if not 0 <= part < self.num_parts:
            raise ConfigError(f"part {part} out of range [0, {self.num_parts})")

    def __repr__(self) -> str:
        return (
            f"Partition1D(n={self.num_vertices}, parts={self.num_parts}, "
            f"mode={self.mode!r})"
        )
