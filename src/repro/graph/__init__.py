"""Graph substrate: edge lists, CSR, generators, partitioning, bitmaps.

Everything here is vertex-id-typed ``int64`` and vectorised with numpy; the
hot paths (CSR construction, frontier expansion) follow the Graph500
reference semantics so the harness in :mod:`repro.graph500` can validate
results against the spec.
"""

from repro.graph.edgelist import EdgeList
from repro.graph.csr import CSRGraph
from repro.graph.kronecker import KroneckerGenerator
from repro.graph.generators import (
    erdos_renyi_edges,
    barabasi_albert_edges,
    ring_edges,
    star_edges,
    grid_edges,
    complete_edges,
)
from repro.graph.partition import Partition1D
from repro.graph.bitmap import Bitmap

__all__ = [
    "EdgeList",
    "CSRGraph",
    "KroneckerGenerator",
    "erdos_renyi_edges",
    "barabasi_albert_edges",
    "ring_edges",
    "star_edges",
    "grid_edges",
    "complete_edges",
    "Partition1D",
    "Bitmap",
]
