"""Compressed Sparse Row graph storage.

The paper's framework "uses the Compressed Sparse Row (CSR) data structure
to partition the adjacency matrix of the input graph by rows" (Section 2.1).
This CSR is the same structure, usable either for a whole graph or for one
node's row slice (see :class:`repro.graph.partition.Partition1D`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.edgelist import EdgeList


class CSRGraph:
    """Adjacency in CSR form: ``col_idx[row_ptr[v]:row_ptr[v+1]]`` are v's
    neighbours, sorted ascending within each row."""

    def __init__(self, row_ptr: np.ndarray, col_idx: np.ndarray, num_vertices: int | None = None):
        row_ptr = np.ascontiguousarray(row_ptr, dtype=np.int64)
        col_idx = np.ascontiguousarray(col_idx, dtype=np.int64)
        if row_ptr.ndim != 1 or col_idx.ndim != 1:
            raise ConfigError("row_ptr/col_idx must be 1-D")
        if len(row_ptr) == 0 or row_ptr[0] != 0 or row_ptr[-1] != len(col_idx):
            raise ConfigError("row_ptr must start at 0 and end at len(col_idx)")
        if np.any(np.diff(row_ptr) < 0):
            raise ConfigError("row_ptr must be non-decreasing")
        n = num_vertices if num_vertices is not None else len(row_ptr) - 1
        if n != len(row_ptr) - 1:
            raise ConfigError(
                f"num_vertices {n} inconsistent with row_ptr length {len(row_ptr)}"
            )
        if len(col_idx) and (col_idx.min() < 0):
            raise ConfigError("negative column index")
        self.row_ptr = row_ptr
        self.col_idx = col_idx
        self.num_vertices = n

    # -- construction ------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: EdgeList,
        symmetrize: bool = True,
        dedup: bool = True,
        drop_self_loops: bool = True,
    ) -> "CSRGraph":
        """Build the search structure the Graph500 kernel traverses.

        Defaults mirror benchmark step (3): the raw Kronecker list is
        symmetrised, self-loops are dropped and parallel edges collapse —
        none of which changes BFS results, only wasted work.

        The result is cached on the (immutable) edge list per flag
        combination: the harness derives the same CSR repeatedly — runner
        validation, ``make_variant``, every superstep-engine construction —
        and long-lived callers like the service catalog hand one EdgeList
        to many kernels. The first build pays the sort; the rest are a
        dict hit returning the very same (read-only by convention) object.
        """
        flags = (symmetrize, dedup, drop_self_loops)
        cache = edges.__dict__.get("_csr_cache")
        if cache is not None:
            hit = cache.get(flags)
            if hit is not None:
                return hit
        work = edges
        if drop_self_loops:
            work = work.without_self_loops()
        if symmetrize:
            work = work.symmetrized()
        if dedup:
            work = work.deduplicated()
        n = edges.num_vertices
        order = np.lexsort((work.dst, work.src))
        src, dst = work.src[order], work.dst[order]
        counts = np.bincount(src, minlength=n)
        row_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        built = cls(row_ptr, dst, n)
        if cache is None:
            cache = {}
            # EdgeList is a frozen dataclass; cache like its _dedup_cache.
            object.__setattr__(edges, "_csr_cache", cache)
        cache[flags] = built
        return built

    # -- queries -------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Directed edge slots (an undirected edge stored twice counts twice)."""
        return len(self.col_idx)

    def degrees(self) -> np.ndarray:
        return np.diff(self.row_ptr)

    def neighbors(self, v: int) -> np.ndarray:
        if not 0 <= v < self.num_vertices:
            raise ConfigError(f"vertex {v} out of range")
        return self.col_idx[self.row_ptr[v] : self.row_ptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        row = self.neighbors(u)
        i = np.searchsorted(row, v)
        return bool(i < len(row) and row[i] == v)

    def has_edges(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorised membership: does edge ``(us[i], vs[i])`` exist?

        A batched binary search over the sorted CSR rows — O(Σ log deg)
        total, never materialising the expanded adjacency. This is the
        validator's rule-5 primitive: at Graph500 scale an ``np.isin``
        over ``expand()`` output dominates the whole benchmark's
        wall-clock, while this stays negligible.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape or us.ndim != 1:
            raise ConfigError("us/vs must be equal-length 1-D arrays")
        if len(us) == 0:
            return np.zeros(0, dtype=bool)
        if us.min() < 0 or us.max() >= self.num_vertices:
            raise ConfigError("vertex out of range")
        lo = self.row_ptr[us].copy()
        hi = self.row_ptr[us + 1].copy()
        # Lower-bound binary search, advanced in lock-step across all
        # queries: each pass halves every still-active interval.
        active = np.flatnonzero(lo < hi)
        while len(active):
            mid = (lo[active] + hi[active]) >> 1
            less = self.col_idx[mid] < vs[active]
            lo[active[less]] = mid[less] + 1
            hi[active[~less]] = mid[~less]
            active = active[lo[active] < hi[active]]
        found = np.zeros(len(us), dtype=bool)
        in_row = lo < self.row_ptr[us + 1]
        found[in_row] = self.col_idx[lo[in_row]] == vs[in_row]
        return found

    def expand(self, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised frontier expansion.

        Returns ``(sources, targets)`` where every edge out of ``frontier``
        appears once; ``sources`` repeats each frontier vertex by its degree.
        This is the FORWARD_GENERATOR inner loop, flattened.
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        starts = self.row_ptr[frontier]
        stops = self.row_ptr[frontier + 1]
        lengths = stops - starts
        total = int(lengths.sum())
        if total == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        sources = np.repeat(frontier, lengths)
        # Gather all adjacency slices: offsets within each slice via a
        # segmented ramp (standard trick: global arange minus per-segment base).
        seg_base = np.repeat(starts - np.concatenate(([0], np.cumsum(lengths)[:-1])), lengths)
        targets = self.col_idx[np.arange(total, dtype=np.int64) + seg_base]
        return sources, targets

    def row_slice(self, lo: int, hi: int) -> "CSRGraph":
        """Rows ``[lo, hi)`` as a local CSR (columns stay global ids)."""
        if not 0 <= lo <= hi <= self.num_vertices:
            raise ConfigError(f"bad row slice [{lo}, {hi})")
        row_ptr = self.row_ptr[lo : hi + 1] - self.row_ptr[lo]
        col = self.col_idx[self.row_ptr[lo] : self.row_ptr[hi]]
        return CSRGraph(row_ptr, col, hi - lo)

    def nbytes(self) -> int:
        return self.row_ptr.nbytes + self.col_idx.nbytes

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"
