"""Zero-copy shared-memory hosting for read-only CSR graphs.

During the kernel the graph is read-only, so multi-process harness workers
never need private copies of the edge arrays. :class:`SharedCSR` rehosts a
:class:`~repro.graph.csr.CSRGraph` into one POSIX shared-memory segment:
the wrapper's ``graph`` attribute is a regular ``CSRGraph`` whose
``row_ptr`` / ``col_idx`` are views straight into the mapping
(``CSRGraph.__init__`` keeps conforming int64 arrays as-is, so no copy
happens past the initial rehost).

Fork workers inherit the mapping for free; spawn-context workers attach by
name via :meth:`SharedCSR.attach` with the picklable :meth:`handle`. Either
way there is exactly one physical copy of the graph on the machine — and,
unlike plain fork copy-on-write, the sharing survives start methods that
don't inherit memory at all.
"""

from __future__ import annotations

import atexit

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph

try:  # pragma: no cover - stdlib since 3.8, but keep the gate explicit
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - platform dependent
    _shm = None  # type: ignore[assignment]

_ITEMSIZE = np.dtype(np.int64).itemsize


def shared_memory_available() -> bool:
    """Probe for a working shared-memory mount (``/dev/shm`` or similar)."""
    if _shm is None:
        return False
    try:
        probe = _shm.SharedMemory(create=True, size=_ITEMSIZE)
    except (OSError, ValueError):  # pragma: no cover - platform dependent
        return False
    try:
        probe.close()
    finally:
        try:
            probe.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass
    return True


class SharedCSR:
    """A CSR graph whose arrays live in one shared-memory segment.

    Both :meth:`host` and :meth:`attach` results are context managers —
    ``with SharedCSR.host(graph) as shared:`` guarantees :meth:`destroy`
    on every exit path. A hosted segment additionally registers an atexit
    unlink guard: an exception path (or a worker crash that propagates up
    and skips a ``finally``) can never strand the named segment in
    ``/dev/shm`` past interpreter exit.
    """

    def __init__(
        self, segment: object, graph: CSRGraph, name: str, owner: bool
    ) -> None:
        self._segment = segment
        #: The shm-backed :class:`CSRGraph`; use it anywhere a graph goes.
        self.graph = graph
        self.name = name
        self._owner = owner
        self._atexit_guard = None
        if owner:
            # Bind the segment, not self: the guard must not keep the
            # (large) graph views alive, and destroy() disarms it.
            segment_ref = segment
            def _unlink_guard() -> None:  # pragma: no cover - exit path
                try:
                    segment_ref.unlink()  # type: ignore[attr-defined]
                except (FileNotFoundError, OSError):
                    pass
            self._atexit_guard = _unlink_guard
            atexit.register(_unlink_guard)

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc: object) -> None:
        self.destroy()

    # -- construction ------------------------------------------------------------
    @classmethod
    def host(cls, graph: CSRGraph) -> "SharedCSR":
        """Copy ``graph``'s arrays into a fresh segment (the only copy)."""
        if _shm is None:
            raise ConfigError("multiprocessing.shared_memory is unavailable")
        row = np.ascontiguousarray(graph.row_ptr, dtype=np.int64)
        col = np.ascontiguousarray(graph.col_idx, dtype=np.int64)
        segment = _shm.SharedMemory(
            create=True, size=max(row.nbytes + col.nbytes, _ITEMSIZE)
        )
        row_view = np.ndarray(row.shape, dtype=np.int64, buffer=segment.buf)
        col_view = np.ndarray(
            col.shape, dtype=np.int64, buffer=segment.buf, offset=row.nbytes
        )
        row_view[:] = row
        col_view[:] = col
        shared = CSRGraph(row_view, col_view, num_vertices=graph.num_vertices)
        return cls(segment, shared, segment.name, owner=True)

    def handle(self) -> tuple[str, int, int, int]:
        """Picklable ``(name, len(row_ptr), len(col_idx), num_vertices)``
        for :meth:`attach` in a worker that shares no memory."""
        graph = self.graph
        return (
            self.name,
            len(graph.row_ptr),
            len(graph.col_idx),
            graph.num_vertices,
        )

    @classmethod
    def attach(cls, handle: tuple[str, int, int, int]) -> "SharedCSR":
        """Map an existing segment by :meth:`handle`; zero copies."""
        if _shm is None:
            raise ConfigError("multiprocessing.shared_memory is unavailable")
        name, n_row, n_col, num_vertices = handle
        segment = _shm.SharedMemory(name=name)
        row = np.ndarray((n_row,), dtype=np.int64, buffer=segment.buf)
        col = np.ndarray(
            (n_col,), dtype=np.int64, buffer=segment.buf, offset=n_row * _ITEMSIZE
        )
        graph = CSRGraph(row, col, num_vertices=num_vertices)
        return cls(segment, graph, name, owner=False)

    # -- teardown ----------------------------------------------------------------
    def destroy(self) -> None:
        """Release this mapping; the hosting side also unlinks the name.

        Call only once the graph views are done being read: depending on
        the numpy version the views either pin the mapping (close raises
        BufferError, swallowed here) or don't (the pages unmap and any
        later dereference is invalid). Either way the name goes away.
        """
        try:
            self._segment.close()  # type: ignore[attr-defined]
        except BufferError:
            # This numpy holds a buffer export per view: the mapping
            # stays until the views die; unlinking below removes the name.
            pass
        if self._owner:
            try:
                self._segment.unlink()  # type: ignore[attr-defined]
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass
            self._owner = False
        if self._atexit_guard is not None:
            atexit.unregister(self._atexit_guard)
            self._atexit_guard = None
