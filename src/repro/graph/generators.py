"""Non-Kronecker graph generators for tests, examples and ablations.

These cover structures with known BFS answers (rings, stars, grids,
cliques) plus Erdos-Renyi noise graphs — useful for exercising corner cases
the power-law generator rarely produces (uniform degree, deep diameters,
disconnected pieces).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.edgelist import EdgeList
from repro.sim.rng import substream


def ring_edges(n: int) -> EdgeList:
    """A cycle 0-1-...-(n-1)-0: diameter ~ n/2, degree 2 everywhere."""
    if n < 3:
        raise ConfigError(f"ring needs >= 3 vertices, got {n}")
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    return EdgeList(src, dst, n)


def star_edges(n: int, hub: int = 0) -> EdgeList:
    """A star around ``hub``: the extreme hub-vertex workload."""
    if n < 2:
        raise ConfigError(f"star needs >= 2 vertices, got {n}")
    if not 0 <= hub < n:
        raise ConfigError(f"hub {hub} out of range")
    leaves = np.array([v for v in range(n) if v != hub], dtype=np.int64)
    hubs = np.full(len(leaves), hub, dtype=np.int64)
    return EdgeList(hubs, leaves, n)


def grid_edges(rows: int, cols: int) -> EdgeList:
    """A rows x cols 4-neighbour grid: moderate diameter, no hubs."""
    if rows < 1 or cols < 1:
        raise ConfigError(f"bad grid shape {rows}x{cols}")
    n = rows * cols
    idx = np.arange(n, dtype=np.int64).reshape(rows, cols)
    horiz_src = idx[:, :-1].ravel()
    horiz_dst = idx[:, 1:].ravel()
    vert_src = idx[:-1, :].ravel()
    vert_dst = idx[1:, :].ravel()
    return EdgeList(
        np.concatenate([horiz_src, vert_src]),
        np.concatenate([horiz_dst, vert_dst]),
        n,
    )


def complete_edges(n: int) -> EdgeList:
    """K_n: every pair once (small n only — quadratic)."""
    if n < 2:
        raise ConfigError(f"clique needs >= 2 vertices, got {n}")
    if n > 4096:
        raise ConfigError(f"clique of {n} vertices is too large to materialise")
    iu = np.triu_indices(n, k=1)
    return EdgeList(iu[0].astype(np.int64), iu[1].astype(np.int64), n)


def barabasi_albert_edges(n: int, attach: int, seed: int = 1) -> EdgeList:
    """Preferential attachment: each new vertex attaches to ``attach``
    existing vertices sampled proportionally to degree.

    Produces hub-dominated graphs like crawled webs/social networks — a
    second power-law family to cross-check behaviours the Kronecker
    generator might special-case. Implemented with the repeated-endpoint
    trick: sampling uniformly from the running endpoint list is exactly
    degree-proportional sampling.
    """
    if attach < 1:
        raise ConfigError(f"attach must be >= 1, got {attach}")
    if n <= attach:
        raise ConfigError(f"need more than {attach} vertices, got {n}")
    rng = substream(seed, "barabasi-albert", n, attach)
    src: list[int] = []
    dst: list[int] = []
    endpoints: list[int] = list(range(attach))  # seed clique-ish core
    for v in range(attach, n):
        picks = set()
        while len(picks) < attach:
            picks.add(int(endpoints[rng.integers(0, len(endpoints))]))
        for u in picks:
            src.append(v)
            dst.append(u)
            endpoints.append(v)
            endpoints.append(u)
    return EdgeList(
        np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64), n
    )


def erdos_renyi_edges(n: int, avg_degree: float, seed: int = 1) -> EdgeList:
    """G(n, m) with ``m = n * avg_degree / 2`` uniformly sampled pairs."""
    if n < 2:
        raise ConfigError(f"need >= 2 vertices, got {n}")
    if avg_degree <= 0:
        raise ConfigError(f"average degree must be positive, got {avg_degree}")
    m = max(1, int(round(n * avg_degree / 2)))
    rng = substream(seed, "erdos-renyi", n, m)
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    return EdgeList(src, dst, n)
