"""Edge lists: the raw-graph interchange format of the Graph500 pipeline.

The benchmark's step (1) produces an *edge list*; step (3) constructs the
search structure (CSR) from it. TEPS counting (step 6) goes back to the raw
list: the spec counts every input tuple — self loops and multiplicities
included — whose endpoints land in the traversed component. Keeping the
edge list as a first-class object (rather than only the CSR) is therefore
load-bearing for faithful metric computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class EdgeList:
    """Directed edge tuples ``(src[i], dst[i])`` over ``num_vertices`` ids."""

    src: np.ndarray
    dst: np.ndarray
    num_vertices: int

    def __post_init__(self) -> None:
        src, dst = np.asarray(self.src), np.asarray(self.dst)
        if src.shape != dst.shape or src.ndim != 1:
            raise ConfigError(
                f"src/dst must be equal-length 1-D arrays, got {src.shape}/{dst.shape}"
            )
        if self.num_vertices <= 0:
            raise ConfigError(f"num_vertices must be positive, got {self.num_vertices}")
        if len(src) and (
            src.min() < 0
            or dst.min() < 0
            or src.max() >= self.num_vertices
            or dst.max() >= self.num_vertices
        ):
            raise ConfigError("edge endpoint out of range")
        object.__setattr__(self, "src", np.ascontiguousarray(src, dtype=np.int64))
        object.__setattr__(self, "dst", np.ascontiguousarray(dst, dtype=np.int64))

    @property
    def num_edges(self) -> int:
        return len(self.src)

    # -- transforms (all return new EdgeLists) -------------------------------
    def symmetrized(self) -> "EdgeList":
        """Append the reverse of every edge (Graph500 graphs are undirected)."""
        return EdgeList(
            np.concatenate([self.src, self.dst]),
            np.concatenate([self.dst, self.src]),
            self.num_vertices,
        )

    def without_self_loops(self) -> "EdgeList":
        keep = self.src != self.dst
        return EdgeList(self.src[keep], self.dst[keep], self.num_vertices)

    def deduplicated(self) -> "EdgeList":
        """Drop duplicate (src, dst) tuples (used for CSR construction).

        The result is cached on the instance: dedup is the expensive sort
        of CSR construction, and benchmark harnesses dedup the same list
        repeatedly (kernel construction, validation, TEPS accounting).
        EdgeLists are immutable, so the cache can never go stale.
        """
        if self.num_edges == 0:
            return self
        cached = self.__dict__.get("_dedup_cache")
        if cached is not None:
            return cached
        key = self.src * np.int64(self.num_vertices) + self.dst
        _, idx = np.unique(key, return_index=True)
        idx.sort()
        result = EdgeList(self.src[idx], self.dst[idx], self.num_vertices)
        # Deduplicating an already-deduplicated list is the identity.
        object.__setattr__(result, "_dedup_cache", result)
        object.__setattr__(self, "_dedup_cache", result)
        return result

    def permuted(self, permutation: np.ndarray) -> "EdgeList":
        """Relabel vertices: new id of v is ``permutation[v]``."""
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.shape != (self.num_vertices,):
            raise ConfigError(
                f"permutation must have shape ({self.num_vertices},), got {perm.shape}"
            )
        if not np.array_equal(np.sort(perm), np.arange(self.num_vertices)):
            raise ConfigError("not a permutation of the vertex ids")
        return EdgeList(perm[self.src], perm[self.dst], self.num_vertices)

    def shuffled(self, rng: np.random.Generator) -> "EdgeList":
        order = rng.permutation(self.num_edges)
        return EdgeList(self.src[order], self.dst[order], self.num_vertices)

    # -- queries ------------------------------------------------------------------
    def degrees(self) -> np.ndarray:
        """Out-degree per vertex under the *directed* reading of the tuples."""
        return np.bincount(self.src, minlength=self.num_vertices).astype(np.int64)

    def undirected_degrees(self) -> np.ndarray:
        """Degree counting each tuple at both endpoints (self loops once)."""
        deg = np.bincount(self.src, minlength=self.num_vertices)
        deg = deg + np.bincount(self.dst, minlength=self.num_vertices)
        loops = np.bincount(
            self.src[self.src == self.dst], minlength=self.num_vertices
        )
        return (deg - loops).astype(np.int64)

    def edges_within(self, mask: np.ndarray) -> int:
        """Input tuples with both endpoints inside ``mask`` (TEPS numerator)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_vertices,):
            raise ConfigError("mask must have one entry per vertex")
        return int(np.count_nonzero(mask[self.src] & mask[self.dst]))

    def nbytes(self) -> int:
        return self.src.nbytes + self.dst.nbytes
