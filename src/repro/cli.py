"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``graph500`` — run the benchmark on the functional simulator;
- ``fig11`` / ``fig12`` / ``table2`` — regenerate the evaluation series
  from the calibrated model;
- ``specs`` — print Table 1;
- ``generate`` — write a Kronecker edge list to disk;
- ``lint`` — determinism lint over the sources (CI gate);
- ``prove-mesh`` — statically prove a shuffle schedule conflict- and
  deadlock-free;
- ``sanitize`` — double-run determinism check (digest diff);
- ``chaos`` — seeded chaos campaign over the erasure-coded checkpoint
  store, asserting bit-identical recovery against the fault-free run;
- ``serve`` / ``query`` — the long-lived multi-tenant graph query
  service and its client (see docs/service.md).
"""

from __future__ import annotations

import argparse
import sys

from repro.utils.tables import Table


def _parse_rank_value(specs, flag: str, default: float, cast=float):
    """Parse repeatable ``RANK[:VALUE]`` flags into a ``{rank: value}`` map."""
    from repro.errors import ConfigError

    out = {}
    for spec in specs or []:
        rank, _, value = spec.partition(":")
        try:
            out[int(rank)] = cast(value) if value else default
        except ValueError:
            raise ConfigError(
                f"bad {flag} {spec!r}: expected RANK[:VALUE]"
            ) from None
    return out


def _build_resilience(args: argparse.Namespace):
    """Fault/resilience knobs ->
    (resilience, fault_plan, node_faults, disk_faults)."""
    from repro.resilience.config import ResilienceConfig
    from repro.sim.faults import DiskFaultPlan, NodeFaultPlan, RandomFaultPlan

    resilience = None
    if args.reliable or args.checkpoint_interval > 0:
        resilience = ResilienceConfig(
            reliable_transport=args.reliable,
            ack_timeout=args.ack_timeout,
            max_retries=args.max_retries,
            seed=args.fault_seed,
            checkpoint_interval=args.checkpoint_interval,
            checkpoint_mode=args.checkpoint_mode,
            rs_data_shards=args.rs_k,
            rs_parity_shards=args.rs_m,
            scrub_interval=args.scrub_interval,
        )
    fault_plan = RandomFaultPlan(
        drop_rate=args.drop_rate,
        duplicate_rate=args.duplicate_rate,
        delay_rate=args.delay_rate,
        delay_seconds=args.delay_seconds,
        corrupt_rate=args.corrupt_rate,
        seed=args.fault_seed,
    )
    if not fault_plan.any_faults:
        fault_plan = None
    node_faults = None
    crash_at = (
        {args.crash_node: args.crash_at} if args.crash_node is not None else {}
    )
    stragglers = _parse_rank_value(args.straggler, "--straggler", 2.0)
    if crash_at or stragglers:
        node_faults = NodeFaultPlan(crash_at=crash_at, stragglers=stragglers)
    disk_faults = None
    disk_plan = DiskFaultPlan(
        lose_at=_parse_rank_value(args.disk_lose, "--disk-lose", 1e-4),
        corrupt_at=_parse_rank_value(args.disk_corrupt, "--disk-corrupt", 1e-4),
        degrade=_parse_rank_value(args.disk_degrade, "--disk-degrade", 2.0),
    )
    if disk_plan.any_faults:
        disk_faults = disk_plan
    return resilience, fault_plan, node_faults, disk_faults


def _render_partition_report(report: dict) -> str:
    """Render :meth:`PartitionedEngine.partition_report` for the terminal:
    per-lane loads, drain-run histogram, window occupancy, channel slack."""
    lines = []
    parts = report["partitions"]
    bounds = report["bounds"]
    aligned = "SN-aligned" if report["aligned"] else "unaligned"
    lines.append(
        f"partition report: {parts} compute lanes ({aligned}), "
        f"drain_workers={report['drain_workers']} "
        f"backend={report['drain_backend']}"
    )

    lane = Table(["lane", "nodes", "events"], title="per-lane loads")
    compute = report["lane_events"]["compute"]
    for i, events in enumerate(compute):
        span = "-" if bounds is None else f"{bounds[i]}-{bounds[i + 1] - 1}"
        lane.add_row([f"compute {i}", span, f"{events:,}"])
    lane.add_row(["fabric", "-", f"{report['lane_events']['fabric']:,}"])
    lane.add_row(["control", "-", f"{report['lane_events']['control']:,}"])
    lines.append(lane.render())

    hist = Table(["run length", "drains"], title="drain-run length histogram")
    for label, count in report["drain_run_hist"].items():
        hist.add_row([label, f"{count:,}"])
    lines.append(hist.render())

    occupancy = report["occupancy"]
    imbalance = report["imbalance"]
    lines.append(
        f"parallel windows: {report['parallel_windows']:,} "
        f"({report['parallel_window_events']:,} events, "
        f"{report['merge_live_events']:,} merged live); "
        f"occupancy {'-' if occupancy is None else f'{occupancy:.2f}'}; "
        f"imbalance {'-' if imbalance is None else f'{imbalance:.2f}'}"
    )
    fallback = report["parallel_fallback"]
    if fallback:
        lines.append(f"parallel fallback: {fallback}")

    channels = Table(
        ["src", "dst", "derived lookahead", "pushes", "observed min slack"],
        title="cross-partition channels (observed slack must stay >= 0)",
    )
    for ch in report["channels"]:
        slack = ch["min_slack"]
        channels.add_row([
            ch["src"],
            ch["dst"],
            f"{ch['lookahead']:.3e}",
            f"{ch['pushes']:,}",
            "-" if slack is None else f"{slack:.3e}",
        ])
    lines.append(channels.render())
    return "\n\n".join(lines)


def _cmd_graph500(args: argparse.Namespace) -> int:
    from repro.graph500.runner import Graph500Runner

    resilience, fault_plan, node_faults, disk_faults = _build_resilience(args)
    runner = Graph500Runner(
        scale=args.scale,
        nodes=args.nodes,
        seed=args.seed,
        variant=args.variant,
        nodes_per_super_node=args.super_node,
        resilience=resilience,
        fault_plan=fault_plan,
        node_faults=node_faults,
        disk_faults=disk_faults,
        on_root_failure=args.on_root_failure,
        workers=args.workers,
        engine_partitions=args.engine_partitions,
        drain_workers=args.drain_workers,
        drain_backend=args.drain_backend,
        sanitize=args.sanitize,
    )
    report = runner.run(num_roots=args.roots)
    print(report.summary())
    if args.partition_report:
        print()
        if runner.partition_report is None:
            print("partition report: engine ran unpartitioned "
                  "(--engine-partitions 1) or under fork workers")
        else:
            print(_render_partition_report(runner.partition_report))
    if args.per_root:
        print()
        print(report.per_root_table())
    if report.extra:
        print()
        print("resilience/fault counters:")
        for key, value in sorted(report.extra.items()):
            print(f"  {key}: {value:,.0f}")
    return 0 if report.all_validated else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profiled benchmark run: spans + metrics + critical-path report."""
    import json
    import pathlib

    from repro.graph500.runner import Graph500Runner
    from repro.telemetry import Telemetry
    from repro.telemetry.export import summary_csv, summary_markdown
    from repro.telemetry.profile import build_run_report

    tel = Telemetry()
    runner = Graph500Runner(
        scale=args.scale,
        nodes=args.nodes,
        seed=args.seed,
        variant=args.variant,
        validate=not args.no_validate,
        workers=1,  # full kernel instrumentation needs the sequential path
        telemetry=tel,
    )
    report = runner.run(num_roots=args.roots)
    run_doc = build_run_report(tel, json.loads(report.to_json()))

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "trace.json").write_text(tel.chrome_trace())
    (out_dir / "run_report.json").write_text(json.dumps(run_doc, indent=2))
    (out_dir / "summary.csv").write_text(summary_csv(run_doc))
    (out_dir / "summary.md").write_text(summary_markdown(run_doc))

    print(report.summary())
    print()
    critical = tel.critical_path()
    print(critical.level_table())
    print()
    print(critical.resource_table())
    check = run_doc["attribution_check"]
    print()
    print(
        f"attribution check: worst error "
        f"{100 * check['worst_relative_error']:.4f}% of sim_seconds "
        f"(within 1%: {check['within_1pct']})"
    )
    for name in ("trace.json", "run_report.json", "summary.csv", "summary.md"):
        print(f"wrote {out_dir / name}")
    return 0 if check["within_1pct"] else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded chaos campaign: randomized faults vs the fault-free oracle."""
    import pathlib

    from repro.durability import ChaosConfig, run_campaign
    from repro.telemetry import Telemetry

    cfg = ChaosConfig(
        scale=args.scale,
        nodes=args.nodes,
        scenarios=args.scenarios,
        seed=args.seed,
        variant=args.variant,
        nodes_per_super_node=args.super_node,
        data_shards=args.rs_k,
        parity_shards=args.rs_m,
        max_losses=args.max_losses,
        checkpoint_interval=args.checkpoint_interval,
        scrub_interval=args.scrub_interval,
    )
    tel = Telemetry()
    report = run_campaign(cfg, telemetry=tel)
    print(report.render())
    if args.out:
        pathlib.Path(args.out).write_text(report.to_json() + "\n")
        print(f"wrote {args.out}")
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """Determinism lint: AST rules + optional mesh proof, CI-gateable."""
    import pathlib

    from repro.sanitizers import RULES, lint_paths

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id} [{rule.scope}] {rule.name}: {rule.summary}")
        return 0
    paths = args.paths
    if not paths:
        # Default to the installed package sources.
        paths = [str(pathlib.Path(__file__).resolve().parent)]
    report = lint_paths(paths, scope=args.scope)
    if args.format == "json":
        rendered = report.to_json()
    elif args.format == "sarif":
        rendered = report.to_sarif()
    else:
        rendered = report.render_text()
    if args.output:
        pathlib.Path(args.output).write_text(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0 if report.ok else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Interprocedural analysis: drain safety, lock order, effects."""
    import pathlib

    from repro.analysis import (
        ANALYSIS_RULES,
        analyze_paths,
        default_baseline_path,
        load_baseline,
        write_baseline,
    )

    if args.list_rules:
        for rule in ANALYSIS_RULES.values():
            print(f"{rule.id} [{rule.scope}] {rule.name}: {rule.summary}")
        return 0
    paths = args.paths
    if not paths:
        paths = [str(pathlib.Path(__file__).resolve().parent)]
    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        baseline_path = default_baseline_path(paths)
    baseline = None
    if (
        baseline_path is not None
        and not args.no_baseline
        and pathlib.Path(baseline_path).is_file()
    ):
        baseline = load_baseline(baseline_path)
    report = analyze_paths(paths, baseline=baseline)
    if args.write_baseline:
        target = baseline_path or str(
            pathlib.Path(paths[0]).resolve().parent / "analysis-baseline.json"
        )
        write_baseline(target, report)
        print(f"wrote baseline {target} ({len(report.findings)} finding(s) "
              "suppressed)")
        return 0
    if args.format == "json":
        rendered = report.to_json()
    elif args.format == "sarif":
        rendered = report.to_sarif()
    else:
        rendered = report.render_text()
    if args.output:
        pathlib.Path(args.output).write_text(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0 if report.ok else 1


def _cmd_prove_mesh(args: argparse.Namespace) -> int:
    """Statically prove the shuffle schedule for a role layout."""
    from repro.core.config import BFSConfig, RoleLayout
    from repro.core.shuffle import ShufflePlan
    from repro.sanitizers import prove_plan

    roles = RoleLayout(
        producer_cols=args.producer_cols,
        router_cols=args.router_cols,
        consumer_cols=args.consumer_cols,
    )
    config = BFSConfig(roles=roles)
    plan = ShufflePlan.from_config(config, args.destinations)
    report = prove_plan(plan)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_sanitize(args: argparse.Namespace) -> int:
    """Double-run determinism check: report/span/metric digest diff."""
    from repro.sanitizers import check_determinism

    partitions = [int(p) for p in str(args.engine_partitions).split(",") if p]
    drain = [int(w) for w in str(args.drain_workers).split(",") if w]
    result = check_determinism(
        scale=args.scale,
        nodes=args.nodes,
        num_roots=args.roots,
        seed=args.seed,
        variant=args.variant,
        workers=args.workers,
        runs=args.runs,
        validate=not args.no_validate,
        engine_partitions=partitions if len(partitions) > 1 else partitions[0],
        drain_workers=drain if len(drain) > 1 else drain[0],
    )
    print(result.render())
    return 0 if result.ok else 1


def _cmd_fig11(args: argparse.Namespace) -> int:
    from repro.perf.scaling import FIG11_NODE_COUNTS, FIG11_VARIANTS, ScalingModel

    model = ScalingModel()
    series = model.fig11_all()
    t = Table(["nodes", *FIG11_VARIANTS], title="Figure 11: GTEPS at 16M vertices/node")
    for i, n in enumerate(FIG11_NODE_COUNTS):
        row = [n]
        for v in FIG11_VARIANTS:
            p = series[v][i]
            row.append(f"CRASH:{p.crashed}" if p.crashed else f"{p.gteps:,.0f}")
        t.add_row(row)
    print(t.render())
    return 0


def _cmd_fig12(args: argparse.Namespace) -> int:
    from repro.perf.scaling import (
        FIG12_NODE_COUNTS,
        FIG12_VERTICES_PER_NODE,
        ScalingModel,
    )
    from repro.utils.units import fmt_count

    model = ScalingModel()
    t = Table(
        ["nodes", *(fmt_count(v) + " vpn" for v in FIG12_VERTICES_PER_NODE)],
        title="Figure 12: weak scaling (Relay CPE), GTEPS",
    )
    series = {v: model.fig12_series(v) for v in FIG12_VERTICES_PER_NODE}
    for i, n in enumerate(FIG12_NODE_COUNTS):
        t.add_row([n, *(f"{series[v][i].gteps:,.0f}" for v in FIG12_VERTICES_PER_NODE)])
    print(t.render())
    h = model.headline()
    print(f"\nheadline (scale 40, 40,768 nodes): {h.gteps:,.1f} GTEPS "
          "(paper: 23,755.7)")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.perf.scaling import ScalingModel

    t = Table(["Authors", "Year", "Scale", "GTEPS", "Architecture"],
              title="Table 2 (GTEPS: ours in the Present Work row)")
    for row, measured in ScalingModel().table2_rows():
        shown = f"{measured:,.1f}" if measured is not None else f"{row.gteps:,.1f}"
        t.add_row([row.authors, row.year, row.scale, shown, row.architecture])
    print(t.render())
    return 0


def _cmd_strong(args: argparse.Namespace) -> int:
    from repro.perf.scaling import ScalingModel

    model = ScalingModel()
    points = model.strong_scaling(scale=args.scale, variant=args.variant)
    t = Table(
        ["nodes", "vertices/node", "GTEPS", "per-root seconds"],
        title=f"Strong scaling (extension): fixed scale {args.scale}, {args.variant}",
    )
    for p in points:
        t.add_row(
            [p.nodes, f"{p.vertices_per_node:,.0f}", f"{p.gteps:,.0f}",
             f"{p.total_seconds:.4f}"]
        )
    print(t.render())
    return 0


def _cmd_fullbench(args: argparse.Namespace) -> int:
    from repro.perf.scaling import HEADLINE_VERTICES_PER_NODE, ScalingModel

    model = ScalingModel()
    times = model.full_benchmark_time(
        nodes=args.nodes,
        vertices_per_node=HEADLINE_VERTICES_PER_NODE * 40_768 / args.nodes,
        num_roots=args.roots,
    )
    t = Table(["step", "seconds"], title="Whole-benchmark time estimate")
    for step in ("generate", "construct", "kernel", "validate", "total"):
        t.add_row([step, f"{times[step]:.1f}"])
    print(t.render())
    return 0


def _cmd_specs(args: argparse.Namespace) -> int:
    from repro.machine.specs import spec_table_rows

    t = Table(["Item", "Specifications"], title="Table 1: Sunway TaihuLight")
    for item, spec in spec_table_rows():
        t.add_row([item, spec])
    print(t.render())
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    """Run every modelled renderer, teeing each into ``--out``."""
    import contextlib
    import io
    import pathlib

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    jobs = {
        "table1_specs": (_cmd_specs, argparse.Namespace()),
        "fig11": (_cmd_fig11, argparse.Namespace()),
        "fig12": (_cmd_fig12, argparse.Namespace()),
        "table2": (_cmd_table2, argparse.Namespace()),
        "strong_scaling": (_cmd_strong, argparse.Namespace(scale=36, variant="relay-cpe")),
        "full_benchmark": (_cmd_fullbench, argparse.Namespace(nodes=40_768, roots=64)),
    }
    for name, (fn, ns) in jobs.items():
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            fn(ns)
        path = out_dir / f"{name}.txt"
        path.write_text(buffer.getvalue())
        print(f"wrote {path}")
    print(
        "note: functional benchmarks (micro-benches, ablations) live in "
        "`pytest benchmarks/ --benchmark-only`, archived under "
        "benchmarks/results/"
    )
    return 0


def _cmd_sssp(args: argparse.Namespace) -> int:
    from repro.graph500.sssp import SSSPRunner

    report = SSSPRunner(
        scale=args.scale,
        nodes=args.nodes,
        algorithm=args.algorithm,
        nodes_per_super_node=args.super_node,
    ).run(num_roots=args.roots)
    print(report.summary())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.graph.io import save_edgelist
    from repro.graph.kronecker import KroneckerGenerator
    from repro.graph.stats import degree_stats

    gen = KroneckerGenerator(scale=args.scale, seed=args.seed)
    edges = gen.generate()
    path = save_edgelist(args.output, edges)
    stats = degree_stats(edges)
    print(f"wrote {path}: {gen.describe()}")
    print(f"max degree {stats.max_degree}, top-1% share "
          f"{100 * stats.top1pct_share:.1f}%, gini {stats.gini:.2f}")
    return 0


def _parse_graph_spec(spec: str):
    """``NAME:SCALE[:NODES[:SEED]]`` → (name, GraphSpec)."""
    from repro.errors import ConfigError
    from repro.service import GraphSpec

    parts = spec.split(":")
    if not 2 <= len(parts) <= 4 or not parts[0]:
        raise ConfigError(
            f"bad graph spec {spec!r}: expected NAME:SCALE[:NODES[:SEED]]"
        )
    try:
        scale = int(parts[1])
        nodes = int(parts[2]) if len(parts) > 2 else 8
        seed = int(parts[3]) if len(parts) > 3 else 1
    except ValueError:
        raise ConfigError(f"bad graph spec {spec!r}: non-integer field") from None
    return parts[0], GraphSpec(scale=scale, nodes=nodes, seed=seed)


def _parse_tenant_spec(spec: str):
    """``NAME:RATE[:BURST[:WEIGHT]]`` → (name, TenantConfig); RATE may be
    ``-`` for unlimited."""
    from repro.errors import ConfigError
    from repro.service import TenantConfig

    parts = spec.split(":")
    if not 2 <= len(parts) <= 4 or not parts[0]:
        raise ConfigError(
            f"bad tenant spec {spec!r}: expected NAME:RATE[:BURST[:WEIGHT]]"
        )
    try:
        rate = None if parts[1] in ("-", "") else float(parts[1])
        burst = float(parts[2]) if len(parts) > 2 else 64.0
        weight = float(parts[3]) if len(parts) > 3 else 1.0
    except ValueError:
        raise ConfigError(f"bad tenant spec {spec!r}: non-numeric field") from None
    return parts[0], TenantConfig(rate=rate, burst=burst, weight=weight)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service import GraphService, ServiceConfig, ServiceServer

    service = GraphService(
        ServiceConfig(
            workers=args.workers,
            cache_capacity=args.cache_capacity,
            default_timeout=args.default_timeout,
            host_shared=not args.no_shm,
        )
    )
    for spec in args.preload or []:
        name, graph_spec = _parse_graph_spec(spec)
        entry = service.load_graph(name, graph_spec)
        print(
            f"loaded {name}: scale {graph_spec.scale}, "
            f"{entry.graph.num_vertices:,} vertices, "
            f"{int(entry.edges.num_edges):,} edges"
            + (" (shared memory)" if entry.shared is not None else "")
        )
    for spec in args.tenant or []:
        name, config = _parse_tenant_spec(spec)
        service.configure_tenant(name, config)

    async def _serve() -> None:
        server = ServiceServer(service, host=args.host, port=args.port)
        await server.start()
        print(f"serving on {args.host}:{server.port}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        try:
            await stop.wait()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - non-asyncio interrupt
        pass
    service.close()
    if args.report:
        print(service.report())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.service import ServiceClient

    admin = args.ping or args.stats or args.report or args.load or args.evict
    if not admin and (not args.graph or not args.algo):
        raise ConfigError("query needs GRAPH and ALGO (or an admin flag)")
    with ServiceClient(host=args.host, port=args.port) as client:
        if args.ping:
            print(client.ping())
            return 0
        if args.stats:
            import json

            print(json.dumps(client.stats(), indent=2, default=str))
            return 0
        if args.report:
            print(client.report())
            return 0
        if args.load:
            name, spec = _parse_graph_spec(args.load)
            print(client.load(name, scale=spec.scale, seed=spec.seed,
                              nodes=spec.nodes))
            return 0
        if args.evict:
            print(client.evict(args.evict))
            return 0
        params = {}
        for kv in args.param or []:
            key, sep, value = kv.partition("=")
            if not sep:
                raise ConfigError(f"bad --param {kv!r}: expected KEY=VALUE")
            params[key] = value
        result = client.query(
            args.graph, args.algo, params, tenant=args.tenant,
            timeout=args.timeout, arrays=not args.no_arrays,
        )
    print(
        f"{result.status}: {result.algo} on {result.graph} "
        f"(tenant {result.tenant}, cached {result.cached})"
    )
    if result.error:
        print(f"error: {result.error}")
    scalars = {
        k: v for k, v in result.payload.items()
        if isinstance(v, (int, float, str))
    }
    for key in sorted(scalars):
        print(f"  {key}: {scalars[key]}")
    print(
        f"  latency {result.latency * 1e3:.3f} ms "
        f"(queue {result.queue_wait * 1e3:.3f}, "
        f"execute {result.execute_seconds * 1e3:.3f})"
    )
    return 0 if result.status == "ok" else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sunway TaihuLight Graph500 BFS reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("graph500", help="run the benchmark on the simulator")
    p.add_argument("--scale", type=int, default=12)
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--roots", type=int, default=8)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--variant", default="relay-cpe")
    p.add_argument("--super-node", type=int, default=None)
    p.add_argument("--per-root", action="store_true")
    p.add_argument("--workers", type=int, default=1,
                   help="fork-parallel root execution (1 = sequential; "
                        "fault/resilience configs always run sequentially)")
    p.add_argument("--engine-partitions", type=int, default=1,
                   help="conservative-sync PDES partitions for the event "
                        "engine (1 = sequential loop; results are "
                        "bit-identical either way)")
    p.add_argument("--drain-workers", type=int, default=1,
                   help="worker pool size for parallel drain of compute "
                        "lanes between sync points (1 = serial; needs "
                        "--engine-partitions >= 2; bit-identical results)")
    p.add_argument("--drain-backend", choices=["thread", "process"],
                   default="thread",
                   help="parallel drain backend: thread pool (GIL-bound) "
                        "or forked processes attaching the shared CSR")
    p.add_argument("--partition-report", action="store_true",
                   help="print PDES accounting after the run: per-lane "
                        "loads, drain-run histogram, window occupancy, "
                        "observed vs derived channel slack")
    fault = p.add_argument_group("fault injection (seeded, replayable)")
    fault.add_argument("--drop-rate", type=float, default=0.0,
                       help="probability a message is dropped on the wire")
    fault.add_argument("--duplicate-rate", type=float, default=0.0,
                       help="probability a message is delivered twice")
    fault.add_argument("--delay-rate", type=float, default=0.0,
                       help="probability a message is delayed")
    fault.add_argument("--delay-seconds", type=float, default=1e-5,
                       help="delay applied to delayed messages")
    fault.add_argument("--corrupt-rate", type=float, default=0.0,
                       help="probability a record payload is corrupted")
    fault.add_argument("--fault-seed", type=int, default=0,
                       help="seed for fault draws and transport jitter")
    fault.add_argument("--crash-node", type=int, default=None,
                       help="rank to fail-stop crash")
    fault.add_argument("--crash-at", type=float, default=1e-4,
                       help="simulated time of the --crash-node crash")
    fault.add_argument("--straggler", action="append", metavar="RANK[:FACTOR]",
                       help="slow a rank's traffic by FACTOR (default 2x); "
                            "repeatable")
    fault.add_argument("--disk-lose", action="append", metavar="RANK[:TIME]",
                       help="lose RANK's checkpoint disk at simulated TIME "
                            "(default 1e-4); repeatable")
    fault.add_argument("--disk-corrupt", action="append", metavar="RANK[:TIME]",
                       help="flip a byte of one checkpoint shard on RANK at "
                            "TIME (default 1e-4); repeatable")
    fault.add_argument("--disk-degrade", action="append",
                       metavar="RANK[:FACTOR]",
                       help="slow RANK's checkpoint I/O by FACTOR "
                            "(default 2x); repeatable")
    res = p.add_argument_group("resilience")
    res.add_argument("--reliable", action="store_true",
                     help="enable the ack/retransmit reliable transport")
    res.add_argument("--ack-timeout", type=float, default=2e-4)
    res.add_argument("--max-retries", type=int, default=5)
    res.add_argument("--checkpoint-interval", type=int, default=0,
                     help="checkpoint every K levels (0 = off)")
    res.add_argument("--checkpoint-mode", choices=["buddy", "rs"],
                     default="buddy",
                     help="buddy: one full copy (2x storage, survives 1 "
                          "loss); rs: erasure-coded shards ((k+m)/k "
                          "storage, survives m losses)")
    res.add_argument("--rs-k", type=int, default=4,
                     help="RS data shards per snapshot (rs mode)")
    res.add_argument("--rs-m", type=int, default=2,
                     help="RS parity shards = simultaneous-loss budget")
    res.add_argument("--scrub-interval", type=int, default=0,
                     help="scrub shard checksums every K levels (0 = off; "
                          "rs mode)")
    res.add_argument("--on-root-failure", choices=["abort", "skip"],
                     default="abort",
                     help="skip: record a failed root and keep benchmarking")
    p.add_argument("--sanitize", action="store_true",
                   help="enable runtime sanitizers: SPM write-conflict and "
                        "message-mutation detection (forces workers=1)")
    p.set_defaults(func=_cmd_graph500)

    p = sub.add_parser(
        "lint",
        help="determinism lint over python sources (rule ids REP101-REP108)",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: the installed "
                        "repro package)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text")
    p.add_argument("--output", default=None,
                   help="write findings to this file instead of stdout")
    p.add_argument("--scope", choices=["sim-core", "repro", "service"],
                   default=None,
                   help="force a rule scope instead of deriving it from "
                        "each file's package path")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "analyze",
        help="interprocedural analysis: drain-context reachability, "
             "lock order, blocking-under-lock, effect annotations "
             "(rule ids REP200-REP204)",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories to analyze (default: the "
                        "installed repro package)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text")
    p.add_argument("--output", default=None,
                   help="write findings to this file instead of stdout")
    p.add_argument("--baseline", default=None,
                   help="baseline file of suppressed finding ids (default: "
                        "nearest analysis-baseline.json above the first "
                        "analyzed path)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline file; report all findings")
    p.add_argument("--write-baseline", action="store_true",
                   help="suppress every current finding into the baseline "
                        "file and exit 0")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "prove-mesh",
        help="prove a register-mesh shuffle schedule conflict/deadlock-free",
    )
    p.add_argument("--destinations", type=int, default=64)
    p.add_argument("--producer-cols", type=int, default=4)
    p.add_argument("--router-cols", type=int, default=2)
    p.add_argument("--consumer-cols", type=int, default=2)
    p.set_defaults(func=_cmd_prove_mesh)

    p = sub.add_parser(
        "sanitize",
        help="determinism sanitizer: run the benchmark N times, diff digests",
    )
    p.add_argument("--scale", type=int, default=13)
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--roots", type=int, default=4)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--variant", default="relay-cpe")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--no-validate", action="store_true")
    p.add_argument("--engine-partitions", default="1",
                   help="PDES partition count, or a comma list cycled "
                        "across runs (e.g. '1,2' proves the partitioned "
                        "engine digest-identical to the sequential one)")
    p.add_argument("--drain-workers", default="1",
                   help="parallel drain worker count, or a comma list "
                        "cycled across runs (e.g. '1,2' proves the "
                        "parallel drain digest-identical to the serial "
                        "one; needs --engine-partitions >= 2)")
    p.set_defaults(func=_cmd_sanitize)

    p = sub.add_parser(
        "profile",
        help="profiled benchmark run: Chrome trace, run report, summaries",
    )
    p.add_argument("--scale", type=int, default=13)
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--roots", type=int, default=4)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--variant", default="relay-cpe")
    p.add_argument("--no-validate", action="store_true")
    p.add_argument("--out", default="profile",
                   help="directory for trace.json / run_report.json / "
                        "summary.csv / summary.md")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "chaos",
        help="seeded chaos campaign: randomized disk/node faults vs the "
             "fault-free oracle (RS durability acceptance harness)",
    )
    p.add_argument("--scale", type=int, default=13)
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--scenarios", type=int, default=50)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--variant", default="relay-cpe")
    p.add_argument("--super-node", type=int, default=4)
    p.add_argument("--rs-k", type=int, default=4,
                   help="RS data shards per snapshot")
    p.add_argument("--rs-m", type=int, default=2,
                   help="RS parity shards = simultaneous-loss budget")
    p.add_argument("--max-losses", type=int, default=2,
                   help="max destructive faults per scenario (capped at m)")
    p.add_argument("--checkpoint-interval", type=int, default=1)
    p.add_argument("--scrub-interval", type=int, default=1)
    p.add_argument("--out", default=None,
                   help="write the campaign report JSON to this path")
    p.set_defaults(func=_cmd_chaos)

    sub.add_parser("fig11", help="modelled Figure 11 sweep").set_defaults(
        func=_cmd_fig11
    )
    sub.add_parser("fig12", help="modelled Figure 12 weak scaling").set_defaults(
        func=_cmd_fig12
    )
    sub.add_parser("table2", help="Table 2 comparison").set_defaults(func=_cmd_table2)
    sub.add_parser("specs", help="print Table 1").set_defaults(func=_cmd_specs)

    p = sub.add_parser("strong", help="modelled strong scaling (extension)")
    p.add_argument("--scale", type=int, default=36)
    p.add_argument("--variant", default="relay-cpe")
    p.set_defaults(func=_cmd_strong)

    p = sub.add_parser("fullbench", help="whole-benchmark time estimate")
    p.add_argument("--nodes", type=int, default=40_768)
    p.add_argument("--roots", type=int, default=64)
    p.set_defaults(func=_cmd_fullbench)

    p = sub.add_parser(
        "reproduce", help="regenerate all modelled tables/figures into a directory"
    )
    p.add_argument("--out", default="reproduction")
    p.set_defaults(func=_cmd_reproduce)

    p = sub.add_parser("sssp", help="Graph500-style SSSP kernel (extension)")
    p.add_argument("--scale", type=int, default=10)
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--roots", type=int, default=4)
    p.add_argument("--algorithm", default="delta-stepping",
                   choices=["delta-stepping", "bellman-ford"])
    p.add_argument("--super-node", type=int, default=None)
    p.set_defaults(func=_cmd_sssp)

    p = sub.add_parser("generate", help="write a Kronecker edge list (.npz)")
    p.add_argument("--scale", type=int, default=16)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("output")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser(
        "serve", help="run the multi-tenant graph query service"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral, printed on startup)")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--cache-capacity", type=int, default=1024,
                   help="hot-root result cache lines (0 disables)")
    p.add_argument("--default-timeout", type=float, default=None,
                   help="per-query deadline in seconds")
    p.add_argument("--preload", action="append", metavar="NAME:SCALE[:NODES[:SEED]]",
                   help="pre-build a catalog graph (repeatable)")
    p.add_argument("--tenant", action="append", metavar="NAME:RATE[:BURST[:WEIGHT]]",
                   help="tenant QoS config; RATE '-' = unlimited (repeatable)")
    p.add_argument("--no-shm", action="store_true",
                   help="skip shared-memory hosting of catalog CSRs")
    p.add_argument("--report", action="store_true",
                   help="print the per-tenant report on shutdown")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("query", help="query a running service")
    p.add_argument("graph", nargs="?", help="catalog graph name")
    p.add_argument("algo", nargs="?",
                   help="bfs | sssp | pagerank | kcore | wcc")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--tenant", default="default")
    p.add_argument("--timeout", type=float, default=None)
    p.add_argument("--param", action="append", metavar="KEY=VALUE",
                   help="algorithm parameter (repeatable), e.g. root=3")
    p.add_argument("--no-arrays", action="store_true",
                   help="strip bulky payload arrays from the response")
    p.add_argument("--ping", action="store_true")
    p.add_argument("--stats", action="store_true",
                   help="print machine-readable service stats")
    p.add_argument("--report", action="store_true",
                   help="print the server-rendered per-tenant report")
    p.add_argument("--load", metavar="NAME:SCALE[:NODES[:SEED]]",
                   help="load a graph into the catalog")
    p.add_argument("--evict", metavar="NAME",
                   help="evict a graph from the catalog")
    p.set_defaults(func=_cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
