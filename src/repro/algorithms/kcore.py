"""k-core membership via distributed peeling.

A vertex is in the k-core iff it has >= k neighbours that are also in the
k-core. Supersteps: vertices falling under k announce their removal;
owners decrement the remaining-degree of the notified neighbours; repeat
until no removals. The surviving set is exactly the k-core.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import SuperstepEngine, SuperstepResult
from repro.errors import ConfigError


@dataclass
class KCoreResult(SuperstepResult):
    in_core: np.ndarray = None  # type: ignore[assignment]
    k: int = 0

    def core_size(self) -> int:
        return int(self.in_core.sum())


class DistributedKCore:
    def __init__(self, edges, nodes, **engine_kwargs):
        self.engine = SuperstepEngine(edges, nodes, **engine_kwargs)

    def run(self, k: int, max_rounds: int = 10_000) -> KCoreResult:
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        eng = self.engine
        alive = [np.ones(p.n_local, dtype=bool) for p in eng.parts]
        degree = [p.graph.degrees().astype(np.int64) for p in eng.parts]
        t_start = eng.sim_seconds
        rounds = 0
        while rounds < max_rounds:
            outgoing = []
            any_removed = False
            for part, a, deg in zip(eng.parts, alive, degree):
                doomed = np.flatnonzero(a & (deg < k))
                if len(doomed) == 0:
                    outgoing.append((np.empty(0, np.int64), np.empty(0)))
                    continue
                any_removed = True
                a[doomed] = False
                _, targets = part.graph.expand(doomed)
                outgoing.append((targets, np.ones(len(targets))))
            if not any_removed:
                break
            rounds += 1
            inboxes = eng.superstep(outgoing)
            for part, a, deg, (v, x) in zip(eng.parts, alive, degree, inboxes):
                if len(v) == 0:
                    continue
                v_local = v - part.lo
                deg -= np.bincount(
                    v_local, weights=x, minlength=part.n_local
                ).astype(np.int64)
        else:
            raise ConfigError(f"k-core did not converge within {max_rounds} rounds")
        return KCoreResult(
            sim_seconds=eng.sim_seconds - t_start,
            supersteps=rounds,
            stats={"records_sent": float(eng.records_sent)},
            in_core=np.concatenate(alive),
            k=k,
        )
