"""Delta-stepping SSSP on the superstep engine.

The production-grade SSSP the Section 8 claim points at: Meyer & Sanders'
bucketed relaxation. Distances are processed in buckets of width ``delta``;
within a bucket, *light* edges (w <= delta) relax iteratively until the
bucket empties, then *heavy* edges (w > delta) relax once. Compared with
the plain Bellman-Ford in :mod:`repro.algorithms.sssp`, it bounds wasted
relaxations on weighted power-law graphs while using the exact same
shuffle-and-relay substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import SuperstepEngine, SuperstepResult
from repro.algorithms.sssp import edge_weight
from repro.errors import ConfigError


@dataclass
class DeltaSteppingResult(SuperstepResult):
    dist: np.ndarray = None  # type: ignore[assignment]
    buckets_processed: int = 0


class DistributedDeltaStepping:
    def __init__(self, edges, nodes, delta: float = 2.0, max_weight: int = 8,
                 **engine_kwargs):
        if delta <= 0:
            raise ConfigError(f"delta must be positive, got {delta}")
        if max_weight < 1:
            raise ConfigError(f"max_weight must be >= 1, got {max_weight}")
        self.engine = SuperstepEngine(edges, nodes, **engine_kwargs)
        self.delta = float(delta)
        self.max_weight = max_weight
        # Pre-split each partition's adjacency into light and heavy edges.
        self._light: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._heavy: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for part in self.engine.parts:
            srcs_local, targets = part.graph.expand(
                np.arange(part.n_local, dtype=np.int64)
            )
            w = edge_weight(srcs_local + part.lo, targets, max_weight)
            light = w <= self.delta
            self._light.append((srcs_local[light], targets[light], w[light]))
            self._heavy.append((srcs_local[~light], targets[~light], w[~light]))

    @staticmethod
    def _relax_edges(part, edges_split, mask_local):
        """Outgoing (target, candidate distance) records for active sources."""
        srcs, tgts, w = edges_split
        keep = mask_local[srcs]
        return srcs[keep], tgts[keep], w[keep]

    def _combine_min(self, inboxes, dist, touched):
        for part, d, t, (v, x) in zip(self.engine.parts, dist, touched, inboxes):
            if len(v) == 0:
                continue
            v_local = v - part.lo
            order = np.lexsort((x, v_local))
            v_s, x_s = v_local[order], x[order]
            first = np.concatenate(([True], v_s[1:] != v_s[:-1]))
            v_min, x_min = v_s[first], x_s[first]
            better = x_min < d[v_min]
            d[v_min[better]] = x_min[better]
            t[v_min[better]] = True

    def run(self, root: int, max_rounds: int = 100_000) -> DeltaSteppingResult:
        eng = self.engine
        n = eng.graph.num_vertices
        if not 0 <= root < n:
            raise ConfigError(f"root {root} out of range")
        dist = [np.full(p.n_local, np.inf) for p in eng.parts]
        owner = int(eng.owner[root])
        dist[owner][root - eng.parts[owner].lo] = 0.0

        t_start = eng.sim_seconds
        rounds = 0
        buckets = 0
        bucket = 0
        max_bucket = int(np.ceil(n * self.max_weight / self.delta)) + 1
        while bucket <= max_bucket:
            lo, hi = bucket * self.delta, (bucket + 1) * self.delta
            in_bucket = [
                (d >= lo) & (d < hi) & np.isfinite(d) for d in dist
            ]
            if not any(m.any() for m in in_bucket):
                # Jump to the next non-empty bucket (or finish).
                finite_min = [
                    d[(d >= hi) & np.isfinite(d)].min()
                    for d in dist
                    if ((d >= hi) & np.isfinite(d)).any()
                ]
                if not finite_min:
                    break
                bucket = int(min(finite_min) // self.delta)
                continue
            buckets += 1
            settled = [m.copy() for m in in_bucket]
            # Light-edge phase: iterate until the bucket stops growing.
            active = in_bucket
            while any(m.any() for m in active):
                rounds += 1
                if rounds > max_rounds:
                    raise ConfigError("delta-stepping did not converge")
                outgoing = []
                for part, d, m, light in zip(
                    eng.parts, dist, active, self._light
                ):
                    srcs, tgts, w = self._relax_edges(part, light, m)
                    outgoing.append((tgts, d[srcs] + w))
                touched = [np.zeros(p.n_local, dtype=bool) for p in eng.parts]
                self._combine_min(eng.superstep(outgoing), dist, touched)
                active = []
                for d, t, s in zip(dist, touched, settled):
                    # Re-activate anything whose distance changed into (or
                    # within) the bucket — improved vertices must re-relax.
                    now_in = t & (d >= lo) & (d < hi)
                    s |= now_in
                    active.append(now_in)
            # Heavy-edge phase: one relaxation from everything settled here.
            rounds += 1
            outgoing = []
            for part, d, s, heavy in zip(eng.parts, dist, settled, self._heavy):
                srcs, tgts, w = self._relax_edges(part, heavy, s)
                outgoing.append((tgts, d[srcs] + w))
            touched = [np.zeros(p.n_local, dtype=bool) for p in eng.parts]
            self._combine_min(eng.superstep(outgoing), dist, touched)
            bucket += 1

        return DeltaSteppingResult(
            sim_seconds=eng.sim_seconds - t_start,
            supersteps=rounds,
            stats={"records_sent": float(eng.records_sent)},
            dist=np.concatenate(dist),
            buckets_processed=buckets,
        )
