"""Generic superstep engine over the shuffle-and-relay substrate.

A Pregel-flavoured loop: each superstep every node emits (target vertex,
value) records; the engine shuffles them — generator module at the source,
relay module at the group relay (when relaying is on), handler module at
the owner — and hands each node its incoming batch. Timing is charged
through the same :class:`~repro.core.pipeline.NodePipeline` servers and
SimMPI links the BFS uses, so the techniques' costs carry over exactly as
Section 8 claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batching import GroupLayout
from repro.core.config import BFSConfig
from repro.core.pipeline import NodePipeline
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.partition import Partition1D
from repro.machine.node import SunwayNode
from repro.machine.specs import MachineSpec, TAIHULIGHT
from repro.network.simmpi import Message, SimCluster
from repro.sim.engine import Engine


@dataclass
class LocalPart:
    """One node's slice: vertex range, local CSR, pipeline, inbox."""

    node_id: int
    lo: int
    hi: int
    graph: CSRGraph
    pipeline: NodePipeline
    inbox_v: list = field(default_factory=list)
    inbox_x: list = field(default_factory=list)

    @property
    def n_local(self) -> int:
        return self.hi - self.lo

    def drain_inbox(self) -> tuple[np.ndarray, np.ndarray]:
        if not self.inbox_v:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        v = np.concatenate(self.inbox_v)
        x = np.concatenate(self.inbox_x)
        self.inbox_v.clear()
        self.inbox_x.clear()
        return v, x


@dataclass
class SuperstepResult:
    """Common result envelope for the extension algorithms."""

    sim_seconds: float
    supersteps: int
    stats: dict[str, float] = field(default_factory=dict)


class SuperstepEngine:
    """Construction mirrors :class:`~repro.core.bfs.DistributedBFS` minus
    the BFS-specific machinery (policy, hubs)."""

    #: (target vertex id, float value) on the wire.
    record_bytes = 12

    def __init__(
        self,
        edges: EdgeList,
        nodes: int,
        config: BFSConfig | None = None,
        spec: MachineSpec = TAIHULIGHT,
        nodes_per_super_node: int | None = None,
        graph: CSRGraph | None = None,
    ):
        self.config = config or BFSConfig()
        self.spec = spec
        if nodes < 1:
            raise ConfigError(f"need at least one node, got {nodes}")
        self.num_nodes = nodes
        self.edges = edges
        # ``graph`` threads an already-built symmetrised deduplicated CSR
        # (e.g. a catalog-pinned instance) past re-derivation, exactly like
        # DistributedBFS(graph=...); only the cheap vertex-count check runs.
        if graph is None:
            graph = CSRGraph.from_edges(edges)
        elif graph.num_vertices != edges.num_vertices:
            raise ConfigError(
                f"prebuilt graph has {graph.num_vertices} vertices, "
                f"edge list has {edges.num_vertices}"
            )
        self.graph = graph
        n = self.graph.num_vertices
        if nodes > n:
            raise ConfigError(f"{nodes} nodes for only {n} vertices")
        weights = (
            self.graph.degrees()
            if self.config.partition_mode == "balanced"
            else None
        )
        self.partition = Partition1D(
            n, nodes, mode=self.config.partition_mode, edge_weights=weights
        )
        self.owner = self.partition.owner(np.arange(n, dtype=np.int64))
        nps = (
            nodes_per_super_node
            if nodes_per_super_node is not None
            else spec.taihulight.nodes_per_super_node
        )
        self.groups = GroupLayout(nodes, min(self.config.group_width or nps, nodes))
        self.engine = Engine()
        self.cluster = SimCluster(
            self.engine, nodes, spec=spec, nodes_per_super_node=nps,
            track_connections=self.config.track_connections,
        )
        self.parts: list[LocalPart] = []
        for i in range(nodes):
            lo, hi = self.partition.part_range(i)
            part = LocalPart(
                i, lo, hi, self.graph.row_slice(lo, hi),
                NodePipeline(SunwayNode(i, spec), self.config),
            )
            self.parts.append(part)
            self.cluster.register(i, self._make_handler(part))
        self._t_max = 0.0
        self.records_sent = 0

    # ------------------------------------------------------------ handlers --
    def _make_handler(self, part: LocalPart):
        def handler(msg: Message) -> None:
            self._on_message(part, msg)

        return handler

    def _on_message(self, part: LocalPart, msg: Message) -> None:
        ready = part.pipeline.submit_recv(msg.arrival_time)
        self._mark(ready)
        if msg.tag == "eol":
            return
        v, x = msg.payload
        if msg.tag == "alg":
            execution = part.pipeline.submit_module(ready, "forward_handler", msg.nbytes)
            self._mark(execution.finish)
            part.inbox_v.append(v)
            part.inbox_x.append(x)
        elif msg.tag == "alg_relay":
            execution = part.pipeline.submit_module(ready, "forward_relay", msg.nbytes)
            self._mark(execution.finish)
            self._stage_two(part, execution, v, x)
        else:  # pragma: no cover - defensive
            raise ConfigError(f"unknown tag {msg.tag!r}")

    def _mark(self, t: float) -> None:
        if t > self._t_max:
            self._t_max = t

    # -------------------------------------------------------------- routing --
    def _message_bytes(self, count: int) -> int:
        return self.config.header_bytes + count * self.record_bytes

    def _send_buckets(self, part, execution, tag, v, x, hops):
        if len(hops) == 0:
            return
        order = np.argsort(hops, kind="stable")
        hops, v, x = hops[order], v[order], x[order]
        boundaries = np.flatnonzero(np.diff(hops)) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [len(hops)]))
        for k, (a, b) in enumerate(zip(starts, stops)):
            nbytes = self._message_bytes(b - a)
            ready = execution.ready_fraction((k + 1) / len(starts))
            send_at = part.pipeline.submit_send(ready, nbytes)
            self._mark(send_at)
            self.cluster.send(
                part.node_id, int(hops[a]), tag, nbytes,
                payload=(v[a:b], x[a:b]), at_time=send_at,
            )
            self.records_sent += b - a

    def _stage_two(self, part, execution, v, x):
        dest = self.owner[v]
        local = dest == part.node_id
        if local.any():
            nbytes = self._message_bytes(int(local.sum()))
            handler = part.pipeline.submit_module(
                execution.finish, "forward_handler", nbytes
            )
            self._mark(handler.finish)
            part.inbox_v.append(v[local])
            part.inbox_x.append(x[local])
        remote = ~local
        if remote.any():
            self._send_buckets(part, execution, "alg", v[remote], x[remote], dest[remote])

    def _route(self, part, execution, v, x):
        dest = self.owner[v]
        me = part.node_id
        local = dest == me
        if local.any():
            nbytes = self._message_bytes(int(local.sum()))
            handler = part.pipeline.submit_module(
                execution.finish, "forward_handler", nbytes
            )
            self._mark(handler.finish)
            part.inbox_v.append(v[local])
            part.inbox_x.append(x[local])
        remote = ~local
        if not remote.any():
            return
        rv, rx, rdest = v[remote], x[remote], dest[remote]
        if not self.config.use_relay:
            self._send_buckets(part, execution, "alg", rv, rx, rdest)
            return
        relays = self.groups.relay_vectorised(me, rdest)
        straight = (relays == me) | (relays == rdest)
        if straight.any():
            self._send_buckets(
                part, execution, "alg", rv[straight], rx[straight], rdest[straight]
            )
        hop = ~straight
        if hop.any():
            self._send_buckets(
                part, execution, "alg_relay", rv[hop], rx[hop], relays[hop]
            )

    # ------------------------------------------------------------ superstep --
    def _allreduce_time(self) -> float:
        if self.num_nodes == 1:
            return 0.0
        t = self.spec.taihulight
        rounds = int(np.ceil(np.log2(self.num_nodes)))
        return rounds * (t.inter_super_node_latency + t.message_overhead)

    def superstep(
        self, outgoing: list[tuple[np.ndarray, np.ndarray]]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Exchange one round of records; returns each node's inbox.

        ``outgoing[i]`` is node i's (target vertices, values); the returned
        list has the records grouped at their owners.
        """
        if len(outgoing) != self.num_nodes:
            raise ConfigError("need one outgoing batch per node")
        t0 = self._t_max + self._allreduce_time()
        self._mark(t0)
        for part, (v, x) in zip(self.parts, outgoing):
            v = np.asarray(v, dtype=np.int64)
            x = np.asarray(x, dtype=np.float64)
            if v.shape != x.shape:
                raise ConfigError("targets and values must align")
            nbytes = max(len(v), 1) * self.record_bytes
            execution = part.pipeline.submit_module(t0, "forward_generator", nbytes)
            self._mark(execution.finish)
            if len(v):
                self._route(part, execution, v, x)
        self.engine.run_until_quiescent()
        return [part.drain_inbox() for part in self.parts]

    @property
    def sim_seconds(self) -> float:
        return self._t_max
