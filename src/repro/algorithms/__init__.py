"""Other irregular graph algorithms on the BFS substrate (Section 8).

The paper: "The key operations of the distributed BFS can be viewed as
shuffling dynamically generated data, which is also the major operation of
many other graph algorithms, such as Single Source Shortest Path (SSSP),
Weakly Connected Component (WCC), PageRank, and K-core decomposition. All
the three key techniques we used are readily applicable."

This package makes that claim executable: a generic superstep engine
(:mod:`repro.algorithms.base`) reuses the 1-D partitioning, the pipelined
module mapping, the contention-free shuffle pricing and the group relay
routing — and the four algorithms the paper names run on top of it.
"""

from repro.algorithms.base import SuperstepEngine, SuperstepResult
from repro.algorithms.sssp import DistributedSSSP, edge_weight
from repro.algorithms.delta_stepping import DistributedDeltaStepping
from repro.algorithms.wcc import DistributedWCC
from repro.algorithms.pagerank import DistributedPageRank
from repro.algorithms.kcore import DistributedKCore

__all__ = [
    "SuperstepEngine",
    "SuperstepResult",
    "DistributedSSSP",
    "DistributedDeltaStepping",
    "edge_weight",
    "DistributedWCC",
    "DistributedPageRank",
    "DistributedKCore",
]
