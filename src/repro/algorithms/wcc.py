"""Weakly connected components via hash-min label propagation.

Every vertex starts labelled with its own id; each superstep, vertices
whose label shrank broadcast it to their neighbours, who keep the minimum.
Convergence: a round with no label changes. Component ids are the minimum
vertex id of each component.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import SuperstepEngine, SuperstepResult
from repro.errors import ConfigError


@dataclass
class WCCResult(SuperstepResult):
    labels: np.ndarray = None  # type: ignore[assignment]

    def num_components(self) -> int:
        return len(np.unique(self.labels))


class DistributedWCC:
    def __init__(self, edges, nodes, **engine_kwargs):
        self.engine = SuperstepEngine(edges, nodes, **engine_kwargs)

    def run(self, max_rounds: int = 10_000) -> WCCResult:
        eng = self.engine
        labels = [
            np.arange(p.lo, p.hi, dtype=np.float64) for p in eng.parts
        ]
        changed = [np.ones(p.n_local, dtype=bool) for p in eng.parts]
        t_start = eng.sim_seconds
        rounds = 0
        while rounds < max_rounds:
            outgoing = []
            any_changed = False
            for part, lab, c in zip(eng.parts, labels, changed):
                active = np.flatnonzero(c)
                c[:] = False
                if len(active) == 0:
                    outgoing.append((np.empty(0, np.int64), np.empty(0)))
                    continue
                any_changed = True
                srcs_local, targets = part.graph.expand(active)
                outgoing.append((targets, lab[srcs_local]))
            if not any_changed:
                break
            rounds += 1
            inboxes = eng.superstep(outgoing)
            for part, lab, c, (v, x) in zip(eng.parts, labels, changed, inboxes):
                if len(v) == 0:
                    continue
                v_local = v - part.lo
                order = np.lexsort((x, v_local))
                v_sorted, x_sorted = v_local[order], x[order]
                first = np.concatenate(([True], v_sorted[1:] != v_sorted[:-1]))
                v_min, x_min = v_sorted[first], x_sorted[first]
                better = x_min < lab[v_min]
                lab[v_min[better]] = x_min[better]
                c[v_min[better]] = True
        else:
            raise ConfigError(f"WCC did not converge within {max_rounds} rounds")
        return WCCResult(
            sim_seconds=eng.sim_seconds - t_start,
            supersteps=rounds,
            stats={"records_sent": float(eng.records_sent)},
            labels=np.concatenate(labels).astype(np.int64),
        )
