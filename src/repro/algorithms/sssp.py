"""Single-source shortest paths on the superstep engine.

Bellman-Ford relaxation rounds: every vertex whose tentative distance
improved in the previous round pushes ``dist + w(u, v)`` to its neighbours.
Edge weights are synthesised deterministically from the endpoint pair
(the Graph500 generator produces unweighted edges) — symmetric, integral,
in ``[1, max_weight]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import SuperstepEngine, SuperstepResult
from repro.errors import ConfigError


def edge_weight(u: np.ndarray, v: np.ndarray, max_weight: int = 8) -> np.ndarray:
    """Deterministic symmetric weight in [1, max_weight] per endpoint pair."""
    u = np.asarray(u, dtype=np.uint64)
    v = np.asarray(v, dtype=np.uint64)
    a, b = np.minimum(u, v), np.maximum(u, v)
    h = a * np.uint64(0x9E3779B97F4A7C15) ^ (b + np.uint64(0x7F4A7C15))
    h ^= h >> np.uint64(33)
    h *= np.uint64(0xFF51AFD7ED558CCD)
    h ^= h >> np.uint64(33)
    return (h % np.uint64(max_weight)).astype(np.float64) + 1.0


@dataclass
class SSSPResult(SuperstepResult):
    dist: np.ndarray = None  # type: ignore[assignment]


class DistributedSSSP:
    """Bellman-Ford over the shuffle substrate."""

    def __init__(self, edges, nodes, max_weight: int = 8, **engine_kwargs):
        if max_weight < 1:
            raise ConfigError(f"max_weight must be >= 1, got {max_weight}")
        self.engine = SuperstepEngine(edges, nodes, **engine_kwargs)
        self.max_weight = max_weight

    def run(self, root: int, max_rounds: int = 10_000) -> SSSPResult:
        eng = self.engine
        n = eng.graph.num_vertices
        if not 0 <= root < n:
            raise ConfigError(f"root {root} out of range")
        dist = [np.full(p.n_local, np.inf) for p in eng.parts]
        changed = [np.zeros(p.n_local, dtype=bool) for p in eng.parts]
        root_owner = int(eng.owner[root])
        r_local = root - eng.parts[root_owner].lo
        dist[root_owner][r_local] = 0.0
        changed[root_owner][r_local] = True

        t_start = eng.sim_seconds
        rounds = 0
        while rounds < max_rounds:
            rounds += 1
            outgoing = []
            any_changed = False
            for part, d, c in zip(eng.parts, dist, changed):
                active = np.flatnonzero(c)
                c[:] = False
                if len(active) == 0:
                    outgoing.append((np.empty(0, np.int64), np.empty(0)))
                    continue
                any_changed = True
                srcs_local, targets = part.graph.expand(active)
                srcs_global = srcs_local + part.lo
                w = edge_weight(srcs_global, targets, self.max_weight)
                outgoing.append((targets, d[srcs_local] + w))
            if not any_changed:
                rounds -= 1  # the empty round didn't do work
                break
            inboxes = eng.superstep(outgoing)
            for part, d, c, (v, x) in zip(eng.parts, dist, changed, inboxes):
                if len(v) == 0:
                    continue
                v_local = v - part.lo
                # Min-combine per local vertex.
                order = np.lexsort((x, v_local))
                v_sorted, x_sorted = v_local[order], x[order]
                first = np.concatenate(([True], v_sorted[1:] != v_sorted[:-1]))
                v_min, x_min = v_sorted[first], x_sorted[first]
                better = x_min < d[v_min]
                d[v_min[better]] = x_min[better]
                c[v_min[better]] = True
        else:
            raise ConfigError(f"SSSP did not converge within {max_rounds} rounds")

        return SSSPResult(
            sim_seconds=eng.sim_seconds - t_start,
            supersteps=rounds,
            stats={"records_sent": float(eng.records_sent)},
            dist=np.concatenate(dist),
        )
