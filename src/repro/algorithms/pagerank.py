"""PageRank with synchronous power iterations on the superstep engine.

Standard damped formulation over the symmetrised graph: each iteration,
every vertex scatters ``rank / degree`` to its neighbours; dangling mass
(degree-0 vertices) redistributes uniformly. Runs a fixed iteration count
or until the L1 delta falls under a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import SuperstepEngine, SuperstepResult
from repro.errors import ConfigError


@dataclass
class PageRankResult(SuperstepResult):
    ranks: np.ndarray = None  # type: ignore[assignment]


class DistributedPageRank:
    def __init__(self, edges, nodes, damping: float = 0.85, **engine_kwargs):
        if not 0.0 < damping < 1.0:
            raise ConfigError(f"damping must be in (0, 1), got {damping}")
        self.engine = SuperstepEngine(edges, nodes, **engine_kwargs)
        self.damping = damping

    def run(self, iterations: int = 20, tol: float = 0.0) -> PageRankResult:
        if iterations < 1:
            raise ConfigError(f"need at least one iteration, got {iterations}")
        eng = self.engine
        n = eng.graph.num_vertices
        ranks = [np.full(p.n_local, 1.0 / n) for p in eng.parts]
        degrees = [p.graph.degrees().astype(np.float64) for p in eng.parts]
        all_local = [np.arange(p.n_local, dtype=np.int64) for p in eng.parts]
        t_start = eng.sim_seconds
        done = 0
        for _ in range(iterations):
            done += 1
            outgoing = []
            dangling = 0.0
            for part, r, deg, idx in zip(eng.parts, ranks, degrees, all_local):
                has_edges = deg > 0
                dangling += float(r[~has_edges].sum())
                active = idx[has_edges]
                srcs_local, targets = part.graph.expand(active)
                outgoing.append((targets, (r / np.maximum(deg, 1.0))[srcs_local]))
            inboxes = eng.superstep(outgoing)
            base = (1.0 - self.damping) / n + self.damping * dangling / n
            delta = 0.0
            for part, r, (v, x) in zip(eng.parts, ranks, inboxes):
                new = np.full(part.n_local, base)
                if len(v):
                    v_local = v - part.lo
                    new += self.damping * np.bincount(
                        v_local, weights=x, minlength=part.n_local
                    )
                delta += float(np.abs(new - r).sum())
                r[:] = new
            if tol > 0 and delta < tol:
                break
        return PageRankResult(
            sim_seconds=eng.sim_seconds - t_start,
            supersteps=done,
            stats={"records_sent": float(eng.records_sent)},
            ranks=np.concatenate(ranks),
        )
