"""Configuration for the resilience layer (transport + checkpointing)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ResilienceConfig:
    """All knobs of the resilience subsystem. Defaults are "everything off"
    — the fault-free paper configuration — so the baseline pipeline is
    byte-identical unless a caller opts in."""

    # -- reliable transport -----------------------------------------------------
    #: Wrap all BFS traffic in the ack/retransmit protocol of
    #: :class:`repro.resilience.channel.ReliableChannel`.
    reliable_transport: bool = False
    #: Seconds without an ack before the first retransmission. Should
    #: comfortably exceed one round trip at the scales being simulated;
    #: a premature timeout only costs duplicate traffic (suppressed at the
    #: receiver), never correctness.
    ack_timeout: float = 2e-4
    #: Retransmissions before the sender gives up on a message.
    max_retries: int = 5
    #: Exponential backoff base: attempt ``k`` waits
    #: ``ack_timeout * backoff_factor**k`` (plus jitter).
    backoff_factor: float = 2.0
    #: Uniform jitter added to each timeout as a fraction of its value,
    #: drawn from a :func:`~repro.sim.rng.substream` of ``seed`` so runs
    #: replay exactly.
    jitter_fraction: float = 0.1
    #: Wire size of an ack frame.
    ack_bytes: int = 32
    #: Master seed for the transport's jitter stream.
    seed: int = 0

    # -- checkpointed recovery ----------------------------------------------------
    #: Snapshot frontier + parent state every this many BFS levels
    #: (0 = checkpointing off). A level-0 checkpoint is always taken when
    #: enabled, so any crash is recoverable.
    checkpoint_interval: int = 0
    #: Abort a root after this many checkpoint recoveries (a runaway guard;
    #: each fail-stop crash fires once, so real runs stay far below it).
    max_recoveries: int = 8

    # -- erasure-coded durability (repro.durability) -----------------------------
    #: How checkpoints are made durable: ``"buddy"`` ships one full copy to
    #: a partner node (2x storage, survives one loss); ``"rs"`` erasure-codes
    #: each snapshot into ``rs_data_shards + rs_parity_shards`` shards on
    #: distinct nodes ((k+m)/k storage, survives any ``rs_parity_shards``
    #: simultaneous node/disk losses).
    checkpoint_mode: str = "buddy"
    #: RS data shard count k (``checkpoint_mode="rs"`` only).
    rs_data_shards: int = 4
    #: RS parity shard count m — the loss budget (``checkpoint_mode="rs"``).
    rs_parity_shards: int = 2
    #: Run a background checksum scrub over the shard store every this many
    #: BFS levels (0 = off; ``"rs"`` mode only). Scrub detects and repairs
    #: latent corruption before the next fault can stack on top of it.
    scrub_interval: int = 0

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0:
            raise ConfigError(f"ack timeout must be positive, got {self.ack_timeout}")
        if self.max_retries < 0:
            raise ConfigError(f"max retries cannot be negative: {self.max_retries}")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigError(
                f"jitter fraction must be in [0, 1], got {self.jitter_fraction}"
            )
        if self.ack_bytes < 0:
            raise ConfigError(f"ack bytes cannot be negative: {self.ack_bytes}")
        if self.checkpoint_interval < 0:
            raise ConfigError(
                f"checkpoint interval cannot be negative: {self.checkpoint_interval}"
            )
        if self.max_recoveries < 1:
            raise ConfigError(f"max recoveries must be >= 1: {self.max_recoveries}")
        if self.checkpoint_mode not in ("buddy", "rs"):
            raise ConfigError(
                f"checkpoint mode must be 'buddy' or 'rs', got "
                f"{self.checkpoint_mode!r}"
            )
        if self.rs_data_shards < 1:
            raise ConfigError(
                f"rs_data_shards must be >= 1: {self.rs_data_shards}"
            )
        if self.rs_parity_shards < 1:
            raise ConfigError(
                f"rs_parity_shards must be >= 1: {self.rs_parity_shards}"
            )
        if self.scrub_interval < 0:
            raise ConfigError(
                f"scrub interval cannot be negative: {self.scrub_interval}"
            )
        if self.scrub_interval > 0 and self.checkpoint_mode != "rs":
            raise ConfigError(
                "scrub_interval needs checkpoint_mode='rs' (buddy copies "
                "carry no per-shard checksums to scrub)"
            )
