"""Level-synchronous BFS checkpointing: snapshots and the recovery store.

The level barrier of the distributed BFS is a natural global-consistency
point: no messages are in flight, every node's parent array and frontier
are settled. A :class:`Checkpoint` captures exactly that state — per-node
parent/frontier snapshots plus the replicated hub bitmaps and the
direction-policy state — every ``k`` levels. After a fail-stop node crash,
restoring the last checkpoint on *all* nodes (the replacement rank
included) rewinds the traversal to a consistent level and the driver
simply re-runs the lost levels.

The cost model (priced by the driver): each node ships its snapshot to a
buddy node's memory over the NIC, in parallel, plus a barrier allreduce —
the classic in-memory buddy-checkpointing scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass(frozen=True)
class NodeSnapshot:
    """One node's BFS state at a level barrier (deep copies)."""

    parent: np.ndarray
    curr: np.ndarray
    curr_mask: np.ndarray

    @property
    def nbytes(self) -> int:
        """Wire bytes to ship this snapshot: the parent array plus the
        frontier as a bitmap (``curr`` is derivable from ``curr_mask``)."""
        return int(self.parent.nbytes) + (len(self.curr_mask) + 7) // 8


@dataclass(frozen=True)
class Checkpoint:
    """A globally consistent traversal state at the end of ``level``."""

    level: int
    snapshots: tuple[NodeSnapshot, ...]
    #: Replicated hub bitmaps (copies), when hub prefetch is enabled.
    hub_frontier: Any = None
    hub_visited: Any = None
    #: The direction policy's hysteresis state at the barrier.
    policy_state: Any = None

    @property
    def total_bytes(self) -> int:
        return sum(s.nbytes for s in self.snapshots)

    @property
    def max_node_bytes(self) -> int:
        return max((s.nbytes for s in self.snapshots), default=0)


@dataclass
class CheckpointStore:
    """Keeps the most recent checkpoint (buddy memory holds exactly one)."""

    last: Checkpoint | None = None
    taken: int = 0
    restored: int = 0
    bytes_written: int = field(default=0)

    def save(self, checkpoint: Checkpoint) -> None:
        self.last = checkpoint
        self.taken += 1
        self.bytes_written += checkpoint.total_bytes

    def restore(self) -> Checkpoint:
        if self.last is None:
            raise LookupError("no checkpoint to restore from")
        self.restored += 1
        return self.last
