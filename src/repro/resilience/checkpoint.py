"""Level-synchronous BFS checkpointing: snapshots and the recovery store.

The level barrier of the distributed BFS is a natural global-consistency
point: no messages are in flight, every node's parent array and frontier
are settled. A :class:`Checkpoint` captures exactly that state — per-node
parent/frontier snapshots plus the replicated hub bitmaps and the
direction-policy state — every ``k`` levels. After a fail-stop node crash,
restoring the last checkpoint on *all* nodes (the replacement rank
included) rewinds the traversal to a consistent level and the driver
simply re-runs the lost levels.

The cost model (priced by the driver): each node ships its snapshot to a
buddy node's memory over the NIC, in parallel, plus a barrier allreduce —
the classic in-memory buddy-checkpointing scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass(frozen=True)
class NodeSnapshot:
    """One node's BFS state at a level barrier (deep copies)."""

    parent: np.ndarray
    curr: np.ndarray
    curr_mask: np.ndarray

    @property
    def nbytes(self) -> int:
        """Wire bytes to ship this snapshot: the parent array plus the
        frontier as a bitmap (``curr`` is derivable from ``curr_mask``)."""
        return int(self.parent.nbytes) + (len(self.curr_mask) + 7) // 8


@dataclass(frozen=True)
class Checkpoint:
    """A globally consistent traversal state at the end of ``level``."""

    level: int
    snapshots: tuple[NodeSnapshot, ...]
    #: Replicated hub bitmaps (copies), when hub prefetch is enabled.
    hub_frontier: Any = None
    hub_visited: Any = None
    #: The direction policy's hysteresis state at the barrier.
    policy_state: Any = None

    @property
    def total_bytes(self) -> int:
        return sum(s.nbytes for s in self.snapshots)

    @property
    def max_node_bytes(self) -> int:
        return max((s.nbytes for s in self.snapshots), default=0)


@dataclass
class CheckpointStore:
    """Keeps the most recent checkpoint (buddy memory holds exactly one).

    Storage accounting and the disk-fault hooks mirror the erasure-coded
    :class:`repro.durability.shards.ShardedCheckpointStore` so the driver
    and injectors treat either store uniformly. Buddy durability is one
    full remote copy next to the live state: 2x storage, and any disk
    fault on the buddy copy (loss *or* detected corruption — there is no
    redundancy to repair from) destroys the checkpoint outright.
    """

    last: Checkpoint | None = None
    taken: int = 0
    restored: int = 0
    bytes_written: int = field(default=0)
    #: Bytes durably held for the current checkpoint: the snapshot plus
    #: its full buddy copy.
    storage_bytes: int = 0
    #: Serialized snapshot bytes of the current checkpoint (the 1x base
    #: the storage overhead ratio is measured against).
    raw_bytes: int = 0
    shards_lost: int = 0
    shards_corrupted: int = 0

    def save(self, checkpoint: Checkpoint) -> None:
        self.last = checkpoint
        self.taken += 1
        self.bytes_written += checkpoint.total_bytes
        self.raw_bytes = checkpoint.total_bytes
        self.storage_bytes = 2 * checkpoint.total_bytes

    def restore(self) -> Checkpoint:
        if self.last is None:
            raise LookupError("no checkpoint to restore from")
        self.restored += 1
        return self.last

    def drop_holder(self, rank: int) -> int:
        """A buddy disk died: the single copy — the checkpoint — is gone."""
        if self.last is None:
            return 0
        self.last = None
        self.storage_bytes = 0
        self.raw_bytes = 0
        self.shards_lost += 1
        return 1

    def corrupt_shard(self, rank: int, rng: np.random.Generator) -> bool:
        """Corruption of the buddy copy: detected (whole-copy checksum)
        but unrepairable without parity, so the checkpoint is discarded."""
        if self.last is None:
            return False
        self.shards_corrupted += 1
        self.drop_holder(rank)
        self.shards_lost -= 1  # drop_holder double-counts the same copy
        return True
