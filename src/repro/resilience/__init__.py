"""Resilience layer: reliable transport, checkpointing, failure recovery.

The paper's 40,960-node runs lean on MPI's reliable delivery and on
whole-run restarts when nodes fail. This package makes that implicit layer
explicit and testable on the simulated machine:

- :mod:`repro.resilience.config` — :class:`ResilienceConfig`, the knobs
  (everything defaults to off, preserving the fault-free baseline);
- :mod:`repro.resilience.channel` — :class:`ReliableChannel`, a
  user-level ack/retransmit/dedup/checksum transport over SimMPI;
- :mod:`repro.resilience.checkpoint` — level-synchronous
  :class:`Checkpoint` snapshots and the :class:`CheckpointStore` the BFS
  driver recovers from after a simulated node crash.

Fault *injection* stays in :mod:`repro.sim.faults` (it perturbs the
simulation); this package is the machinery that survives it. Graceful
degradation at the benchmark level (``on_root_failure="skip"``) lives in
:mod:`repro.graph500.runner`.
"""

from repro.resilience.channel import ACK_TAG, Envelope, ReliableChannel, payload_checksum
from repro.resilience.checkpoint import Checkpoint, CheckpointStore, NodeSnapshot
from repro.resilience.config import ResilienceConfig

__all__ = [
    "ACK_TAG",
    "Envelope",
    "ReliableChannel",
    "payload_checksum",
    "Checkpoint",
    "CheckpointStore",
    "NodeSnapshot",
    "ResilienceConfig",
]
