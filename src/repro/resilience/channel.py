"""Reliable transport over SimMPI: acks, retransmission, dedup, checksums.

MPI gives the paper's BFS exactly-once delivery for free; SimMPI with a
fault injector underneath does not. :class:`ReliableChannel` closes that
gap the way a user-level reliable transport would:

- every data message is framed in an :class:`Envelope` carrying a sequence
  number and a payload checksum;
- the receiver acks each frame, verifies the checksum (a corrupted frame
  is silently discarded — the retransmission delivers a clean copy), and
  suppresses duplicate sequence numbers, so the BFS handlers see each
  logical message at most once even under duplicate storms;
- the sender keeps unacked frames pending and retransmits on a timeout
  with exponential backoff and seeded jitter, giving up (``gave_up``)
  after a bounded number of retries.

The channel intercepts the cluster's *delivery* path (so it survives rank
revival after a crash) and sends through ``cluster.send`` dynamically — a
fault injector installed on the cluster therefore sits *below* the
protocol and every retransmission is independently at risk, exactly like
a lossy wire. Protocol stats flow into the cluster's
:class:`~repro.sim.stats.StatsRegistry`: ``rt_messages``, ``acks``,
``retransmits``, ``gave_up``, ``dup_suppressed``, ``corrupt_detected``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigError
from repro.network.simmpi import Message, SimCluster
from repro.resilience.config import ResilienceConfig
from repro.sim.rng import substream

#: Reserved tag for acknowledgement frames (never retransmitted or acked).
ACK_TAG = "ack"


def payload_checksum(payload: Any) -> int:
    """CRC32 over a message payload (0 for ``None``).

    Handles the shapes SimMPI traffic actually uses: record tuples of
    numpy arrays, bare arrays, and small scalars/strings.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return zlib.crc32(np.ascontiguousarray(payload).tobytes())
    if isinstance(payload, tuple):
        crc = 0
        for part in payload:
            if isinstance(part, np.ndarray):
                crc = zlib.crc32(np.ascontiguousarray(part).tobytes(), crc)
            else:
                crc = zlib.crc32(repr(part).encode(), crc)
        return crc
    return zlib.crc32(repr(payload).encode())


@dataclass(frozen=True)
class Envelope:
    """Wire frame around a data payload: sequence number + checksum."""

    seq: int
    checksum: int
    payload: Any = None


class _Pending:
    """Sender-side state of one unacked frame."""

    __slots__ = ("src", "dst", "tag", "nbytes", "envelope", "attempt", "timer")

    def __init__(self, src: int, dst: int, tag: str, nbytes: int, envelope: Envelope):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.envelope = envelope
        self.attempt = 0
        self.timer: int | None = None


class ReliableChannel:
    """Ack/retransmit/dedup protocol layered on one :class:`SimCluster`."""

    def __init__(self, cluster: SimCluster, config: ResilienceConfig | None = None):
        self.cluster = cluster
        self.config = config or ResilienceConfig(reliable_transport=True)
        self.engine = cluster.engine
        self._rng = substream(self.config.seed, "resilience", "jitter")
        self._next_seq = 0
        self._pending: dict[int, _Pending] = {}
        self._seen: set[int] = set()
        self._lower_deliver = cluster._deliver
        cluster._deliver = self._deliver  # type: ignore[method-assign]
        #: Optional :class:`repro.telemetry.Telemetry`; when set, protocol
        #: events also count into the labeled ``transport_events`` family.
        self.telemetry = None

    def _event(self, kind: str) -> None:
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("transport_events", kind=kind).add()

    # -- lifecycle -------------------------------------------------------------
    def uninstall(self) -> None:
        """Restore the cluster's raw delivery path (idempotent)."""
        if self._lower_deliver is not None:
            self.cluster._deliver = self._lower_deliver  # type: ignore[method-assign]
            self._lower_deliver = None

    def __enter__(self) -> "ReliableChannel":
        return self

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    def reset_run(self) -> None:
        """Forget per-run protocol state (pending frames, dedup window).

        Called between traversals: the engine is quiescent then, so any
        leftover pending entry is a frame that already ``gave_up`` its data
        or whose timer is a stale no-op; dropping them keeps the dedup set
        from growing without bound across roots.
        """
        for pending in self._pending.values():
            if pending.timer is not None:
                self.engine.cancel(pending.timer)
        self._pending.clear()
        self._seen.clear()

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    # -- send side --------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        tag: str,
        nbytes: int,
        payload: Any = None,
        at_time: float | None = None,
    ) -> Message:
        """Send a data message reliably; same signature as ``cluster.send``."""
        if tag == ACK_TAG:
            raise ConfigError(f"tag {ACK_TAG!r} is reserved for the transport")
        seq = self._next_seq
        self._next_seq += 1
        envelope = Envelope(seq, payload_checksum(payload), payload)
        self._pending[seq] = _Pending(src, dst, tag, nbytes, envelope)
        self.cluster.stats.counter("rt_messages").add()
        return self._transmit(seq, at_time)

    def send_batch(
        self,
        src: int,
        dests: np.ndarray,
        tag: str,
        nbytes: np.ndarray,
        payloads: list[Any] | None = None,
        at_times: np.ndarray | None = None,
    ) -> list[Message]:
        """Batched :meth:`send`: frame, register and transmit ``N`` data
        messages with one ``cluster.send_batch`` underneath.

        Per-message protocol state — sequence numbers, checksums, pending
        entries, retransmit timers and their jitter draws — is created in
        batch order, exactly the order ``N`` scalar sends would use, so
        the jitter substream stays aligned and retransmission behaviour is
        unchanged.
        """
        if tag == ACK_TAG:
            raise ConfigError(f"tag {ACK_TAG!r} is reserved for the transport")
        if type(dests) is not list:
            dests = np.asarray(dests, dtype=np.int64).tolist()
        if type(nbytes) is not list:
            nbytes = np.asarray(nbytes, dtype=np.int64).tolist()
        n = len(dests)
        if len(nbytes) != n or (payloads is not None and len(payloads) != n):
            raise ConfigError("send_batch arrays must have equal lengths")
        if n == 0:
            return []
        seq0 = self._next_seq
        envelopes = []
        for i, (dst, nb) in enumerate(zip(dests, nbytes)):
            payload = None if payloads is None else payloads[i]
            seq = self._next_seq
            self._next_seq += 1
            envelope = Envelope(seq, payload_checksum(payload), payload)
            self._pending[seq] = _Pending(src, dst, tag, nb, envelope)
            envelopes.append(envelope)
        self.cluster.stats.counter("rt_messages").add(n)
        msgs = self.cluster.send_batch(
            src, dests, tag, nbytes, payloads=envelopes, at_times=at_times
        )
        if at_times is None:
            bases = [self.engine.now] * n
        elif type(at_times) is list:
            bases = at_times
        else:
            bases = np.asarray(at_times, dtype=np.float64).tolist()
        for i in range(n):
            seq = seq0 + i
            pending = self._pending[seq]
            timeout = (
                self.config.ack_timeout
                * self.config.backoff_factor ** pending.attempt
            )
            timeout *= 1.0 + self.config.jitter_fraction * float(self._rng.random())
            pending.timer = self.engine.call_at(
                bases[i] + timeout, self._on_timeout, seq, pending.attempt
            )
        return msgs

    def _transmit(self, seq: int, at_time: float | None = None) -> Message:
        pending = self._pending[seq]
        msg = self.cluster.send(
            pending.src, pending.dst, pending.tag, pending.nbytes,
            payload=pending.envelope, at_time=at_time,
        )
        base = at_time if at_time is not None else self.engine.now
        timeout = self.config.ack_timeout * self.config.backoff_factor ** pending.attempt
        timeout *= 1.0 + self.config.jitter_fraction * float(self._rng.random())
        pending.timer = self.engine.call_at(
            base + timeout, self._on_timeout, seq, pending.attempt
        )
        return msg

    def _on_timeout(self, seq: int, attempt: int) -> None:
        pending = self._pending.get(seq)
        if pending is None or pending.attempt != attempt:
            return  # acked, or superseded by a newer attempt's timer
        if pending.attempt >= self.config.max_retries:
            del self._pending[seq]
            self.cluster.stats.counter("gave_up").add()
            self._event("gave_up")
            return
        pending.attempt += 1
        self.cluster.stats.counter("retransmits").add()
        self._event("retransmit")
        self._transmit(seq)

    # -- receive side -------------------------------------------------------------
    def _deliver(self, msg: Message) -> None:
        if msg.tag == ACK_TAG:
            pending = self._pending.pop(msg.payload, None)
            if pending is not None:
                self.cluster.stats.counter("acks").add()
                self._event("ack")
                if pending.timer is not None:
                    self.engine.cancel(pending.timer)
            return
        envelope = msg.payload
        if not isinstance(envelope, Envelope):
            # Raw traffic from code that bypassed the channel.
            self._lower_deliver(msg)
            return
        if not self.cluster.is_alive(msg.dst):
            # Dead rank: no ack (the sender will retry, then give up);
            # the lower layer counts the dead letter.
            self._lower_deliver(msg)
            return
        if payload_checksum(envelope.payload) != envelope.checksum:
            # Corrupted on the wire: pretend it never arrived.
            self.cluster.stats.counter("corrupt_detected").add()
            self._event("corrupt_detected")
            return
        self.cluster.send(
            msg.dst, msg.src, ACK_TAG, self.config.ack_bytes, payload=envelope.seq
        )
        if envelope.seq in self._seen:
            self.cluster.stats.counter("dup_suppressed").add()
            self._event("dup_suppressed")
            return
        self._seen.add(envelope.seq)
        self._lower_deliver(
            Message(
                msg.src, msg.dst, msg.tag, msg.nbytes, envelope.payload,
                msg.send_time, msg.arrival_time,
            )
        )
