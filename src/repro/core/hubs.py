"""Degree-aware hub-vertex prefetch (Section 5, "Degree aware prefetch").

Each node nominates a fixed number of its highest-degree owned vertices as
*hubs* (2^12 for top-down levels, 2^14 for bottom-up in the paper). Every
level, the hubs' frontier membership is allgathered as a bitmap; every node
can then settle any local vertex adjacent to a frontier hub **locally**,
with no network traffic — the combined 1D/2D-delegate idea of [4], [10].

The directory also carries a replicated *visited* bitmap for hubs so
top-down generators can drop edges whose target is a hub that is already
settled ("Reduce global communication": when the hub frontier is empty, a
one-byte flag replaces the bitmap — priced by :meth:`allgather_bytes`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.bitmap import Bitmap
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition1D


class HubDirectory:
    """Global hub registry plus replicated per-level bitmaps."""

    def __init__(
        self,
        graph: CSRGraph,
        partition: Partition1D,
        hubs_per_node: int,
    ):
        if hubs_per_node < 0:
            raise ConfigError(f"negative hub count: {hubs_per_node}")
        self.partition = partition
        self.hubs_per_node = hubs_per_node
        degrees = graph.degrees()
        hub_lists = []
        for part in range(partition.num_parts):
            owned = partition.global_ids(part)
            k = min(hubs_per_node, len(owned))
            if k == 0:
                hub_lists.append(np.empty(0, dtype=np.int64))
                continue
            local_deg = degrees[owned]
            # Highest-degree owned vertices; ties broken by id for determinism.
            order = np.lexsort((owned, -local_deg))[:k]
            hubs = owned[np.sort(order)]
            # Zero-degree vertices are useless as hubs.
            hub_lists.append(hubs[degrees[hubs] > 0])
        self.hub_ids = (
            np.concatenate(hub_lists) if hub_lists else np.empty(0, dtype=np.int64)
        )
        #: global vertex id -> hub slot (-1 for non-hubs).
        self.slot_of = np.full(graph.num_vertices, -1, dtype=np.int64)
        self.slot_of[self.hub_ids] = np.arange(len(self.hub_ids))
        self.frontier = Bitmap(len(self.hub_ids))
        self.visited = Bitmap(len(self.hub_ids))

    @property
    def num_hubs(self) -> int:
        return len(self.hub_ids)

    # -- per-level maintenance -------------------------------------------------
    def update_frontier(self, frontier_global: np.ndarray) -> int:
        """Install this level's hub frontier; returns how many hubs are in it."""
        self.frontier.clear()
        slots = self.slot_of[np.asarray(frontier_global, dtype=np.int64)]
        slots = slots[slots >= 0]
        self.frontier.set_many(slots)
        self.visited.set_many(slots)  # frontier hubs are visited from now on
        return len(slots)

    def reset(self) -> None:
        self.frontier.clear()
        self.visited.clear()

    # -- queries ---------------------------------------------------------------
    def is_hub(self, vertices: np.ndarray) -> np.ndarray:
        return self.slot_of[np.asarray(vertices, dtype=np.int64)] >= 0

    def hub_in_frontier(self, vertices: np.ndarray) -> np.ndarray:
        """Per vertex: is it a hub currently in the frontier?"""
        slots = self.slot_of[np.asarray(vertices, dtype=np.int64)]
        out = np.zeros(len(slots), dtype=bool)
        mask = slots >= 0
        if mask.any():
            out[mask] = self.frontier.test_many(slots[mask])
        return out

    def hub_visited(self, vertices: np.ndarray) -> np.ndarray:
        """Per vertex: is it a hub already settled in a previous level?"""
        slots = self.slot_of[np.asarray(vertices, dtype=np.int64)]
        out = np.zeros(len(slots), dtype=bool)
        mask = slots >= 0
        if mask.any():
            out[mask] = self.visited.test_many(slots[mask])
        return out

    def frontier_hub_ids(self) -> np.ndarray:
        return self.hub_ids[self.frontier.indices()]

    # -- cost accounting ----------------------------------------------------------
    def allgather_bytes(self, empty: bool) -> int:
        """Wire bytes each node contributes to the per-level hub allgather.

        When the hub frontier is globally empty, a one-byte flag per node
        replaces the bitmap (Section 5, "Reduce global communication").
        """
        if empty or self.num_hubs == 0:
            return self.partition.num_parts  # one flag byte per node
        return self.frontier.nbytes_wire()
