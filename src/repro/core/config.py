"""Configuration for the distributed BFS and its ablations.

The defaults are the paper's final system ("Relay CPE" in Figure 11):
direction optimisation on, contention-free shuffling on CPE clusters,
group-based relay batching, hub prefetch, and the 1 KB quick path.
Baselines and ablations flip individual fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import ConfigError


@dataclass(frozen=True)
class RoleLayout:
    """Producer/router/consumer column split on the 8x8 mesh (Figure 6).

    The paper: "The first four columns of producers... two columns of
    routers for upward and downward pass... the last two columns only
    consume data."
    """

    producer_cols: int = 4
    router_cols: int = 2
    consumer_cols: int = 2
    mesh_rows: int = 8
    mesh_cols: int = 8

    def __post_init__(self) -> None:
        if min(self.producer_cols, self.router_cols, self.consumer_cols) < 1:
            raise ConfigError("each role needs at least one column")
        if self.router_cols < 2:
            raise ConfigError(
                "need an up-column and a down-column of routers for "
                "deadlock-free vertical passes"
            )
        if self.producer_cols + self.router_cols + self.consumer_cols != self.mesh_cols:
            raise ConfigError(
                "role columns must cover the mesh: "
                f"{self.producer_cols}+{self.router_cols}+{self.consumer_cols} "
                f"!= {self.mesh_cols}"
            )

    @property
    def n_producers(self) -> int:
        return self.producer_cols * self.mesh_rows

    @property
    def n_routers(self) -> int:
        return self.router_cols * self.mesh_rows

    @property
    def n_consumers(self) -> int:
        return self.consumer_cols * self.mesh_rows

    def producer_positions(self) -> list[tuple[int, int]]:
        return [(r, c) for r in range(self.mesh_rows) for c in range(self.producer_cols)]

    @cached_property
    def producer_set(self) -> frozenset[tuple[int, int]]:
        """Producer positions as a cached frozenset (hot membership tests).

        Safe to cache on a frozen dataclass: the fields it derives from
        can never change, and ``cached_property`` stores the value in the
        instance ``__dict__`` without going through ``__setattr__``.
        """
        return frozenset(self.producer_positions())

    def router_columns(self) -> tuple[int, int]:
        """(up_column, down_column) indices."""
        base = self.producer_cols
        return base, base + 1

    def consumer_positions(self) -> list[tuple[int, int]]:
        base = self.producer_cols + self.router_cols
        return [(r, c) for r in range(self.mesh_rows) for c in range(base, self.mesh_cols)]


@dataclass(frozen=True)
class BFSConfig:
    """All knobs of the distributed BFS."""

    # -- technique toggles (the Figure 11 axes) --------------------------------
    #: Process modules with contention-free shuffles on CPE clusters (True)
    #: or directly on the MPEs (False) — the "CPE" vs "MPE" tag.
    use_cpe_clusters: bool = True
    #: Route remote records through group relay nodes (True) or directly to
    #: their destination (False) — the "Relay" vs "Direct" tag.
    use_relay: bool = True

    # -- algorithm -------------------------------------------------------------
    #: Hybrid top-down/bottom-up (Beamer); False = pure top-down.
    direction_optimizing: bool = True
    #: Beamer switching parameters (m_f > m_u / alpha; n_f < n / beta).
    alpha: float = 14.0
    beta: float = 24.0
    #: Degree-aware hub prefetch (Section 5); hub counts are per node.
    use_hub_prefetch: bool = True
    hub_count_topdown: int = 1 << 12
    hub_count_bottomup: int = 1 << 14
    #: Cap on hubs as a fraction of per-node vertices. At paper scale
    #: (16M vertices/node) the absolute counts above rule; at toy scale the
    #: cap keeps hubs a minority so the message paths stay exercised.
    hub_fraction_cap: float = 1.0 / 64.0
    #: Bottom-up neighbour-chunk size per sub-round (early-termination
    #: emulation); 0 = flush every edge in a single sub-round.
    bottomup_chunk: int = 4
    bottomup_max_subrounds: int = 64

    # -- message/batching parameters --------------------------------------------
    #: Wire bytes per (u, v) record and per message header.
    record_bytes: int = 8
    header_bytes: int = 64
    #: Inputs below this size are handled on the MPE directly (Section 5:
    #: "we set the threshold to 1 KB").
    quick_path_threshold: int = 1024
    #: Wire compression factor for record payloads (Section 7 names message
    #: compression [4], [27], [28] as orthogonal future work; 1.0 = off).
    #: Records within a batch share a destination partition, so delta
    #: encoding of sorted ids plausibly reaches ~2x.
    compression_ratio: float = 1.0
    #: Use the real frame-of-reference codec (:mod:`repro.network.codec`)
    #: to size every record message exactly, instead of the fixed ratio.
    use_codec: bool = False
    #: Per-destination SPM staging buffer on consumer CPEs, and SPM reserved
    #: for control state. 16 consumers x (64 KB - 4 KB) / 1 KB ~ the paper's
    #: "up to 1024 destinations in practice".
    staging_buffer_bytes: int = 1024
    spm_reserved_bytes: int = 4096

    # -- layout ------------------------------------------------------------------
    roles: RoleLayout = field(default_factory=RoleLayout)
    #: 1-D partition strategy (Section 5 balances partitions by edges).
    partition_mode: str = "balanced"
    #: Group width M of the N x M node matrix; None = the super-node size.
    group_width: int | None = None

    # -- harness execution strategy ---------------------------------------------
    #: Emit one :meth:`~repro.network.simmpi.SimCluster.send_batch` per
    #: module execution instead of one ``send`` per bucket. Purely a
    #: simulator-speed knob: results are bit-identical to the scalar path
    #: (pinned by ``tests/test_message_path_parity.py``); False keeps the
    #: per-message path, which doubles as the executable specification.
    batch_messages: bool = True
    #: Number of event-engine partitions for the conservative-sync PDES
    #: engine (:class:`repro.sim.partition.PartitionedEngine`); lookahead
    #: between partitions derives from the fat-tree link latencies. 1 keeps
    #: the sequential :class:`~repro.sim.engine.Engine`, the executable
    #: specification the partitioned engine is pinned bit-identical to
    #: (``tests/test_message_path_parity.py``).
    engine_partitions: int = 1
    #: Worker pool size for parallel drain execution on the partitioned
    #: engine: between synchronisation points each compute lane's bounded
    #: drain run is dispatched to a worker and its event effects are
    #: journaled, then merged in exact global ``(when, seq)`` order at the
    #: sync point — results stay bit-identical to the sequential engine.
    #: 1 keeps the coordinator-only drain loop; ignored when
    #: ``engine_partitions == 1``.
    drain_workers: int = 1
    #: Parallel drain backend: ``"thread"`` (shared-memory pool, subject
    #: to the GIL except in numpy kernels) or ``"process"`` (fork per
    #: window; compute lanes escape the GIL and read the CSR through the
    #: shared :mod:`repro.graph.shm` segment, at a per-window fork and
    #: journal-shipping cost).
    drain_backend: str = "thread"

    # -- safety valves ---------------------------------------------------------------
    max_levels: int = 10_000
    track_connections: bool = True
    #: Enable the runtime sanitizers (:mod:`repro.sanitizers.runtime`):
    #: SPM write-conflict detection on every shuffle and message-mutated-
    #: after-send detection on the cluster. Costs time and memory on the
    #: hot path, so off by default; ``repro graph500 --sanitize`` or
    #: ``Graph500Runner(sanitize=True)`` flips it for a run.
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ConfigError(f"alpha/beta must be positive: {self.alpha}, {self.beta}")
        if self.record_bytes <= 0 or self.header_bytes < 0:
            raise ConfigError("bad record/header sizes")
        if self.hub_count_topdown < 0 or self.hub_count_bottomup < 0:
            raise ConfigError("hub counts cannot be negative")
        if not 0.0 < self.hub_fraction_cap <= 1.0:
            raise ConfigError(
                f"hub fraction cap must be in (0, 1], got {self.hub_fraction_cap}"
            )
        if self.quick_path_threshold < 0:
            raise ConfigError("quick path threshold cannot be negative")
        if self.compression_ratio < 1.0:
            raise ConfigError(
                f"compression ratio must be >= 1, got {self.compression_ratio}"
            )
        if self.use_codec and self.compression_ratio != 1.0:
            raise ConfigError("use either the codec or a fixed ratio, not both")
        if self.bottomup_chunk < 0 or self.bottomup_max_subrounds < 1:
            raise ConfigError("bad bottom-up sub-round parameters")
        if self.group_width is not None and self.group_width < 1:
            raise ConfigError(f"group width must be >= 1, got {self.group_width}")
        if self.engine_partitions < 1:
            raise ConfigError(
                f"engine partitions must be >= 1, got {self.engine_partitions}"
            )
        if self.drain_workers < 1:
            raise ConfigError(
                f"drain workers must be >= 1, got {self.drain_workers}"
            )
        if self.drain_backend not in ("thread", "process"):
            raise ConfigError(
                f"drain backend must be 'thread' or 'process', "
                f"got {self.drain_backend!r}"
            )

    # -- derived -----------------------------------------------------------------
    @property
    def variant_name(self) -> str:
        """The Figure 11 tag for this configuration."""
        routing = "relay" if self.use_relay else "direct"
        compute = "cpe" if self.use_cpe_clusters else "mpe"
        return f"{routing}-{compute}"

    def max_shuffle_destinations(self, spm_bytes: int = 64 * 1024) -> int:
        """How many per-destination staging buffers the consumers can hold."""
        per_cpe = (spm_bytes - self.spm_reserved_bytes) // self.staging_buffer_bytes
        return per_cpe * self.roles.n_consumers
