"""Named configuration presets.

- ``paper()`` — the published system exactly (Relay CPE, hybrid, hubs at
  2^12/2^14, 1 KB quick path);
- ``toy(...)`` — small-simulation defaults: hub counts scaled down so toy
  graphs still exercise the message paths (most tests use this shape);
- ``with_compression(...)`` — the Section 7 future-work integration, via
  the real codec or a fixed ratio;
- ``textbook()`` — plain top-down direct 1-D BFS, the null baseline.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import BFSConfig
from repro.errors import ConfigError


def paper() -> BFSConfig:
    """The published system: every BFSConfig default is the paper value."""
    return BFSConfig()


def toy(hub_count: int = 16, base: BFSConfig | None = None) -> BFSConfig:
    """Small-scale simulation preset with reduced hub counts."""
    if hub_count < 1:
        raise ConfigError(f"hub count must be >= 1, got {hub_count}")
    return replace(
        base or BFSConfig(),
        hub_count_topdown=hub_count,
        hub_count_bottomup=hub_count,
    )


def with_compression(
    ratio: float | None = None, base: BFSConfig | None = None
) -> BFSConfig:
    """Compression on: the real codec when ``ratio`` is None, else fixed."""
    base = base or BFSConfig()
    if ratio is None:
        return replace(base, use_codec=True, compression_ratio=1.0)
    return replace(base, use_codec=False, compression_ratio=ratio)


def textbook() -> BFSConfig:
    """Plain level-synchronous top-down 1-D BFS, direct messaging."""
    return BFSConfig(
        use_relay=False,
        direction_optimizing=False,
        use_hub_prefetch=False,
    )
