"""Per-node functional state for the distributed BFS.

A :class:`NodeState` owns one 1-D partition slice: the local CSR rows, the
local parent array, current/next frontiers, the bottom-up neighbour cursors,
and the hub adjacency used for local settling. All operations are
vectorised; the driver (:mod:`repro.core.bfs`) decides *when* things happen,
this module decides *what* the data becomes.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import NodePipeline
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.resilience.checkpoint import NodeSnapshot


def expand_chunks(
    graph: CSRGraph, verts: np.ndarray, cursors: np.ndarray, chunk: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand up to ``chunk`` not-yet-tried neighbours of each vertex.

    ``cursors[i]`` is how many neighbours of ``verts[i]`` were already tried;
    returns ``(sources, targets, taken)`` where ``taken[i]`` is how many
    neighbours this call consumed (callers advance their cursor by it).
    ``chunk == 0`` means "all remaining neighbours".
    """
    verts = np.asarray(verts, dtype=np.int64)
    cursors = np.asarray(cursors, dtype=np.int64)
    if verts.shape != cursors.shape:
        raise ConfigError("verts and cursors must align")
    starts = graph.row_ptr[verts] + cursors
    stops = graph.row_ptr[verts + 1]
    remaining = np.maximum(stops - starts, 0)
    taken = remaining if chunk == 0 else np.minimum(remaining, chunk)
    total = int(taken.sum())
    if total == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            taken,
        )
    sources = np.repeat(verts, taken)
    seg_base = np.repeat(
        starts - np.concatenate(([0], np.cumsum(taken)[:-1])), taken
    )
    targets = graph.col_idx[np.arange(total, dtype=np.int64) + seg_base]
    return sources, targets, taken


class NodeState:
    """Functional BFS state of one simulated node."""

    def __init__(
        self,
        node_id: int,
        lo: int,
        hi: int,
        local_graph: CSRGraph,
        pipeline: NodePipeline,
    ):
        if hi < lo:
            raise ConfigError(f"bad vertex range [{lo}, {hi})")
        if local_graph.num_vertices != hi - lo:
            raise ConfigError("local graph does not match the vertex range")
        self.node_id = node_id
        self.lo = lo
        self.hi = hi
        self.graph = local_graph
        self.pipeline = pipeline
        n_local = hi - lo
        self.parent = np.full(n_local, -1, dtype=np.int64)
        self.curr = np.empty(0, dtype=np.int64)  # local indices
        self.curr_mask = np.zeros(n_local, dtype=bool)
        self.next_mask = np.zeros(n_local, dtype=bool)
        self.bu_cursor = np.zeros(n_local, dtype=np.int64)
        self.local_degrees = local_graph.degrees()
        # hub slot -> local neighbours, filled in by the driver when hub
        # prefetch is enabled.
        self.hub_adjacency: CSRGraph | None = None

    @property
    def n_local(self) -> int:
        return self.hi - self.lo

    def owns(self, v: int) -> bool:
        return self.lo <= v < self.hi

    def to_local(self, v: np.ndarray) -> np.ndarray:
        if type(v) is np.ndarray and v.dtype == np.int64:
            return v - self.lo
        return np.asarray(v, dtype=np.int64) - self.lo

    def to_global(self, v_local: np.ndarray) -> np.ndarray:
        return np.asarray(v_local, dtype=np.int64) + self.lo

    # -- per-run / per-level maintenance ----------------------------------------
    def reset(self) -> None:
        self.parent[:] = -1
        self.curr = np.empty(0, dtype=np.int64)
        self.curr_mask[:] = False
        self.next_mask[:] = False
        self.bu_cursor[:] = 0

    def seed_root(self, root: int) -> None:
        if not self.owns(root):
            raise ConfigError(f"node {self.node_id} does not own root {root}")
        r = root - self.lo
        self.parent[r] = root
        self.curr = np.array([r], dtype=np.int64)
        self.curr_mask[r] = True

    def snapshot(self) -> NodeSnapshot:
        """Deep-copy the level-barrier state for a checkpoint.

        Only taken at barriers, where ``next_mask`` is clear and the
        bottom-up cursors are zeroed — so parent + current frontier is the
        complete state.
        """
        return NodeSnapshot(
            self.parent.copy(), self.curr.copy(), self.curr_mask.copy()
        )

    def restore(self, snap: NodeSnapshot) -> None:
        """Rewind to a checkpointed barrier state (after a crash)."""
        self.parent[:] = snap.parent
        self.curr = snap.curr.copy()
        self.curr_mask[:] = snap.curr_mask
        self.next_mask[:] = False
        self.bu_cursor[:] = 0

    def advance_level(self) -> int:
        """Promote next to curr; returns the new local frontier size."""
        self.curr = np.flatnonzero(self.next_mask).astype(np.int64)
        self.curr_mask[:] = False
        self.curr_mask[self.curr] = True
        self.next_mask[:] = False
        self.bu_cursor[:] = 0
        return len(self.curr)

    # -- frontier statistics (for the traversal policy) --------------------------
    def frontier_stats(self) -> tuple[int, int, int]:
        """(frontier vertices, frontier edges, unexplored edges) locally."""
        n_f = len(self.curr)
        m_f = int(self.local_degrees[self.curr].sum())
        unvisited = self.parent < 0
        m_u = int(self.local_degrees[unvisited].sum())
        return n_f, m_f, m_u

    # -- functional updates -------------------------------------------------------
    def apply_forward(self, u: np.ndarray, v: np.ndarray) -> int:
        """FORWARD_HANDLER: adopt parents for still-unvisited owned targets.

        First record wins per target within the batch; returns how many
        vertices were newly settled.
        """
        v_local = self.to_local(v)
        if v_local.size == 0:
            return 0
        if v_local.min() < 0 or v_local.max() >= self.n_local:
            raise ConfigError(f"node {self.node_id} received foreign vertices")
        fresh = self.parent[v_local] < 0
        v_local, u = v_local[fresh], np.asarray(u, dtype=np.int64)[fresh]
        if v_local.size == 0:
            return 0
        # First-wins without the sort np.unique does: scatter in reverse so
        # the earliest record per target lands last. Every fresh target had
        # next_mask clear (parent < 0 means never settled), so the distinct
        # count is the number of mask bits this batch flips on.
        before = np.count_nonzero(self.next_mask)
        self.parent[v_local[::-1]] = u[::-1]
        self.next_mask[v_local] = True
        return int(np.count_nonzero(self.next_mask)) - before

    def match_backward(self, u: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """BACKWARD_HANDLER: keep the queries whose ``u`` is in our frontier."""
        u_local = self.to_local(u)
        if u_local.size == 0:
            return u, v
        if u_local.min() < 0 or u_local.max() >= self.n_local:
            raise ConfigError(f"node {self.node_id} received foreign queries")
        hit = self.curr_mask[u_local]
        return np.asarray(u, dtype=np.int64)[hit], np.asarray(v, dtype=np.int64)[hit]

    def settle_from_hubs(self, frontier_hub_slots: np.ndarray, hub_ids: np.ndarray) -> int:
        """Settle local unvisited vertices adjacent to frontier hubs.

        ``frontier_hub_slots`` indexes ``hub_ids``; the hub adjacency maps
        slots to local neighbour indices. Returns candidates *examined* is
        not needed — returns how many vertices were settled.
        """
        if self.hub_adjacency is None or len(frontier_hub_slots) == 0:
            return 0
        slots, neighbours = self.hub_adjacency.expand(
            np.asarray(frontier_hub_slots, dtype=np.int64)
        )
        if len(neighbours) == 0:
            return 0
        fresh = self.parent[neighbours] < 0
        slots, neighbours = slots[fresh], neighbours[fresh]
        if len(neighbours) == 0:
            return 0
        # Same first-wins reverse scatter (and mask-delta count) as
        # apply_forward.
        before = np.count_nonzero(self.next_mask)
        self.parent[neighbours[::-1]] = hub_ids[slots[::-1]]
        self.next_mask[neighbours] = True
        return int(np.count_nonzero(self.next_mask)) - before

    def hub_candidates(self, frontier_hub_slots: np.ndarray) -> int:
        """How many (hub, local vertex) pairs a hub-settle pass examines."""
        if self.hub_adjacency is None or len(frontier_hub_slots) == 0:
            return 0
        slots = np.asarray(frontier_hub_slots, dtype=np.int64)
        return int(
            (self.hub_adjacency.row_ptr[slots + 1] - self.hub_adjacency.row_ptr[slots]).sum()
        )

    # -- bottom-up helpers -----------------------------------------------------------
    def bu_remaining(self) -> np.ndarray:
        """Local vertices still needing queries: unvisited with neighbours left."""
        unvisited = self.parent < 0
        has_more = self.bu_cursor < self.local_degrees
        return np.flatnonzero(unvisited & has_more).astype(np.int64)

    def bu_expand(self, chunk: int) -> tuple[np.ndarray, np.ndarray]:
        """Next neighbour chunk for every remaining vertex.

        Returns ``(u_targets, v_sources)`` as *global* ids: for each emitted
        pair, ``u`` is the neighbour to query and ``v`` the unvisited vertex.
        Advances the cursors.
        """
        remaining = self.bu_remaining()
        if len(remaining) == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        v_local, u_global, taken = expand_chunks(
            self.graph, remaining, self.bu_cursor[remaining], chunk
        )
        self.bu_cursor[remaining] += taken
        return u_global, self.to_global(v_local)
