"""The paper's contribution: asynchronous direction-optimising distributed
BFS mapped onto the simulated Sunway machine.

Technique map (Section 4):

- **pipelined module mapping** — :mod:`repro.core.pipeline` assigns the six
  BFS modules (Figure 1/10) to dedicated CPE clusters, with MPEs reserved
  for send/recv and a small-message quick path to the MPE;
- **contention-free data shuffling** — :mod:`repro.core.shuffle` assigns
  producer/router/consumer roles on the 8x8 register mesh, validates the
  route set deadlock-free and the SPM staging layout feasible, and prices
  each reaction module's shuffle;
- **group-based message batching** — :mod:`repro.core.batching` arranges
  nodes into the N x M matrix, computes relay nodes, and cuts per-node
  connections from N*M to N+M-2.

The driver (:class:`repro.core.bfs.DistributedBFS`) runs the real algorithm
on real graphs over SimMPI: parent maps are exact and Graph500-validated;
simulated nanoseconds come from the machine and network models.
"""

from repro.core.config import BFSConfig, RoleLayout
from repro.core.policy import TraversalPolicy, Direction
from repro.core.batching import GroupLayout
from repro.core.shuffle import ShufflePlan
from repro.core.hubs import HubDirectory
from repro.core.bfs import DistributedBFS, BFSResult

__all__ = [
    "BFSConfig",
    "RoleLayout",
    "TraversalPolicy",
    "Direction",
    "GroupLayout",
    "ShufflePlan",
    "HubDirectory",
    "DistributedBFS",
    "BFSResult",
]
