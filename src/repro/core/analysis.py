"""Post-run analysis of BFS executions: bottlenecks and load balance.

The paper's characterisation section says imbalanced vertex degrees "cause
significant load balance [problems]" and Section 5 balances the
partitioning by edges. These helpers quantify both on a finished run:

- :func:`load_imbalance` — max/mean busy time across nodes, per unit kind;
- :func:`bottleneck_report` — which unit class carried each run's makespan;
- :func:`per_node_work` — busy seconds per node (the skew the balanced
  partition is supposed to flatten).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bfs import DistributedBFS
from repro.errors import ConfigError


def per_node_work(bfs: DistributedBFS, kinds: tuple[str, ...] = ("C", "M")) -> np.ndarray:
    """Total busy seconds per node over units whose kind starts with any
    prefix in ``kinds`` (``C`` = clusters, ``M`` = MPEs)."""
    out = np.zeros(bfs.num_nodes)
    for state in bfs.states:
        busy = state.pipeline.busy_times()
        for name, seconds in busy.items():
            unit = name.split(".")[-1]
            if unit.startswith(kinds):
                out[state.node_id] += seconds
    return out


@dataclass(frozen=True)
class ImbalanceReport:
    max_work: float
    mean_work: float
    min_work: float

    @property
    def factor(self) -> float:
        """max/mean — 1.0 is perfect balance."""
        return self.max_work / self.mean_work if self.mean_work else 1.0


def load_imbalance(bfs: DistributedBFS, kinds=("C", "M")) -> ImbalanceReport:
    work = per_node_work(bfs, kinds)
    if not work.any():
        raise ConfigError("no work recorded — run a traversal first")
    return ImbalanceReport(
        max_work=float(work.max()),
        mean_work=float(work.mean()),
        min_work=float(work.min()),
    )


def bottleneck_report(bfs: DistributedBFS) -> dict[str, float]:
    """Busy seconds aggregated by unit kind across all nodes, descending —
    the first entry is where the machine spent its time."""
    sums: dict[str, float] = {}
    for state in bfs.states:
        for name, seconds in state.pipeline.busy_times().items():
            kind = name.split(".")[-1]
            sums[kind] = sums.get(kind, 0.0) + seconds
    return dict(sorted(sums.items(), key=lambda kv: -kv[1]))
