"""Contention-free data shuffling inside a CPE cluster (Section 4.3).

A reaction module must take dynamically generated (u, v) records and land
them, batched, in per-destination send buffers — with no main-memory
atomics and no register-mesh deadlock. The paper's schema:

- **producers** (columns 0-3) DMA-read input slices and push records east
  along their row;
- **routers** (columns 4-5) move records vertically — column 4 strictly
  north, column 5 strictly south, so vertical channel dependencies can
  never close a cycle;
- **consumers** (columns 6-7) own disjoint destination sets, stage records
  in per-destination SPM buffers, and DMA-write full 256 B-aligned batches
  to non-overlapping memory regions — hence no contention and no atomics.

:class:`ShufflePlan` materialises the routes, proves them deadlock-free
with the channel-dependency test, verifies the SPM staging layout fits
(the Direct-CPE crash happens right here), prices a shuffle via the
cluster model, and — functionally — buckets records by destination with
numpy so the simulated BFS gets real shuffled data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import BFSConfig, RoleLayout
from repro.errors import ConfigError
from repro.machine.cluster import CpeCluster
from repro.machine.mesh import MeshTopology, RegisterMesh, Route, check_deadlock_free
from repro.machine.spm import check_staging_layout


@dataclass(frozen=True)
class ShufflePlan:
    """A validated role assignment for one cluster and destination count."""

    roles: RoleLayout
    num_destinations: int
    staging_buffer_bytes: int = 1024
    spm_reserved_bytes: int = 4096
    spm_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.num_destinations < 1:
            raise ConfigError(
                f"shuffle needs at least one destination, got {self.num_destinations}"
            )
        # SPM feasibility: consumers split the destinations; every consumer
        # needs a staging buffer per destination it owns. Raises SpmOverflow
        # when the layout cannot fit — the Direct CPE failure mode.
        check_staging_layout(
            num_buffers=self.buffers_per_consumer,
            buffer_bytes=self.staging_buffer_bytes,
            spm_bytes=self.spm_bytes,
            reserved_bytes=self.spm_reserved_bytes,
            owner="consumer CPE",
        )

    @classmethod
    def from_config(cls, config: BFSConfig, num_destinations: int) -> "ShufflePlan":
        return cls(
            roles=config.roles,
            num_destinations=num_destinations,
            staging_buffer_bytes=config.staging_buffer_bytes,
            spm_reserved_bytes=config.spm_reserved_bytes,
        )

    # -- layout --------------------------------------------------------------
    @property
    def buffers_per_consumer(self) -> int:
        return -(-self.num_destinations // self.roles.n_consumers)

    def consumer_for(self, destination_index: int) -> tuple[int, int]:
        """Mesh position of the consumer owning ``destination_index``.

        Destinations map round-robin over consumers so load spreads evenly.
        """
        if not 0 <= destination_index < self.num_destinations:
            raise ConfigError(f"destination {destination_index} out of range")
        consumers = self.roles.consumer_positions()
        return consumers[destination_index % len(consumers)]

    def route(self, producer: tuple[int, int], destination_index: int) -> Route:
        """Producer -> row-east -> router column -> vertical -> consumer."""
        pr, pc = producer
        if (pr, pc) not in self.roles.producer_set:
            raise ConfigError(f"{producer} is not a producer position")
        cr, cc = self.consumer_for(destination_index)
        up_col, down_col = self.roles.router_columns()
        router_col = up_col if cr < pr else down_col
        stops: list[tuple[int, int]] = [(pr, pc)]
        if pc != router_col:
            stops.append((pr, router_col))
        if cr != pr:
            stops.append((cr, router_col))
        stops.append((cr, cc))
        return Route.through(*stops)

    def all_routes(self) -> list[Route]:
        """Every producer-to-destination route the schedule can use."""
        return [
            self.route(p, d)
            for p in self.roles.producer_positions()
            for d in range(self.num_destinations)
        ]

    def verify_deadlock_free(self, mesh: MeshTopology | None = None) -> bool:
        """Channel-dependency acyclicity over the full route set."""
        return check_deadlock_free(self.all_routes(), mesh or MeshTopology())

    # -- timing ---------------------------------------------------------------
    def shuffle_time(self, nbytes: float, cluster: CpeCluster, record_bytes: int = 8) -> float:
        return cluster.shuffle_time(
            nbytes,
            n_producers=self.roles.n_producers,
            n_consumers=self.roles.n_consumers,
            record_bytes=record_bytes,
        )

    def micro_benchmark_throughput(
        self, records_per_flow: int = 64, frequency_hz: float = 1.45e9
    ) -> float:
        """Drive the cycle-stepped mesh with a representative flow set.

        Used by the register-bandwidth micro-benchmark; returns bytes/s of
        raw register traffic (the DMA sides are modelled separately).
        """
        mesh = RegisterMesh(frequency_hz=frequency_hz)
        flows = []
        for i, p in enumerate(self.roles.producer_positions()):
            d = i % self.num_destinations
            flows.append((self.route(p, d), records_per_flow * 32))
        return mesh.throughput(flows)

    # -- functional shuffle ------------------------------------------------------
    @staticmethod
    def bucket(destinations: np.ndarray, num_destinations: int) -> tuple[np.ndarray, np.ndarray]:
        """Group record indices by destination (the consumers' output).

        Returns ``(order, offsets)``: ``order`` permutes record indices so
        equal destinations are contiguous (stable, preserving producer
        order — what FIFO consumer buffers produce); ``offsets[d]:offsets[d+1]``
        slices destination ``d``'s records.
        """
        dest = np.asarray(destinations, dtype=np.int64)
        if dest.size and (dest.min() < 0 or dest.max() >= num_destinations):
            raise ConfigError("destination index out of range")
        order = np.argsort(dest, kind="stable")
        counts = np.bincount(dest, minlength=num_destinations)
        offsets = np.zeros(num_destinations + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return order, offsets
