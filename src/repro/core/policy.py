"""Direction-optimisation policy (TRAVERSAL_POLICY in Algorithm 1).

Implements the Beamer heuristic the paper cites [7]: switch from top-down
to bottom-up when the frontier's outgoing edge count grows past the
unexplored edge count divided by ``alpha``; switch back to top-down when
the frontier shrinks below ``n / beta`` vertices. The policy carries
hysteresis — it keeps the current state unless a threshold fires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class Direction(enum.Enum):
    TOP_DOWN = "topdown"
    BOTTOM_UP = "bottomup"


@dataclass
class TraversalPolicy:
    alpha: float = 14.0
    beta: float = 24.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ConfigError(f"alpha/beta must be positive: {self.alpha}/{self.beta}")
        self._state = Direction.TOP_DOWN

    @property
    def state(self) -> Direction:
        return self._state

    def reset(self) -> None:
        self._state = Direction.TOP_DOWN

    def restore(self, state: Direction) -> None:
        """Reinstall a checkpointed hysteresis state (crash recovery)."""
        if not isinstance(state, Direction):
            raise ConfigError(f"not a direction: {state!r}")
        self._state = state

    def decide(
        self,
        frontier_vertices: int,
        frontier_edges: int,
        unexplored_edges: int,
        num_vertices: int,
    ) -> Direction:
        """Pick the direction for the next level from global statistics.

        ``frontier_edges`` is the sum of degrees over the frontier (m_f);
        ``unexplored_edges`` the sum over unvisited vertices (m_u).
        """
        if min(frontier_vertices, frontier_edges, unexplored_edges) < 0:
            raise ConfigError("negative traversal statistics")
        if not self.enabled:
            return Direction.TOP_DOWN
        if self._state is Direction.TOP_DOWN:
            if frontier_edges > unexplored_edges / self.alpha:
                self._state = Direction.BOTTOM_UP
        else:
            if frontier_vertices < num_vertices / self.beta:
                self._state = Direction.TOP_DOWN
        return self._state
