"""Pipelined module mapping (Section 4.2, Figures 4 and 10).

One node's heterogeneous units as FIFO servers:

- **M0** sends, **M1** receives — the paper's dedicated communication MPEs;
- **M2/M3** are the scratch MPEs that absorb the small-message quick path
  and run modules outright in the MPE baselines;
- **C0-C3** each own specific modules ("no more than one CPE cluster
  executes the same module in one node at any time"): generators on C0,
  relays on C1, Backward Handler on C2, Forward Handler on C3 — the
  Figure 10 assignment.

Timing asymmetry is the heart of the 10x: a CPE-cluster module moves its
bytes through the contention-free shuffle at ~10 GB/s (batched DMA on both
sides), while the same module on an MPE performs *random* record-sized
accesses, which the Figure 3 curve prices near 0.8 GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import BFSConfig
from repro.errors import ConfigError
from repro.machine.node import SunwayNode
from repro.sim.resources import Server

#: Figure 10 module -> CPE cluster assignment.
MODULE_CLUSTER = {
    "forward_generator": 0,
    "backward_generator": 0,
    "forward_relay": 1,
    "backward_relay": 1,
    "backward_handler": 2,
    "hub_settle": 2,
    "forward_handler": 3,
}

#: Reaction modules shuffle (producer/router/consumer); dispose modules
#: partition their input across CPEs (Section 2.1 / 4.3).
REACTION_MODULES = frozenset(
    ["forward_generator", "backward_generator", "forward_relay", "backward_relay"]
)
DISPOSE_MODULES = frozenset(["forward_handler", "backward_handler", "hub_settle"])

#: (1/n, 2/n, ..., n/n) per bucket count — tiny, heavily repeated arrays.
_FRACTION_CACHE: dict[int, "np.ndarray"] = {}


@dataclass(slots=True)
class ModuleExecution:
    """Where and when a module ran (for stats and send pipelining)."""

    kind: str
    start: float
    finish: float
    where: str  # "cluster:<i>" or "mpe:<i>"
    nbytes: float

    def ready_fraction(self, fraction: float) -> float:
        """Time when ``fraction`` of the module's output is available —
        used to pipeline sends against generation."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigError(f"fraction {fraction} out of [0, 1]")
        return self.start + fraction * (self.finish - self.start)

    def ready_fractions(self, n: int) -> "np.ndarray":
        """``ready_fraction((k + 1) / n)`` for ``k in range(n)``, vectorised
        (same IEEE operations element-wise, so values are bit-identical)."""
        fractions = _FRACTION_CACHE.get(n)
        if fractions is None:
            fractions = _FRACTION_CACHE[n] = np.arange(1, n + 1) / n
        return self.start + fractions * (self.finish - self.start)


class NodePipeline:
    """Scheduler over one node's MPEs and CPE clusters."""

    def __init__(self, node: SunwayNode, config: BFSConfig):
        self.node = node
        self.config = config
        n = node.node_id
        self.mpe_send = Server(f"node{n}.M0")
        self.mpe_recv = Server(f"node{n}.M1")
        self.mpe_aux = [Server(f"node{n}.M2"), Server(f"node{n}.M3")]
        self.clusters = [Server(f"node{n}.C{i}") for i in range(node.num_clusters)]
        self._overhead = node.spec.taihulight.message_overhead
        # Service times are pure functions of (kind, nbytes); message sizes
        # repeat heavily (markers, per-bucket records), so memoise them.
        self._mpe_time_cache: dict[float, float] = {}
        self._cluster_time_cache: dict[tuple[str, float], float] = {}
        #: Optional :class:`repro.telemetry.Telemetry`; when set, every
        #: module execution records a span and labeled counters.
        self.telemetry = None

    # -- module execution ------------------------------------------------------
    def _mpe_service_time(self, nbytes: float) -> float:
        """MPE processing: record-granular random access (Figure 3 pricing)."""
        cached = self._mpe_time_cache.get(nbytes)
        if cached is None:
            cached = self._mpe_time_cache[nbytes] = self.node.dma.mpe_transfer_time(
                nbytes, chunk_bytes=self.config.record_bytes
            )
        return cached

    def _cluster_service_time(self, kind: str, nbytes: float) -> float:
        cached = self._cluster_time_cache.get((kind, nbytes))
        if cached is None:
            cached = self._cluster_time_cache[(kind, nbytes)] = (
                self._cluster_service_time_uncached(kind, nbytes)
            )
        return cached

    def _cluster_service_time_uncached(self, kind: str, nbytes: float) -> float:
        cluster = self.node.cluster
        startup = cluster.module_startup_time()
        roles = self.config.roles
        if kind in REACTION_MODULES:
            return startup + cluster.shuffle_time(
                nbytes,
                n_producers=roles.n_producers,
                n_consumers=roles.n_consumers,
                record_bytes=self.config.record_bytes,
            )
        # Dispose modules stream the batched input but scatter record-sized
        # writes; price the slower half at record granularity.
        read = cluster.partitioned_time(nbytes, chunk_bytes=256)
        write = cluster.partitioned_time(nbytes, chunk_bytes=self.config.record_bytes)
        return startup + max(read, write)

    def _pick_aux_mpe(self, now: float) -> Server:
        # min() over earliest_start with first-wins ties, unrolled for the
        # two aux MPEs (this sits on the quick path of every message).
        a, b = self.mpe_aux
        ea = a.free_at
        if ea < now:
            ea = now
        eb = b.free_at
        if eb < now:
            eb = now
        return a if ea <= eb else b

    def submit_module(self, now: float, kind: str, nbytes: float) -> ModuleExecution:
        """Run one module execution of ``nbytes``; returns its schedule."""
        if kind not in MODULE_CLUSTER:
            raise ConfigError(f"unknown module kind {kind!r}")
        if nbytes < 0:
            raise ConfigError(f"negative module input: {nbytes}")
        if not self.config.use_cpe_clusters:
            server = self._pick_aux_mpe(now)
            start, finish = server.admit(now, self._mpe_service_time(nbytes))
        elif nbytes <= self.config.quick_path_threshold:
            # Quick path (Section 5): tiny inputs aren't worth a cluster
            # notification round trip.
            server = self._pick_aux_mpe(now)
            start, finish = server.admit(now, self._mpe_service_time(nbytes))
        else:
            server = self.clusters[MODULE_CLUSTER[kind]]
            start, finish = server.admit(now, self._cluster_service_time(kind, nbytes))
        execution = ModuleExecution(kind, start, finish, server.name, nbytes)
        tel = self.telemetry
        if tel is not None:
            self._record_module(tel, execution)
        return execution

    def _record_module(self, tel, execution: ModuleExecution) -> None:
        node = f"node{self.node.node_id}"
        tel.spans.record(
            execution.kind,
            "module",
            execution.start,
            execution.finish,
            parent=tel.current,
            node=node,
            where=execution.where,
            nbytes=execution.nbytes,
        )
        tel.metrics.counter(
            "module_executions", module=execution.kind, node=node
        ).add(1)
        tel.metrics.counter(
            "module_bytes", module=execution.kind, node=node
        ).add(execution.nbytes)

    # -- communication ------------------------------------------------------------
    def submit_send(self, ready: float, nbytes: float) -> float:
        """Charge M0's per-message software overhead; returns injection time."""
        _, finish = self.mpe_send.admit(ready, self._overhead)
        return finish

    def submit_send_many(self, readies: list[float]) -> list[float]:
        """Charge M0's per-message overhead for a whole batch of sends.

        FIFO-identical to calling :meth:`submit_send` once per element in
        order (M0 is private to this node, so no other admission can
        interleave a batch submitted synchronously); returns the per-message
        injection times.
        """
        return self.mpe_send.admit_many(readies, self._overhead)

    def submit_recv(self, arrival: float) -> float:
        """Charge M1's per-message overhead; returns handler-ready time.

        ``Server.admit`` unrolled in place — this runs once per received
        message and M1 is private to the node, so the inline FIFO update
        is the same recurrence without the call.
        """
        srv = self.mpe_recv
        d = self._overhead
        start = arrival if arrival > srv.free_at else srv.free_at
        finish = start + d
        srv.free_at = finish
        srv.busy_time += d
        srv.jobs += 1
        if srv.intervals is not None:
            srv.intervals.append((start, finish))
        return finish

    def submit_recv_many(self, arrivals: list[float]) -> list[float]:
        """Charge M1's overhead for a batch of arrivals (see
        :meth:`submit_send_many`); returns the handler-ready times."""
        return self.mpe_recv.admit_many(arrivals, self._overhead)

    # -- diagnostics -----------------------------------------------------------------
    def busy_times(self) -> dict[str, float]:
        out = {self.mpe_send.name: self.mpe_send.busy_time,
               self.mpe_recv.name: self.mpe_recv.busy_time}
        for s in (*self.mpe_aux, *self.clusters):
            out[s.name] = s.busy_time
        return out
