"""Pipelined module mapping (Section 4.2, Figures 4 and 10).

One node's heterogeneous units as FIFO servers:

- **M0** sends, **M1** receives — the paper's dedicated communication MPEs;
- **M2/M3** are the scratch MPEs that absorb the small-message quick path
  and run modules outright in the MPE baselines;
- **C0-C3** each own specific modules ("no more than one CPE cluster
  executes the same module in one node at any time"): generators on C0,
  relays on C1, Backward Handler on C2, Forward Handler on C3 — the
  Figure 10 assignment.

Timing asymmetry is the heart of the 10x: a CPE-cluster module moves its
bytes through the contention-free shuffle at ~10 GB/s (batched DMA on both
sides), while the same module on an MPE performs *random* record-sized
accesses, which the Figure 3 curve prices near 0.8 GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BFSConfig
from repro.errors import ConfigError
from repro.machine.node import SunwayNode
from repro.sim.resources import Server

#: Figure 10 module -> CPE cluster assignment.
MODULE_CLUSTER = {
    "forward_generator": 0,
    "backward_generator": 0,
    "forward_relay": 1,
    "backward_relay": 1,
    "backward_handler": 2,
    "hub_settle": 2,
    "forward_handler": 3,
}

#: Reaction modules shuffle (producer/router/consumer); dispose modules
#: partition their input across CPEs (Section 2.1 / 4.3).
REACTION_MODULES = frozenset(
    ["forward_generator", "backward_generator", "forward_relay", "backward_relay"]
)
DISPOSE_MODULES = frozenset(["forward_handler", "backward_handler", "hub_settle"])


@dataclass
class ModuleExecution:
    """Where and when a module ran (for stats and send pipelining)."""

    kind: str
    start: float
    finish: float
    where: str  # "cluster:<i>" or "mpe:<i>"
    nbytes: float

    def ready_fraction(self, fraction: float) -> float:
        """Time when ``fraction`` of the module's output is available —
        used to pipeline sends against generation."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigError(f"fraction {fraction} out of [0, 1]")
        return self.start + fraction * (self.finish - self.start)


class NodePipeline:
    """Scheduler over one node's MPEs and CPE clusters."""

    def __init__(self, node: SunwayNode, config: BFSConfig):
        self.node = node
        self.config = config
        n = node.node_id
        self.mpe_send = Server(f"node{n}.M0")
        self.mpe_recv = Server(f"node{n}.M1")
        self.mpe_aux = [Server(f"node{n}.M2"), Server(f"node{n}.M3")]
        self.clusters = [Server(f"node{n}.C{i}") for i in range(node.num_clusters)]

    # -- module execution ------------------------------------------------------
    def _mpe_service_time(self, nbytes: float) -> float:
        """MPE processing: record-granular random access (Figure 3 pricing)."""
        return self.node.dma.mpe_transfer_time(
            nbytes, chunk_bytes=self.config.record_bytes
        )

    def _cluster_service_time(self, kind: str, nbytes: float) -> float:
        cluster = self.node.cluster
        startup = cluster.module_startup_time()
        roles = self.config.roles
        if kind in REACTION_MODULES:
            return startup + cluster.shuffle_time(
                nbytes,
                n_producers=roles.n_producers,
                n_consumers=roles.n_consumers,
                record_bytes=self.config.record_bytes,
            )
        # Dispose modules stream the batched input but scatter record-sized
        # writes; price the slower half at record granularity.
        read = cluster.partitioned_time(nbytes, chunk_bytes=256)
        write = cluster.partitioned_time(nbytes, chunk_bytes=self.config.record_bytes)
        return startup + max(read, write)

    def _pick_aux_mpe(self, now: float) -> Server:
        return min(self.mpe_aux, key=lambda s: s.earliest_start(now))

    def submit_module(self, now: float, kind: str, nbytes: float) -> ModuleExecution:
        """Run one module execution of ``nbytes``; returns its schedule."""
        if kind not in MODULE_CLUSTER:
            raise ConfigError(f"unknown module kind {kind!r}")
        if nbytes < 0:
            raise ConfigError(f"negative module input: {nbytes}")
        if not self.config.use_cpe_clusters:
            server = self._pick_aux_mpe(now)
            start, finish = server.admit(now, self._mpe_service_time(nbytes))
            return ModuleExecution(kind, start, finish, server.name, nbytes)
        if nbytes <= self.config.quick_path_threshold:
            # Quick path (Section 5): tiny inputs aren't worth a cluster
            # notification round trip.
            server = self._pick_aux_mpe(now)
            start, finish = server.admit(now, self._mpe_service_time(nbytes))
            return ModuleExecution(kind, start, finish, server.name, nbytes)
        server = self.clusters[MODULE_CLUSTER[kind]]
        start, finish = server.admit(now, self._cluster_service_time(kind, nbytes))
        return ModuleExecution(kind, start, finish, server.name, nbytes)

    # -- communication ------------------------------------------------------------
    def submit_send(self, ready: float, nbytes: float) -> float:
        """Charge M0's per-message software overhead; returns injection time."""
        overhead = self.node.spec.taihulight.message_overhead
        _, finish = self.mpe_send.admit(ready, overhead)
        return finish

    def submit_recv(self, arrival: float) -> float:
        """Charge M1's per-message overhead; returns handler-ready time."""
        overhead = self.node.spec.taihulight.message_overhead
        _, finish = self.mpe_recv.admit(arrival, overhead)
        return finish

    # -- diagnostics -----------------------------------------------------------------
    def busy_times(self) -> dict[str, float]:
        out = {self.mpe_send.name: self.mpe_send.busy_time,
               self.mpe_recv.name: self.mpe_recv.busy_time}
        for s in (*self.mpe_aux, *self.clusters):
            out[s.name] = s.busy_time
        return out
