"""The distributed BFS driver (Algorithms 1 and 2 on the simulated machine).

One :class:`DistributedBFS` instance binds a graph to a simulated machine:
it partitions the graph 1-D across nodes, wires a SimMPI cluster, builds
the per-node pipelines and hub directory, validates the shuffle plan
(SPM feasibility + deadlock-freedom) and the connection budget — then
``run(root)`` executes real level-synchronised message-driven traversals.

Timing model recap: module executions and per-message MPE overheads are
FIFO jobs on the node's servers; messages fly over the fat-tree link model;
per-level control collectives (direction allreduce + hub-bitmap allgather)
are priced analytically and added to the level barrier. The per-root
simulated duration is the span from the first level's start to the last
bookkeeping finish.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.core.batching import GroupLayout
from repro.core.config import BFSConfig
from repro.core.hubs import HubDirectory
from repro.core.pipeline import NodePipeline
from repro.core.policy import Direction, TraversalPolicy
from repro.core.runtime import NodeState
from repro.core.shuffle import ShufflePlan
from repro.errors import ConfigError, ReproError, SimulatedCrash
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.partition import Partition1D
from repro.graph500.reference import depths_from_parents
from repro.machine.node import SunwayNode
from repro.machine.specs import MachineSpec, TAIHULIGHT
from repro.network.codec import encoded_size
from repro.network.simmpi import Message, SimCluster
from repro.durability.rs import RSCode
from repro.durability.shards import ShardedCheckpointStore, ShardPlacement
from repro.resilience.channel import ReliableChannel
from repro.resilience.checkpoint import Checkpoint, CheckpointStore
from repro.resilience.config import ResilienceConfig
from repro.sim.engine import Engine
from repro.sim.partition import PartitionedEngine


@dataclass(frozen=True)
class LevelTrace:
    """What one BFS level did and cost."""

    level: int
    direction: str
    frontier_vertices: int
    frontier_edges: int
    records_sent: int
    messages: int
    hub_settled: int
    subrounds: int
    start: float
    finish: float

    @property
    def seconds(self) -> float:
        return self.finish - self.start


@dataclass
class BFSResult:
    """Output of one rooted traversal."""

    root: int
    parent: np.ndarray
    levels: int
    sim_seconds: float
    traces: list[LevelTrace] = field(default_factory=list)
    stats: dict[str, float] = field(default_factory=dict)

    def depths(self) -> np.ndarray:
        return depths_from_parents(self.parent, self.root)

    def directions(self) -> list[str]:
        return [t.direction for t in self.traces]

    def to_json(self) -> str:
        """Serialise the run's traces and stats (not the parent array) for
        offline analysis — one record per level plus the run summary."""
        return json.dumps(
            {
                "root": self.root,
                "levels": self.levels,
                "sim_seconds": self.sim_seconds,
                "reached": int((self.parent >= 0).sum()),
                "stats": {k: float(v) for k, v in self.stats.items()},
                "traces": [
                    {
                        "level": int(t.level),
                        "direction": t.direction,
                        "frontier_vertices": int(t.frontier_vertices),
                        "frontier_edges": int(t.frontier_edges),
                        "records_sent": int(t.records_sent),
                        "messages": int(t.messages),
                        "hub_settled": int(t.hub_settled),
                        "subrounds": int(t.subrounds),
                        "seconds": float(t.seconds),
                    }
                    for t in self.traces
                ],
            }
        )


class DistributedBFS:
    """A reusable BFS kernel over a fixed graph and simulated machine."""

    def __init__(
        self,
        edges: EdgeList,
        nodes: int,
        config: BFSConfig | None = None,
        spec: MachineSpec = TAIHULIGHT,
        nodes_per_super_node: int | None = None,
        resilience: ResilienceConfig | None = None,
        graph: CSRGraph | None = None,
        telemetry=None,
    ):
        self.config = config or BFSConfig()
        self.resilience = resilience or ResilienceConfig()
        self.spec = spec
        if nodes < 1:
            raise ConfigError(f"need at least one node, got {nodes}")
        if self.config.partition_mode == "cyclic":
            raise ConfigError(
                "the distributed runtime needs contiguous partitions "
                "(block or balanced)"
            )
        self.num_nodes = nodes
        self.edges = edges
        # ``graph`` lets callers that already built the symmetrised
        # deduplicated CSR (the benchmark runner builds it for validation)
        # share it instead of paying construction twice.
        if graph is None:
            graph = CSRGraph.from_edges(edges)
        elif graph.num_vertices != edges.num_vertices:
            raise ConfigError(
                f"prebuilt graph has {graph.num_vertices} vertices, "
                f"edge list has {edges.num_vertices}"
            )
        self.graph = graph
        n = self.graph.num_vertices
        if nodes > n:
            raise ConfigError(f"{nodes} nodes for only {n} vertices")

        # --- layout: partition, owners, groups --------------------------------
        weights = (
            self.graph.degrees()
            if self.config.partition_mode == "balanced"
            else None
        )
        self.partition = Partition1D(
            n, nodes, mode=self.config.partition_mode, edge_weights=weights
        )
        self.owner = self.partition.owner(np.arange(n, dtype=np.int64))
        nps = (
            nodes_per_super_node
            if nodes_per_super_node is not None
            else spec.taihulight.nodes_per_super_node
        )
        width = self.config.group_width or nps
        self.groups = GroupLayout(nodes, min(width, nodes))

        # --- machine: engine, network, nodes ------------------------------------
        # ``engine_partitions > 1`` swaps in the conservative-sync PDES
        # engine (repro.sim.partition) — bit-identical to the sequential
        # loop, which stays the executable specification at the default.
        if self.config.engine_partitions > 1:
            self.engine = PartitionedEngine(
                self.config.engine_partitions,
                drain_workers=self.config.drain_workers,
                drain_backend=self.config.drain_backend,
            )
        else:
            self.engine = Engine()
        self.cluster = SimCluster(
            self.engine,
            nodes,
            spec=spec,
            nodes_per_super_node=nps,
            track_connections=self.config.track_connections,
        )
        if isinstance(self.engine, PartitionedEngine):
            self.engine.attach_cluster(self.cluster)
            # Parallel drain workers fold this driver's shared scalars
            # (``_t_max``, ``_records_sent``) through the journal; the
            # process backend additionally needs the driver registered by
            # name to ship journals and per-lane node state symbolically.
            self.engine.register_drain_target("bfs", self)
            # Setup-time codec registration, not a callback-time mutation.
            self.engine.drain_state_codec = (  # repro: noqa[REP107]
                self._collect_drain_state,
                self._apply_drain_state,
            )
        self.machines = [SunwayNode(i, spec) for i in range(nodes)]
        self.states: list[NodeState] = []
        for i in range(nodes):
            lo, hi = self.partition.part_range(i)
            state = NodeState(
                i, lo, hi, self.graph.row_slice(lo, hi),
                NodePipeline(self.machines[i], self.config),
            )
            self.states.append(state)
            self.cluster.register(i, self._make_handler(state))

        # --- feasibility: SPM staging + connection budget ------------------------
        if self.config.use_cpe_clusters:
            dests = (
                max(self.groups.num_groups, self.groups.width)
                if self.config.use_relay
                else nodes
            )
            self.shuffle_plan = ShufflePlan.from_config(self.config, max(1, dests))
        else:
            self.shuffle_plan = None

        # --- runtime sanitizers (opt-in; repro.sanitizers.runtime) --------------
        #: SPM write-conflict detector, consulted per shuffle in
        #: ``_send_buckets``; installed here via ``config.sanitize`` or
        #: post-construction by ``Graph500Runner(sanitize=True)``.
        self.spm_sanitizer = None
        #: Message-mutated-after-send detector wrapping the cluster.
        self.message_sanitizer = None
        if self.config.sanitize:
            from repro.sanitizers.runtime import (
                MessageSanitizer,
                SpmWriteSanitizer,
            )

            self.spm_sanitizer = SpmWriteSanitizer()
            self.message_sanitizer = MessageSanitizer(self.cluster)
        if self.config.track_connections:
            for i in range(nodes):
                required = (
                    self.groups.relay_connections(i)
                    if self.config.use_relay
                    else self.groups.direct_connections()
                )
                self.cluster.connections[i].require(required)

        # --- hubs ------------------------------------------------------------------
        self.policy = TraversalPolicy(
            self.config.alpha, self.config.beta, self.config.direction_optimizing
        )
        self.hubs: HubDirectory | None = None
        if self.config.use_hub_prefetch:
            per_node = n / nodes
            cap = max(1, int(per_node * self.config.hub_fraction_cap))
            hubs_per_node = min(
                max(self.config.hub_count_topdown, self.config.hub_count_bottomup),
                cap,
            )
            self.hubs = HubDirectory(self.graph, self.partition, hubs_per_node)
            self._build_hub_adjacency()

        # --- resilience: reliable transport + checkpoint store -------------------
        self.channel: ReliableChannel | None = None
        if self.resilience.reliable_transport:
            self.channel = ReliableChannel(self.cluster, self.resilience)
            if isinstance(self.engine, PartitionedEngine):
                # The reliable transport interposes on cluster delivery, so
                # its deliver hook is a routed entry point too.
                self.engine.register_delivery(ReliableChannel._deliver)
                # Its retransmit ledger and ack timers are shared state
                # mutated from delivery callbacks outside the journal API,
                # and timer events ride the control lane inside windows.
                self.engine.mark_parallel_unsafe(
                    "reliable transport shares retransmit state across lanes"
                )
        #: Buddy or erasure-coded store per ``resilience.checkpoint_mode``
        #: (built eagerly so an infeasible RS placement fails construction).
        self.checkpoints: CheckpointStore | ShardedCheckpointStore | None = (
            self._make_checkpoint_store()
        )
        #: rank -> I/O slowdown factor >= 1 for a degraded checkpoint disk;
        #: populated by :class:`repro.sim.faults.DiskFaultInjector` and read
        #: by the checkpoint/scrub/recovery cost models.
        self.disk_slowdowns: dict[int, float] = {}

        # --- construction-time estimate (not part of TEPS) ----------------------
        self.construction_seconds = self._estimate_construction_time()

        # run-scoped scratch
        self._t_max = 0.0
        self._records_sent = 0
        self._hub_settled = 0
        self._recoveries = 0
        self._checkpoint_seconds = 0.0
        self._recovery_seconds = 0.0
        self._scrub_seconds = 0.0
        #: node id -> its termination-marker peer list (config-fixed).
        self._peer_cache: dict[int, list[int]] = {}

        # --- observability -------------------------------------------------------
        #: Optional :class:`repro.telemetry.Telemetry`; set by
        #: ``Telemetry.attach_kernel`` (a disabled telemetry leaves it None,
        #: so every hook below costs one attribute check).
        self.telemetry = None
        if telemetry is not None:
            telemetry.attach_kernel(self)

    # ------------------------------------------------------------------ setup --
    def _build_hub_adjacency(self) -> None:
        """Per node: CSR from hub slot -> local indices of its neighbours."""
        assert self.hubs is not None
        for state in self.states:
            # Local rows' targets that are hubs give (hub slot, local vertex).
            v_local_all, u_global = state.graph.expand(
                np.arange(state.n_local, dtype=np.int64)
            )
            slots = self.hubs.slot_of[u_global]
            keep = slots >= 0
            slots, v_local = slots[keep], v_local_all[keep]
            order = np.argsort(slots, kind="stable")
            slots, v_local = slots[order], v_local[order]
            counts = np.bincount(slots, minlength=self.hubs.num_hubs)
            row_ptr = np.zeros(self.hubs.num_hubs + 1, dtype=np.int64)
            np.cumsum(counts, out=row_ptr[1:])
            state.hub_adjacency = CSRGraph(row_ptr, v_local, self.hubs.num_hubs)

    def _estimate_construction_time(self) -> float:
        """Documented rough model of benchmark step 3 (not in the TEPS clock):
        ship each node its edge partition, then two local DMA passes to sort
        and pack the CSR."""
        t = self.spec.taihulight
        per_node_bytes = 2 * self.edges.num_edges / self.num_nodes * 16
        ship = per_node_bytes / t.nic_effective_bandwidth
        build = 2 * per_node_bytes / self.spec.core_group.cluster_dma_bandwidth
        return ship + build

    # ------------------------------------------------------------- time marks --
    def _mark(self, t: float) -> None:  # repro: effect=journaled
        if t > self._t_max:
            journal = self.engine.journal
            if journal is None:
                self._t_max = t
            else:
                # Parallel drain worker: fold the running maximum through
                # the journal (commutative, applied at the sync point).
                # ``_t_max`` itself is frozen during a window, so the
                # guard above reads a stable pre-window value.
                journal.fold_max(self, "_t_max", t)

    def _count_records(self, count: int) -> None:  # repro: effect=journaled
        journal = self.engine.journal
        if journal is None:
            self._records_sent += count
        else:
            journal.fold_add(self, "_records_sent", count)

    # ------------------------------------------------- parallel drain state --
    def _collect_drain_state(self, lo: int, hi: int) -> list:
        """Everything a compute event may mutate on nodes ``[lo, hi)``:
        BFS adoption arrays and pipeline server clocks. Shipped home from
        a forked drain worker (the pure time-cache memos are dropped —
        they recompute)."""
        out = []
        for node in range(lo, hi):
            state = self.states[node]
            servers = self._node_servers(state)
            out.append((
                node,
                state.parent.copy(),
                state.next_mask.copy(),
                [
                    (
                        srv.free_at,
                        srv.busy_time,
                        srv.jobs,
                        None if srv.intervals is None else list(srv.intervals),
                    )
                    for srv in servers
                ],
            ))
        return out

    def _apply_drain_state(self, blob: list) -> None:
        for node, parent, next_mask, server_rows in blob:
            state = self.states[node]
            state.parent[:] = parent
            state.next_mask[:] = next_mask
            for srv, (free_at, busy_time, jobs, intervals) in zip(
                self._node_servers(state), server_rows
            ):
                srv.free_at = free_at
                srv.busy_time = busy_time
                srv.jobs = jobs
                if intervals is not None:
                    srv.intervals = intervals

    @staticmethod
    def _node_servers(state: NodeState) -> list:
        pl = state.pipeline
        return [pl.mpe_send, pl.mpe_recv, *pl.mpe_aux, *pl.clusters]

    # ----------------------------------------------------------- diagnostics --
    def utilization(self) -> dict[str, float]:
        """Busy-time fraction per execution unit since construction.

        Keys are server names (``node3.C0``, ``node0.M1``, ...); values are
        busy seconds divided by total simulated time. The paper's design
        goal shows up here: in CPE mode the communication MPEs (M0/M1) and
        the module clusters carry the load; in MPE mode the aux MPEs do.
        """
        horizon = max(self._t_max, 1e-12)
        out: dict[str, float] = {}
        for state in self.states:
            for name, busy in state.pipeline.busy_times().items():
                out[name] = busy / horizon
        return out

    def _all_servers(self):
        for state in self.states:
            pl = state.pipeline
            yield from (pl.mpe_send, pl.mpe_recv, *pl.mpe_aux, *pl.clusters)

    def enable_tracing(self) -> None:
        """Record busy intervals (servers and links) for trace export."""
        from repro.telemetry.export import enable_tracing

        enable_tracing(self._all_servers())
        enable_tracing(self.cluster.network.all_links())

    def export_trace(self) -> str:
        """Chrome-trace JSON of all recorded busy intervals."""
        from repro.telemetry.export import collect_intervals, to_chrome_trace

        intervals = collect_intervals(self._all_servers())
        intervals.update(collect_intervals(self.cluster.network.all_links()))
        return to_chrome_trace(intervals)

    def utilization_by_unit_kind(self) -> dict[str, float]:
        """Mean utilisation aggregated over nodes: M0/M1/M2/M3/C0..C3."""
        per_server = self.utilization()
        sums: dict[str, list[float]] = {}
        for name, u in per_server.items():
            kind = name.split(".")[-1]
            sums.setdefault(kind, []).append(u)
        return {k: float(np.mean(v)) for k, v in sorted(sums.items())}

    # ------------------------------------------------------------ message I/O --
    def _make_handler(self, state: NodeState):
        # functools.partial rather than a closure: it forwards to
        # _on_message without an extra Python frame per message.
        return partial(self._on_message, state)

    def _on_message(self, state: NodeState, msg: Message) -> None:
        ready = state.pipeline.submit_recv(msg.arrival_time)
        if ready > self._t_max:  # _mark, inlined on the per-message path
            journal = self.engine.journal
            if journal is None:
                self._t_max = ready
            else:
                journal.fold_max(self, "_t_max", ready)
        if msg.tag == "eol":
            return
        u, v = msg.payload
        nbytes = msg.nbytes
        if msg.tag == "fwd":
            execution = state.pipeline.submit_module(ready, "forward_handler", nbytes)
            self._mark(execution.finish)
            state.apply_forward(u, v)
        elif msg.tag == "bwd":
            execution = state.pipeline.submit_module(ready, "backward_handler", nbytes)
            self._mark(execution.finish)
            mu, mv = state.match_backward(u, v)
            if len(mu):
                self._route_records(state, execution, "fwd", mu, mv, self.owner[mv])
        elif msg.tag == "fwd_relay":
            execution = state.pipeline.submit_module(ready, "forward_relay", nbytes)
            self._mark(execution.finish)
            self._send_stage_two(state, execution, "fwd", u, v, self.owner[v])
        elif msg.tag == "bwd_relay":
            execution = state.pipeline.submit_module(ready, "backward_relay", nbytes)
            self._mark(execution.finish)
            self._send_stage_two(state, execution, "bwd", u, v, self.owner[u])
        else:  # pragma: no cover - defensive
            raise ReproError(f"unknown message tag {msg.tag!r}")

    def _cluster_send(
        self, src: int, dst: int, tag: str, nbytes: int,
        payload=None, at_time: float | None = None,
    ) -> None:
        """All driver traffic funnels through here: the reliable channel
        when enabled, the raw cluster otherwise. ``cluster.send`` is looked
        up dynamically so fault injectors installed after construction
        stay on the path."""
        if self.channel is not None:
            self.channel.send(src, dst, tag, nbytes, payload=payload, at_time=at_time)
        else:
            self.cluster.send(src, dst, tag, nbytes, payload=payload, at_time=at_time)

    def _cluster_send_batch(
        self,
        src: int,
        dests: np.ndarray,
        tag: str,
        nbytes: np.ndarray,
        payloads=None,
        at_times=None,
    ) -> None:
        """Batched counterpart of :meth:`_cluster_send`: one call per module
        execution instead of one per bucket, same routing rules."""
        if self.channel is not None:
            self.channel.send_batch(
                src, dests, tag, nbytes, payloads=payloads, at_times=at_times
            )
        else:
            self.cluster.send_batch(
                src, dests, tag, nbytes, payloads=payloads, at_times=at_times
            )

    def _message_bytes(self, n_records: int) -> int:
        payload = n_records * self.config.record_bytes / self.config.compression_ratio
        return self.config.header_bytes + int(payload)

    def _send_buckets(
        self,
        state: NodeState,
        execution,
        tag: str,
        u: np.ndarray,
        v: np.ndarray,
        first_hops: np.ndarray,
    ) -> None:
        """Group records by first hop and inject one message per hop,
        pipelined against the producing module's progress."""
        if len(first_hops) == 0:
            return
        if first_hops[0] == first_hops[-1] and np.all(first_hops == first_hops[0]):
            # Single destination (the common case under relay grouping):
            # the stable argsort would be the identity, so skip it and emit
            # the one bucket directly.
            hops_sorted = first_hops
            starts = np.array([0], dtype=np.int64)
            stops = np.array([len(first_hops)], dtype=np.int64)
        else:
            order = np.argsort(first_hops, kind="stable")
            hops_sorted = first_hops[order]
            u, v = u[order], v[order]
            boundaries = np.flatnonzero(np.diff(hops_sorted)) + 1
            starts = np.concatenate(([0], boundaries))
            stops = np.concatenate((boundaries, [len(hops_sorted)]))
        n_buckets = len(starts)
        spm_san = self.spm_sanitizer
        if spm_san is not None and self.shuffle_plan is not None:
            # One module execution = one shuffle phase: its consumer CPEs
            # must write disjoint per-destination regions (Section 4.3's
            # "no contention, no atomics", checked live).
            spm_san.check_bucket_writes(
                self.shuffle_plan,
                hops_sorted[starts],
                phase=f"node{state.node_id}:{tag}@{execution.start:.9e}",
            )
        if self.config.batch_messages:
            starts_l, stops_l = starts.tolist(), stops.tolist()
            cfg = self.config
            if cfg.use_codec:
                nbytes_l = [
                    cfg.header_bytes + encoded_size(u[a:b], v[a:b])
                    for a, b in zip(starts_l, stops_l)
                ]
            else:
                # The same ops as _message_bytes per bucket: exact int
                # product, one float division, truncation.
                hb, rb = cfg.header_bytes, cfg.record_bytes
                ratio = cfg.compression_ratio
                nbytes_l = [
                    hb + int((b - a) * rb / ratio)
                    for a, b in zip(starts_l, stops_l)
                ]
            if n_buckets == 1:
                # ready_fractions(1) without the array round trip — the
                # identical float expression for fraction 1.0.
                readies_l = [
                    execution.start + 1.0 * (execution.finish - execution.start)
                ]
            else:
                readies_l = execution.ready_fractions(n_buckets).tolist()
            send_ats = state.pipeline.submit_send_many(readies_l)
            self._mark(send_ats[-1])
            self._cluster_send_batch(
                state.node_id,
                hops_sorted[starts].tolist(),
                tag,
                nbytes_l,
                [(u[a:b], v[a:b]) for a, b in zip(starts_l, stops_l)],
                send_ats,
            )
            self._count_records(len(first_hops))
            tel = self.telemetry
            if tel is not None:
                tel.spans.record(
                    "message-batch", "batch", readies_l[0], send_ats[-1],
                    parent=tel.current, tag=tag, buckets=n_buckets,
                    records=len(first_hops), node=state.node_id,
                )
            return
        for k, (a, b) in enumerate(zip(starts, stops)):
            dest = int(hops_sorted[a])
            count = b - a
            if self.config.use_codec:
                nbytes = self.config.header_bytes + encoded_size(u[a:b], v[a:b])
            else:
                nbytes = self._message_bytes(count)
            ready = execution.ready_fraction((k + 1) / n_buckets)
            send_at = state.pipeline.submit_send(ready, nbytes)
            self._mark(send_at)
            self._cluster_send(
                state.node_id, dest, tag, nbytes,
                payload=(u[a:b], v[a:b]), at_time=send_at,
            )
            self._count_records(count)
        tel = self.telemetry
        if tel is not None:
            # Same window the batched branch records: first ready fraction
            # to last injection (bit-identical expressions on both paths).
            tel.spans.record(
                "message-batch", "batch",
                execution.ready_fraction(1 / n_buckets), send_at,
                parent=tel.current, tag=tag, buckets=n_buckets,
                records=len(first_hops), node=state.node_id,
            )

    def _route_records(
        self,
        state: NodeState,
        execution,
        kind: str,  # "fwd" or "bwd"
        u: np.ndarray,
        v: np.ndarray,
        dest_nodes: np.ndarray,
    ) -> None:
        """Deliver records to their owner nodes — locally, directly, or via
        the group relay, per configuration."""
        me = state.node_id
        local = dest_nodes == me
        n_local = int(np.count_nonzero(local))
        if n_local:
            lu, lv = u[local], v[local]
            nbytes = self._message_bytes(n_local)
            if kind == "fwd":
                local_exec = state.pipeline.submit_module(
                    execution.finish, "forward_handler", nbytes
                )
                self._mark(local_exec.finish)
                state.apply_forward(lu, lv)
            else:
                local_exec = state.pipeline.submit_module(
                    execution.finish, "backward_handler", nbytes
                )
                self._mark(local_exec.finish)
                mu, mv = state.match_backward(lu, lv)
                if len(mu):
                    self._route_records(
                        state, local_exec, "fwd", mu, mv, self.owner[mv]
                    )
        if n_local == len(dest_nodes):
            return
        if n_local:
            remote = ~local
            ru, rv, rdest = u[remote], v[remote], dest_nodes[remote]
        else:
            ru, rv, rdest = u, v, dest_nodes
        if not self.config.use_relay:
            self._send_buckets(state, execution, kind, ru, rv, rdest)
            return
        relays = self.groups.relay_vectorised(me, rdest)
        # Records whose relay is this node (intra-group targets) or is the
        # destination itself skip straight to stage two.
        straight = (relays == me) | (relays == rdest)
        n_straight = int(np.count_nonzero(straight))
        if n_straight == len(rdest):
            self._send_buckets(state, execution, kind, ru, rv, rdest)
            return
        if n_straight:
            self._send_buckets(
                state, execution, kind, ru[straight], rv[straight], rdest[straight]
            )
        hop = ~straight
        self._send_buckets(
            state, execution, f"{kind}_relay", ru[hop], rv[hop], relays[hop]
        )

    def _send_stage_two(
        self, state: NodeState, execution, kind: str,
        u: np.ndarray, v: np.ndarray, dest_nodes: np.ndarray,
    ) -> None:
        """Relay module output: forward each record to its final owner.

        Final hops are intra-group by construction; records owned by the
        relay itself are handled locally.
        """
        self._route_records_direct_or_local(state, execution, kind, u, v, dest_nodes)

    def _route_records_direct_or_local(
        self, state, execution, kind, u, v, dest_nodes
    ) -> None:
        me = state.node_id
        local = dest_nodes == me
        n_local = int(np.count_nonzero(local))
        if n_local:
            lu, lv = u[local], v[local]
            nbytes = self._message_bytes(n_local)
            module = "forward_handler" if kind == "fwd" else "backward_handler"
            local_exec = state.pipeline.submit_module(execution.finish, module, nbytes)
            self._mark(local_exec.finish)
            if kind == "fwd":
                state.apply_forward(lu, lv)
            else:
                mu, mv = state.match_backward(lu, lv)
                if len(mu):
                    self._route_records(state, local_exec, "fwd", mu, mv, self.owner[mv])
        if n_local == len(dest_nodes):
            return
        if n_local:
            remote = ~local
            self._send_buckets(
                state, execution, kind, u[remote], v[remote], dest_nodes[remote]
            )
        else:
            self._send_buckets(state, execution, kind, u, v, dest_nodes)

    def _send_termination_markers(self, state: NodeState, t_ready: float) -> None:
        """Per-level end-of-transmission indicators (Section 3.3: "at least
        one message transfer... for each pair of nodes"). Relay mode only
        touches column + group peers — the N+M-2 connection set."""
        if self.num_nodes == 1:
            return
        peers = self._peer_cache.get(state.node_id)
        if peers is None:
            if self.config.use_relay:
                # Deterministic union: concatenate + dict.fromkeys dedup
                # keeps every step insertion-ordered (no hash-order hop).
                peers = sorted(
                    dict.fromkeys(
                        self.groups.column_peers(state.node_id)
                        + self.groups.row_peers(state.node_id)
                    )
                )
            else:
                peers = [p for p in range(self.num_nodes) if p != state.node_id]
            self._peer_cache[state.node_id] = peers
        nbytes = self.config.header_bytes
        if not peers:
            return
        if self.config.batch_messages:
            send_ats = state.pipeline.submit_send_many([t_ready] * len(peers))
            self._mark(send_ats[-1])
            self._cluster_send_batch(
                state.node_id,
                peers,
                "eol",
                [nbytes] * len(peers),
                None,
                send_ats,
            )
            return
        for peer in peers:
            send_at = state.pipeline.submit_send(t_ready, nbytes)
            self._mark(send_at)
            self._cluster_send(state.node_id, peer, "eol", nbytes, at_time=send_at)

    # -------------------------------------------------------------- collectives --
    def _allreduce_time(self) -> float:
        """Latency of a small tree allreduce across all nodes."""
        if self.num_nodes == 1:
            return 0.0
        t = self.spec.taihulight
        rounds = int(np.ceil(np.log2(self.num_nodes)))
        return rounds * (t.inter_super_node_latency + t.message_overhead)

    def _hub_allgather_time(self, empty: bool) -> float:
        if self.hubs is None or self.num_nodes == 1:
            return 0.0
        t = self.spec.taihulight
        per_node = self.hubs.allgather_bytes(empty)
        rounds = int(np.ceil(np.log2(self.num_nodes)))
        volume = per_node * self.num_nodes / t.nic_effective_bandwidth
        return rounds * (t.inter_super_node_latency + t.message_overhead) + volume

    # ------------------------------------------------------------------ levels --
    def _hub_settle_pass(self, t0: float) -> None:
        """Settle vertices adjacent to frontier hubs, locally on every node."""
        assert self.hubs is not None
        slots = self.hubs.frontier.indices()
        if len(slots) == 0:
            return
        for state in self.states:
            candidates = state.hub_candidates(slots)
            if candidates == 0:
                continue
            nbytes = candidates * self.config.record_bytes
            execution = state.pipeline.submit_module(t0, "hub_settle", nbytes)
            self._mark(execution.finish)
            self._hub_settled += state.settle_from_hubs(slots, self.hubs.hub_ids)

    def _run_topdown_level(self, t0: float) -> None:
        for state in self.states:
            if len(state.curr) == 0:
                self._send_termination_markers(state, t0)
                continue
            frontier = state.curr
            if self.hubs is not None:
                # Frontier hubs are handled at the destination side by the
                # hub-settle pass; drop their edges at the source.
                frontier_global = state.to_global(frontier)
                frontier = frontier[~self.hubs.is_hub(frontier_global)]
            v_local, targets = state.graph.expand(frontier)
            sources = state.to_global(v_local)
            if self.hubs is not None and len(targets):
                keep = ~self.hubs.hub_visited(targets)
                sources, targets = sources[keep], targets[keep]
            nbytes = max(len(targets), 1) * self.config.record_bytes
            execution = state.pipeline.submit_module(t0, "forward_generator", nbytes)
            self._mark(execution.finish)
            if len(targets):
                self._route_records(
                    state, execution, "fwd", sources, targets, self.owner[targets]
                )
            self._send_termination_markers(state, execution.finish)
        self.engine.run_until_quiescent()

    def _run_bottomup_level(self, t0: float) -> int:
        """Bottom-up with chunked neighbour queries; returns sub-round count.

        Each sub-round every still-unvisited vertex queries its next
        ``bottomup_chunk`` untried neighbours (early-termination emulation of
        the paper's streaming Backward Generator).
        """
        subrounds = 0
        t_start = t0
        while subrounds < self.config.bottomup_max_subrounds:
            subrounds += 1
            any_sent = False
            for state in self.states:
                u_targets, v_sources = state.bu_expand(self.config.bottomup_chunk)
                if self.hubs is not None and len(u_targets):
                    keep = ~self.hubs.is_hub(u_targets)
                    u_targets, v_sources = u_targets[keep], v_sources[keep]
                if len(u_targets) == 0:
                    if subrounds == 1:
                        self._send_termination_markers(state, t_start)
                    continue
                any_sent = True
                nbytes = len(u_targets) * self.config.record_bytes
                execution = state.pipeline.submit_module(
                    t_start, "backward_generator", nbytes
                )
                self._mark(execution.finish)
                self._route_records(
                    state, execution, "bwd", u_targets, v_sources,
                    self.owner[u_targets],
                )
                if subrounds == 1:
                    self._send_termination_markers(state, execution.finish)
            self.engine.run_until_quiescent()
            # Ack/retransmit deliveries may outrun the marked compute times;
            # fold the drained clock in before scheduling the next sub-round.
            self._mark(self.engine.now)
            if not any_sent:
                break
            # Quick settled-check between sub-rounds: a small allreduce.
            t_start = self._t_max + self._allreduce_time()
            self._mark(t_start)
            if self.config.bottomup_chunk == 0:
                break
            if not any(len(s.bu_remaining()) for s in self.states):
                break
        return subrounds

    # ------------------------------------------------------ checkpoint/recovery --
    def _make_checkpoint_store(
        self,
    ) -> CheckpointStore | ShardedCheckpointStore | None:
        """A fresh store per ``resilience.checkpoint_mode`` (None when off)."""
        if self.resilience.checkpoint_interval <= 0:
            return None
        if self.resilience.checkpoint_mode == "rs":
            code = RSCode(
                self.resilience.rs_data_shards, self.resilience.rs_parity_shards
            )
            placement = ShardPlacement(
                num_nodes=self.num_nodes,
                nodes_per_super_node=self.cluster.topology.nodes_per_super_node,
                data_shards=code.data_shards,
                parity_shards=code.parity_shards,
            )
            return ShardedCheckpointStore(code, placement)
        return CheckpointStore()

    def _checkpoint_transfer_seconds(self, nbytes: int) -> float:
        """Shipping one node's snapshot to its buddy node over the NIC."""
        t = self.spec.taihulight
        return nbytes / t.nic_effective_bandwidth + t.message_overhead

    def _disk_factor(self) -> float:
        """Checkpoint I/O runs in parallel across nodes, so the slowest
        (possibly degraded) disk gates every barrier-synchronous pass."""
        if not self.disk_slowdowns:
            return 1.0
        return max(1.0, max(self.disk_slowdowns.values()))

    def _store_has_checkpoint(self) -> bool:
        store = self.checkpoints
        if store is None:
            return False
        if isinstance(store, ShardedCheckpointStore):
            return store.has_checkpoint
        return store.last is not None

    def _take_checkpoint(self, level: int) -> None:
        """Snapshot the level barrier into the store and charge its cost:
        every node writes its copy (buddy) or its k+m shard scatter (RS)
        in parallel, plus a barrier."""
        assert self.checkpoints is not None
        store = self.checkpoints
        traffic_before = store.bytes_written
        ckpt = Checkpoint(
            level=level,
            snapshots=tuple(s.snapshot() for s in self.states),
            hub_frontier=(
                self.hubs.frontier.copy() if self.hubs is not None else None
            ),
            hub_visited=(
                self.hubs.visited.copy() if self.hubs is not None else None
            ),
            policy_state=self.policy.state,
        )
        store.save(ckpt)
        if isinstance(store, ShardedCheckpointStore):
            # Each node scatters k+m shards of 1/k snapshot size to its
            # holders: ~(k+m)/k of the buddy byte volume, one per-message
            # overhead per shard.
            cost = (
                store.code.total_shards
                * self._checkpoint_transfer_seconds(store.max_shard_bytes)
                * self._disk_factor()
                + self._allreduce_time()
            )
        else:
            cost = (
                self._checkpoint_transfer_seconds(ckpt.max_node_bytes)
                * self._disk_factor()
                + self._allreduce_time()
            )
        self._checkpoint_seconds += cost
        self._mark(self._t_max + cost)
        self.cluster.stats.counter("checkpoints").add()
        self.cluster.stats.counter("checkpoint_bytes").add(
            store.bytes_written - traffic_before
        )

    def _run_scrub(self) -> None:
        """Background shard-checksum scrub at the level barrier (RS only):
        read every shard, verify its CRC, decode + re-place any that are
        corrupt or missing while >= k healthy shards survive per group."""
        store = self.checkpoints
        assert isinstance(store, ShardedCheckpointStore)
        if not store.has_checkpoint:
            return
        dead = self.cluster.dead_ranks()
        alive_bytes = [
            store.holder_bytes(rank)
            for rank in range(self.num_nodes)
            if rank not in dead
        ]
        rebuilt_before = store.shards_rebuilt
        checked, repaired = store.scrub(dead=dead)
        if checked == 0 and repaired == 0:
            return
        t = self.spec.taihulight
        # Every holder streams its resident shards in parallel; repairs
        # add one shard transfer each plus the agreement barrier.
        cost = (
            max(alive_bytes, default=0) / t.nic_effective_bandwidth
            * self._disk_factor()
            + repaired * self._checkpoint_transfer_seconds(store.max_shard_bytes)
            + self._allreduce_time()
        )
        self._scrub_seconds += cost
        self._mark(self._t_max + cost)
        self.cluster.stats.counter("scrub_passes").add()
        if repaired:
            self.cluster.stats.counter("scrub_repairs").add(repaired)
        rebuilt = store.shards_rebuilt - rebuilt_before
        if rebuilt:
            self.cluster.stats.counter("shards_rebuilt").add(rebuilt)

    def _recover_or_raise(self, dead: frozenset[int]) -> int:
        """Restore the last checkpoint after a crash; returns its level.

        The crashed ranks are revived (a replacement node adopting the
        rank), then *every* node rewinds to the checkpointed barrier —
        the only globally consistent state — and the driver re-runs the
        lost levels. In RS mode the snapshots are *decoded* from the
        surviving shards (the crashed ranks' disks count as erasures) and
        missing shards are healed onto live holders, restoring the full
        loss budget before the next fault. Raises :class:`SimulatedCrash`
        when there is nothing to recover from or too many shards are gone.
        """
        if not self._store_has_checkpoint():
            raise SimulatedCrash(
                f"node(s) {sorted(dead)} crashed with no checkpoint to "
                "recover from",
                node=min(dead),
            )
        self._recoveries += 1
        if self._recoveries > self.resilience.max_recoveries:
            raise SimulatedCrash(
                f"recovery limit ({self.resilience.max_recoveries}) exceeded",
                node=min(dead),
            )
        store = self.checkpoints
        assert store is not None
        if isinstance(store, ShardedCheckpointStore):
            # A revived rank is *replacement* hardware: its checkpoint disk
            # comes up empty, so its resident shards are erasures...
            for rank in sorted(dead):
                store.drop_holder(rank)
            # ...and the replacements must be live before the heal pass can
            # re-cover them (restoring the full m-loss budget immediately).
            for rank in sorted(dead):
                self.cluster.revive(rank, self._make_handler(self.states[rank]))
            rebuilt_before = store.shards_rebuilt
            try:
                ckpt = store.restore()
            except ReproError as exc:
                raise SimulatedCrash(str(exc), node=min(dead)) from exc
            rebuilt = store.shards_rebuilt - rebuilt_before
            # Cost: failure detection, each node gathering k shards from
            # distinct holders (pipelined, so k serial shard transfers
            # bound it), healing traffic, and two agreement barriers.
            cost = (
                self.resilience.ack_timeout
                + store.code.data_shards
                * self._checkpoint_transfer_seconds(store.max_shard_bytes)
                * self._disk_factor()
                + rebuilt * self._checkpoint_transfer_seconds(store.max_shard_bytes)
                + 2 * self._allreduce_time()
            )
            if rebuilt:
                self.cluster.stats.counter("shards_rebuilt").add(rebuilt)
        else:
            ckpt = store.restore()
            # Cost: detecting the failure (a timed-out barrier), re-fetching
            # the snapshot from buddy memory in parallel, and two barriers
            # to agree on the rewind.
            cost = (
                self.resilience.ack_timeout
                + self._checkpoint_transfer_seconds(ckpt.max_node_bytes)
                * self._disk_factor()
                + 2 * self._allreduce_time()
            )
            for rank in sorted(dead):
                self.cluster.revive(rank, self._make_handler(self.states[rank]))
        for state, snap in zip(self.states, ckpt.snapshots):
            state.restore(snap)
        if self.hubs is not None:
            self.hubs.frontier = ckpt.hub_frontier.copy()
            self.hubs.visited = ckpt.hub_visited.copy()
        self.policy.restore(ckpt.policy_state)
        self._recovery_seconds += cost
        self._mark(self._t_max + cost)
        self.cluster.stats.counter("recoveries").add()
        return ckpt.level

    # --------------------------------------------------------------------- run --
    def run(self, root: int) -> BFSResult:
        """Traverse from ``root``; returns the validated-shape result."""
        n = self.graph.num_vertices
        if not 0 <= root < n:
            raise ConfigError(f"root {root} out of range")
        # Ranks that died during a previous root come back as replacement
        # nodes; their state is rebuilt by the reset below.
        for rank in sorted(self.cluster.dead_ranks()):
            self.cluster.revive(rank, self._make_handler(self.states[rank]))
        if self.channel is not None:
            self.channel.reset_run()
        for state in self.states:
            state.reset()
        if self.hubs is not None:
            self.hubs.reset()
        self.policy.reset()
        owner_of_root = int(self.owner[root])
        self.states[owner_of_root].seed_root(root)

        msgs_before = self.cluster.stats.value("messages")
        bytes_before = self.cluster.stats.value("bytes")
        resilience_keys = (
            "retransmits", "acks", "gave_up", "dup_suppressed",
            "corrupt_detected", "dead_letters",
        )
        resilience_before = {
            k: self.cluster.stats.value(k) for k in resilience_keys
        }
        # Start after every leftover job from a previous root has drained so
        # per-root durations never overlap.
        t_run_start = max(self.engine.now, self._t_max)
        tel = self.telemetry
        root_span = -1
        if tel is not None:
            root_span = tel.spans.open(
                f"root {root}", "root", parent=tel.current, root=root
            )
            tel.push(root_span)
        self._t_max = t_run_start
        self._records_sent = 0
        self._hub_settled = 0
        self._recoveries = 0
        self._checkpoint_seconds = 0.0
        self._recovery_seconds = 0.0
        self._scrub_seconds = 0.0
        traces: list[LevelTrace] = []
        if self.resilience.checkpoint_interval > 0:
            # Fresh store per root; the level-0 checkpoint makes any crash
            # recoverable without replaying from an earlier root's state.
            self.checkpoints = self._make_checkpoint_store()
            self._take_checkpoint(0)

        level = 0
        while level < self.config.max_levels:
            level += 1
            # Global statistics for the policy (charged as an allreduce).
            stats = [s.frontier_stats() for s in self.states]
            n_f = sum(s[0] for s in stats)
            m_f = sum(s[1] for s in stats)
            m_u = sum(s[2] for s in stats)
            direction = self.policy.decide(n_f, m_f, m_u, n)

            hub_count = 0
            if self.hubs is not None:
                frontier_global = np.concatenate(
                    [s.to_global(s.curr) for s in self.states]
                ) if n_f else np.empty(0, dtype=np.int64)
                hub_count = self.hubs.update_frontier(frontier_global)

            control = self._allreduce_time() + self._hub_allgather_time(
                empty=hub_count == 0
            )
            t0 = self._t_max + control
            self._mark(t0)
            level_span = -1
            if tel is not None:
                level_span = tel.spans.open(
                    f"level {level}",
                    "level",
                    parent=tel.current,
                    level=level,
                    direction=direction.value,
                    frontier=n_f,
                )
                tel.push(level_span)
            records_before_level = self._records_sent
            hub_before = self._hub_settled
            msgs_before_level = self.cluster.stats.value("messages")

            if self.hubs is not None:
                self._hub_settle_pass(t0)
            subrounds = 1
            if direction is Direction.TOP_DOWN:
                self._run_topdown_level(t0)
            else:
                subrounds = self._run_bottomup_level(t0)

            traces.append(
                LevelTrace(
                    level=level,
                    direction=direction.value,
                    frontier_vertices=n_f,
                    frontier_edges=m_f,
                    records_sent=self._records_sent - records_before_level,
                    messages=int(
                        self.cluster.stats.value("messages") - msgs_before_level
                    ),
                    hub_settled=self._hub_settled - hub_before,
                    subrounds=subrounds,
                    start=t0,
                    finish=self._t_max,
                )
            )
            if tel is not None:
                # Closed here so the recovery ``continue`` below still
                # balances the span stack.
                tel.spans.close(level_span, t0, self._t_max)
                tel.pop()

            # The barrier is also the failure-detection point: a crash event
            # may have fired (and advanced the engine clock) mid-drain.
            self._mark(self.engine.now)
            dead = self.cluster.dead_ranks()
            if dead:
                # The dead ranks missed records this level (dead letters),
                # so their partial state — and any "frontier empty" signal —
                # is untrustworthy. Rewind everyone to the last checkpoint
                # and re-run the lost levels.
                level = self._recover_or_raise(dead)
                continue

            # Level barrier: promote next -> curr; terminate on empty global
            # frontier (one more allreduce, folded into the next level's
            # control charge or the final mark).
            new_frontier = sum(s.advance_level() for s in self.states)
            if new_frontier == 0:
                self._mark(self._t_max + self._allreduce_time())
                break
            # Scrub before the new save: the scrubber validates what the
            # disks held *through* the level (a fresh save would mask any
            # latent corruption or loss the level's faults caused).
            if (
                self.resilience.scrub_interval > 0
                and isinstance(self.checkpoints, ShardedCheckpointStore)
                and level % self.resilience.scrub_interval == 0
            ):
                self._run_scrub()
            if (
                self.checkpoints is not None
                and level % self.resilience.checkpoint_interval == 0
            ):
                self._take_checkpoint(level)
        else:
            raise ReproError(f"BFS exceeded {self.config.max_levels} levels")

        parent = np.concatenate([s.parent for s in self.states])
        sim_seconds = self._t_max - t_run_start
        stats = {
            "records_sent": float(self._records_sent),
            "messages": self.cluster.stats.value("messages") - msgs_before,
            "bytes": self.cluster.stats.value("bytes") - bytes_before,
            "hub_settled": float(self._hub_settled),
            "td_levels": float(
                sum(1 for t in traces if t.direction == "topdown")
            ),
            "bu_levels": float(
                sum(1 for t in traces if t.direction == "bottomup")
            ),
        }
        if self.channel is not None or self.checkpoints is not None:
            stats.update(
                {
                    k: self.cluster.stats.value(k) - resilience_before[k]
                    for k in resilience_keys
                }
            )
            stats["recoveries"] = float(self._recoveries)
            stats["checkpoints"] = float(
                self.checkpoints.taken if self.checkpoints is not None else 0
            )
            stats["checkpoint_seconds"] = self._checkpoint_seconds
            stats["recovery_seconds"] = self._recovery_seconds
        store = self.checkpoints
        if store is not None:
            # Durability accounting (the store is fresh per root, so these
            # are per-root figures): bytes held, bytes moved, fault tallies.
            stats["checkpoint_storage_bytes"] = float(store.storage_bytes)
            stats["checkpoint_raw_bytes"] = float(store.raw_bytes)
            stats["checkpoint_traffic_bytes"] = float(store.bytes_written)
            stats["shards_lost"] = float(store.shards_lost)
            stats["shards_corrupted"] = float(store.shards_corrupted)
            if isinstance(store, ShardedCheckpointStore):
                stats["shards_rebuilt"] = float(store.shards_rebuilt)
                stats["scrub_passes"] = float(store.scrub_passes)
                stats["scrub_repairs"] = float(store.scrub_repairs)
                stats["scrub_seconds"] = self._scrub_seconds
        result = BFSResult(
            root=root,
            parent=parent,
            # After a recovery, traces also hold the replayed levels; the
            # traversal's own depth is the final pass's level count.
            levels=level,
            sim_seconds=max(sim_seconds, 1e-12),
            traces=traces,
            stats=stats,
        )
        if tel is not None:
            tel.spans.close(
                root_span,
                t_run_start,
                self._t_max,
                sim_seconds=result.sim_seconds,
                levels=level,
            )
            tel.pop()
        return result
