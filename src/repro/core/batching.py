"""Group-based message batching (Section 4.4, Figures 7-9).

Nodes are arranged as an N x M matrix — N groups (rows) of M nodes. A
message from source ``s`` to destination ``d`` relays through the node in
**the same column as the source and the same row (group) as the
destination**; groups map onto super nodes so that stage two always rides
the full-bandwidth lower network.

Connections per node drop from N*M - 1 (everyone) to at most
(N - 1) + (M - 1): the column mates it relays through plus the group mates
it delivers to. At 40,000 nodes that is the paper's "4 GB to approximately
40 MB" of MPI connection memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class GroupLayout:
    """The N x M node matrix. ``node = group * width + member``."""

    num_nodes: int
    width: int  # M, nodes per group

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError(f"need at least one node, got {self.num_nodes}")
        if not 1 <= self.width <= self.num_nodes:
            raise ConfigError(
                f"group width {self.width} out of range [1, {self.num_nodes}]"
            )
        # Per-source relay lookup rows (group index -> relay node), built
        # lazily by relay_vectorised; not a dataclass field so eq/hash and
        # frozenness are untouched.
        object.__setattr__(self, "_relay_rows", {})

    @classmethod
    def for_topology(cls, num_nodes: int, nodes_per_super_node: int) -> "GroupLayout":
        """The paper's mapping: one group per super node."""
        return cls(num_nodes, min(num_nodes, nodes_per_super_node))

    @property
    def num_groups(self) -> int:  # N
        return -(-self.num_nodes // self.width)

    def group_of(self, node: int) -> int:
        self._check(node)
        return node // self.width

    def member_of(self, node: int) -> int:
        self._check(node)
        return node % self.width

    def group_size(self, group: int) -> int:
        if not 0 <= group < self.num_groups:
            raise ConfigError(f"group {group} out of range")
        lo = group * self.width
        return min(self.width, self.num_nodes - lo)

    def group_members(self, group: int) -> range:
        size = self.group_size(group)
        return range(group * self.width, group * self.width + size)

    def relay_for(self, src: int, dst: int) -> int:
        """The relay node: destination's row, source's column.

        A ragged final group may lack the source's column; the member index
        then wraps into the group (documented deviation — the real machine's
        groups are full super nodes).
        """
        self._check(src)
        self._check(dst)
        g = self.group_of(dst)
        member = self.member_of(src) % self.group_size(g)
        return g * self.width + member

    def relay_vectorised(self, src: int, dst: np.ndarray) -> np.ndarray:
        """:meth:`relay_for` over a destination array: one cached lookup row
        per source (indexed by destination group), then a single gather."""
        row = self._relay_rows.get(src)
        if row is None:
            g = np.arange(self.num_groups, dtype=np.int64)
            sizes = np.minimum(self.width, self.num_nodes - g * self.width)
            row = g * self.width + self.member_of(src) % sizes
            self._relay_rows[src] = row
        return row[np.asarray(dst, dtype=np.int64) // self.width]

    # -- connection arithmetic (the Section 4.4 claims) -------------------------
    def column_peers(self, node: int) -> list[int]:
        """Stage-one targets: same member index, every other group."""
        m = self.member_of(node)
        out = []
        for g in range(self.num_groups):
            peer = g * self.width + (m % self.group_size(g))
            if peer != node:
                out.append(peer)
        return out

    def row_peers(self, node: int) -> list[int]:
        """Stage-two targets: every other node in the group."""
        return [p for p in self.group_members(self.group_of(node)) if p != node]

    def relay_connections(self, node: int) -> int:
        """Distinct peers under relay routing: <= (N-1) + (M-1)."""
        # dict.fromkeys: order-stable dedup (determinism lint REP104 —
        # hash-ordered set unions are banned in sim-core modules).
        return len(
            dict.fromkeys(self.column_peers(node) + self.row_peers(node))
        )

    def direct_connections(self) -> int:
        """Distinct peers under direct routing: everyone."""
        return self.num_nodes - 1

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ConfigError(f"node {node} out of range [0, {self.num_nodes})")
