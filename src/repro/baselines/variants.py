"""Variant registry: Figure 11 tags -> BFS configurations."""

from __future__ import annotations

from dataclasses import replace

from repro.core.bfs import DistributedBFS
from repro.core.config import BFSConfig
from repro.errors import ConfigError
from repro.graph.edgelist import EdgeList
from repro.machine.specs import MachineSpec, TAIHULIGHT

#: tag -> config overrides relative to BFSConfig defaults.
VARIANTS: dict[str, dict] = {
    "relay-cpe": dict(use_relay=True, use_cpe_clusters=True),
    "relay-mpe": dict(use_relay=True, use_cpe_clusters=False),
    "direct-cpe": dict(use_relay=False, use_cpe_clusters=True),
    "direct-mpe": dict(use_relay=False, use_cpe_clusters=False),
    "plain-topdown": dict(
        use_relay=False,
        use_cpe_clusters=False,
        direction_optimizing=False,
        use_hub_prefetch=False,
    ),
}


def variant_config(name: str, base: BFSConfig | None = None) -> BFSConfig:
    """The configuration for a named variant (overrides applied to ``base``)."""
    try:
        overrides = VARIANTS[name]
    except KeyError:
        raise ConfigError(
            f"unknown variant {name!r}; choose from {sorted(VARIANTS)}"
        ) from None
    return replace(base or BFSConfig(), **overrides)


def make_variant(
    name: str,
    edges: EdgeList,
    nodes: int,
    config: BFSConfig | None = None,
    spec: MachineSpec = TAIHULIGHT,
    nodes_per_super_node: int | None = None,
    resilience=None,
    graph=None,
) -> DistributedBFS:
    """Instantiate a named variant over ``edges`` on ``nodes`` simulated nodes.

    ``graph`` optionally supplies an already-built symmetrised/deduplicated
    CSR for ``edges`` so construction work is shared with the caller.
    """
    return DistributedBFS(
        edges,
        nodes,
        config=variant_config(name, config),
        spec=spec,
        nodes_per_super_node=nodes_per_super_node,
        resilience=resilience,
        graph=graph,
    )
